# Build / verification entry points.
#
#   make check   - tier-1 gate: build everything, vet, run all tests
#   make test    - build + tests only (the original tier-1 command)
#   make bench   - benchmark smoke run with allocation reporting; also
#                  writes machine-readable results to BENCH_<rev>.json
#                  so per-PR benchmark trajectories can accumulate
#   make vet     - static analysis only

GO ?= go
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo worktree)

.PHONY: check test vet bench

check: test vet

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	./scripts/bench.sh "BENCH_$(REV).json"
