# Build / verification entry points.
#
#   make check     - tier-1 gate: build everything, vet, efdvet lint,
#                    gofmt -l, run all tests under the race detector
#                    (the server is concurrent; plain `go test` would
#                    miss data races). Run `make fuzz-short` alongside before
#                    merging storage or codec changes — it exercises
#                    the on-disk decoders the race tests cannot reach
#                    with adversarial bytes.
#   make fmt-check - fail if any file needs gofmt (the new public
#                    packages efd/monitor and efd/client are API
#                    surface; formatting drift is a review smell)
#   make test      - build + tests only (the original tier-1 command)
#   make test-race - build + tests under -race
#   make fuzz-short - bounded fuzz pass (FUZZTIME per target, default
#                    10s) over the tsdb WAL/segment decoders and the
#                    LDMS CSV reader: every parser that consumes bytes
#                    a crash or a rotted disk may have produced
#   make chaos-short - seeded fault-injection chaos pass (CHAOSTIME
#                    wall-clock per test, default 2s) over the tsdb
#                    store and the monitor engine, with a fresh seed
#                    each run; every failure message carries its
#                    CHAOS_SEED, so re-running with that seed exported
#                    reproduces the schedule exactly
#   make bench     - benchmark smoke run with allocation reporting; also
#                    writes machine-readable results to BENCH_<rev>.json
#                    plus the raw text to BENCH_<rev>.txt
#                    so per-PR benchmark trajectories can accumulate
#                    (includes the server throughput pair at -cpu 8);
#                    afterwards scrapes /metrics from an instrumented
#                    server under a representative workload and folds
#                    the latency-histogram families into the JSON
#                    (raw exposition: BENCH_<rev>.metrics.txt)
#   make obs-golden - the Prometheus exposition golden alone (also part
#                    of check): /metrics text must stay byte-stable
#   make bench-compare - benchstat (or a plain-awk fallback) over the
#                    two most recent BENCH_<rev>.txt files
#   make vet       - static analysis only (the stock go vet pass)
#   make lint      - the repo's own analyzers: efdvet (internal/
#                    analysis, documented in LINTS.md) enforcing the
#                    vfs seam, the off-lock group-commit rule, the
#                    transitive hot-path allocation contract (call-
#                    graph propagation from //efd:hotpath roots),
#                    whole-module atomic-field discipline, the locked
#                    public API surface, errors.Is on sentinels, and
#                    no process exits in libraries; the driver prints
#                    the call-graph build cost to stderr so analysis
#                    regressions show in CI logs; exit 2 means the
#                    tree failed to typecheck and the analyzers
#                    never ran
#   make api-golden - regenerate the locked public-API goldens under
#                    internal/analysis/testdata/api after an intended
#                    API change (apilock fails make lint until the
#                    new surface is committed)

GO ?= go
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo worktree)
FUZZTIME ?= 10s
CHAOSTIME ?= 2s

.PHONY: check test test-race vet lint api-golden fmt-check bench bench-compare fuzz-short chaos-short obs-golden

check: test-race vet lint fmt-check chaos-short obs-golden

# The Prometheus exposition is operator-facing API: scrapers parse it.
# The golden pins it byte-for-byte (family ordering, label sorting,
# histogram cumulative buckets, float formatting); -count=1 defeats
# the cache so the gate always re-reads the golden file.
obs-golden:
	$(GO) test -count=1 -run '^TestExpositionGolden$$' ./internal/obs

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) build ./... && $(GO) test ./...

test-race:
	$(GO) build ./... && $(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/efdvet ./...

# An intended API change is a two-step commit: regenerate the goldens,
# review the diff of the rendered surface alongside the code change.
api-golden:
	$(GO) run ./cmd/efdvet -api-golden

# Go's fuzzer takes one -fuzz pattern per invocation, so each decoder
# gets its own bounded run; seed corpora make even a short run cover
# the interesting frame/footer shapes.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/tsdb
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentOpen$$' -fuzztime $(FUZZTIME) ./internal/tsdb
	$(GO) test -run '^$$' -fuzz '^FuzzReadNodeCSV$$' -fuzztime $(FUZZTIME) ./internal/ldms

# -count=1 defeats the test cache: each chaos run draws a fresh seed
# from the clock, so successive runs explore different schedules. A
# failure prints CHAOS_SEED=...; export it to replay that schedule.
chaos-short:
	CHAOS_TIME=$(CHAOSTIME) $(GO) test -race -count=1 -run 'Chaos' ./internal/tsdb ./efd/monitor

bench:
	./scripts/bench.sh "BENCH_$(REV).json"

bench-compare:
	./scripts/bench_compare.sh
