# Build / verification entry points.
#
#   make check     - tier-1 gate: build everything, vet, run all tests
#                    under the race detector (the server is concurrent;
#                    plain `go test` would miss data races)
#   make test      - build + tests only (the original tier-1 command)
#   make test-race - build + tests under -race
#   make bench     - benchmark smoke run with allocation reporting; also
#                    writes machine-readable results to BENCH_<rev>.json
#                    plus the raw text to BENCH_<rev>.txt
#                    so per-PR benchmark trajectories can accumulate
#                    (includes the server throughput pair at -cpu 8)
#   make bench-compare - benchstat (or a plain-awk fallback) over the
#                    two most recent BENCH_<rev>.txt files
#   make vet       - static analysis only

GO ?= go
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo worktree)

.PHONY: check test test-race vet bench bench-compare

check: test-race vet

test:
	$(GO) build ./... && $(GO) test ./...

test-race:
	$(GO) build ./... && $(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	./scripts/bench.sh "BENCH_$(REV).json"

bench-compare:
	./scripts/bench_compare.sh
