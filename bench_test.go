// Benchmark harness: one benchmark per table and figure of the paper,
// plus the ablations of DESIGN.md §4 and micro-benchmarks of the hot
// paths. Each Benchmark prints (once) the artifact it regenerates, then
// times the computation that produces it.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-scale numbers (Table 2 grid with 30 repeats, Taxonomist with
// 50+ trees) are produced by cmd/experiments; benchmarks use a reduced
// but structurally identical grid so iterations stay in the millisecond
// range.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/efd/client"
	"repro/efd/monitor"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/ldms"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/taxonomist"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// benchDS lazily generates the shared benchmark dataset: the full
// 11-application grid at reduced repetition count with a representative
// metric subset (headline + strong memory + NIC + constant).
var (
	benchOnce sync.Once
	benchData *dataset.Dataset
	benchErr  error
)

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		cfg := dataset.DefaultGenConfig()
		cfg.Repeats = 8
		cfg.Cluster.Metrics = []string{
			apps.HeadlineMetric,
			"Committed_AS_meminfo",
			"Active_meminfo",
			"PI_PKTS_metric_set_nic",
			"MemTotal_meminfo",
		}
		benchData, benchErr = dataset.Generate(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchData
}

func benchHarness(b *testing.B) *experiments.Harness {
	h := experiments.NewHarness(benchDataset(b))
	h.Folds = 4
	return h
}

// --- Table 1: the rounding-depth mechanism --------------------------

func BenchmarkTable1RoundingDepth(b *testing.B) {
	values := []float64{1358.0, 5.28, 0.038, 6012.7, 7530.2, 0.0004913}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range values {
			for depth := 1; depth <= 5; depth++ {
				_ = stats.RoundDepth(v, depth)
			}
		}
	}
}

// --- Table 2: dataset generation -------------------------------------

func BenchmarkTable2DatasetGeneration(b *testing.B) {
	cfg := dataset.DefaultGenConfig()
	cfg.Apps = []string{"ft", "sp", "miniAMR"}
	cfg.Repeats = 2
	cfg.Cluster.Metrics = []string{apps.HeadlineMetric}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		ds, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ds.Len() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// --- Figure 1: the learn -> prune -> lookup pipeline ------------------

func BenchmarkFigure1Pipeline(b *testing.B) {
	ds := benchDataset(b)
	cfg := core.DefaultConfig(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.Build(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// One recognition per built dictionary: the lookup step.
		res := d.Recognize(core.Source(ds.Executions[i%ds.Len()]))
		if res.Total == 0 {
			b.Fatal("no fingerprints constructed")
		}
	}
}

// --- Figure 2: the five protocols -------------------------------------

func BenchmarkFigure2NormalFold(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := h.NormalFold()
		if err != nil {
			b.Fatal(err)
		}
		if s.EFD < 0.9 {
			b.Fatalf("normal fold F = %v, shape broken", s.EFD)
		}
	}
}

func BenchmarkFigure2SoftInput(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.SoftInput(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2SoftUnknown(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.SoftUnknown(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2HardInput(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.HardInput(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2HardUnknown(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.HardUnknown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2TaxonomistNormalFold times the baseline side of
// Figure 2 with a reduced forest.
func BenchmarkFigure2TaxonomistNormalFold(b *testing.B) {
	h := benchHarness(b)
	h.Taxo = &experiments.TaxoConfig{
		Forest: taxonomist.ForestConfig{Trees: 10, Seed: 1, Parallel: true,
			Tree: taxonomist.TreeConfig{MinLeaf: 2}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := h.NormalFold()
		if err != nil {
			b.Fatal(err)
		}
		if !s.HasTaxonomist {
			b.Fatal("baseline missing")
		}
	}
}

// --- Table 3: the per-metric sweep ------------------------------------

func BenchmarkTable3MetricSweep(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := h.MetricSweep(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("sweep rows = %d", len(rows))
		}
	}
}

// --- Table 4: the example dictionary ----------------------------------

func BenchmarkTable4ExampleDictionary(b *testing.B) {
	ds := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := experiments.ExampleDictionary(ds)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Dump(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ------------------------------------------

func BenchmarkAblationRoundingDepth(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.DepthAblation(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterval(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.IntervalAblation(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVoting(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.VotingAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJointCombo(b *testing.B) {
	h := benchHarness(b)
	combos := map[string][]string{
		"pair": {apps.HeadlineMetric, "Committed_AS_meminfo"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.ComboAblation(combos); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDictionaryGrowth(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.DictionaryGrowth(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ---------------------------------

func BenchmarkMicroLearnExecution(b *testing.B) {
	ds := benchDataset(b)
	cfg := core.DefaultConfig(3)
	d, err := core.NewDictionary(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ds.Executions[i%ds.Len()]
		d.Learn(core.Source(e), e.Label)
	}
}

func BenchmarkMicroRecognizeExecution(b *testing.B) {
	ds := benchDataset(b)
	d, err := core.Build(ds, core.DefaultConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := d.Recognize(core.Source(ds.Executions[i%ds.Len()]))
		if res.Total == 0 {
			b.Fatal("no fingerprints")
		}
	}
}

// BenchmarkMicroRecognizeWarmed is the production request path: a
// warmed dictionary queried through a reused Recognizer. Expected
// steady state is 0 allocs/op — perf_test.go pins exactly that with
// testing.AllocsPerRun.
func BenchmarkMicroRecognizeWarmed(b *testing.B) {
	ds := benchDataset(b)
	d, err := core.Build(ds, core.DefaultConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	rec := d.NewRecognizer()
	for _, e := range ds.Executions {
		rec.Recognize(core.Source(e)) // warm scratch + window indexes
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := rec.Recognize(core.Source(ds.Executions[i%ds.Len()]))
		if res.Total == 0 {
			b.Fatal("no fingerprints")
		}
	}
}

// BenchmarkMicroExtractInto times public fingerprint extraction with a
// reused destination slice.
func BenchmarkMicroExtractInto(b *testing.B) {
	ds := benchDataset(b)
	cfg := core.DefaultConfig(3)
	var fps []core.Fingerprint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fps = core.ExtractInto(fps[:0], core.Source(ds.Executions[i%ds.Len()]), cfg)
		if len(fps) == 0 {
			b.Fatal("no fingerprints")
		}
	}
}

// BenchmarkFitSequential and BenchmarkFitParallel compare the
// depth×fold cross-validation grid at one worker versus GOMAXPROCS
// workers; results are byte-identical, only wall-clock differs.
func benchFit(b *testing.B, workers int) {
	ds := benchDataset(b)
	cfg := core.DefaultFitConfig()
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Fit(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSequential(b *testing.B) { benchFit(b, 1) }
func BenchmarkFitParallel(b *testing.B)   { benchFit(b, 0) }

func BenchmarkMicroStreamFeed(b *testing.B) {
	ds := benchDataset(b)
	d, err := core.Build(ds, core.DefaultConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewStream(d, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Feed(apps.HeadlineMetric, i%4, telemetry.PaperWindow.Start, 6000)
	}
}

func BenchmarkMicroEvaluate(b *testing.B) {
	pairs := make([]eval.Pair, 1000)
	names := apps.Names()
	for i := range pairs {
		pairs[i] = eval.Pair{Truth: names[i%len(names)], Pred: names[(i+i/7)%len(names)]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroTaxonomistPredict(b *testing.B) {
	ds := benchDataset(b)
	fvs, _, err := taxonomist.Extract(ds, taxonomist.FeatureConfig{})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := taxonomist.TrainForest(fvs[:200], taxonomist.ForestConfig{Trees: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = forest.Predict(fvs[i%len(fvs)].Values)
	}
}

// --- Server throughput: sharded vs. the seed's global mutex -----------

// benchLevelSource yields a flat headline-metric level, so each learned
// level becomes one fingerprint per node.
type benchLevelSource struct {
	nodes int
	level float64
}

func (f benchLevelSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f benchLevelSource) NodeCount() int { return f.nodes }

func benchServerDictionary(b testing.TB) *core.Dictionary {
	b.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d.Learn(benchLevelSource{nodes: 2, level: 1000 * float64(i+1)},
			apps.Label{App: fmt.Sprintf("app%d", i), Input: apps.InputX})
	}
	return d
}

type benchWireSample struct {
	Metric  string  `json:"metric"`
	Node    int     `json:"node"`
	OffsetS float64 `json:"offset_s"`
	Value   float64 `json:"value"`
}

// benchServerWorkload registers nJobs jobs against the handler and
// returns one prebuilt ingest body and poll path per job.
func benchServerWorkload(b testing.TB, h http.Handler, nJobs int) (bodies [][]byte, polls []string) {
	b.Helper()
	for i := 0; i < nJobs; i++ {
		id := fmt.Sprintf("bench-job-%03d", i)
		reg, _ := json.Marshal(map[string]any{"job_id": id, "nodes": 2})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(reg)))
		if rec.Code != http.StatusCreated {
			b.Fatalf("register %s: %d %s", id, rec.Code, rec.Body)
		}
		level := 1000 * float64(i%8+1)
		var samples []benchWireSample
		for k := 0; k < 16; k++ {
			for node := 0; node < 2; node++ {
				samples = append(samples, benchWireSample{
					Metric: apps.HeadlineMetric, Node: node,
					OffsetS: 60 + float64(4*k), Value: level,
				})
			}
		}
		body, _ := json.Marshal(map[string]any{"job_id": id, "samples": samples})
		bodies = append(bodies, body)
		polls = append(polls, "/v1/jobs/"+id)
	}
	return bodies, polls
}

// runServerThroughput drives a mixed parallel workload — 3 ingest
// batches to 1 recognition poll, spread across the jobs — through the
// handler with one client goroutine per GOMAXPROCS.
func runServerThroughput(b *testing.B, h http.Handler, nJobs int) {
	bodies, polls := benchServerWorkload(b, h, nJobs)
	var fail atomic.Bool
	var gids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gid := int(gids.Add(1))
		i := 0
		for pb.Next() {
			jobIdx := (gid*13 + i) % nJobs
			rec := httptest.NewRecorder()
			if i%4 == 3 {
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, polls[jobIdx], nil))
			} else {
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/samples", bytes.NewReader(bodies[jobIdx])))
			}
			if rec.Code != http.StatusOK {
				fail.Store(true)
			}
			i++
		}
	})
	b.StopTimer()
	if fail.Load() {
		b.Fatal("request failed during benchmark")
	}
}

// BenchmarkServerThroughput measures the sharded monitoring server
// under mixed parallel ingest + recognition across 64 jobs. Compare
// against BenchmarkServerThroughputSerialized (the seed's single
// global mutex) at the same -cpu to see the concurrency win.
func BenchmarkServerThroughput(b *testing.B) {
	s := server.New(benchServerDictionary(b))
	b.ReportAllocs()
	runServerThroughput(b, s.Handler(), 64)
}

// serializedServer replicates the seed server's locking: one global
// mutex covering every job-table access, stream feed, recognition, and
// response encode (JSON decode happened outside the lock, as in the
// seed). It serves as the baseline for the sharding speedup.
type serializedServer struct {
	mu   sync.Mutex
	dict *core.Dictionary
	jobs map[string]*core.Stream
}

func (s *serializedServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			JobID string `json:"job_id"`
			Nodes int    `json:"nodes"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.jobs[req.JobID] = core.NewStream(s.dict, req.Nodes)
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]string{"job_id": req.JobID})
	})
	mux.HandleFunc("/v1/samples", func(w http.ResponseWriter, r *http.Request) {
		var batch struct {
			JobID   string            `json:"job_id"`
			Samples []benchWireSample `json:"samples"`
		}
		json.NewDecoder(r.Body).Decode(&batch)
		s.mu.Lock()
		defer s.mu.Unlock()
		st, ok := s.jobs[batch.JobID]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		for _, smp := range batch.Samples {
			st.Feed(smp.Metric, smp.Node, time.Duration(smp.OffsetS*float64(time.Second)), smp.Value)
		}
		json.NewEncoder(w).Encode(map[string]int{"accepted": len(batch.Samples)})
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Path[len("/v1/jobs/"):]
		s.mu.Lock()
		defer s.mu.Unlock()
		st, ok := s.jobs[id]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		res := st.Recognize()
		json.NewEncoder(w).Encode(map[string]any{
			"job_id": id, "complete": st.Complete(), "top": res.Top(),
			"votes": res.Votes(), "matched": res.Matched, "total": res.Total,
		})
	})
	return mux
}

// BenchmarkServerThroughputSerialized is the identical workload
// against the seed's single-global-mutex design.
func BenchmarkServerThroughputSerialized(b *testing.B) {
	s := &serializedServer{dict: benchServerDictionary(b), jobs: make(map[string]*core.Stream)}
	b.ReportAllocs()
	runServerThroughput(b, s.handler(), 64)
}

// --- PR 3: columnar telemetry + prefix-sum windows + byte ingest ----

// benchRampSource is a deterministic ValueSource for the ingest
// benchmarks.
type benchRampSource struct{}

func (benchRampSource) Value(metric string, node int, t time.Duration) float64 {
	return float64(len(metric)*1000+node*100) + t.Seconds()*1.25
}

// benchNodeCSVOnce renders the shared ingest fixture: one node of a
// ten-minute execution with a 50-metric set at 1 Hz.
var (
	benchCSVOnce sync.Once
	benchCSV     []byte
)

func benchNodeCSV(b *testing.B) []byte {
	b.Helper()
	benchCSVOnce.Do(func() {
		metrics := make([]string, 50)
		for i := range metrics {
			metrics[i] = "metric_" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		}
		s, err := ldms.NewSampler("bench", metrics)
		if err != nil {
			panic(err)
		}
		c, err := ldms.NewCollector([]ldms.Sampler{s}, time.Second)
		if err != nil {
			panic(err)
		}
		ns, err := c.Collect(benchRampSource{}, 1, 599*time.Second)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := ldms.WriteNodeCSV(&buf, ns, 0); err != nil {
			panic(err)
		}
		benchCSV = buf.Bytes()
	})
	return benchCSV
}

// BenchmarkLDMSIngest measures the byte-oriented CSV ingest path:
// bufio line walking, in-place field splitting, zero-copy float
// parsing, columnar series construction, and sealing.
func BenchmarkLDMSIngest(b *testing.B) {
	data := benchNodeCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ldms.ReadNodeCSV(bytes.NewReader(data), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDMSIngestStdCSV is the retained encoding/csv baseline for
// the same input — the allocs/op comparison the acceptance criteria
// pin (see ldms.TestIngestAllocRatio for the enforced >=5x bound).
func BenchmarkLDMSIngestStdCSV(b *testing.B) {
	data := benchNodeCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ldms.ReadNodeCSVStd(bytes.NewReader(data), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWideSeries is a sealed 10-hour 1 Hz series shared by the
// window-cost benchmarks.
var (
	benchWideOnce   sync.Once
	benchWideSeries *telemetry.Series
)

func wideSeries() *telemetry.Series {
	benchWideOnce.Do(func() {
		s := telemetry.NewSeries("m", 0, 36_000)
		for i := 0; i < 36_000; i++ {
			s.Append(time.Duration(i)*time.Second, 1e6+float64(i%97))
		}
		s.SealStats()
		benchWideSeries = s
	})
	return benchWideSeries
}

// BenchmarkWindowMeanWide queries a ~36000-sample window on a sealed
// series. Compare with BenchmarkWindowMeanNarrow: the two must cost
// the same (prefix-sum subtraction), where the pre-columnar scan
// differed by the 600x window-length ratio.
func BenchmarkWindowMeanWide(b *testing.B) {
	s := wideSeries()
	w := telemetry.Window{Start: 60 * time.Second, End: 35_900 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.WindowMean(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowMeanNarrow is the 60-sample companion of
// BenchmarkWindowMeanWide.
func BenchmarkWindowMeanNarrow(b *testing.B) {
	s := wideSeries()
	w := telemetry.PaperWindow
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.WindowMean(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowStatsWide extracts all four moments from the same
// wide window — still O(1) on the sealed prefix sums.
func BenchmarkWindowStatsWide(b *testing.B) {
	s := wideSeries()
	w := telemetry.Window{Start: 60 * time.Second, End: 35_900 * time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.WindowStats(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeriesSort measures the ingest-then-sort path: fully
// reversed 1 Hz arrival (the worst case for the order tracking)
// followed by the slices.SortStableFunc-based Sort.
func BenchmarkSeriesSort(b *testing.B) {
	const n = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := telemetry.NewSeries("m", 0, n)
		for j := n - 1; j >= 0; j-- {
			s.Append(time.Duration(j)*time.Second, float64(j))
		}
		s.Sort()
	}
}

// --- tsdb: the durable telemetry store ------------------------------

// tsdbBenchStore opens a store in a fresh temp dir. Syncs are disabled
// so the benchmarks measure the engine (encode, CRC, memtable, segment
// build, mmap materialization) rather than the device's fsync latency;
// BenchmarkTSDBCommit measures the fsync path separately.
func tsdbBenchStore(b *testing.B) *tsdb.Store {
	b.Helper()
	st, err := tsdb.OpenOptions(b.TempDir(), tsdb.Options{NoSync: true, FlushBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkTSDBWALAppend measures appending one 64-sample grid run to
// the WAL + memtable — the per-run cost on the server's durable ingest
// path.
func BenchmarkTSDBWALAppend(b *testing.B) {
	st := tsdbBenchStore(b)
	if err := st.Register("j", 1); err != nil {
		b.Fatal(err)
	}
	const run = 64
	offs := make([]time.Duration, run)
	vals := make([]float64, run)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < run; k++ {
			offs[k] = time.Duration(i*run+k) * telemetry.DefaultPeriod
			vals[k] = float64(k)
		}
		if err := st.Append("j", "cpu", 0, offs, vals); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(run * 8)
}

// BenchmarkTSDBCommit measures the group-commit fsync that
// acknowledges a batch (one append + one sync per op, real fsyncs).
func BenchmarkTSDBCommit(b *testing.B) {
	st, err := tsdb.OpenOptions(b.TempDir(), tsdb.Options{FlushBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	if err := st.Register("j", 1); err != nil {
		b.Fatal(err)
	}
	offs := []time.Duration{0}
	vals := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offs[0] = time.Duration(i) * telemetry.DefaultPeriod
		if err := st.Append("j", "cpu", 0, offs, vals); err != nil {
			b.Fatal(err)
		}
		if err := st.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// tsdbBenchNodeSet builds an execution of series×n grid samples.
func tsdbBenchNodeSet(series, n int) *telemetry.NodeSet {
	ns := telemetry.NewNodeSet()
	for si := 0; si < series; si++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(si*7 + i)
		}
		ns.Put(telemetry.NewSeriesFromColumns("m", si, nil, vals))
	}
	return ns
}

// BenchmarkTSDBSegmentFlush measures flushing one finished execution
// (4 series × 4096 samples) into an immutable segment: columnar
// write, per-block CRCs, histogram sketches, footer, mmap open, WAL
// compaction.
func BenchmarkTSDBSegmentFlush(b *testing.B) {
	st := tsdbBenchStore(b)
	ns := tsdbBenchNodeSet(4, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.IngestExecution(fmt.Sprintf("e%d", i), "", ns); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4 * 4096 * 8)
}

// BenchmarkTSDBMmapRead measures materializing a stored execution from
// its mmap'd segment (zero value-column copies), sealing it, and
// answering one window mean per series.
func BenchmarkTSDBMmapRead(b *testing.B) {
	st := tsdbBenchStore(b)
	if err := st.IngestExecution("e", "", tsdbBenchNodeSet(4, 4096)); err != nil {
		b.Fatal(err)
	}
	w := telemetry.Window{Start: 60 * time.Second, End: 120 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, err := st.ExecutionSeries("e")
		if err != nil {
			b.Fatal(err)
		}
		for node := 0; node < 4; node++ {
			if _, err := ns.Get(node, "m").WindowMean(w); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(4 * 4096 * 8)
}

// BenchmarkPipelineEndToEnd runs the full data plane: simulate and
// ingest a small seeded grid (cluster sampling -> columnar series),
// summarize it through the sealed prefix sums, and fit an EFD with
// cross-validated depth selection — the gendataset -> Summarize -> Fit
// pipeline every experiment starts with.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	cfg := dataset.DefaultGenConfig()
	cfg.Apps = []string{"ft", "mg"}
	cfg.Cluster.Metrics = []string{
		apps.HeadlineMetric,
		"Committed_AS_meminfo",
		"MemTotal_meminfo",
	}
	cfg.Repeats = 4
	cfg.Seed = 7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.Fit(ds, core.DefaultFitConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- client SDK: end-to-end ingest encodings ------------------------

// benchClientRuns builds one ingest batch in columnar form: 2 nodes ×
// 64 in-window samples of the headline metric. The benchmark posts
// the same batch every iteration, re-feeding one warm window — the
// steady-state encode/transfer/decode/feed cost, deliberately without
// stream growth (iter only differentiates the warm-up batch).
func benchClientRuns(iter int) []monitor.RunBatch {
	const perRun = 64
	runs := make([]monitor.Run, 2)
	for node := 0; node < 2; node++ {
		offs := make([]time.Duration, perRun)
		vals := make([]float64, perRun)
		for k := 0; k < perRun; k++ {
			offs[k] = time.Duration(60+(iter*perRun+k)%60) * time.Second
			vals[k] = 2000 + float64(k)
		}
		runs[node] = monitor.Run{Metric: apps.HeadlineMetric, Node: node, Offsets: offs, Values: vals}
	}
	return []monitor.RunBatch{{JobID: "bench-client", Runs: runs}}
}

// runClientIngest drives the typed client against a live HTTP server
// end to end — connection, encoding, server decode, columnar feed —
// and reports total allocations across client and server. The mode
// selects the wire encoding; BenchmarkClientIngestBinary must stay at
// least 2x below BenchmarkClientIngestJSON in allocs/op (pinned by
// TestClientIngestAllocRatio in efd/client).
func runClientIngest(b *testing.B, mode client.BinaryMode) {
	srv := server.New(benchServerDictionary(b))
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	c := client.New(ts.URL, client.WithBinaryIngest(mode))
	ctx := context.Background()
	if err := c.Register(ctx, "bench-client", 2); err != nil {
		b.Fatal(err)
	}
	// Warm the path (arena sizing, connection reuse) before measuring.
	if _, err := c.IngestRuns(ctx, benchClientRuns(0)); err != nil {
		b.Fatal(err)
	}
	batches := benchClientRuns(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.IngestRuns(ctx, batches)
		if err != nil {
			b.Fatal(err)
		}
		if res.Accepted != 128 {
			b.Fatalf("accepted %d", res.Accepted)
		}
	}
	b.SetBytes(128 * 16)
}

// BenchmarkClientIngestJSON is the row-form JSON ingest path: runs
// are converted to {metric,node,offset_s,value} objects client-side
// and re-grouped into columnar runs server-side.
func BenchmarkClientIngestJSON(b *testing.B) { runClientIngest(b, client.BinaryNever) }

// BenchmarkClientIngestBinary is the binary columnar path
// (application/x-efd-runs): wire-framed columns end to end, decoded
// into pooled scratch, no per-sample parsing anywhere.
func BenchmarkClientIngestBinary(b *testing.B) { runClientIngest(b, client.BinaryAlways) }
