// Command efd trains, inspects and applies Execution Fingerprint
// Dictionaries.
//
// Subcommands:
//
//	efd learn -data dataset.csv -out dict.json [-metric M] [-depth D]
//	    Learn a dictionary from a labelled dataset. Without -depth the
//	    rounding depth is chosen by cross-validation (the paper's
//	    procedure).
//
//	efd recognize -data dataset.csv -dict dict.json [-report]
//	    Recognize every execution of the dataset and print predictions
//	    (and optionally a classification report against the labels).
//
//	efd dump -dict dict.json
//	    Print the dictionary in the layout of Table 4 of the paper.
//
//	efd predict -dict dict.json -app ft
//	    Dictionary-in-reverse (§6): print the expected resource usage
//	    of a known application.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "learn":
		err = cmdLearn(os.Args[2:])
	case "recognize":
		err = cmdRecognize(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "efd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: efd {learn|recognize|dump|predict} [flags]")
	os.Exit(2)
}

func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.LoadCSV(f)
}

func loadDict(path string) (*core.Dictionary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	data := fs.String("data", "", "labelled dataset CSV (from gendataset)")
	out := fs.String("out", "dict.json", "output dictionary path")
	metric := fs.String("metric", core.DefaultFitConfig().Metrics[0], "system metric to fingerprint")
	window := fs.String("window", telemetry.PaperWindow.String(), "fingerprint interval, e.g. [60:120]")
	depth := fs.Int("depth", 0, "fixed rounding depth (0 = choose by cross-validation)")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("learn: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	w, err := telemetry.ParseWindow(*window)
	if err != nil {
		return err
	}
	var d *core.Dictionary
	if *depth > 0 {
		d, err = core.Build(ds, core.Config{
			Metrics: []string{*metric}, Windows: []telemetry.Window{w}, Depth: *depth,
		})
		if err != nil {
			return err
		}
		fmt.Printf("built dictionary at fixed depth %d\n", *depth)
	} else {
		cfg := core.DefaultFitConfig()
		cfg.Metrics = []string{*metric}
		cfg.Windows = []telemetry.Window{w}
		var rep core.FitReport
		d, rep, err = core.Fit(ds, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("cross-validation selected depth %d (scores: %v)\n",
			rep.BestDepth, rep.DepthScores)
	}
	st := d.Stats()
	fmt.Printf("dictionary: %d keys (%d exclusive, %d collisions) over %d labels\n",
		st.Keys, st.Exclusive, st.Collisions, st.Labels)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	fmt.Printf("saved to %s\n", *out)
	return nil
}

func cmdRecognize(args []string) error {
	fs := flag.NewFlagSet("recognize", flag.ExitOnError)
	data := fs.String("data", "", "dataset CSV to recognize")
	dict := fs.String("dict", "dict.json", "dictionary path")
	report := fs.Bool("report", false, "print a classification report against the labels")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("recognize: -data is required")
	}
	ds, err := loadDataset(*data)
	if err != nil {
		return err
	}
	d, err := loadDict(*dict)
	if err != nil {
		return err
	}
	var pairs []eval.Pair
	for _, e := range ds.Executions {
		res := d.Recognize(core.Source(e))
		fmt.Printf("exec %4d  truth=%-14s pred=%-14s votes=%v\n",
			e.ID, e.Label, res.Top(), res.Votes())
		pairs = append(pairs, eval.Pair{Truth: e.Label.App, Pred: res.Top()})
	}
	if *report {
		r, err := eval.Evaluate(pairs)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(r.String())
	}
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	dict := fs.String("dict", "dict.json", "dictionary path")
	fs.Parse(args)
	d, err := loadDict(*dict)
	if err != nil {
		return err
	}
	return d.Dump(os.Stdout)
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	dict := fs.String("dict", "dict.json", "dictionary path")
	app := fs.String("app", "", "application name to predict usage for")
	fs.Parse(args)
	if *app == "" {
		return fmt.Errorf("predict: -app is required")
	}
	d, err := loadDict(*dict)
	if err != nil {
		return err
	}
	entries := d.PredictUsage(*app)
	if len(entries) == 0 {
		return fmt.Errorf("application %q is not in the dictionary", *app)
	}
	fmt.Printf("expected resource usage of %s (%d stored fingerprints):\n", *app, len(entries))
	for _, e := range entries {
		fmt.Printf("  %s %s on node %d: %s\n", e.Key.Metric, e.Key.Window, e.Key.Node, e.Key.Key)
	}
	return nil
}
