// Command efdd serves a trained Execution Fingerprint Dictionary as an
// HTTP monitoring service (see internal/server for the API).
//
//	efdd -dict dict.json -addr :8080
//
// An LDMS aggregator (or any telemetry forwarder) registers running
// jobs, streams their per-node samples, and queries recognition results
// two minutes into each job. Completed jobs can be labelled back into
// the dictionary, which is re-saved on shutdown when -save is given.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		dictPath = flag.String("dict", "dict.json", "trained dictionary (from `efd learn`)")
		addr     = flag.String("addr", ":8080", "listen address")
		maxJobs  = flag.Int("max-jobs", 4096, "maximum concurrently tracked jobs")
	)
	flag.Parse()

	f, err := os.Open(*dictPath)
	if err != nil {
		log.Fatalf("efdd: %v", err)
	}
	dict, err := core.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("efdd: load dictionary: %v", err)
	}
	st := dict.Stats()
	fmt.Printf("efdd: dictionary %s — %d keys, %d labels, depth %d\n",
		*dictPath, st.Keys, st.Labels, st.Depth)

	srv := server.New(dict)
	srv.MaxJobs = *maxJobs
	fmt.Printf("efdd: listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
