// Command efdd serves a trained Execution Fingerprint Dictionary as an
// HTTP monitoring service: a thin adapter (internal/server) over the
// embeddable efd/monitor engine. API.md documents the v1 wire
// protocol; the typed efd/client SDK covers the full surface,
// including the binary columnar ingest encoding.
//
//	efdd -dict dict.json -addr :8080 -save dict.json -data-dir /var/lib/efdd
//
// An LDMS aggregator (or any telemetry forwarder) registers running
// jobs, streams their per-node samples, and queries recognition results
// two minutes into each job. Completed jobs can be labelled back into
// the dictionary; on SIGINT/SIGTERM the daemon shuts the listener down
// gracefully and, when -save is given, re-saves the dictionary
// (atomically, via a temp file + rename) so online-learned labels
// survive restarts.
//
// With -data-dir the daemon runs storage-backed (internal/tsdb):
// ingested samples are write-ahead logged before they are
// acknowledged, labelled jobs become immutable columnar segment files
// served and re-recognized over mmap, and a restart with the same
// directory replays the WAL so running jobs resume exactly where the
// previous process left them. Graceful shutdown flushes pending
// executions into segments before exiting.
//
// Observability (API.md "Observability"): the daemon logs through
// log/slog (-log-format text|json, -log-level), always registers the
// full metrics kit, and serves the Prometheus exposition on GET
// /metrics plus the slow-request ring on GET /v1/debug/slow. With
// -ops-addr the same surface — plus net/http/pprof — is served on a
// separate operations listener that can stay off the service's
// exposure. Every request carries an X-Efd-Trace ID (propagated from
// the caller or generated from a crypto-seeded generator).
package main

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/efd/monitor"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tsdb"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "efdd: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so tests can drive it:
// it serves until the context is cancelled or SIGINT/SIGTERM arrives,
// then shuts down gracefully and re-saves the dictionary when -save is
// set. onListen, if non-nil, is called with the bound address once the
// listener is up.
func run(ctx context.Context, args []string, out io.Writer, onListen func(addr string)) error {
	fs := flag.NewFlagSet("efdd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dictPath = fs.String("dict", "dict.json", "trained dictionary (from `efd learn`)")
		addr     = fs.String("addr", ":8080", "listen address")
		maxJobs  = fs.Int("max-jobs", 4096, "maximum concurrently tracked jobs")
		savePath = fs.String("save", "", "path to re-save the dictionary on graceful shutdown (labels learned online are lost without it; typically the -dict path)")
		dataDir  = fs.String("data-dir", "", "durable telemetry store directory (WAL + segment files); jobs and their telemetry survive restarts")

		maxIngestMB      = fs.Int("max-ingest-mb", 64, "ingest admission cap: in-flight payload megabytes across concurrent requests; exceeding it sheds with 429 + Retry-After (-1: unlimited)")
		maxIngestBatches = fs.Int("max-ingest-batches", 256, "ingest admission cap: concurrent in-flight ingest requests (-1: unlimited)")
		diskLowMB        = fs.Int("disk-low-mb", 0, "disk headroom watermark in megabytes: segment flushes are refused while the store volume has less free space, and a disk-full read-only engine waits for at least this much before resuming durable writes (0: disabled)")

		logFormat = fs.String("log-format", "text", "structured log output format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		opsAddr   = fs.String("ops-addr", "", "separate operations listener serving GET /metrics (Prometheus text exposition), /debug/pprof/, and /v1/debug/slow; empty disables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(out, hopts)
	case "json":
		handler = slog.NewJSONHandler(out, hopts)
	default:
		return fmt.Errorf("bad -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	f, err := os.Open(*dictPath)
	if err != nil {
		return err
	}
	dict, err := core.Load(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("load dictionary: %w", err)
	}
	st := dict.Stats()
	logger.Info("dictionary loaded",
		"path", *dictPath, "keys", st.Keys, "labels", st.Labels, "depth", st.Depth)

	// The server is a thin HTTP adapter over the public monitoring
	// engine; everything the daemon does is available in-process via
	// efd/monitor.
	eng := monitor.New(dict)
	eng.Logger = logger
	eng.MaxJobs = *maxJobs
	if *maxIngestMB < 0 {
		eng.MaxIngestBytes = -1
	} else if *maxIngestMB > 0 {
		eng.MaxIngestBytes = int64(*maxIngestMB) << 20
	}
	if *maxIngestBatches != 0 {
		eng.MaxIngestBatches = *maxIngestBatches
	}
	srv := server.NewEngine(eng)

	// The observability plane: one registry carries the engine, tsdb,
	// and HTTP families; the main listener serves it at GET /metrics
	// and -ops-addr (below) re-serves it off the request path. The
	// tracer seed comes from crypto/rand (constant fallback) — never
	// from the wall clock, which stays out of global state.
	reg := obs.NewRegistry()
	eng.EnableMetrics(reg)
	seed := uint64(0x9E3779B97F4A7C15)
	var sb [8]byte
	if _, err := crand.Read(sb[:]); err == nil {
		seed = binary.LittleEndian.Uint64(sb[:])
	}
	srv.EnableObs(reg, seed)

	if *dataDir != "" {
		opts := monitor.StoreOptions{}
		if *diskLowMB > 0 {
			opts.DiskLowBytes = int64(*diskLowMB) << 20
		}
		if _, err := eng.OpenStore(*dataDir, opts); err != nil {
			if errors.Is(err, tsdb.ErrLocked) {
				// The flock is per-directory, so this is almost always a
				// second efdd pointed at the same -data-dir. Name the
				// condition plainly; the generic wrapped error reads like
				// corruption.
				return fmt.Errorf("data directory %s is locked by another efdd process (or one that did not exit); refusing to share a telemetry store", *dataDir)
			}
			// Recovery already retried transient I/O failures and
			// quarantined what it could not read; an error here means
			// the store truly cannot open.
			return fmt.Errorf("open telemetry store %s: recovery impossible: %w", *dataDir, err)
		}
		// The engine itself logged the store_recovery (and any
		// store_quarantine) event through eng.Logger. List every
		// quarantine artifact on disk — this run's and any earlier
		// one's — so an operator tailing the startup log knows exactly
		// which files hold the evidence and how much of it there is.
		for _, q := range quarantineFiles(*dataDir) {
			logger.Warn("quarantined file", "path", q.path, "bytes", q.size)
		}
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		eng.CloseStore()
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if onListen != nil {
		onListen(ln.Addr().String())
	}

	// The optional ops listener keeps scrapes, profiles, and debug
	// reads off the service listener (and off its timeouts): /metrics
	// for Prometheus, the full net/http/pprof surface, and the
	// slow-request ring.
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			eng.CloseStore()
			return fmt.Errorf("ops listener: %w", err)
		}
		opsMux := http.NewServeMux()
		opsMux.Handle("/metrics", reg.Handler())
		opsMux.HandleFunc("/debug/pprof/", pprof.Index)
		opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		opsMux.Handle("/v1/debug/slow", srv.DebugSlowHandler())
		opsSrv = &http.Server{Handler: opsMux, ReadHeaderTimeout: 5 * time.Second}
		logger.Info("ops listening", "addr", opsLn.Addr().String())
		go opsSrv.Serve(opsLn)
	}

	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Bound slow clients so a trickled header, a drip-fed body, or
		// an abandoned keep-alive cannot pin connection goroutines
		// forever. The read/write bounds are generous — a full batch
		// upload over a congested link fits in a minute — but finite.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var exitErr error
	select {
	case err := <-serveErr:
		// Unexpected listener failure: still fall through to the save
		// below — exiting without it would drop every online-learned
		// label, the very bug -save exists to fix.
		exitErr = fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// A shutdown timeout on a straggling connection is not fatal
		// to the save: SaveDictionary takes the dictionary read lock,
		// which excludes any in-flight Learn, so the snapshot is
		// consistent regardless.
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			exitErr = fmt.Errorf("shutdown: %w", err)
		} else {
			<-serveErr // Serve has returned http.ErrServerClosed
		}
	}
	if opsSrv != nil {
		// Ops requests are short (scrapes, profile pulls); an abrupt
		// close beats delaying the store flush behind a long profile.
		opsSrv.Close()
	}
	if eng.HasStore() {
		// Graceful-shutdown flush: pending finished executions land in
		// an immutable segment and the WAL is synced, so the next
		// start replays only still-running jobs.
		if err := eng.CloseStore(); err != nil {
			exitErr = errors.Join(exitErr, fmt.Errorf("close telemetry store: %w", err))
		} else {
			logger.Info("telemetry store flushed")
		}
	}
	if *savePath != "" {
		if err := saveDictionary(srv, *savePath); err != nil {
			// Join rather than replace: a failed save must not mask
			// the serve/shutdown error that took the daemon down.
			return errors.Join(exitErr, fmt.Errorf("save dictionary: %w", err))
		}
		logger.Info("dictionary saved", "path", *savePath)
	}
	return exitErr
}

// quarantineFile is one crash-recovery artifact in the data directory.
type quarantineFile struct {
	path string
	size int64
}

// quarantineFiles lists the store's quarantine artifacts: the torn-WAL
// tail (wal.quarantine) and checksum-failed segments (*.corrupt). Scan
// errors are swallowed — this is best-effort startup logging, and the
// store itself already opened successfully.
func quarantineFiles(dir string) []quarantineFile {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []quarantineFile
	for _, ent := range ents {
		name := ent.Name()
		if name != "wal.quarantine" && filepath.Ext(name) != ".corrupt" {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		out = append(out, quarantineFile{path: filepath.Join(dir, name), size: info.Size()})
	}
	return out
}

// saveDictionary writes the (possibly online-extended) dictionary
// atomically: to a temp file in the destination directory, then rename.
// The destination's existing file mode is preserved (CreateTemp's 0600
// would otherwise tighten a shared dictionary on every restart).
func saveDictionary(srv *server.Server, path string) error {
	mode := os.FileMode(0644)
	if st, err := os.Stat(path); err == nil {
		mode = st.Mode().Perm()
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".efdd-save-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := srv.SaveDictionary(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return err
	}
	// Sync before rename: without it a crash shortly after shutdown
	// could leave a truncated dictionary behind the rename — the very
	// durability -save promises.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Fsync the directory so the rename itself survives a crash; the
	// synced temp file alone does not make the new name durable.
	if dirf, err := os.Open(dir); err == nil {
		dirf.Sync()
		dirf.Close()
	}
	return nil
}
