package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

type flatSource struct {
	nodes int
	level float64
}

func (f flatSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f flatSource) NodeCount() int { return f.nodes }

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestGracefulShutdownSavesLearnedLabels exercises the daemon's
// headline bugfix end to end: start efdd with -save, teach it one new
// label online, deliver SIGTERM, and verify the re-saved dictionary
// contains the label after a reload.
func TestGracefulShutdownSavesLearnedLabels(t *testing.T) {
	dir := t.TempDir()
	dictPath := filepath.Join(dir, "dict.json")
	savePath := filepath.Join(dir, "saved.json")

	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(flatSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	f, err := os.Create(dictPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(),
			[]string{"-dict", dictPath, "-addr", "127.0.0.1:0", "-save", savePath},
			io.Discard, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening")
	}

	if resp := postJSON(t, base+"/v1/jobs", map[string]any{"job_id": "j1", "nodes": 2}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v", resp.Status)
	}
	var samples []map[string]any
	for sec := 0; sec <= 125; sec++ {
		for node := 0; node < 2; node++ {
			samples = append(samples, map[string]any{
				"metric": apps.HeadlineMetric, "node": node,
				"offset_s": float64(sec), "value": 9000.0,
			})
		}
	}
	if resp := postJSON(t, base+"/v1/samples", map[string]any{"job_id": "j1", "samples": samples}); resp.StatusCode != http.StatusOK {
		t.Fatalf("samples: %v", resp.Status)
	}
	if resp := postJSON(t, base+"/v1/jobs/j1/label", map[string]string{"app": "lammps", "input": "X"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("label: %v", resp.Status)
	}

	// The daemon catches SIGTERM via signal.NotifyContext, so signalling
	// our own process exercises the real shutdown path.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	sf, err := os.Open(savePath)
	if err != nil {
		t.Fatalf("saved dictionary missing: %v", err)
	}
	defer sf.Close()
	reloaded, err := core.Load(sf)
	if err != nil {
		t.Fatal(err)
	}
	if got := reloaded.Recognize(flatSource{nodes: 2, level: 9000}).Top(); got != "lammps" {
		t.Errorf("reloaded dictionary recognizes %q, want lammps", got)
	}
	if got := reloaded.Recognize(flatSource{nodes: 2, level: 6000}).Top(); got != "ft" {
		t.Errorf("reloaded dictionary lost original label: got %q", got)
	}
}

// TestRestartRecoversIngestedJobs is the storage-backed end-to-end
// restart test: ingest samples into a -data-dir daemon, SIGTERM it,
// restart over the same directory, and require the recognition state
// of the recovered job to be byte-identical to an uninterrupted
// in-memory daemon fed the same samples.
func TestRestartRecoversIngestedJobs(t *testing.T) {
	dir := t.TempDir()
	dictPath := filepath.Join(dir, "dict.json")
	dataDir := filepath.Join(dir, "store")

	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(flatSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	f, err := os.Create(dictPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	start := func(ctx context.Context, dataDir string) (base string, done chan error) {
		t.Helper()
		addrCh := make(chan string, 1)
		done = make(chan error, 1)
		args := []string{"-dict", dictPath, "-addr", "127.0.0.1:0"}
		if dataDir != "" {
			args = append(args, "-data-dir", dataDir)
		}
		go func() {
			done <- run(ctx, args, io.Discard, func(a string) { addrCh <- a })
		}()
		select {
		case a := <-addrCh:
			return "http://" + a, done
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not start listening")
		}
		return "", nil
	}

	feed := func(base, jobID string, from, to int) {
		t.Helper()
		var samples []map[string]any
		for sec := from; sec <= to; sec++ {
			for node := 0; node < 2; node++ {
				samples = append(samples, map[string]any{
					"metric": apps.HeadlineMetric, "node": node,
					"offset_s": float64(sec), "value": 6000.0,
				})
			}
		}
		if resp := postJSON(t, base+"/v1/samples", map[string]any{"job_id": jobID, "samples": samples}); resp.StatusCode != http.StatusOK {
			t.Fatalf("samples: %v", resp.Status)
		}
	}
	jobState := func(base, jobID string) string {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job state: %v %s", resp.Status, b)
		}
		return string(b)
	}

	// Daemon 1: storage-backed; partial window ingested, then SIGTERM.
	base1, done1 := start(context.Background(), dataDir)
	if resp := postJSON(t, base1+"/v1/jobs", map[string]any{"job_id": "j1", "nodes": 2}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v", resp.Status)
	}
	feed(base1, "j1", 0, 90)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done1:
		if err != nil {
			t.Fatalf("daemon 1 exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon 1 did not shut down after SIGTERM")
	}

	// Reference: an uninterrupted in-memory daemon fed identically.
	refCtx, refCancel := context.WithCancel(context.Background())
	baseRef, doneRef := start(refCtx, "")
	if resp := postJSON(t, baseRef+"/v1/jobs", map[string]any{"job_id": "j1", "nodes": 2}); resp.StatusCode != http.StatusCreated {
		t.Fatal("register ref")
	}
	feed(baseRef, "j1", 0, 90)
	want := jobState(baseRef, "j1")

	// Daemon 2: same data dir; the job must be back, bit-identical.
	ctx2, cancel2 := context.WithCancel(context.Background())
	base2, done2 := start(ctx2, dataDir)
	if got := jobState(base2, "j1"); got != want {
		t.Errorf("recovered recognition state differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The recovered job keeps streaming: complete the window on both
	// daemons and compare the final recognition too.
	feed(base2, "j1", 91, 125)
	feed(baseRef, "j1", 91, 125)
	got, wantFinal := jobState(base2, "j1"), jobState(baseRef, "j1")
	if got != wantFinal {
		t.Errorf("final state differs:\n got %s\nwant %s", got, wantFinal)
	}
	var parsed struct {
		Top string `json:"top"`
	}
	if err := json.Unmarshal([]byte(got), &parsed); err != nil || parsed.Top != "ft" {
		t.Errorf("recovered job not recognized: %s (err %v)", got, err)
	}

	refCancel()
	cancel2()
	for _, ch := range []chan error{doneRef, done2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// TestLockedDataDir: pointing a second efdd at a live data directory
// must fail fast with a message that names the real condition (another
// process holds the flock), not a generic store-open error.
func TestLockedDataDir(t *testing.T) {
	dir := t.TempDir()
	dictPath := writeTestDict(t, dir)
	dataDir := filepath.Join(dir, "store")

	st, err := tsdb.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	err = run(context.Background(),
		[]string{"-dict", dictPath, "-addr", "127.0.0.1:0", "-data-dir", dataDir},
		io.Discard, nil)
	if err == nil {
		t.Fatal("second daemon on a locked data dir: want error")
	}
	if !strings.Contains(err.Error(), "locked by another efdd process") {
		t.Errorf("lock-conflict error %q does not name the condition", err)
	}
}

// TestQuarantineStartupLog: quarantine artifacts in the data directory
// are listed at startup, each with its full path and byte count.
func TestQuarantineStartupLog(t *testing.T) {
	dir := t.TempDir()
	dictPath := writeTestDict(t, dir)
	dataDir := filepath.Join(dir, "store")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Plant artifacts from a hypothetical earlier recovery: the store
	// ignores both names, the startup log must not.
	qPath := filepath.Join(dataDir, "wal.quarantine")
	cPath := filepath.Join(dataDir, "000042.seg.corrupt")
	if err := os.WriteFile(qPath, make([]byte, 123), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cPath, make([]byte, 456), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	started := make(chan string, 1)
	go func() {
		done <- run(ctx, []string{"-dict", dictPath, "-addr", "127.0.0.1:0", "-data-dir", dataDir},
			&out, func(a string) { started <- a })
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	log := out.String()
	for _, want := range []string{
		`msg="quarantined file" path=` + qPath + " bytes=123",
		`msg="quarantined file" path=` + cPath + " bytes=456",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("startup log missing %q:\n%s", want, log)
		}
	}
}

// writeTestDict saves a two-node single-label dictionary into dir and
// returns its path.
func writeTestDict(t *testing.T, dir string) string {
	t.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(flatSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	path := filepath.Join(dir, "dict.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// TestRunBadFlagsAndMissingDict covers the error paths of run.
func TestRunBadFlagsAndMissingDict(t *testing.T) {
	if err := run(context.Background(), []string{"-dict", filepath.Join(t.TempDir(), "nope.json")}, io.Discard, nil); err == nil {
		t.Error("missing dictionary: want error")
	}
	var discard bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &discard, nil); err == nil {
		t.Error("bogus flag: want error")
	}
}

// TestDiskLowWatermarkFlag: -disk-low-mb reaches the store (the
// health disk section reports the watermark) and the startup log
// carries the recovery duration.
func TestDiskLowWatermarkFlag(t *testing.T) {
	dir := t.TempDir()
	dictPath := writeTestDict(t, dir)
	dataDir := filepath.Join(dir, "store")

	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	started := make(chan string, 1)
	go func() {
		done <- run(ctx, []string{"-dict", dictPath, "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-disk-low-mb", "8"},
			&out, func(a string) { started <- a })
	}()
	var base string
	select {
	case a := <-started:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}

	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Disk   *struct {
			FreeBytes         int64 `json:"free_bytes"`
			LowWatermarkBytes int64 `json:"low_watermark_bytes"`
			ReadOnly          bool  `json:"read_only"`
		} `json:"disk"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "healthy" || h.Disk == nil {
		t.Fatalf("health = %+v, want healthy with a disk section", h)
	}
	if h.Disk.LowWatermarkBytes != 8<<20 || h.Disk.ReadOnly {
		t.Fatalf("disk section = %+v, want low_watermark_bytes %d", h.Disk, 8<<20)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	log := out.String()
	if !strings.Contains(log, "telemetry store recovered") || !strings.Contains(log, "duration_ms=") {
		t.Errorf("startup log missing store recovery event with duration:\n%s", log)
	}
}
