package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a Writer safe to read while the daemon goroutine logs.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMetricsAndOpsListener boots a daemon with -ops-addr and checks
// the full observability surface: Prometheus exposition and trace
// headers on the service listener, plus /metrics, pprof, and the
// slow-request ring on the ops listener.
func TestMetricsAndOpsListener(t *testing.T) {
	dir := t.TempDir()
	dictPath := writeTestDict(t, dir)

	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuf{}
	done := make(chan error, 1)
	started := make(chan string, 1)
	go func() {
		done <- run(ctx,
			[]string{"-dict", dictPath, "-addr", "127.0.0.1:0", "-ops-addr", "127.0.0.1:0"},
			out, func(a string) { started <- a })
	}()
	var base string
	select {
	case a := <-started:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	defer func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}()

	// The ops address appears in the log before onListen fires (the
	// ops listener is brought up first), so it is already there.
	m := regexp.MustCompile(`ops listening" addr=(\S+)`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no ops listener address in log:\n%s", out.String())
	}
	opsBase := "http://" + m[1]

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Service listener: a health request carries a trace header, and
	// /metrics serves the exposition with all layers' families.
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if tr := resp.Header.Get("X-Efd-Trace"); len(tr) != 16 {
		t.Errorf("X-Efd-Trace = %q, want 16 hex chars", tr)
	}
	code, body := get(base + "/metrics")
	if code != http.StatusOK {
		t.Fatalf("service /metrics = %d", code)
	}
	for _, fam := range []string{
		"# TYPE efd_http_requests_total counter",
		"# TYPE efd_http_request_seconds histogram",
		"# TYPE efd_engine_samples_accepted_total counter",
		"# TYPE efd_engine_live_jobs gauge",
		"# TYPE efd_tsdb_wal_append_seconds histogram",
		"# TYPE efd_dict_keys gauge",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("service /metrics missing %q", fam)
		}
	}

	// Ops listener: same exposition, plus pprof and the slow ring.
	code, opsBody := get(opsBase + "/metrics")
	if code != http.StatusOK || !strings.Contains(opsBody, "efd_engine_live_jobs") {
		t.Errorf("ops /metrics = %d, engine family present = %v", code, strings.Contains(opsBody, "efd_engine_live_jobs"))
	}
	if code, _ := get(opsBase + "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("ops pprof cmdline = %d", code)
	}
	code, slowBody := get(opsBase + "/v1/debug/slow")
	if code != http.StatusOK {
		t.Errorf("ops /v1/debug/slow = %d", code)
	}
	var slow struct {
		Slowest []struct {
			Route string `json:"route"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(slowBody), &slow); err != nil {
		t.Fatalf("slow body not JSON: %v\n%s", err, slowBody)
	}
	found := false
	for _, e := range slow.Slowest {
		if e.Route == "/v1/health" {
			found = true
		}
	}
	if !found {
		t.Errorf("slow ring has no /v1/health entry: %+v", slow.Slowest)
	}
}

// TestLogFormatJSON: every line the daemon writes with -log-format
// json is a JSON object with a msg field.
func TestLogFormatJSON(t *testing.T) {
	dir := t.TempDir()
	dictPath := writeTestDict(t, dir)

	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuf{}
	done := make(chan error, 1)
	started := make(chan string, 1)
	go func() {
		done <- run(ctx, []string{"-dict", dictPath, "-addr", "127.0.0.1:0", "-log-format", "json"},
			out, func(a string) { started <- a })
	}()
	select {
	case <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	sc := bufio.NewScanner(strings.NewReader(out.String()))
	lines := 0
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		lines++
		var rec struct {
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Msg == "" {
			t.Errorf("log line is not structured JSON: %q (err %v)", sc.Text(), err)
		}
	}
	if lines < 3 {
		t.Errorf("expected at least load/listen/shutdown events, got %d lines:\n%s", lines, out.String())
	}
}

// TestBadLogFlags: unknown level or format fail fast, before the
// daemon touches the dictionary or binds a port.
func TestBadLogFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-log-level", "noisy"}, io.Discard, nil); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Errorf("bad -log-level error = %v", err)
	}
	if err := run(context.Background(), []string{"-log-format", "xml"}, io.Discard, nil); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Errorf("bad -log-format error = %v", err)
	}
}
