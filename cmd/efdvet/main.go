// Command efdvet runs the repo's custom static-analysis suite (see
// internal/analysis and LINTS.md) over the given package patterns and
// fails the build on unsuppressed findings.
//
// Usage:
//
//	efdvet [-json] [-list] [-api-golden] [patterns ...]
//
// Patterns are module-relative ("./...", "./internal/tsdb",
// "./efd/..."); the default is "./...". Output is one finding per
// line, sorted by (file, line, col, rule) across all packages so CI
// diffs of lint output are stable run-to-run:
//
//	file:line:col: [rule] message
//
// -api-golden regenerates the locked public-API surface goldens for
// the pinned packages (see the apilock rule in LINTS.md) instead of
// linting — the deliberate step after an intended API change.
//
// In text mode the driver also reports the call-graph construction
// cost on stderr, so regressions in analysis cost show up in `make
// lint` logs.
//
// Exit codes are distinct so CI failures are diagnosable at a glance:
//
//	0  the tree is clean (no unsuppressed findings)
//	1  findings (or stale/malformed //efdvet:ignore suppressions)
//	2  load failure — a package failed to parse or typecheck, so the
//	   analyzers did not run; "exit 1" always means real findings
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitLoadFail = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("efdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	apiGolden := fs.Bool("api-golden", false, "regenerate the locked public-API goldens for the pinned packages and exit")
	if err := fs.Parse(args); err != nil {
		return exitLoadFail
	}
	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "efdvet: load error: %v\n", err)
		return exitLoadFail
	}
	patterns := fs.Args()
	if *apiGolden && len(patterns) == 0 {
		// Regeneration needs exactly the pinned packages; loading
		// them directly keeps it fast and independent of tree state
		// elsewhere.
		for _, rel := range analysis.APIPinnedPackages {
			patterns = append(patterns, "./"+rel)
		}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		// A load failure is not a lint verdict: the tree did not
		// typecheck (or a pattern matched nothing), so no analyzer
		// ran. Keep the message and the exit code distinct from
		// findings so CI logs answer "dirty or broken?" directly.
		var le *analysis.LoadError
		if errors.As(err, &le) {
			fmt.Fprintf(stderr, "efdvet: load error (analyzers did not run): %v\n", le)
		} else {
			fmt.Fprintf(stderr, "efdvet: load error (analyzers did not run): %v\n", err)
		}
		return exitLoadFail
	}
	if *apiGolden {
		written, err := analysis.WriteAPIGoldens(pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "efdvet: api-golden: %v\n", err)
			return exitLoadFail
		}
		for _, w := range written {
			fmt.Fprintf(stdout, "wrote %s\n", w)
		}
		return exitClean
	}
	mod := analysis.NewModule(pkgs)
	if !*jsonOut {
		// The call graph is the costly shared construction; its build
		// time in every `make lint` log makes analysis-cost
		// regressions visible the PR they land.
		g := mod.Graph()
		fmt.Fprintf(stderr, "efdvet: callgraph: %d nodes, %d edges, built in %s\n",
			g.NumNodes(), g.NumEdges(), g.BuildTime.Round(time.Millisecond))
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.Suppress(pkg, mod.Run(pkg, analysis.All))...)
	}
	relativize(diags)
	// One canonical order across packages: (file, line, col, rule) on
	// the paths as printed, so successive runs diff clean in CI.
	analysis.SortDiagnostics(diags)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "efdvet: %v\n", err)
			return exitLoadFail
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "efdvet: %d finding(s)\n", len(diags))
		}
		return exitFindings
	}
	return exitClean
}

// relativize rewrites absolute file paths relative to the working
// directory when that shortens them — the form editors and CI logs
// link.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && len(rel) < len(diags[i].File) {
			diags[i].File = rel
		}
	}
}
