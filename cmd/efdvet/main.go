// Command efdvet runs the repo's custom static-analysis suite (see
// internal/analysis and LINTS.md) over the given package patterns and
// fails the build on unsuppressed findings.
//
// Usage:
//
//	efdvet [-json] [-list] [patterns ...]
//
// Patterns are module-relative ("./...", "./internal/tsdb",
// "./efd/..."); the default is "./...". Output is one finding per
// line:
//
//	file:line:col: [rule] message
//
// Exit codes are distinct so CI failures are diagnosable at a glance:
//
//	0  the tree is clean (no unsuppressed findings)
//	1  findings (or stale/malformed //efdvet:ignore suppressions)
//	2  load failure — a package failed to parse or typecheck, so the
//	   analyzers did not run; "exit 1" always means real findings
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitLoadFail = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("efdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return exitLoadFail
	}
	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "efdvet: load error: %v\n", err)
		return exitLoadFail
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		// A load failure is not a lint verdict: the tree did not
		// typecheck (or a pattern matched nothing), so no analyzer
		// ran. Keep the message and the exit code distinct from
		// findings so CI logs answer "dirty or broken?" directly.
		var le *analysis.LoadError
		if errors.As(err, &le) {
			fmt.Fprintf(stderr, "efdvet: load error (analyzers did not run): %v\n", le)
		} else {
			fmt.Fprintf(stderr, "efdvet: load error (analyzers did not run): %v\n", err)
		}
		return exitLoadFail
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.Suppress(pkg, analysis.Run(pkg, analysis.All))...)
	}
	relativize(diags)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "efdvet: %v\n", err)
			return exitLoadFail
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "efdvet: %d finding(s)\n", len(diags))
		}
		return exitFindings
	}
	return exitClean
}

// relativize rewrites absolute file paths relative to the working
// directory when that shortens them — the form editors and CI logs
// link.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && len(rel) < len(diags[i].File) {
			diags[i].File = rel
		}
	}
}
