package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a throwaway module so the driver's exit codes
// can be exercised against trees in known states.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module fixturedriver\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir string, args ...string) (int, string) {
	t.Helper()
	t.Chdir(dir)
	out, err := os.CreateTemp(t.TempDir(), "efdvet-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, out)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Add adds.\nfunc Add(x, y int) int { return x + y }\n",
	})
	code, out := runIn(t, dir)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitClean, out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"os\"\n\n// Quit exits from a library.\nfunc Quit() { os.Exit(1) }\n",
	})
	code, out := runIn(t, dir)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitFindings, out)
	}
	if !strings.Contains(out, "[noexit]") {
		t.Fatalf("output missing the noexit finding:\n%s", out)
	}
}

// TestLoadFailureExitTwo: a tree that does not typecheck means the
// analyzers never ran — a distinct exit code and message, so CI logs
// answer "dirty or broken?" directly.
func TestLoadFailureExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc f() int { return undefined }\n",
	})
	code, out := runIn(t, dir)
	if code != exitLoadFail {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitLoadFail, out)
	}
	if !strings.Contains(out, "analyzers did not run") {
		t.Fatalf("load-failure message missing:\n%s", out)
	}
}

// TestBadPatternExitTwo: a pattern matching nothing is a load
// failure, not a clean run.
func TestBadPatternExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Add adds.\nfunc Add(x, y int) int { return x + y }\n",
	})
	code, out := runIn(t, dir, "./nosuchdir")
	if code != exitLoadFail {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitLoadFail, out)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"os\"\n\n// Quit exits from a library.\nfunc Quit() { os.Exit(1) }\n",
	})
	code, out := runIn(t, dir, "-json")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitFindings, out)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Rule != "noexit" {
		t.Fatalf("diags = %+v, want one noexit finding", diags)
	}
}
