package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a throwaway module so the driver's exit codes
// can be exercised against trees in known states.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module fixturedriver\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir string, args ...string) (int, string) {
	t.Helper()
	t.Chdir(dir)
	out, err := os.CreateTemp(t.TempDir(), "efdvet-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, out)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestCleanTreeExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Add adds.\nfunc Add(x, y int) int { return x + y }\n",
	})
	code, out := runIn(t, dir)
	if code != exitClean {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitClean, out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"os\"\n\n// Quit exits from a library.\nfunc Quit() { os.Exit(1) }\n",
	})
	code, out := runIn(t, dir)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitFindings, out)
	}
	if !strings.Contains(out, "[noexit]") {
		t.Fatalf("output missing the noexit finding:\n%s", out)
	}
}

// TestLoadFailureExitTwo: a tree that does not typecheck means the
// analyzers never ran — a distinct exit code and message, so CI logs
// answer "dirty or broken?" directly.
func TestLoadFailureExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc f() int { return undefined }\n",
	})
	code, out := runIn(t, dir)
	if code != exitLoadFail {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitLoadFail, out)
	}
	if !strings.Contains(out, "analyzers did not run") {
		t.Fatalf("load-failure message missing:\n%s", out)
	}
}

// TestBadPatternExitTwo: a pattern matching nothing is a load
// failure, not a clean run.
func TestBadPatternExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Add adds.\nfunc Add(x, y int) int { return x + y }\n",
	})
	code, out := runIn(t, dir, "./nosuchdir")
	if code != exitLoadFail {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitLoadFail, out)
	}
}

// TestFindingsSortedAcrossPackages pins the one canonical output
// order: (file, line, col, rule) on the printed paths, globally
// across packages — not per-package emission order — so CI diffs of
// lint output are stable run-to-run.
func TestFindingsSortedAcrossPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"aa/aa.go": "package aa\n\nimport \"os\"\n\n// Quit exits from a library.\nfunc Quit() { os.Exit(1) }\n\n// Die panics on an error value.\nfunc Die(err error) { panic(err) }\n",
		"zb/zb.go": "package zb\n\nimport \"os\"\n\n// Quit exits from a library.\nfunc Quit() { os.Exit(1) }\n",
	})
	code, out := runIn(t, dir)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitFindings, out)
	}
	var findings []string
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "efdvet:") {
			findings = append(findings, line)
		}
	}
	if len(findings) != 3 {
		t.Fatalf("want 3 findings, got %d:\n%s", len(findings), out)
	}
	for i := 1; i < len(findings); i++ {
		if findings[i-1] >= findings[i] {
			t.Fatalf("findings out of (file, line, col, rule) order:\n%s", out)
		}
	}
	if !strings.HasPrefix(findings[0], filepath.Join("aa", "aa.go")) ||
		!strings.HasPrefix(findings[2], filepath.Join("zb", "zb.go")) {
		t.Fatalf("findings not grouped by file:\n%s", out)
	}
}

// TestCallGraphCostReported: text mode surfaces the shared call-graph
// construction cost on stderr, so analysis-cost regressions show up
// in make lint logs.
func TestCallGraphCostReported(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Add adds.\nfunc Add(x, y int) int { return x + y }\n",
	})
	_, out := runIn(t, dir)
	if !strings.Contains(out, "efdvet: callgraph:") || !strings.Contains(out, "edges, built in") {
		t.Fatalf("text mode missing the callgraph build report:\n%s", out)
	}
}

func TestListIncludesInterproceduralRules(t *testing.T) {
	dir := writeModule(t, nil)
	code, out := runIn(t, dir, "-list")
	if code != exitClean {
		t.Fatalf("-list exit = %d\n%s", code, out)
	}
	for _, rule := range []string{"hotpath", "atomicfield", "apilock"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list missing %q:\n%s", rule, out)
		}
	}
}

// TestAPIGoldenRoundTrip is the apilock acceptance loop: a pinned
// package with no golden fails lint; -api-golden writes it; lint goes
// clean; an exported-signature edit fails lint with a drift finding;
// regenerating makes it clean again.
func TestAPIGoldenRoundTrip(t *testing.T) {
	saved := analysis.APIPinnedPackages
	analysis.APIPinnedPackages = []string{"a"}
	t.Cleanup(func() { analysis.APIPinnedPackages = saved })
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Add adds.\nfunc Add(x, y int) int { return x + y }\n",
	})

	code, out := runIn(t, dir)
	if code != exitFindings || !strings.Contains(out, "[apilock]") || !strings.Contains(out, "has no golden") {
		t.Fatalf("missing golden: exit = %d, want a [apilock] no-golden finding\n%s", code, out)
	}

	code, out = runIn(t, dir, "-api-golden")
	if code != exitClean || !strings.Contains(out, "wrote internal/analysis/testdata/api/a.golden") {
		t.Fatalf("-api-golden: exit = %d\n%s", code, out)
	}

	if code, out = runIn(t, dir); code != exitClean {
		t.Fatalf("after regeneration: exit = %d, want clean\n%s", code, out)
	}

	src := "package a\n\n// Add adds three.\nfunc Add(x, y, z int) int { return x + y + z }\n"
	if err := os.WriteFile(filepath.Join(dir, "a", "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = runIn(t, dir)
	if code != exitFindings || !strings.Contains(out, "drifted from its golden") {
		t.Fatalf("after signature edit: exit = %d, want a drift finding\n%s", code, out)
	}

	if code, out = runIn(t, dir, "-api-golden"); code != exitClean {
		t.Fatalf("second -api-golden: exit = %d\n%s", code, out)
	}
	if code, out = runIn(t, dir); code != exitClean {
		t.Fatalf("after second regeneration: exit = %d, want clean\n%s", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"os\"\n\n// Quit exits from a library.\nfunc Quit() { os.Exit(1) }\n",
	})
	code, out := runIn(t, dir, "-json")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\noutput:\n%s", code, exitFindings, out)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Rule != "noexit" {
		t.Fatalf("diags = %+v, want one noexit finding", diags)
	}
}
