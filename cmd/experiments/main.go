// Command experiments regenerates every table and figure of the
// paper's evaluation, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments -table 1            # rounding-depth mechanism
//	experiments -table 2            # dataset composition
//	experiments -table 3            # per-metric F-scores
//	experiments -table 4            # example dictionary
//	experiments -figure 2           # EFD vs Taxonomist, 5 protocols
//	experiments -figure 2 -taxonomist=false   # EFD only (much faster)
//	experiments -ablation depth|interval|voting|combo|growth|latency
//	experiments -all                # everything above
//	experiments -quick              # smaller dataset and forest
//
// The dataset is regenerated from the given seed on every run; with the
// same seed all numbers are bit-reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/taxonomist"
)

func main() {
	var (
		table      = flag.Int("table", 0, "reproduce a paper table (1-4)")
		figure     = flag.Int("figure", 0, "reproduce a paper figure (1-2)")
		ablation   = flag.String("ablation", "", "run an ablation: depth|interval|voting|combo|growth|latency")
		all        = flag.Bool("all", false, "reproduce everything")
		quick      = flag.Bool("quick", false, "smaller dataset and forest for a fast pass")
		taxo       = flag.Bool("taxonomist", true, "include the Taxonomist baseline in Figure 2")
		seed       = flag.Int64("seed", 1, "dataset generation seed")
		table3Rows = flag.Int("table3-rows", 13, "rows to print for Table 3 (0 = all)")
	)
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *table == 1 || *all {
		experiments.RenderTable1(os.Stdout)
		fmt.Println()
		if !*all && *table == 1 {
			return
		}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating dataset (seed %d)...\n", *seed)
	ds := generate(*quick, *seed)
	fmt.Fprintf(os.Stderr, "generated %d executions in %v\n", ds.Len(), time.Since(start).Round(time.Millisecond))

	h := experiments.NewHarness(ds)
	if *quick {
		h.Folds = 3
	}

	if *table == 2 || *all {
		experiments.RenderTable2(os.Stdout, ds)
		fmt.Println()
	}
	if *figure == 1 || *all {
		renderFigure1(ds)
	}
	if *figure == 2 || *all {
		runFigure2(h, *taxo, *quick)
	}
	if *table == 3 || *all {
		runTable3(h, *table3Rows)
	}
	if *table == 4 || *all {
		runTable4(ds)
	}
	if *ablation != "" {
		runAblation(h, *ablation)
	} else if *all {
		for _, a := range []string{"depth", "interval", "voting", "combo", "growth", "latency"} {
			runAblation(h, a)
		}
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
}

func generate(quick bool, seed int64) *dataset.Dataset {
	cfg := dataset.DefaultGenConfig()
	cfg.Seed = seed
	if quick {
		cfg.Repeats = 10
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	return ds
}

// renderFigure1 walks the quickstart pipeline, which is what Figure 1
// of the paper depicts: learn → prune → lookup.
func renderFigure1(ds *dataset.Dataset) {
	fmt.Println("Figure 1: the EFD mechanism (learn -> prune -> lookup)")
	d, err := experiments.ExampleDictionary(ds)
	if err != nil {
		fatal(err)
	}
	st := d.Stats()
	fmt.Printf("  (1) learned %d labels into %d pruned keys (depth %d)\n",
		st.Labels, st.Keys, st.Depth)
	fmt.Printf("  (2) %d keys are application-exclusive, %d are collisions\n",
		st.Exclusive, st.Collisions)
	fmt.Println("  (3) lookups return the most-matched application (see -table 4)")
	fmt.Println()
}

func runFigure2(h *experiments.Harness, withTaxo, quick bool) {
	if withTaxo {
		forest := taxonomist.DefaultForestConfig()
		if quick {
			forest.Trees = 25
			forest.Tree.MinLeaf = 2
		} else {
			forest.Trees = 50
		}
		h.Taxo = &experiments.TaxoConfig{Forest: forest}
	}
	scores, err := h.RunAll()
	if err != nil {
		fatal(err)
	}
	experiments.RenderFigure2(os.Stdout, scores)
	for _, s := range scores {
		experiments.RenderPerDimension(os.Stdout, s)
	}
	fmt.Println()
	h.Taxo = nil
}

func runTable3(h *experiments.Harness, rows int) {
	sweep, err := h.MetricSweep(nil)
	if err != nil {
		fatal(err)
	}
	experiments.RenderTable3(os.Stdout, sweep, rows)
	fmt.Println()
}

func runTable4(ds *dataset.Dataset) {
	fmt.Println("Table 4: Example Execution Fingerprint Dictionary (depth 2)")
	d, err := experiments.ExampleDictionary(ds)
	if err != nil {
		fatal(err)
	}
	if err := d.Dump(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func runAblation(h *experiments.Harness, name string) {
	switch name {
	case "depth":
		scores, err := h.DepthAblation(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation: rounding depth (normal fold, fixed depth)")
		for d := 1; d <= 6; d++ {
			fmt.Printf("  depth %d: F = %.3f\n", d, scores[d])
		}
	case "interval":
		scores, err := h.IntervalAblation(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation: fingerprint interval (normal fold)")
		printSorted(scores)
	case "voting":
		all, single, err := h.VotingAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation: per-node voting (normal fold)")
		fmt.Printf("  all nodes vote: F = %.3f\n", all)
		fmt.Printf("  node 0 only:    F = %.3f\n", single)
	case "combo":
		rows, err := h.ComboAblation(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation: metric combinations (voting vs joint keys)")
		for _, r := range rows {
			fmt.Printf("  %-28s normal=%.3f hardUnknown=%.3f\n",
				r.Name, r.NormalFold, r.HardUnknown)
		}
	case "growth":
		growth, err := h.DictionaryGrowth(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation: dictionary size vs rounding depth (pruning)")
		for d := 1; d <= 6; d++ {
			g := growth[d]
			fmt.Printf("  depth %d: %5d keys (%d exclusive, %d collisions)\n",
				d, g.Keys, g.Exclusive, g.Collisions)
		}
	case "latency":
		scores, err := h.LatencyAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation: answer latency (window position, normal fold)")
		printSorted(scores)
	default:
		fatal(fmt.Errorf("unknown ablation %q", name))
	}
	fmt.Println()
}

func printSorted(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s F = %.3f\n", k, m[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
