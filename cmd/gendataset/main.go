// Command gendataset generates the synthetic telemetry dataset — the
// stand-in for the Taxonomist artifact of the paper — and writes it as
// a summarized CSV consumable by cmd/efd and cmd/experiments.
//
// Usage:
//
//	gendataset -out dataset.csv                    # Table 2 primary grid
//	gendataset -nodes 32 -repeats 6 -out large.csv # secondary grid
//	gendataset -apps ft,mg,sp -repeats 5 -metrics nr_mapped_vmstat -out small.csv
//	gendataset -raw ft_X.csv                       # one execution's raw 1 Hz telemetry
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/ldms"
	"repro/internal/noise"
	"repro/internal/telemetry"
)

func main() {
	var (
		out     = flag.String("out", "", "output CSV path for the summarized dataset")
		nodes   = flag.Int("nodes", 4, "nodes per execution")
		repeats = flag.Int("repeats", 30, "executions per (application, input) pair")
		seed    = flag.Int64("seed", 1, "generation seed")
		appsCSV = flag.String("apps", "", "comma-separated application subset (default: all 11)")
		metsCSV = flag.String("metrics", "", "comma-separated metric subset (default: full catalog)")
		raw     = flag.String("raw", "", "write one execution's raw telemetry CSV to this path instead")
		rawApp  = flag.String("raw-app", "ft", "application for -raw")
		rawIn   = flag.String("raw-input", "X", "input size for -raw")
		check   = flag.Bool("check", false, "with -raw: read the written CSV back and verify the round-trip sample for sample")
	)
	flag.Parse()

	if *raw != "" {
		if err := writeRaw(*raw, *rawApp, apps.Input(*rawIn), *nodes, *seed, *check); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gendataset: -out or -raw is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := dataset.DefaultGenConfig()
	cfg.Cluster.Nodes = *nodes
	cfg.Repeats = *repeats
	cfg.Seed = *seed
	if *appsCSV != "" {
		cfg.Apps = strings.Split(*appsCSV, ",")
	}
	if *metsCSV != "" {
		cfg.Cluster.Metrics = strings.Split(*metsCSV, ",")
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := ds.SaveCSV(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d executions (%d labels, %d metrics, %d nodes each) to %s\n",
		ds.Len(), len(ds.Labels()), len(ds.Metrics()), *nodes, *out)
}

// writeRaw runs a single execution on the simulated cluster and dumps
// its full 1 Hz telemetry in the per-node CSV layout. With check set,
// it reads the file back through the parallel execution-CSV ingest and
// verifies the round-trip sample for sample.
func writeRaw(path, app string, in apps.Input, nodes int, seed int64, check bool) error {
	spec, ok := apps.Lookup(app)
	if !ok {
		return fmt.Errorf("unknown application %q", app)
	}
	sim, err := cluster.New(cluster.Config{Nodes: nodes, Noise: noise.DefaultProfile()})
	if err != nil {
		return err
	}
	ns, exec, err := sim.Run(spec, in, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ldms.WriteExecutionCSV(f, ns); err != nil {
		return err
	}
	fmt.Printf("wrote raw telemetry of %s_%s (%v, %d nodes, %d series) to %s\n",
		app, in, exec.Duration().Round(1e9), nodes, ns.NumSeries(), path)
	if check {
		if err := verifyRoundTrip(path, ns); err != nil {
			return err
		}
		fmt.Println("round-trip verified: every sample identical after write -> read")
	}
	return nil
}

// verifyRoundTrip re-reads the written execution CSV and compares every
// sample of every series against the in-memory telemetry.
func verifyRoundTrip(path string, want *telemetry.NodeSet) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	got, err := ldms.ReadExecutionCSV(f, 0)
	if err != nil {
		return fmt.Errorf("round-trip read: %w", err)
	}
	for _, node := range want.Nodes() {
		for _, m := range want.Metrics() {
			a, b := want.Get(node, m), got.Get(node, m)
			if b == nil {
				return fmt.Errorf("round-trip lost node %d metric %s", node, m)
			}
			if a.Len() != b.Len() {
				return fmt.Errorf("round-trip node %d metric %s: %d samples became %d",
					node, m, a.Len(), b.Len())
			}
			for i := 0; i < a.Len(); i++ {
				if a.At(i) != b.At(i) {
					return fmt.Errorf("round-trip node %d metric %s sample %d: %+v became %+v",
						node, m, i, a.At(i), b.At(i))
				}
			}
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendataset:", err)
	os.Exit(1)
}
