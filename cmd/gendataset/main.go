// Command gendataset generates the synthetic telemetry dataset — the
// stand-in for the Taxonomist artifact of the paper — and writes it as
// a summarized CSV consumable by cmd/efd and cmd/experiments.
//
// Usage:
//
//	gendataset -out dataset.csv                    # Table 2 primary grid
//	gendataset -nodes 32 -repeats 6 -out large.csv # secondary grid
//	gendataset -apps ft,mg,sp -repeats 5 -metrics nr_mapped_vmstat -out small.csv
//	gendataset -raw ft_X.csv                       # one execution's raw 1 Hz telemetry
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/ldms"
	"repro/internal/noise"
)

func main() {
	var (
		out     = flag.String("out", "", "output CSV path for the summarized dataset")
		nodes   = flag.Int("nodes", 4, "nodes per execution")
		repeats = flag.Int("repeats", 30, "executions per (application, input) pair")
		seed    = flag.Int64("seed", 1, "generation seed")
		appsCSV = flag.String("apps", "", "comma-separated application subset (default: all 11)")
		metsCSV = flag.String("metrics", "", "comma-separated metric subset (default: full catalog)")
		raw     = flag.String("raw", "", "write one execution's raw telemetry CSV to this path instead")
		rawApp  = flag.String("raw-app", "ft", "application for -raw")
		rawIn   = flag.String("raw-input", "X", "input size for -raw")
	)
	flag.Parse()

	if *raw != "" {
		if err := writeRaw(*raw, *rawApp, apps.Input(*rawIn), *nodes, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gendataset: -out or -raw is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := dataset.DefaultGenConfig()
	cfg.Cluster.Nodes = *nodes
	cfg.Repeats = *repeats
	cfg.Seed = *seed
	if *appsCSV != "" {
		cfg.Apps = strings.Split(*appsCSV, ",")
	}
	if *metsCSV != "" {
		cfg.Cluster.Metrics = strings.Split(*metsCSV, ",")
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := ds.SaveCSV(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d executions (%d labels, %d metrics, %d nodes each) to %s\n",
		ds.Len(), len(ds.Labels()), len(ds.Metrics()), *nodes, *out)
}

// writeRaw runs a single execution on the simulated cluster and dumps
// its full 1 Hz telemetry in the per-node CSV layout.
func writeRaw(path, app string, in apps.Input, nodes int, seed int64) error {
	spec, ok := apps.Lookup(app)
	if !ok {
		return fmt.Errorf("unknown application %q", app)
	}
	sim, err := cluster.New(cluster.Config{Nodes: nodes, Noise: noise.DefaultProfile()})
	if err != nil {
		return err
	}
	ns, exec, err := sim.Run(spec, in, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ldms.WriteExecutionCSV(f, ns); err != nil {
		return err
	}
	fmt.Printf("wrote raw telemetry of %s_%s (%v, %d nodes, %d series) to %s\n",
		app, in, exec.Duration().Round(1e9), nodes, ns.NumSeries(), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendataset:", err)
	os.Exit(1)
}
