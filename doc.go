// Package repro is the root of the EFD reproduction module. The public
// library API lives in package repro/efd; the benchmark harness in
// bench_test.go regenerates every table and figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results).
//
// The recognition hot path is allocation-free on a warmed dictionary
// (interned integer keys, dense vote accumulators, reused scratch — see
// the internal/core package comment), and training parallelizes its
// cross-validation grid with byte-identical results at any worker
// count. The HTTP monitoring service (internal/server, cmd/efdd)
// shards its job table and serves concurrent ingest and recognition
// against a shared dictionary (core.SharedDictionary: parallel
// readers, exclusive online learning) with graceful shutdown and
// dictionary re-save.
//
// The telemetry substrate underneath all of it is columnar
// (internal/telemetry): series store separate offset and value
// columns, regular 1 Hz series keep their offsets implicit in the
// index, and Seal builds double-double prefix power sums
// (Σx, Σx², Σx³, Σx⁴) that answer any window's mean or moments in
// O(1)/O(log n) regardless of window length — Summarize, metric
// sweeps and aligned recognition amortize to one pass per series.
// LDMS CSV ingest is byte-oriented (bufio line walking, in-place field
// splits, zero-copy float parsing, bulk columnar series construction),
// with multi-node files parsed concurrently on the internal/par pools,
// and the server's batch ingest feeds streams in columnar
// (metric, node) runs. Run `make bench` for the benchmark suite with
// allocation reporting (including the end-to-end ingest → summarize →
// fit pipeline and the ingest-reader comparison against the retained
// encoding/csv baseline), `make bench-compare` to benchstat two
// revisions, and `make check` for build + vet + tests under the race
// detector.
package repro
