// Package repro is the root of the EFD reproduction module. The public
// library API lives in package repro/efd; the benchmark harness in
// bench_test.go regenerates every table and figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results).
//
// The recognition hot path is allocation-free on a warmed dictionary
// (interned integer keys, dense vote accumulators, reused scratch — see
// the internal/core package comment), and training parallelizes its
// cross-validation grid with byte-identical results at any worker
// count. The HTTP monitoring service (internal/server, cmd/efdd)
// shards its job table and serves concurrent ingest and recognition
// against a shared dictionary (core.SharedDictionary: parallel
// readers, exclusive online learning) with graceful shutdown and
// dictionary re-save. Run `make bench` for the benchmark suite with
// allocation reporting (including the sharded-vs-serialized server
// throughput pair), `make check` for build + vet + tests under the
// race detector.
package repro
