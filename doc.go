// Package repro is the root of the EFD reproduction module. The public
// library API lives in package repro/efd; the benchmark harness in
// bench_test.go regenerates every table and figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results).
package repro
