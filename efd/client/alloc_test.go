package client

import (
	"context"
	"testing"
	"time"

	"repro/efd/monitor"
	"repro/internal/apps"
)

// allocRuns is one ingest batch: 2 nodes × 64 in-window samples.
func allocRuns() []monitor.RunBatch {
	runs := make([]monitor.Run, 2)
	for node := 0; node < 2; node++ {
		offs := make([]time.Duration, 64)
		vals := make([]float64, 64)
		for k := range offs {
			offs[k] = time.Duration(60+k%60) * time.Second
			vals[k] = 6000 + float64(k)
		}
		runs[node] = monitor.Run{Metric: apps.HeadlineMetric, Node: node, Offsets: offs, Values: vals}
	}
	return []monitor.RunBatch{{JobID: "alloc", Runs: runs}}
}

// TestClientIngestAllocRatio pins the headline property of the binary
// columnar encoding: client-to-stream, it allocates at least 2x less
// than the JSON path (BenchmarkClientIngest* in the root package
// report the absolute numbers — ~2.6x fewer allocs and ~7x less
// wall-clock on the 1-CPU container).
func TestClientIngestAllocRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement over live HTTP")
	}
	measure := func(mode BinaryMode) float64 {
		_, c := newFixture(t, WithBinaryIngest(mode))
		ctx := context.Background()
		if err := c.Register(ctx, "alloc", 2); err != nil {
			t.Fatal(err)
		}
		batches := allocRuns()
		// Warm: connection establishment, pool/arena sizing.
		for i := 0; i < 3; i++ {
			if _, err := c.IngestRuns(ctx, batches); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := c.IngestRuns(ctx, batches); err != nil {
				t.Fatal(err)
			}
		})
	}
	jsonAllocs := measure(BinaryNever)
	binAllocs := measure(BinaryAlways)
	t.Logf("allocs/op: json %.0f, binary %.0f (%.2fx)", jsonAllocs, binAllocs, jsonAllocs/binAllocs)
	if binAllocs*2 > jsonAllocs {
		t.Errorf("binary ingest allocates %.0f/op vs JSON %.0f/op — less than the pinned 2x margin", binAllocs, jsonAllocs)
	}
}
