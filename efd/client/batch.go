package client

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/efd/monitor"
)

// ErrWriterClosed is returned by Add and Flush after Close.
var ErrWriterClosed = errors.New("efd: batch writer closed")

// BatchWriterConfig tunes a BatchWriter. The zero value gets the
// documented defaults.
type BatchWriterConfig struct {
	// FlushSamples flushes the buffer the moment it holds this many
	// samples (across all jobs). Default 1024.
	FlushSamples int
	// FlushInterval flushes a non-empty buffer at least this often,
	// bounding the staleness of server-side state under a trickle of
	// samples. Default 1 s; negative disables the timer.
	FlushInterval time.Duration
	// MaxInFlight bounds the number of concurrent flush requests;
	// Add blocks (backpressure) rather than buffer further once the
	// bound is hit and the buffer is full again. Default 1 — which
	// also guarantees batches arrive at the server in flush order.
	MaxInFlight int
	// Columnar regroups each job's buffered samples into contiguous
	// (metric, node) runs and sends them with IngestRuns — the binary
	// encoding when the server speaks it. Samples keep their arrival
	// order within each (metric, node) run, exactly like the server's
	// own JSON regrouping.
	Columnar bool
	// OverloadRetries bounds the re-sends of a buffer the server shed
	// with 429 (or answered 503): up to this many retries after the
	// first attempt, honouring the server's Retry-After hint when given
	// and an exponential jittered backoff otherwise. Default 3;
	// negative disables overload retries.
	OverloadRetries int
	// OverloadBackoff is the base of the overload backoff schedule:
	// attempt n sleeps about base<<n, jittered ±25% so a fleet of
	// feeders shed together does not retry together. Default 500 ms.
	OverloadBackoff time.Duration
	// OnError, when set, receives asynchronous flush errors (timer-
	// and size-triggered flushes). Regardless, the first error is
	// retained and returned by the next Flush or Close.
	OnError func(error)
	// Context, when set, cancels in-flight requests on expiry. The
	// writer itself must still be Closed.
	Context context.Context
}

// BatchWriter buffers samples per job and flushes them as multi-job
// batches — by size, by interval, and on demand — with a bounded
// number of in-flight requests. All methods are safe for concurrent
// use. Always Close it: buffered samples are lost otherwise.
type BatchWriter struct {
	c   *Client
	cfg BatchWriterConfig

	// closeMu spans whole operations: Add and Flush hold it shared
	// for their full duration (including a dispatch blocked on the
	// semaphore), Close holds it exclusively while retiring the
	// writer — so once Close proceeds, no Add can still be on its way
	// to dispatching a buffer that Close's barrier would miss.
	closeMu sync.RWMutex

	mu      sync.Mutex
	byJob   map[string]int // job ID -> index into batches
	batches []monitor.Batch
	total   int
	err     error // first flush error, surfaced by Flush/Close
	closed  bool

	sem chan struct{} // in-flight bound; a send holds a slot for its duration
	// barrierMu serializes barrier(): two concurrent barriers would
	// each hoard part of the semaphore and deadlock waiting for the
	// other's slots.
	barrierMu sync.Mutex
	tickWG    sync.WaitGroup
	stop      chan struct{}
}

// NewBatchWriter returns a writer flushing through the client.
func (c *Client) NewBatchWriter(cfg BatchWriterConfig) *BatchWriter {
	if cfg.FlushSamples <= 0 {
		cfg.FlushSamples = 1024
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	w := &BatchWriter{
		c:     c,
		cfg:   cfg,
		byJob: make(map[string]int),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		stop:  make(chan struct{}),
	}
	if cfg.FlushInterval > 0 {
		w.tickWG.Add(1)
		go w.tick()
	}
	return w
}

// barrier waits for every in-flight send by acquiring (then
// releasing) all semaphore slots — a send holds its slot until it has
// recorded its outcome, so past the barrier every prior dispatch is
// fully settled. Concurrent barriers serialize on barrierMu: left to
// race, each would hoard part of the semaphore and deadlock waiting
// for the other's share.
func (w *BatchWriter) barrier() {
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	for i := 0; i < cap(w.sem); i++ {
		w.sem <- struct{}{}
	}
	for i := 0; i < cap(w.sem); i++ {
		<-w.sem
	}
}

// Add buffers one sample. When the buffer reaches FlushSamples the
// whole buffer is dispatched as one request; Add blocks only when
// MaxInFlight requests are already on the wire (backpressure).
func (w *BatchWriter) Add(jobID string, s monitor.Sample) error {
	w.closeMu.RLock()
	defer w.closeMu.RUnlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWriterClosed
	}
	i, ok := w.byJob[jobID]
	if !ok {
		i = len(w.batches)
		w.byJob[jobID] = i
		w.batches = append(w.batches, monitor.Batch{JobID: jobID})
	}
	w.batches[i].Samples = append(w.batches[i].Samples, s)
	w.total++
	if w.total < w.cfg.FlushSamples {
		w.mu.Unlock()
		return nil
	}
	batches := w.take()
	w.mu.Unlock()
	w.dispatch(batches)
	return nil
}

// take swaps the buffer out. Caller holds w.mu.
func (w *BatchWriter) take() []monitor.Batch {
	batches := w.batches
	w.batches = nil
	w.byJob = make(map[string]int)
	w.total = 0
	return batches
}

// dispatch sends one buffer asynchronously, bounded by MaxInFlight.
func (w *BatchWriter) dispatch(batches []monitor.Batch) {
	if len(batches) == 0 {
		return
	}
	w.sem <- struct{}{} // backpressure: bounded in-flight requests
	go func() {
		defer func() { <-w.sem }()
		if err := w.send(batches); err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.mu.Unlock()
			if w.cfg.OnError != nil {
				w.cfg.OnError(err)
			}
		}
	}()
}

// send posts one buffer, columnar or JSON, retrying when the server
// sheds it as overloaded.
func (w *BatchWriter) send(batches []monitor.Batch) error {
	return w.sendRetry(w.cfg.Context, batches)
}

// sendRetry posts one buffer, re-sending on overload (429/503) up to
// OverloadRetries times. Re-sending a shed batch cannot double-feed:
// the server rejected it before decoding anything.
func (w *BatchWriter) sendRetry(ctx context.Context, batches []monitor.Batch) error {
	retries := w.cfg.OverloadRetries
	if retries == 0 {
		retries = 3
	}
	base := w.cfg.OverloadBackoff
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		err := w.sendOnce(ctx, batches)
		if err == nil || attempt >= retries || !overloaded(err) {
			return err
		}
		select {
		case <-time.After(overloadDelay(err, base, attempt)):
		case <-ctx.Done():
			return err
		}
	}
}

// sendOnce posts one buffer.
func (w *BatchWriter) sendOnce(ctx context.Context, batches []monitor.Batch) error {
	if w.cfg.Columnar {
		_, err := w.c.IngestRuns(ctx, regroup(batches))
		return err
	}
	_, err := w.c.IngestBatches(ctx, batches)
	return err
}

// overloaded reports a shed request: the engine's admission gate (429)
// or a proxy in front of it (503). Both promise a later retry can
// succeed.
func overloaded(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.StatusCode == http.StatusTooManyRequests ||
		apiErr.StatusCode == http.StatusServiceUnavailable
}

// overloadDelay picks the sleep before re-sending a shed buffer: the
// server's Retry-After when it gave one, the exponential schedule
// otherwise — jittered ±25% either way, so feeders shed in the same
// instant spread their retries out.
func overloadDelay(err error, base time.Duration, attempt int) time.Duration {
	d := base << attempt
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
		d = apiErr.RetryAfter
	}
	return time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
}

// regroup converts buffered row-form samples into columnar runs,
// splitting at every (metric, node) change — the same contiguous-run
// rule the server's JSON path applies, so the resulting stream state
// is identical. Offsets round to the nanosecond grid exactly as the
// server rounds JSON offsets.
func regroup(batches []monitor.Batch) []monitor.RunBatch {
	out := make([]monitor.RunBatch, len(batches))
	for bi, b := range batches {
		rb := monitor.RunBatch{JobID: b.JobID}
		samples := b.Samples
		for i := 0; i < len(samples); {
			metric, node := samples[i].Metric, samples[i].Node
			run := monitor.Run{Metric: metric, Node: node}
			for ; i < len(samples) && samples[i].Metric == metric && samples[i].Node == node; i++ {
				run.Offsets = append(run.Offsets, time.Duration(math.Round(samples[i].OffsetS*float64(time.Second))))
				run.Values = append(run.Values, samples[i].Value)
			}
			rb.Runs = append(rb.Runs, run)
		}
		out[bi] = rb
	}
	return out
}

// tick is the interval flusher.
func (w *BatchWriter) tick() {
	defer w.tickWG.Done()
	t := time.NewTicker(w.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			batches := w.take()
			w.mu.Unlock()
			w.dispatch(batches)
		}
	}
}

// Flush synchronously sends everything buffered so far, waits for
// every in-flight asynchronous send, and returns the first error
// since the last Flush (including asynchronous ones).
func (w *BatchWriter) Flush(ctx context.Context) error {
	w.closeMu.RLock()
	defer w.closeMu.RUnlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWriterClosed
	}
	batches := w.take()
	w.mu.Unlock()
	var sendErr error
	if len(batches) > 0 {
		w.sem <- struct{}{}
		func() {
			defer func() { <-w.sem }()
			sendErr = w.sendRetry(ctx, batches)
		}()
	}
	w.barrier()
	w.mu.Lock()
	err := w.err
	w.err = nil
	w.mu.Unlock()
	if err == nil {
		err = sendErr
	}
	return err
}

// Close stops the interval flusher, sends the remaining buffer, waits
// for every in-flight request, and returns the first unreported
// error. The writer is unusable afterwards.
func (w *BatchWriter) Close() error {
	// Exclusive closeMu: every in-progress Add/Flush — including one
	// blocked in dispatch waiting for a semaphore slot — finishes
	// before the writer retires, so the barrier below really does see
	// every dispatched buffer.
	w.closeMu.Lock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.closeMu.Unlock()
		return ErrWriterClosed
	}
	w.closed = true
	batches := w.take()
	w.mu.Unlock()
	w.closeMu.Unlock()
	close(w.stop)
	w.tickWG.Wait()
	w.dispatch(batches)
	w.barrier()
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	return err
}
