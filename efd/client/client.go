// Package client is the typed Go SDK for the EFD monitoring service's
// v1 HTTP API (internal/server over efd/monitor; see API.md for the
// wire protocol).
//
// A Client covers the full surface — job lifecycle, single- and
// multi-job ingest, recognition queries, online labelling, and the
// storage endpoints — with connection reuse (one shared
// http.Transport), context support on every call, and automatic
// retry-with-backoff on transient failures of idempotent (read-only)
// endpoints.
//
// # Ingest
//
// Ingest/IngestBatches speak the JSON wire form. IngestRuns speaks
// the binary columnar encoding (application/x-efd-runs): columns are
// framed with the shared EFD wire codec, cost a few bytes per sample
// instead of a JSON object, and round-trip float64 values bit-exactly.
// Binary support is negotiated transparently: the first IngestRuns
// call tries the binary encoding and, if the server rejects the media
// type (an older deployment), falls back to JSON for the rest of the
// client's lifetime — callers never see the difference.
//
// For high-rate feeders, a BatchWriter buffers samples per job and
// flushes them as multi-job batches by size and by interval, with a
// bounded number of in-flight requests.
//
// # Failover
//
// NewMulti (or WithEndpoints) wires one client to several servers: a
// background prober watches each endpoint's GET /v1/health, every
// request routes to the job's home endpoint (deterministic FNV-1a
// affinity, so one job's lifecycle stays on one server), and
// idempotent reads walk forward to the next serving endpoint when the
// home one is down, read-only, or has a tripped breaker. Writes stay
// pinned to the home endpoint unless WithWriteFailover opts in to
// at-least-once re-homing. Close a multi-endpoint client to stop the
// prober.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/efd/monitor"
	"repro/internal/wire"
)

// ContentTypeRuns is the media type of the binary columnar ingest
// encoding (defined with the codec in internal/wire).
const ContentTypeRuns = wire.ContentTypeRuns

// BinaryMode selects the wire encoding of IngestRuns.
type BinaryMode int

const (
	// BinaryAuto (the default) tries the binary encoding and falls
	// back to JSON permanently if the server rejects it.
	BinaryAuto BinaryMode = iota
	// BinaryNever always sends JSON.
	BinaryNever
	// BinaryAlways sends binary and surfaces the server's rejection
	// instead of falling back.
	BinaryAlways
)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying http.Client (timeouts,
// custom transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the retry policy for idempotent endpoints: up to max
// retries after the first attempt, sleeping base, 2*base, 4*base, …
// between attempts. WithRetry(0, 0) disables retries.
func WithRetry(max int, base time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.backoffBase = max, base }
}

// WithBinaryIngest selects the IngestRuns wire encoding.
func WithBinaryIngest(mode BinaryMode) Option { return func(c *Client) { c.binary = mode } }

// Metrics is an optional set of instrumentation callbacks, one per
// client-side resilience event. Nil fields are skipped; non-nil ones
// must be safe for concurrent use (an atomic counter's Add, or an
// obs.Counter method value, is the intended shape). Callbacks fire
// outside the client's locks.
type Metrics struct {
	// BreakerOpen fires when an endpoint's circuit breaker trips open
	// (consecutive failures reached the threshold). Re-arming the
	// cooldown on a failed half-open probe does not re-count.
	BreakerOpen func()
	// BreakerClose fires when a tripped breaker closes again (a
	// request succeeded).
	BreakerClose func()
	// Retry fires at the start of every retry pass — the request is
	// about to be re-sent after a backoff sleep.
	Retry func()
	// Failover fires when a request succeeds on an endpoint other
	// than the first one tried (the home endpoint was down, shedding,
	// or breaker-sidelined).
	Failover func()
	// Shed fires when a server sheds a request with 429 (the ingest
	// admission gate under overload).
	Shed func()
}

// WithMetrics installs instrumentation callbacks for breaker,
// retry, failover, and shed events. See Metrics.
func WithMetrics(m Metrics) Option { return func(c *Client) { c.met = m } }

// WithCircuitBreaker arms a circuit breaker — one per endpoint: after
// threshold consecutive failed requests (connection errors, 5xx, 429)
// against an endpoint the client fast-fails its calls with
// ErrCircuitOpen for the cooldown, then lets requests probe again — a
// success closes the circuit, another failure re-opens it. Off by
// default: a breaker in front of a monitoring service is a policy
// choice (a tripped breaker drops telemetry on the floor), so callers
// opt in. On a multi-endpoint client a tripped breaker only sidelines
// its own endpoint; failover routes around it.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		if threshold > 0 && cooldown > 0 {
			c.brThreshold, c.brCooldown = threshold, cooldown
		}
	}
}

// Client is a typed client of one EFD monitoring deployment — a
// single server, or several with NewMulti. It is safe for concurrent
// use; all calls share one connection pool.
type Client struct {
	hc          *http.Client
	maxRetries  int
	backoffBase time.Duration
	binary      BinaryMode

	// brThreshold/brCooldown are the WithCircuitBreaker policy; the
	// per-endpoint breakers are built from them at construction.
	brThreshold int
	brCooldown  time.Duration

	met Metrics // WithMetrics instrumentation callbacks (zero = off)

	// eps are the endpoints, primary first; always at least one. The
	// slice is immutable after construction — routing copies it.
	eps           []*endpoint
	writeFailover bool          // WithWriteFailover
	probeEvery    time.Duration // health-probe cadence (multi only)

	proberStop chan struct{} // nil on single-endpoint clients
	proberWG   sync.WaitGroup
	closeOnce  sync.Once

	// binaryOK memoizes the negotiation outcome in BinaryAuto mode:
	// 0 untried, 1 supported, -1 rejected (JSON from now on).
	binaryOK atomic.Int32

	encPool sync.Pool // *encBuf, reused binary encode buffers
}

type encBuf struct{ payload, frames []byte }

// New returns a client for the server at baseURL (e.g.
// "http://cluster-mon:8080"). The default policy retries idempotent
// requests twice with 100 ms initial backoff.
func New(baseURL string, opts ...Option) *Client {
	return NewMulti([]string{baseURL}, opts...)
}

// ErrCircuitOpen is the fast-fail of a tripped circuit breaker (see
// WithCircuitBreaker): the request was not sent.
var ErrCircuitOpen = errors.New("efd: circuit breaker open")

// breaker is a consecutive-failure circuit breaker shared by all of a
// client's requests.
type breaker struct {
	threshold int
	cooldown  time.Duration

	// onOpen/onClose fire on open/closed transitions (outside the
	// lock); either may be nil.
	onOpen  func()
	onClose func()

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// allow reports whether a request may go out. Once the cooldown
// expires the breaker is half-open: requests flow again while fails
// stays at the threshold, so the first failed probe re-opens it and
// the first success closes it.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails < b.threshold || !time.Now().Before(b.openUntil)
}

func (b *breaker) record(ok bool) {
	b.mu.Lock()
	wasOpen := b.fails >= b.threshold
	if ok {
		b.fails = 0
	} else {
		b.fails++
		if b.fails >= b.threshold {
			b.openUntil = time.Now().Add(b.cooldown)
		}
	}
	nowOpen := b.fails >= b.threshold
	b.mu.Unlock()
	switch {
	case !wasOpen && nowOpen && b.onOpen != nil:
		b.onOpen()
	case wasOpen && !nowOpen && b.onClose != nil:
		b.onClose()
	}
}

// APIError is a non-2xx response, carrying the envelope's
// machine-readable code. Legacy servers without the envelope yield
// Code "" with the raw message.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's Retry-After hint (integer seconds),
	// zero when absent. Sent with 429 when the ingest admission gate
	// sheds the request.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("efd: HTTP %d: %s", e.StatusCode, e.Message)
	}
	return fmt.Sprintf("efd: %s (HTTP %d): %s", e.Code, e.StatusCode, e.Message)
}

// decodeAPIError parses the v1 error envelope, tolerating the legacy
// flat {"error":"message"} form and non-JSON bodies.
func decodeAPIError(status int, body []byte) *APIError {
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	out := &APIError{StatusCode: status, Message: strings.TrimSpace(string(body))}
	if json.Unmarshal(body, &env) != nil || env.Error == nil {
		return out
	}
	var detail struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	if json.Unmarshal(env.Error, &detail) == nil && (detail.Code != "" || detail.Message != "") {
		out.Code, out.Message = detail.Code, detail.Message
		return out
	}
	var flat string
	if json.Unmarshal(env.Error, &flat) == nil {
		out.Message = flat
	}
	return out
}

// retryable reports whether a response status is worth retrying on an
// idempotent endpoint: transient server-side failures only.
func retryable(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// transportErr marks a connection-level failure — the request may
// never have reached a server — so idempotent retry and failover
// apply. It unwraps to the underlying error before leaving the
// client, preserving the single-endpoint error surface.
type transportErr struct{ err error }

func (e *transportErr) Error() string { return e.err.Error() }
func (e *transportErr) Unwrap() error { return e.err }

// do performs one request with affinity "" (fleet-level, no home
// endpoint preference beyond the deterministic default).
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any, idempotent bool) error {
	return c.doRouted(ctx, method, path, contentType, body, out, idempotent, "")
}

// doRouted performs one request with retries and failover. body is
// re-sent from the byte slice on every attempt; idempotent requests
// retry on connection errors and 5xx, non-idempotent ones never retry
// (a duplicated POST /v1/samples would double-feed streams). On a
// multi-endpoint client each retry pass walks the affinity-ordered
// endpoints: idempotent requests fail over on transient errors, writes
// only when WithWriteFailover opted in. Non-retryable statuses (404,
// 400, 409, 413, 429 …) are authoritative answers and return at once —
// another endpoint would just repeat them, or worse, hide them.
func (c *Client) doRouted(ctx context.Context, method, path, contentType string, body []byte, out any, idempotent bool, affinity string) error {
	attempts := 1
	if idempotent {
		attempts += c.maxRetries
	}
	failover := idempotent || c.writeFailover
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if c.met.Retry != nil {
				c.met.Retry()
			}
			backoff := c.backoffBase << (attempt - 1)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
		}
		order := c.routeOrder(affinity, !idempotent)
		transient := 0 // non-breaker transient failures this pass
		for i, ep := range order {
			if i > 0 && !failover {
				break
			}
			err := c.tryEndpoint(ctx, ep, method, path, contentType, body, out)
			if err == nil {
				if i > 0 && c.met.Failover != nil {
					c.met.Failover()
				}
				return nil
			}
			if errors.Is(err, ErrCircuitOpen) {
				continue // this endpoint is sidelined; the next may serve
			}
			var te *transportErr
			var apiErr *APIError
			switch {
			case errors.As(err, &te):
				transient++
				lastErr = te.err
			case errors.As(err, &apiErr) && retryable(apiErr.StatusCode):
				transient++
				lastErr = apiErr
			default:
				return err // authoritative answer or local failure
			}
		}
		if transient == 0 {
			// Every reachable endpoint's breaker is open: fast-fail
			// rather than sleeping through retry passes that cannot
			// send anything.
			return ErrCircuitOpen
		}
	}
	return lastErr
}

// tryEndpoint is one HTTP round-trip against one endpoint, through its
// circuit breaker.
func (c *Client) tryEndpoint(ctx context.Context, ep *endpoint, method, path, contentType string, body []byte, out any) error {
	if ep.br != nil && !ep.br.allow() {
		return ErrCircuitOpen
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ep.base+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		ep.record(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transportErr{err}
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		ep.record(false)
		return &transportErr{err}
	}
	// The breaker counts "is the service in trouble" signals — 5xx
	// and shed ingest — not caller mistakes like a 404 or 400.
	ep.record(resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		return json.Unmarshal(raw, out)
	}
	if resp.StatusCode == http.StatusTooManyRequests && c.met.Shed != nil {
		c.met.Shed()
	}
	apiErr := decodeAPIError(resp.StatusCode, raw)
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s >= 0 {
		apiErr.RetryAfter = time.Duration(s) * time.Second
	}
	return apiErr
}

func (c *Client) getJSON(ctx context.Context, path, affinity string, out any) error {
	return c.doRouted(ctx, http.MethodGet, path, "", nil, out, true, affinity)
}

func (c *Client) postJSON(ctx context.Context, path, affinity string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.doRouted(ctx, http.MethodPost, path, "application/json", body, out, false, affinity)
}

// --- the v1 surface ---------------------------------------------------

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.getJSON(ctx, "/healthz", "", nil)
}

// Dictionary fetches the dictionary statistics.
func (c *Client) Dictionary(ctx context.Context) (monitor.DictionaryInfo, error) {
	var out monitor.DictionaryInfo
	err := c.getJSON(ctx, "/v1/dictionary", "", &out)
	return out, err
}

// Metrics fetches the service counters.
func (c *Client) Metrics(ctx context.Context) (monitor.Stats, error) {
	var out monitor.Stats
	err := c.getJSON(ctx, "/v1/metrics", "", &out)
	return out, err
}

// Register starts tracking a job on the given number of nodes.
func (c *Client) Register(ctx context.Context, jobID string, nodes int) error {
	in := struct {
		JobID string `json:"job_id"`
		Nodes int    `json:"nodes"`
	}{jobID, nodes}
	return c.postJSON(ctx, "/v1/jobs", jobID, in, nil)
}

// Jobs lists live jobs, ID-sorted, paginated.
func (c *Client) Jobs(ctx context.Context, offset, limit int) (monitor.Listing, error) {
	var out monitor.Listing
	err := c.getJSON(ctx, "/v1/jobs?offset="+strconv.Itoa(offset)+"&limit="+strconv.Itoa(limit), "", &out)
	return out, err
}

// Result fetches a job's current recognition state.
func (c *Client) Result(ctx context.Context, jobID string) (monitor.State, error) {
	var out monitor.State
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(jobID), jobID, &out)
	return out, err
}

// IngestResult is the outcome of a multi-job ingest: the number of
// samples fed and the jobs the server did not know (their samples
// were skipped, the rest were fed).
type IngestResult struct {
	Accepted int      `json:"accepted"`
	Unknown  []string `json:"unknown"`
}

// Ingest feeds one job's samples (the single-job wire form).
func (c *Client) Ingest(ctx context.Context, jobID string, samples []monitor.Sample) (int, error) {
	var out IngestResult
	err := c.postJSON(ctx, "/v1/samples", jobID, monitor.Batch{JobID: jobID, Samples: samples}, &out)
	return out.Accepted, err
}

// IngestBatches feeds samples for several jobs in one request (one
// shard lock and one durable fsync server-side). A request the server
// rejects as too large (413) is bisected and re-sent as smaller
// requests, in order, transparently — the result reports the combined
// outcome. Only a single sample too large on its own surfaces the 413.
func (c *Client) IngestBatches(ctx context.Context, batches []monitor.Batch) (IngestResult, error) {
	out, err := c.ingestBatchesOnce(ctx, batches)
	if !entityTooLarge(err) {
		return out, err
	}
	left, right, ok := splitBatches(batches)
	if !ok {
		return out, err
	}
	return c.ingestHalves(
		func() (IngestResult, error) { return c.IngestBatches(ctx, left) }, batchIDs(left),
		func() (IngestResult, error) { return c.IngestBatches(ctx, right) }, batchIDs(right),
	)
}

func batchIDs(batches []monitor.Batch) []string {
	ids := make([]string, len(batches))
	for i, b := range batches {
		ids[i] = b.JobID
	}
	return ids
}

func runBatchIDs(batches []monitor.RunBatch) []string {
	ids := make([]string, len(batches))
	for i, b := range batches {
		ids[i] = b.JobID
	}
	return ids
}

// ingestBatchesOnce is one multi-job JSON ingest request, unsplit.
// Multi-job requests route by the first job's affinity: a feeder's
// batches usually share a home endpoint anyway, and a deterministic
// pick keeps the whole request on one server.
func (c *Client) ingestBatchesOnce(ctx context.Context, batches []monitor.Batch) (IngestResult, error) {
	in := struct {
		Batches []monitor.Batch `json:"batches"`
	}{batches}
	affinity := ""
	if len(batches) > 0 {
		affinity = batches[0].JobID
	}
	var out IngestResult
	err := c.postJSON(ctx, "/v1/samples", affinity, in, &out)
	return out, err
}

// entityTooLarge reports a 413: the request body exceeded the
// server's limit and a smaller request may well succeed.
func entityTooLarge(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusRequestEntityTooLarge
}

// splitBatches bisects an ingest payload: across batches when there
// are several, across one batch's samples otherwise. Reports ok=false
// when there is nothing left to split (a single sample).
func splitBatches(batches []monitor.Batch) (left, right []monitor.Batch, ok bool) {
	if len(batches) > 1 {
		mid := len(batches) / 2
		return batches[:mid], batches[mid:], true
	}
	if len(batches) == 1 && len(batches[0].Samples) > 1 {
		b := batches[0]
		mid := len(b.Samples) / 2
		return []monitor.Batch{{JobID: b.JobID, Samples: b.Samples[:mid]}},
			[]monitor.Batch{{JobID: b.JobID, Samples: b.Samples[mid:]}}, true
	}
	return nil, nil, false
}

// ingestHalves sends the two halves of a bisected payload in order
// (preserving per-series sample order server-side) and merges their
// results. A failed left half stops before the right, so the caller
// can reason about how far the ingest got.
//
// A half made up entirely of unknown jobs draws the all-unknown 404
// even though the whole payload would not have; that half's job IDs
// are folded back into Unknown so the caller sees the whole-payload
// contract. (The corner where EVERY job is unknown then reports via
// Unknown rather than the 404 — the information is the same.)
func (c *Client) ingestHalves(left func() (IngestResult, error), leftIDs []string, right func() (IngestResult, error), rightIDs []string) (IngestResult, error) {
	lout, lerr := left()
	if allUnknown(lerr) {
		lout, lerr = IngestResult{Unknown: leftIDs}, nil
	}
	if lerr != nil {
		return lout, lerr
	}
	rout, rerr := right()
	if allUnknown(rerr) {
		rout, rerr = IngestResult{Unknown: rightIDs}, nil
	}
	return mergeIngestResults(lout, rout), rerr
}

// allUnknown reports the ingest 404: every job in the request was
// unknown. Nothing else on /v1/samples answers 404.
func allUnknown(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound
}

// mergeIngestResults combines two half-payload outcomes: accepted
// counts add, unknown-job lists union (sorted, deduplicated — both
// halves usually name the same unknown job).
func mergeIngestResults(a, b IngestResult) IngestResult {
	out := IngestResult{Accepted: a.Accepted + b.Accepted}
	seen := make(map[string]bool)
	for _, id := range append(append([]string(nil), a.Unknown...), b.Unknown...) {
		if !seen[id] {
			seen[id] = true
			out.Unknown = append(out.Unknown, id)
		}
	}
	sort.Strings(out.Unknown)
	return out
}

// IngestRuns feeds columnar runs — the cheapest ingest form. With
// BinaryAuto (default) the binary encoding is negotiated on first
// use; see the package comment. Oversized requests (413) bisect and
// re-send like IngestBatches — across batches, then runs, then within
// a run's columns.
func (c *Client) IngestRuns(ctx context.Context, batches []monitor.RunBatch) (IngestResult, error) {
	out, err := c.ingestRunsNegotiated(ctx, batches)
	if !entityTooLarge(err) {
		return out, err
	}
	left, right, ok := splitRunBatches(batches)
	if !ok {
		return out, err
	}
	return c.ingestHalves(
		func() (IngestResult, error) { return c.IngestRuns(ctx, left) }, runBatchIDs(left),
		func() (IngestResult, error) { return c.IngestRuns(ctx, right) }, runBatchIDs(right),
	)
}

// splitRunBatches bisects a columnar payload: across batches, then
// across one batch's runs, then across a lone run's sample columns.
func splitRunBatches(batches []monitor.RunBatch) (left, right []monitor.RunBatch, ok bool) {
	if len(batches) > 1 {
		mid := len(batches) / 2
		return batches[:mid], batches[mid:], true
	}
	if len(batches) != 1 {
		return nil, nil, false
	}
	b := batches[0]
	if len(b.Runs) > 1 {
		mid := len(b.Runs) / 2
		return []monitor.RunBatch{{JobID: b.JobID, Runs: b.Runs[:mid]}},
			[]monitor.RunBatch{{JobID: b.JobID, Runs: b.Runs[mid:]}}, true
	}
	if len(b.Runs) == 1 && len(b.Runs[0].Values) > 1 {
		run := b.Runs[0]
		mid := len(run.Values) / 2
		lr := monitor.Run{Metric: run.Metric, Node: run.Node, Offsets: run.Offsets[:mid], Values: run.Values[:mid]}
		rr := monitor.Run{Metric: run.Metric, Node: run.Node, Offsets: run.Offsets[mid:], Values: run.Values[mid:]}
		return []monitor.RunBatch{{JobID: b.JobID, Runs: []monitor.Run{lr}}},
			[]monitor.RunBatch{{JobID: b.JobID, Runs: []monitor.Run{rr}}}, true
	}
	return nil, nil, false
}

// ingestRunsNegotiated is one columnar ingest, unsplit, with the
// binary/JSON negotiation.
func (c *Client) ingestRunsNegotiated(ctx context.Context, batches []monitor.RunBatch) (IngestResult, error) {
	mode := c.binary
	if mode == BinaryAuto && c.binaryOK.Load() < 0 {
		mode = BinaryNever
	}
	if mode == BinaryNever {
		return c.IngestBatches(ctx, runsToBatches(batches))
	}
	out, err := c.ingestRunsBinary(ctx, batches)
	if err == nil {
		c.binaryOK.Store(1)
		return out, nil
	}
	if mode == BinaryAuto && c.binaryOK.Load() == 0 && binaryRejected(err) {
		// Negotiation: the server does not speak the binary encoding.
		// Fall back to JSON now and for every later call.
		c.binaryOK.Store(-1)
		return c.IngestBatches(ctx, runsToBatches(batches))
	}
	return out, err
}

// binaryRejected recognizes "the server does not understand the
// binary media type": 415 from a content-negotiating server, or a 400
// without an error code — a legacy pre-envelope server that tried to
// parse the frames as JSON. A 400 WITH a code comes from a server
// that does speak binary and found a genuine problem (a NaN value, a
// corrupt frame); falling back to JSON would just repeat it.
func binaryRejected(err error) bool {
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.StatusCode == http.StatusUnsupportedMediaType ||
		(apiErr.StatusCode == http.StatusBadRequest && apiErr.Code == "")
}

// ingestRunsBinary encodes the batches with the shared wire codec
// into a pooled buffer and posts them as application/x-efd-runs.
func (c *Client) ingestRunsBinary(ctx context.Context, batches []monitor.RunBatch) (IngestResult, error) {
	enc := c.encPool.Get().(*encBuf)
	enc.frames = enc.frames[:0]
	for _, b := range batches {
		for _, run := range b.Runs {
			enc.payload = wire.AppendRun(enc.payload[:0], b.JobID, run.Metric, run.Node, run.Offsets, run.Values)
			enc.frames = wire.AppendFrame(enc.frames, enc.payload)
		}
	}
	affinity := ""
	if len(batches) > 0 {
		affinity = batches[0].JobID
	}
	var out IngestResult
	err := c.doRouted(ctx, http.MethodPost, "/v1/samples", ContentTypeRuns, enc.frames, &out, false, affinity)
	c.encPool.Put(enc)
	return out, err
}

// runsToBatches converts columnar runs to the JSON sample form — the
// fallback encoding. Offsets convert to float seconds; offsets on a
// nanosecond grid round-trip exactly (the server rounds back to the
// nearest nanosecond).
func runsToBatches(batches []monitor.RunBatch) []monitor.Batch {
	out := make([]monitor.Batch, len(batches))
	for i, b := range batches {
		jb := monitor.Batch{JobID: b.JobID}
		for _, run := range b.Runs {
			for k := range run.Values {
				jb.Samples = append(jb.Samples, monitor.Sample{
					Metric:  run.Metric,
					Node:    run.Node,
					OffsetS: run.Offsets[k].Seconds(),
					Value:   run.Values[k],
				})
			}
		}
		out[i] = jb
	}
	return out
}

// Label learns a finished job into the dictionary under the
// (application, input) label and retires it. Returns the canonical
// label string.
func (c *Client) Label(ctx context.Context, jobID, app, input string) (string, error) {
	in := struct {
		App   string `json:"app"`
		Input string `json:"input"`
	}{app, input}
	var out struct {
		Learned string `json:"learned"`
	}
	err := c.postJSON(ctx, "/v1/jobs/"+url.PathEscape(jobID)+"/label", jobID, in, &out)
	return out.Learned, err
}

// Delete forgets a job's stream without learning it.
func (c *Client) Delete(ctx context.Context, jobID string) error {
	return c.doRouted(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(jobID), "", nil, nil, false, jobID)
}

// Series dumps a job's telemetry from the server's durable store.
func (c *Client) Series(ctx context.Context, jobID string) (monitor.SeriesDump, error) {
	var out monitor.SeriesDump
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(jobID)+"/series", jobID, &out)
	return out, err
}

// Executions lists the server's stored (finished) executions.
func (c *Client) Executions(ctx context.Context) ([]monitor.ExecutionInfo, error) {
	var out struct {
		Executions []monitor.ExecutionInfo `json:"executions"`
	}
	err := c.getJSON(ctx, "/v1/executions", "", &out)
	return out.Executions, err
}

// RecognizeExecution re-recognizes a stored execution with the
// dictionary as it stands now. Executions live in their home
// endpoint's store, so the ID routes like a job ID.
func (c *Client) RecognizeExecution(ctx context.Context, id string) (monitor.State, error) {
	var out monitor.State
	err := c.doRouted(ctx, http.MethodPost, "/v1/executions/"+url.PathEscape(id)+"/recognize", "", nil, &out, false, id)
	return out, err
}
