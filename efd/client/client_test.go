package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/efd/monitor"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// fixedSource trains dictionary entries at a constant level.
type fixedSource struct {
	nodes int
	level float64
}

func (f fixedSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f fixedSource) NodeCount() int { return f.nodes }

func trainedDict(t testing.TB) *core.Dictionary {
	t.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(fixedSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	d.Learn(fixedSource{nodes: 2, level: 7000}, apps.Label{App: "mg", Input: apps.InputX})
	return d
}

func newFixture(t testing.TB, opts ...Option) (*server.Server, *Client) {
	t.Helper()
	srv := server.New(trainedDict(t))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, New(ts.URL, opts...)
}

// flatSamples builds seconds [0,125] × nodes at a fixed level.
func flatSamples(level float64, nodes int) []monitor.Sample {
	var out []monitor.Sample
	for sec := 0; sec <= 125; sec++ {
		for node := 0; node < nodes; node++ {
			out = append(out, monitor.Sample{Metric: apps.HeadlineMetric, Node: node, OffsetS: float64(sec), Value: level})
		}
	}
	return out
}

// flatRuns is flatSamples in columnar form: one run per node.
func flatRuns(level float64, nodes int) []monitor.Run {
	var out []monitor.Run
	for node := 0; node < nodes; node++ {
		run := monitor.Run{Metric: apps.HeadlineMetric, Node: node}
		for sec := 0; sec <= 125; sec++ {
			run.Offsets = append(run.Offsets, time.Duration(sec)*time.Second)
			run.Values = append(run.Values, level)
		}
		out = append(out, run)
	}
	return out
}

// TestEndpointRoundTrips drives every v1 endpoint through the typed
// client against a real server.
func TestEndpointRoundTrips(t *testing.T) {
	_, c := newFixture(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	di, err := c.Dictionary(ctx)
	if err != nil || di.Keys != 4 || di.Depth != 2 {
		t.Fatalf("dictionary: %+v, %v", di, err)
	}
	if err := c.Register(ctx, "j1", 2); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Duplicate registration surfaces the typed conflict.
	var apiErr *APIError
	if err := c.Register(ctx, "j1", 2); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict || apiErr.Code != "conflict" {
		t.Fatalf("duplicate register: %v", err)
	}
	n, err := c.Ingest(ctx, "j1", flatSamples(6010, 2))
	if err != nil || n != 252 {
		t.Fatalf("ingest: %d, %v", n, err)
	}
	st, err := c.Result(ctx, "j1")
	if err != nil || st.Top != "ft" || !st.Complete {
		t.Fatalf("result: %+v, %v", st, err)
	}
	listing, err := c.Jobs(ctx, 0, 10)
	if err != nil || listing.Total != 1 || listing.Jobs[0].JobID != "j1" {
		t.Fatalf("jobs: %+v, %v", listing, err)
	}
	met, err := c.Metrics(ctx)
	if err != nil || met.SamplesAccepted != 252 || met.Registered != 1 {
		t.Fatalf("metrics: %+v, %v", met, err)
	}
	learned, err := c.Label(ctx, "j1", "lammps", "X")
	if err != nil || learned != "lammps_X" {
		t.Fatalf("label: %q, %v", learned, err)
	}
	// The labelled job is gone; a typed not_found comes back.
	if _, err := c.Result(ctx, "j1"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Fatalf("result after label: %v", err)
	}
	if err := c.Register(ctx, "j2", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "j2"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// Storage endpoints answer 501 without a store.
	if _, err := c.Executions(ctx); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotImplemented {
		t.Fatalf("executions without store: %v", err)
	}
}

// TestStorageEndpoints exercises series/executions/recognize against
// a storage-backed engine.
func TestStorageEndpoints(t *testing.T) {
	eng := monitor.New(trainedDict(t))
	if _, err := eng.OpenStore(t.TempDir(), monitor.StoreOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.CloseStore() })
	ts := httptest.NewServer(server.NewEngine(eng).Handler())
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	ctx := context.Background()

	if err := c.Register(ctx, "s1", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, "s1", flatSamples(6010, 2)); err != nil {
		t.Fatal(err)
	}
	dump, err := c.Series(ctx, "s1")
	if err != nil || dump.Source != "live" || len(dump.Series) != 2 || dump.Series[0].Count != 126 {
		t.Fatalf("series: %+v, %v", dump, err)
	}
	if _, err := c.Label(ctx, "s1", "ft", "X"); err != nil {
		t.Fatal(err)
	}
	execs, err := c.Executions(ctx)
	if err != nil || len(execs) != 1 || execs[0].ID != "s1" || execs[0].Label != "ft_X" {
		t.Fatalf("executions: %+v, %v", execs, err)
	}
	st, err := c.RecognizeExecution(ctx, "s1")
	if err != nil || st.Top != "ft" {
		t.Fatalf("recognize stored: %+v, %v", st, err)
	}
}

// TestRetryOn503 pins the retry/backoff behavior: idempotent GETs
// retry through transient 503s, POSTs never do.
func TestRetryOn503(t *testing.T) {
	var gets, posts atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			if gets.Add(1) <= 2 {
				http.Error(w, `{"error":{"code":"internal","message":"try later"}}`, http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		posts.Add(1)
		http.Error(w, `{"error":{"code":"internal","message":"nope"}}`, http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(3, time.Millisecond))

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health should have retried through 503s: %v", err)
	}
	if got := gets.Load(); got != 3 {
		t.Errorf("GET attempts = %d, want 3", got)
	}
	// A POST is not idempotent: exactly one attempt, error surfaced.
	var apiErr *APIError
	if err := c.Register(context.Background(), "x", 1); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register: %v", err)
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("POST attempts = %d, want 1 (no retry)", got)
	}
}

// TestRetryDroppedConnection drops the TCP connection mid-response
// twice; the idempotent call must recover.
func TestRetryDroppedConnection(t *testing.T) {
	var calls atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // slam the door: the client sees a connection error
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(3, time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health should have survived dropped connections: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	// Exhausted retries surface the connection error.
	calls.Store(-100)
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("expected error once retries exhaust")
	}
}

// TestRetryRespectsContext: a cancelled context stops the retry loop.
func TestRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(10, 50*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored context: ran %v", elapsed)
	}
}

// TestBinaryVersusJSONBitIdentical feeds identical telemetry to two
// identically trained servers — one over JSON, one over the binary
// columnar encoding — and requires bit-identical recognition state.
func TestBinaryVersusJSONBitIdentical(t *testing.T) {
	// Awkward values: many mantissa bits, values JSON prints in
	// scientific notation, negatives, subnormal-adjacent magnitudes.
	values := []float64{6010.123456789012, 6009.999999999999, 6010.5e-3 * 1e3, 6011.000000000001}
	mkRuns := func() []monitor.RunBatch {
		var runs []monitor.Run
		for node := 0; node < 2; node++ {
			run := monitor.Run{Metric: apps.HeadlineMetric, Node: node}
			for sec := 0; sec <= 125; sec++ {
				run.Offsets = append(run.Offsets, time.Duration(sec)*time.Second)
				run.Values = append(run.Values, values[sec%len(values)])
			}
			runs = append(runs, run)
		}
		return []monitor.RunBatch{{JobID: "bit", Runs: runs}}
	}

	state := make([]string, 2)
	for i, mode := range []BinaryMode{BinaryNever, BinaryAlways} {
		_, c := newFixture(t, WithBinaryIngest(mode))
		ctx := context.Background()
		if err := c.Register(ctx, "bit", 2); err != nil {
			t.Fatal(err)
		}
		res, err := c.IngestRuns(ctx, mkRuns())
		if err != nil {
			t.Fatalf("mode %d ingest: %v", mode, err)
		}
		if res.Accepted != 252 {
			t.Fatalf("mode %d accepted %d", mode, res.Accepted)
		}
		st, err := c.Result(ctx, "bit")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(st)
		state[i] = string(raw)
	}
	if state[0] != state[1] {
		t.Errorf("JSON and binary ingest diverged:\n json:   %s\n binary: %s", state[0], state[1])
	}
}

// TestBinaryNegotiationFallback points the client at a legacy server
// that answers binary frames with a flat 400; IngestRuns must fall
// back to JSON transparently and remember the outcome.
func TestBinaryNegotiationFallback(t *testing.T) {
	var binaryPosts, jsonPosts atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == ContentTypeRuns {
			binaryPosts.Add(1)
			// Legacy pre-envelope shape: a flat error string.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"bad JSON: invalid character"}`))
			return
		}
		jsonPosts.Add(1)
		var req struct {
			Batches []monitor.Batch `json:"batches"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fallback JSON decode: %v", err)
		}
		n := 0
		for _, b := range req.Batches {
			n += len(b.Samples)
		}
		json.NewEncoder(w).Encode(map[string]int{"accepted": n})
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	runs := []monitor.RunBatch{{JobID: "j", Runs: []monitor.Run{{
		Metric: "m", Node: 0,
		Offsets: []time.Duration{0, time.Second},
		Values:  []float64{1, 2},
	}}}}
	res, err := c.IngestRuns(context.Background(), runs)
	if err != nil || res.Accepted != 2 {
		t.Fatalf("fallback ingest: %+v, %v", res, err)
	}
	// Second call goes straight to JSON: the rejection is memoized.
	if _, err := c.IngestRuns(context.Background(), runs); err != nil {
		t.Fatal(err)
	}
	if b, j := binaryPosts.Load(), jsonPosts.Load(); b != 1 || j != 2 {
		t.Errorf("binary=%d json=%d, want 1 and 2", b, j)
	}
}

// TestBinaryGenuine400DoesNotFallBack: an enveloped 400 from a
// binary-speaking server (NaN value) must surface, not trigger JSON.
func TestBinaryGenuine400DoesNotFallBack(t *testing.T) {
	_, c := newFixture(t)
	ctx := context.Background()
	if err := c.Register(ctx, "nan", 1); err != nil {
		t.Fatal(err)
	}
	bad := []monitor.RunBatch{{JobID: "nan", Runs: []monitor.Run{{
		Metric: "m", Node: 0,
		Offsets: []time.Duration{0},
		Values:  []float64{nan()},
	}}}}
	var apiErr *APIError
	if _, err := c.IngestRuns(ctx, bad); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest || apiErr.Code != "bad_request" {
		t.Fatalf("NaN ingest: %v", err)
	}
	// The client still prefers binary for valid payloads afterwards.
	good := []monitor.RunBatch{{JobID: "nan", Runs: []monitor.Run{{
		Metric: apps.HeadlineMetric, Node: 0,
		Offsets: []time.Duration{0},
		Values:  []float64{1},
	}}}}
	if res, err := c.IngestRuns(ctx, good); err != nil || res.Accepted != 1 {
		t.Fatalf("binary after genuine 400: %+v, %v", res, err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// recordingHandler captures every ingest request body for the
// BatchWriter determinism tests.
type recordingHandler struct {
	mu       sync.Mutex
	requests [][]monitor.Batch
	types    []string
	fail     atomic.Bool
}

func (h *recordingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.fail.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"internal","message":"injected"}}`))
		return
	}
	var req struct {
		Batches []monitor.Batch `json:"batches"`
	}
	json.NewDecoder(r.Body).Decode(&req)
	h.mu.Lock()
	h.requests = append(h.requests, req.Batches)
	h.types = append(h.types, r.Header.Get("Content-Type"))
	h.mu.Unlock()
	json.NewEncoder(w).Encode(map[string]int{"accepted": 1})
}

func (h *recordingHandler) snapshot() [][]monitor.Batch {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([][]monitor.Batch(nil), h.requests...)
}

// TestBatchWriterFlushBySize: exactly one request the moment the
// size threshold is hit, containing exactly the buffered samples
// grouped by job.
func TestBatchWriterFlushBySize(t *testing.T) {
	h := &recordingHandler{}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	w := c.NewBatchWriter(BatchWriterConfig{FlushSamples: 4, FlushInterval: -1})

	for i := 0; i < 3; i++ {
		if err := w.Add("a", monitor.Sample{Metric: "m", OffsetS: float64(i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Add("b", monitor.Sample{Metric: "m", OffsetS: 0, Value: 2}); err != nil {
		t.Fatal(err)
	}
	// The 4th Add crossed the threshold: one request, deterministic
	// content. MaxInFlight default 1 plus a synchronous Flush barrier
	// makes the assertion race-free.
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	reqs := h.snapshot()
	if len(reqs) != 1 {
		t.Fatalf("requests = %d, want 1 (flush-by-size only)", len(reqs))
	}
	if len(reqs[0]) != 2 || reqs[0][0].JobID != "a" || len(reqs[0][0].Samples) != 3 || reqs[0][1].JobID != "b" || len(reqs[0][1].Samples) != 1 {
		t.Fatalf("batch content: %+v", reqs[0])
	}
	// Below-threshold adds only go out on Flush.
	w.Add("a", monitor.Sample{Metric: "m", OffsetS: 9, Value: 3})
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if reqs := h.snapshot(); len(reqs) != 2 || len(reqs[1][0].Samples) != 1 {
		t.Fatalf("after explicit flush: %+v", reqs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("a", monitor.Sample{}); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("add after close: %v", err)
	}
}

// TestBatchWriterFlushByInterval: a below-threshold buffer goes out
// once the interval elapses, without further Adds.
func TestBatchWriterFlushByInterval(t *testing.T) {
	h := &recordingHandler{}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	w := c.NewBatchWriter(BatchWriterConfig{FlushSamples: 1000, FlushInterval: 10 * time.Millisecond})
	t.Cleanup(func() { w.Close() })

	if err := w.Add("tick", monitor.Sample{Metric: "m", OffsetS: 1, Value: 5}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if reqs := h.snapshot(); len(reqs) >= 1 {
			if reqs[0][0].JobID != "tick" || len(reqs[0][0].Samples) != 1 {
				t.Fatalf("interval flush content: %+v", reqs[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchWriterErrorSurfaced: asynchronous flush errors reach both
// the OnError hook and the next Flush/Close.
func TestBatchWriterErrorSurfaced(t *testing.T) {
	h := &recordingHandler{}
	h.fail.Store(true)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	var hookErrs atomic.Int32
	w := c.NewBatchWriter(BatchWriterConfig{
		FlushSamples: 1, FlushInterval: -1,
		OnError: func(error) { hookErrs.Add(1) },
	})
	if err := w.Add("a", monitor.Sample{Metric: "m", Value: 1}); err != nil {
		t.Fatal(err) // Add itself never fails on flush errors
	}
	err := w.Close()
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("close error: %v", err)
	}
	if hookErrs.Load() == 0 {
		t.Error("OnError hook never fired")
	}
}

// TestBatchWriterConcurrentFlush: concurrent Flush/Add/Close at
// MaxInFlight > 1 must not deadlock (regression: two racing barriers
// once hoarded semaphore slots from each other forever).
func TestBatchWriterConcurrentFlush(t *testing.T) {
	h := &recordingHandler{}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	w := c.NewBatchWriter(BatchWriterConfig{FlushSamples: 2, FlushInterval: time.Millisecond, MaxInFlight: 2})

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					w.Add("job", monitor.Sample{Metric: "m", OffsetS: float64(i), Value: float64(g)})
					if i%5 == 0 {
						w.Flush(context.Background())
					}
				}
			}(g)
		}
		wg.Wait()
		if err := w.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("BatchWriter deadlocked under concurrent Flush")
	}
}

// TestBatchWriterColumnar: columnar mode sends binary runs and the
// resulting server state matches a JSON writer byte for byte.
func TestBatchWriterColumnar(t *testing.T) {
	state := make([]string, 2)
	for i, columnar := range []bool{false, true} {
		_, c := newFixture(t)
		ctx := context.Background()
		if err := c.Register(ctx, "cw", 2); err != nil {
			t.Fatal(err)
		}
		w := c.NewBatchWriter(BatchWriterConfig{FlushSamples: 64, FlushInterval: -1, Columnar: columnar})
		for _, s := range flatSamples(7003.25, 2) {
			if err := w.Add("cw", s); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := c.Result(ctx, "cw")
		if err != nil {
			t.Fatal(err)
		}
		if st.Top != "mg" || !st.Complete {
			t.Fatalf("columnar=%v state: %+v", columnar, st)
		}
		raw, _ := json.Marshal(st)
		state[i] = string(raw)
		met, err := c.Metrics(ctx)
		if err != nil || met.SamplesAccepted != 252 {
			t.Fatalf("columnar=%v metrics: %+v, %v", columnar, met, err)
		}
	}
	if state[0] != state[1] {
		t.Errorf("columnar writer diverged from JSON writer:\n json:     %s\n columnar: %s", state[0], state[1])
	}
}

// TestMultiJobIngestUnknown: the multi-job form reports unknown jobs
// while feeding the rest.
func TestMultiJobIngestUnknown(t *testing.T) {
	_, c := newFixture(t)
	ctx := context.Background()
	if err := c.Register(ctx, "known", 2); err != nil {
		t.Fatal(err)
	}
	res, err := c.IngestBatches(ctx, []monitor.Batch{
		{JobID: "known", Samples: flatSamples(6000, 2)[:10]},
		{JobID: "ghost", Samples: flatSamples(1, 1)[:2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 10 || len(res.Unknown) != 1 || res.Unknown[0] != "ghost" {
		t.Fatalf("partial ingest: %+v", res)
	}
	// All-unknown is a typed 404.
	var apiErr *APIError
	if _, err := c.IngestBatches(ctx, []monitor.Batch{{JobID: "ghost", Samples: flatSamples(1, 1)[:2]}}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("all-unknown: %v", err)
	}
}

// TestOversizedBodyRejected pins the MaxBytesReader satellite through
// the client: a single-job Ingest over the server's limit answers 413
// with the payload_too_large code. The batch forms no longer surface
// the 413 — they bisect and re-send (TestIngestSplitsOn413).
func TestOversizedBodyRejected(t *testing.T) {
	srv, c := newFixture(t)
	srv.MaxBodyBytes = 512
	ctx := context.Background()
	if err := c.Register(ctx, "big", 2); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.Ingest(ctx, "big", flatSamples(6000, 2)); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge || apiErr.Code != "payload_too_large" {
		t.Fatalf("oversized JSON: %v", err)
	}
}

// TestAllowHeaderOn405 pins the satellite: method rejections carry
// the Allow header and the envelope code.
func TestAllowHeaderOn405(t *testing.T) {
	srv, _ := newFixture(t)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/v1/dictionary", "GET"},
		{http.MethodGet, "/v1/samples", "POST"},
		{http.MethodPut, "/v1/jobs", "GET, POST"},
		{http.MethodPost, "/v1/metrics", "GET"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		if body.Error.Code != "method_not_allowed" {
			t.Errorf("%s %s: code = %q", tc.method, tc.path, body.Error.Code)
		}
	}
}

// TestErrorEnvelopeEverywhere sweeps representative failures of every
// endpoint and requires the uniform envelope.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	srv, c := newFixture(t)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()
	c.Register(ctx, "env", 1)

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"bad register", http.MethodPost, "/v1/jobs", `{"job_id":"","nodes":0}`, 400, "bad_request"},
		{"bad json", http.MethodPost, "/v1/jobs", `{`, 400, "bad_request"},
		{"unknown result", http.MethodGet, "/v1/jobs/ghost", "", 404, "not_found"},
		{"unknown delete", http.MethodDelete, "/v1/jobs/ghost", "", 404, "not_found"},
		{"early label", http.MethodPost, "/v1/jobs/env/label", `{"app":"ft","input":"X"}`, 409, "conflict"},
		{"empty ingest", http.MethodPost, "/v1/samples", `{}`, 400, "bad_request"},
		{"unknown ingest", http.MethodPost, "/v1/samples", `{"job_id":"ghost","samples":[]}`, 404, "not_found"},
		{"bad listing", http.MethodGet, "/v1/jobs?limit=-1", "", 400, "bad_request"},
		{"no store series", http.MethodGet, "/v1/jobs/env/series", "", 501, "unimplemented"},
		{"no store executions", http.MethodGet, "/v1/executions", "", 501, "unimplemented"},
		{"no store recognize", http.MethodPost, "/v1/executions/x/recognize", "", 501, "unimplemented"},
		{"bad route", http.MethodGet, "/v1/jobs/a/b/c", "", 404, "not_found"},
	}
	for _, tc := range cases {
		var req *http.Request
		if tc.body != "" {
			req, _ = http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req, _ = http.NewRequest(tc.method, ts.URL+tc.path, nil)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
			continue
		}
		if decodeErr != nil || body.Error.Code != tc.code || body.Error.Message == "" {
			t.Errorf("%s: envelope {code:%q, message:%q} (decode err %v), want code %q",
				tc.name, body.Error.Code, body.Error.Message, decodeErr, tc.code)
		}
	}
}
