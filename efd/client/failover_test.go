package client

// Multi-endpoint failover: health-aware routing around read-only and
// dead endpoints, the write-failover opt-in, BatchWriter re-homing
// with zero acked-sample loss across two real servers, and the
// goroutine-leak pin on the prober. Run under -race.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/efd/monitor"
	"repro/internal/server"
)

// stubEndpoint is a scripted server: a dialable health status, a 503
// shed while read-only, and counters for what it saw.
type stubEndpoint struct {
	health atomic.Value // status string
	posts  atomic.Int64
	gets   atomic.Int64
	ts     *httptest.Server
}

func newStub(t *testing.T, status string) *stubEndpoint {
	t.Helper()
	s := &stubEndpoint{}
	s.health.Store(status)
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/health" {
			fmt.Fprintf(w, `{"status":%q}`, s.health.Load())
			return
		}
		if r.Method == http.MethodPost {
			s.posts.Add(1)
			if s.health.Load() == monitor.StatusReadonly {
				w.Header().Set("Retry-After", "5")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":{"code":"read_only","message":"telemetry store append: monitor: store is read-only (disk full)"}}`)
				return
			}
			fmt.Fprint(w, `{"accepted":1}`)
			return
		}
		s.gets.Add(1)
		fmt.Fprint(w, `{}`)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

// homedJobID finds a job ID whose affinity home is endpoint `want` of
// `n` — the tests pick their victim endpoint deterministically.
func homedJobID(want, n int) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("fo%d", i)
		if int(fnv1a(id)%uint32(n)) == want {
			return id
		}
	}
}

func waitEndpointStatus(t *testing.T, c *Client, idx int, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := c.Endpoints()[idx].Status; got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint %d never reached %q: %+v", idx, want, c.Endpoints())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMultiRoutesWritesAroundReadonly: once the prober sees an
// endpoint in disk-full read-only mode, writes route to a healthy
// peer up front — no shed-and-retry round trip — and come back home
// when the disk recovers.
func TestMultiRoutesWritesAroundReadonly(t *testing.T) {
	home := newStub(t, monitor.StatusReadonly)
	peer := newStub(t, monitor.StatusHealthy)
	c := NewMulti([]string{home.ts.URL, peer.ts.URL}, WithHealthProbe(2*time.Millisecond), WithRetry(0, 0))
	defer c.Close()
	id := homedJobID(0, 2)
	ctx := context.Background()

	waitEndpointStatus(t, c, 0, monitor.StatusReadonly)
	if _, err := c.Ingest(ctx, id, []monitor.Sample{{Metric: "m", Value: 1}}); err != nil {
		t.Fatalf("ingest with readonly home: %v", err)
	}
	if home.posts.Load() != 0 || peer.posts.Load() != 1 {
		t.Fatalf("posts home=%d peer=%d, want 0 and 1 (routed around readonly)", home.posts.Load(), peer.posts.Load())
	}
	// Reads still prefer the home endpoint: read-only serves them all.
	if _, err := c.Result(ctx, id); err != nil {
		t.Fatal(err)
	}
	if home.gets.Load() != 1 {
		t.Fatalf("home gets = %d, want 1 (readonly still serves reads)", home.gets.Load())
	}

	// Disk recovers; writes come home.
	home.health.Store(monitor.StatusHealthy)
	waitEndpointStatus(t, c, 0, monitor.StatusHealthy)
	if _, err := c.Ingest(ctx, id, []monitor.Sample{{Metric: "m", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if home.posts.Load() != 1 {
		t.Fatalf("home posts = %d, want 1 (writes re-homed after recovery)", home.posts.Load())
	}
}

// TestMultiReadFailover: an idempotent read whose home endpoint died
// fails over to the peer — even before the prober has noticed — and
// the prober then marks the dead endpoint down.
func TestMultiReadFailover(t *testing.T) {
	home := newStub(t, monitor.StatusHealthy)
	peer := newStub(t, monitor.StatusHealthy)
	c := NewMulti([]string{home.ts.URL, peer.ts.URL}, WithHealthProbe(2*time.Millisecond), WithRetry(1, time.Millisecond))
	defer c.Close()
	id := homedJobID(0, 2)

	waitEndpointStatus(t, c, 0, monitor.StatusHealthy)
	home.ts.Close()
	if _, err := c.Result(context.Background(), id); err != nil {
		t.Fatalf("read failover: %v", err)
	}
	if peer.gets.Load() == 0 {
		t.Fatal("peer never saw the failed-over read")
	}
	waitEndpointStatus(t, c, 0, StatusDown)
}

// TestMultiWriteFailoverOptIn: writes to a dead home endpoint fail by
// default and re-home only under WithWriteFailover.
func TestMultiWriteFailoverOptIn(t *testing.T) {
	ctx := context.Background()
	sample := []monitor.Sample{{Metric: "m", Value: 1}}

	home := newStub(t, monitor.StatusHealthy)
	peer := newStub(t, monitor.StatusHealthy)
	id := homedJobID(0, 2)
	// No prober tick yet (long interval): both endpoints look serving,
	// so routing alone cannot save the write — failover must.
	pinned := NewMulti([]string{home.ts.URL, peer.ts.URL}, WithHealthProbe(time.Hour))
	defer pinned.Close()
	rehoming := NewMulti([]string{home.ts.URL, peer.ts.URL}, WithHealthProbe(time.Hour), WithWriteFailover())
	defer rehoming.Close()

	home.ts.Close()
	if _, err := pinned.Ingest(ctx, id, sample); err == nil {
		t.Fatal("pinned write to a dead home endpoint should fail")
	}
	if peer.posts.Load() != 0 {
		t.Fatalf("pinned write reached the peer (%d posts) without opt-in", peer.posts.Load())
	}
	if _, err := rehoming.Ingest(ctx, id, sample); err != nil {
		t.Fatalf("write failover: %v", err)
	}
	if peer.posts.Load() != 1 {
		t.Fatalf("peer posts = %d, want 1 (re-homed write)", peer.posts.Load())
	}
}

// TestBatchWriterReHomesOnFailover is the two-instance failover
// contract: a BatchWriter feeding two real servers loses its home
// endpoint mid-stream, re-homes the buffered un-acked batch to the
// survivor, and no acked sample is lost — the two engines together
// hold exactly every sample the writer flushed.
func TestBatchWriterReHomesOnFailover(t *testing.T) {
	ctx := context.Background()
	engines := []*monitor.Engine{monitor.New(trainedDict(t)), monitor.New(trainedDict(t))}
	servers := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i, eng := range engines {
		ts := httptest.NewServer(server.NewEngine(eng).Handler())
		t.Cleanup(ts.Close)
		servers[i], urls[i] = ts, ts.URL
	}
	id := homedJobID(0, 2)
	// Mirrored registration, as a failover deployment runs: the job
	// exists on every endpoint a write could re-home to.
	for _, u := range urls {
		if err := New(u).Register(ctx, id, 2); err != nil {
			t.Fatal(err)
		}
	}

	c := NewMulti(urls, WithWriteFailover(), WithHealthProbe(2*time.Millisecond))
	defer c.Close()
	w := c.NewBatchWriter(BatchWriterConfig{FlushSamples: 1 << 20, FlushInterval: -1, OverloadBackoff: time.Millisecond})
	samples := flatSamples(6010, 2)
	half := len(samples) / 2
	for _, s := range samples[:half] {
		if err := w.Add(id, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatalf("flush to home endpoint: %v", err)
	}
	if got := engines[0].Stats().SamplesAccepted; got != int64(half) {
		t.Fatalf("home endpoint acked %d samples, want %d", got, half)
	}

	// The home endpoint dies with the next batch still buffered.
	servers[0].Close()
	for _, s := range samples[half:] {
		if err := w.Add(id, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatalf("re-homed flush: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero acked-sample loss: every flushed sample lives on one of the
	// two endpoints, and the survivor took exactly the re-homed half.
	total := engines[0].Stats().SamplesAccepted + engines[1].Stats().SamplesAccepted
	if total != int64(len(samples)) {
		t.Fatalf("engines hold %d samples, want %d (acked samples lost)", total, len(samples))
	}
	if got := engines[1].Stats().SamplesAccepted; got != int64(len(samples)-half) {
		t.Fatalf("survivor holds %d samples, want %d", got, len(samples)-half)
	}
	waitEndpointStatus(t, c, 0, StatusDown)
}

// TestMultiProberNoLeak: Close must reap the health prober, cycle
// after cycle, breakers armed or not.
func TestMultiProberNoLeak(t *testing.T) {
	a := newStub(t, monitor.StatusHealthy)
	b := newStub(t, monitor.StatusHealthy)
	// Keep-alives off: idle connection goroutines would otherwise
	// linger past Close and muddy the count.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		c := NewMulti([]string{a.ts.URL, b.ts.URL},
			WithHTTPClient(hc),
			WithHealthProbe(time.Millisecond),
			WithCircuitBreaker(3, 50*time.Millisecond))
		waitEndpointStatus(t, c, 1, monitor.StatusHealthy)
		c.Close()
		c.Close() // idempotent
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
