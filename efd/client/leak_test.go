package client

// Goroutine-leak check: BatchWriter.Close must reap the interval
// flusher and every in-flight sender. Run under -race.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/efd/monitor"
)

func TestBatchWriterCloseNoLeak(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"accepted":1}`)
	}))
	defer ts.Close()
	// Keep-alives off: idle connection goroutines would otherwise
	// linger past Close and muddy the count.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	c := New(ts.URL, WithHTTPClient(hc))

	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		w := c.NewBatchWriter(BatchWriterConfig{
			FlushInterval: time.Millisecond, // ticker goroutine definitely running
			FlushSamples:  2,                // size-triggered async sends too
			MaxInFlight:   4,
		})
		for k := 0; k < 20; k++ {
			if err := w.Add("j", monitor.Sample{Metric: "m", OffsetS: float64(k), Value: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Closed means closed: the writer refuses further work.
		if err := w.Add("j", monitor.Sample{}); err != ErrWriterClosed {
			t.Fatalf("Add after Close = %v, want ErrWriterClosed", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
