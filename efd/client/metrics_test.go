package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// counters is a Metrics wired to atomic tallies — the shape a caller
// instrumenting the client would use.
type counters struct {
	open, closed, retry, failover, shed atomic.Int64
}

func (m *counters) hooks() Metrics {
	return Metrics{
		BreakerOpen:  func() { m.open.Add(1) },
		BreakerClose: func() { m.closed.Add(1) },
		Retry:        func() { m.retry.Add(1) },
		Failover:     func() { m.failover.Add(1) },
		Shed:         func() { m.shed.Add(1) },
	}
}

func TestMetricsBreakerOpenClose(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	var m counters
	c := New(ts.URL,
		WithRetry(0, 0),
		WithCircuitBreaker(2, 20*time.Millisecond),
		WithMetrics(m.hooks()))
	ctx := context.Background()

	// Two consecutive failures trip the breaker: exactly one open
	// event, and the next call fast-fails without reaching the server.
	for i := 0; i < 2; i++ {
		if err := c.Health(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	if got := m.open.Load(); got != 1 {
		t.Fatalf("opens after trip = %d, want 1", got)
	}
	if err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped-breaker error = %v, want ErrCircuitOpen", err)
	}
	if got := m.open.Load(); got != 1 {
		t.Fatalf("fast-fail must not re-count opens, got %d", got)
	}

	// After the cooldown a successful probe closes the breaker once.
	failing.Store(false)
	time.Sleep(30 * time.Millisecond)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if got := m.closed.Load(); got != 1 {
		t.Fatalf("closes = %d, want 1", got)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.closed.Load(); got != 1 {
		t.Fatalf("a success on a closed breaker must not re-count, got %d", got)
	}
}

func TestMetricsRetryAndShed(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	var m counters
	c := New(ts.URL, WithRetry(2, time.Millisecond), WithMetrics(m.hooks()))
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.retry.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}

	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer shedding.Close()
	c2 := New(shedding.URL, WithRetry(0, 0), WithMetrics(m.hooks()))
	if _, err := c2.Ingest(context.Background(), "job", nil); err == nil {
		t.Fatal("expected shed error")
	}
	if got := m.shed.Load(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
}

func TestMetricsFailover(t *testing.T) {
	healthy := `{"status":"healthy"}`
	// The home endpoint answers its health probe but fails real
	// requests, so routing still tries it first and the request has to
	// walk forward — a genuine failover.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/health" {
			w.Write([]byte(healthy))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(healthy))
	}))
	defer good.Close()

	var m counters
	// Affinity "" hashes to index 1 of two endpoints, so the bad
	// server is the home of fleet-level reads.
	c := NewMulti([]string{good.URL, bad.URL}, WithRetry(0, 0), WithMetrics(m.hooks()))
	defer c.Close()
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.failover.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
}
