package client

// Multi-endpoint failover: one Client over several efdd servers. A
// background prober keeps a per-endpoint health snapshot from GET
// /v1/health, requests route to a deterministic home endpoint by job
// affinity, and the walk-forward order prefers endpoints the prober
// last saw serving — so reads ride out an endpoint that is down or in
// disk-full read-only mode, and (with WithWriteFailover) so do writes.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/efd/monitor"
)

// DefaultHealthProbeInterval is how often a multi-endpoint client
// re-probes each endpoint's health.
const DefaultHealthProbeInterval = 2 * time.Second

// StatusDown is the Endpoints() status of an endpoint whose health
// probe failed outright (unreachable, or a non-200 health response).
// The serving statuses are the server's own health vocabulary:
// monitor.StatusHealthy, monitor.StatusReadonly, monitor.StatusDegraded.
const StatusDown = "down"

// Endpoint health as the prober last saw it.
const (
	epUnknown  int32 = iota // never probed: assume serving
	epHealthy               // durable and writable
	epReadonly              // disk-full read-only: serves reads, sheds writes
	epDegraded              // store lost: serves, but memory-only
	epDown                  // unreachable or failing its health endpoint
)

// endpoint is one server behind a multi-endpoint client.
type endpoint struct {
	base  string
	br    *breaker // nil unless WithCircuitBreaker
	state atomic.Int32
}

func (ep *endpoint) record(ok bool) {
	if ep.br != nil {
		ep.br.record(ok)
	}
}

// rank orders endpoints for routing: lower serves first. Reads prefer
// healthy and read-only endpoints (both serve every read), then
// degraded ones (serving, but memory-only), then down ones. Writes
// demote read-only below degraded — a read-only endpoint certainly
// sheds the write, a degraded one at least absorbs it.
func (ep *endpoint) rank(write bool) int {
	switch ep.state.Load() {
	case epReadonly:
		if write {
			return 2
		}
		return 0
	case epDegraded:
		return 1
	case epDown:
		return 3
	default: // epUnknown, epHealthy
		return 0
	}
}

// WithEndpoints adds failover endpoints after the primary, as if the
// client had been built with NewMulti.
func WithEndpoints(baseURLs ...string) Option {
	return func(c *Client) {
		for _, u := range baseURLs {
			c.eps = append(c.eps, &endpoint{base: strings.TrimSuffix(u, "/")})
		}
	}
}

// WithWriteFailover lets non-idempotent requests (ingest, register,
// label, delete) fail over to the next serving endpoint when the home
// one is unreachable or answering retryably. Opt-in because it is
// at-least-once: a write that died mid-flight may have been applied,
// and re-homing it can double-feed a stream. Leave it off when exact
// sample counts matter more than continuity of ingest.
func WithWriteFailover() Option {
	return func(c *Client) { c.writeFailover = true }
}

// WithHealthProbe sets the cadence of the background endpoint health
// prober (default DefaultHealthProbeInterval). Multi-endpoint clients
// only; a single-endpoint client never probes.
func WithHealthProbe(interval time.Duration) Option {
	return func(c *Client) {
		if interval > 0 {
			c.probeEvery = interval
		}
	}
}

// NewMulti returns a client over several equivalent servers — the
// same service behind each base URL. The first URL is the primary.
// Every job routes to a deterministic home endpoint (FNV-1a of the
// job ID), keeping one job's whole lifecycle — registration, ingest,
// reads, labelling — on one server; idempotent reads fail over to the
// next serving endpoint, writes only with WithWriteFailover. A
// background prober watches each endpoint's GET /v1/health; Close
// stops it. Read failover assumes the job exists on the failover
// target (mirrored feeders or a shared backend) — otherwise the
// other server's 404 surfaces, which is itself an honest answer.
func NewMulti(baseURLs []string, opts ...Option) *Client {
	c := &Client{
		hc:          &http.Client{},
		maxRetries:  2,
		backoffBase: 100 * time.Millisecond,
		probeEvery:  DefaultHealthProbeInterval,
	}
	c.encPool.New = func() any { return new(encBuf) }
	for _, u := range baseURLs {
		c.eps = append(c.eps, &endpoint{base: strings.TrimSuffix(u, "/")})
	}
	for _, o := range opts {
		o(c)
	}
	if len(c.eps) == 0 {
		panic("client: NewMulti needs at least one base URL")
	}
	if c.brThreshold > 0 && c.brCooldown > 0 {
		for _, ep := range c.eps {
			ep.br = &breaker{
				threshold: c.brThreshold,
				cooldown:  c.brCooldown,
				onOpen:    c.met.BreakerOpen,
				onClose:   c.met.BreakerClose,
			}
		}
	}
	if len(c.eps) > 1 {
		c.proberStop = make(chan struct{})
		c.proberWG.Add(1)
		go c.probeLoop()
	}
	return c
}

// Close stops the background health prober of a multi-endpoint
// client; on a single-endpoint client it is a no-op. Idempotent, and
// the client remains usable afterwards (routing just stops getting
// fresh health).
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		if c.proberStop != nil {
			close(c.proberStop)
			c.proberWG.Wait()
		}
	})
}

// EndpointHealth is one endpoint's last-probed health, for operators
// and tests.
type EndpointHealth struct {
	Base string
	// Status is "" (never probed), monitor.StatusHealthy,
	// monitor.StatusReadonly, monitor.StatusDegraded, or StatusDown.
	Status string
}

// Endpoints reports every endpoint with its last-probed health, in
// configuration order (primary first).
func (c *Client) Endpoints() []EndpointHealth {
	out := make([]EndpointHealth, len(c.eps))
	for i, ep := range c.eps {
		h := EndpointHealth{Base: ep.base}
		switch ep.state.Load() {
		case epHealthy:
			h.Status = monitor.StatusHealthy
		case epReadonly:
			h.Status = monitor.StatusReadonly
		case epDegraded:
			h.Status = monitor.StatusDegraded
		case epDown:
			h.Status = StatusDown
		}
		out[i] = h
	}
	return out
}

// fnv1a is the job-affinity hash — the same FNV-1a the engine shards
// job IDs by, so the routing is stable across client restarts and
// implementations.
func fnv1a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// routeOrder ranks the endpoints for one request: the affinity key
// picks the home endpoint deterministically, walking forward from it
// breaks ties, and endpoints the prober saw unhealthy sort after ones
// it saw serving (stably, so the affinity order survives within each
// health class).
func (c *Client) routeOrder(affinity string, write bool) []*endpoint {
	n := len(c.eps)
	if n == 1 {
		return c.eps
	}
	start := int(fnv1a(affinity) % uint32(n))
	order := make([]*endpoint, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, c.eps[(start+i)%n])
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].rank(write) < order[j].rank(write)
	})
	return order
}

// probeLoop polls every endpoint's health until Close. The first
// sweep runs immediately, so routing is informed from the start
// rather than after a full interval of flying blind.
func (c *Client) probeLoop() {
	defer c.proberWG.Done()
	t := time.NewTicker(c.probeEvery)
	defer t.Stop()
	c.probeAll()
	for {
		select {
		case <-c.proberStop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Client) probeAll() {
	for _, ep := range c.eps {
		select {
		case <-c.proberStop:
			return
		default:
		}
		ep.state.Store(c.probeEndpoint(ep))
	}
}

// probeEndpoint classifies one endpoint from its GET /v1/health. The
// probe is bounded well under the probe interval so a hung endpoint
// cannot stall the sweep into the next tick.
func (c *Client) probeEndpoint(ep *endpoint) int32 {
	timeout := c.probeEvery
	if timeout > time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+"/v1/health", nil)
	if err != nil {
		return epDown
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return epDown
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return epDown
	}
	var h struct {
		Status string `json:"status"`
	}
	if json.Unmarshal(body, &h) != nil {
		return epDown
	}
	switch h.Status {
	case monitor.StatusReadonly:
		return epReadonly
	case monitor.StatusDegraded:
		return epDegraded
	default:
		return epHealthy
	}
}
