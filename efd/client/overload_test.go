package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/efd/monitor"
)

// TestIngestSplitsOn413: a batch the server rejects as too large is
// bisected and re-sent transparently; every sample still lands, in
// order, and unknown jobs are still reported.
func TestIngestSplitsOn413(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		srv, c := newFixture(t)
		srv.MaxBodyBytes = 512 // any full-window batch far exceeds this
		ctx := context.Background()
		if err := c.Register(ctx, "big", 2); err != nil {
			t.Fatal(err)
		}
		var (
			res IngestResult
			err error
		)
		if columnar {
			res, err = c.IngestRuns(ctx, []monitor.RunBatch{
				{JobID: "big", Runs: flatRuns(6000, 2)},
				{JobID: "ghost", Runs: flatRuns(1, 1)},
			})
		} else {
			res, err = c.IngestBatches(ctx, []monitor.Batch{
				{JobID: "big", Samples: flatSamples(6000, 2)},
				{JobID: "ghost", Samples: flatSamples(1, 1)},
			})
		}
		if err != nil {
			t.Fatalf("columnar=%v split ingest: %v", columnar, err)
		}
		if want := len(flatSamples(6000, 2)); res.Accepted != want {
			t.Errorf("columnar=%v accepted %d of %d samples", columnar, res.Accepted, want)
		}
		if len(res.Unknown) != 1 || res.Unknown[0] != "ghost" {
			t.Errorf("columnar=%v unknown = %v, want [ghost]", columnar, res.Unknown)
		}
		// The split fed samples in order: the full window arrived and
		// the job recognizes.
		st, err := c.Result(ctx, "big")
		if err != nil || !st.Complete || st.Top != "ft" {
			t.Errorf("columnar=%v post-split state: %+v, %v", columnar, st, err)
		}
	}
}

// TestIngestSplitGivesUpOnSingleSample: when even one sample is too
// large there is nothing left to bisect and the 413 surfaces.
func TestIngestSplitGivesUpOnSingleSample(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		fmt.Fprint(w, `{"error":{"code":"payload_too_large","message":"no"}}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	ctx := context.Background()

	var apiErr *APIError
	one := []monitor.Batch{{JobID: "j", Samples: flatSamples(1, 1)[:1]}}
	if _, err := c.IngestBatches(ctx, one); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("single-sample 413 = %v", err)
	}
	oneRun := []monitor.RunBatch{{JobID: "j", Runs: []monitor.Run{{
		Metric: "m", Node: 0, Offsets: []time.Duration{0}, Values: []float64{1},
	}}}}
	if _, err := c.IngestRuns(ctx, oneRun); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("single-sample columnar 413 = %v", err)
	}
	// log2(1) splits: exactly one request per call.
	if got := requests.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2 (no futile re-splitting)", got)
	}
}

// TestRetryAfterParsing: the server's Retry-After hint rides along on
// the APIError.
func TestRetryAfterParsing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"overloaded","message":"shed"}}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Ingest(context.Background(), "j", flatSamples(1, 1)[:1])
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Code != "overloaded" {
		t.Errorf("error = %+v", apiErr)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
}

// TestCircuitBreaker: consecutive failures trip the breaker (requests
// stop reaching the server), the cooldown half-opens it, and a
// success closes it again.
func TestCircuitBreaker(t *testing.T) {
	var fail atomic.Bool
	var requests atomic.Int64
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(0, 0), WithCircuitBreaker(2, 50*time.Millisecond))
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		var apiErr *APIError
		if err := c.Health(ctx); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d = %v", i, err)
		}
	}
	before := requests.Load()
	if err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped breaker = %v, want ErrCircuitOpen", err)
	}
	if got := requests.Load(); got != before {
		t.Errorf("open breaker let a request through (%d -> %d)", before, got)
	}

	// Cooldown passes, the service recovers: the half-open probe
	// succeeds and the breaker closes.
	fail.Store(false)
	time.Sleep(60 * time.Millisecond)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

// TestCircuitBreakerReopens: a failed half-open probe re-opens the
// breaker immediately.
func TestCircuitBreakerReopens(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(0, 0), WithCircuitBreaker(1, 40*time.Millisecond))
	ctx := context.Background()

	var apiErr *APIError
	if err := c.Health(ctx); !errors.As(err, &apiErr) {
		t.Fatalf("first failure = %v", err)
	}
	if err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want open, got %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.Health(ctx); !errors.As(err, &apiErr) {
		t.Fatalf("half-open probe = %v, want the 503 through", err)
	}
	if err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe left the breaker closed: %v", err)
	}
}

// TestBatchWriterOverloadRetry: a shed flush (429) is re-sent after a
// backoff and succeeds once the server has capacity again; nothing is
// lost and nothing is double-fed.
func TestBatchWriterOverloadRetry(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // "soon": exercises the backoff path with no forced 1s sleep
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"overloaded","message":"shed"}}`)
			return
		}
		fmt.Fprint(w, `{"accepted":3}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	w := c.NewBatchWriter(BatchWriterConfig{OverloadBackoff: time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := w.Add("j", monitor.Sample{Metric: "m", OffsetS: float64(i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(context.Background()); err != nil {
		t.Fatalf("flush across overload: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := requests.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 shed + 1 accepted)", got)
	}
}

// TestBatchWriterOverloadRetriesDisabled: negative OverloadRetries
// surfaces the 429 on the first shed.
func TestBatchWriterOverloadRetriesDisabled(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"overloaded","message":"shed"}}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	w := c.NewBatchWriter(BatchWriterConfig{OverloadRetries: -1})
	if err := w.Add("j", monitor.Sample{Metric: "m", Value: 1}); err != nil {
		t.Fatal(err)
	}
	err := w.Flush(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flush = %v, want the 429 through", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := requests.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (retries disabled)", got)
	}
}
