// Package efd is the public API of the Execution Fingerprint Dictionary
// library, a reproduction of "An Execution Fingerprint Dictionary for
// HPC Application Recognition" (Jakobsche et al., IEEE CLUSTER 2021).
//
// The EFD recognizes repeated executions of HPC applications the way
// Shazam recognizes songs: it stores execution fingerprints — rounded
// means of a system metric per node over a fixed time interval — as
// dictionary keys mapped to application labels, and recognizes an
// unlabelled execution by looking its fingerprints up and returning the
// most-matched application.
//
// Quick start:
//
//	ds, _ := efd.GenerateDataset(efd.DefaultDatasetConfig())
//	train, test := ds.Split(0.8, 1)
//	dict, report, _ := efd.Train(train, efd.DefaultTrainConfig())
//	for _, exec := range test.Executions {
//		res := dict.Recognize(efd.SourceOf(exec))
//		fmt.Println(exec.Label, "->", res.Top())
//	}
//
// Performance: recognition is a hash lookup over interned integer keys
// — on a warmed dictionary, a reused Recognizer (dict.NewRecognizer())
// answers in well under 2 µs per execution with zero allocations, and
// streaming Feed is allocation-free per sample. Training
// cross-validates the rounding depth on a bounded worker pool
// (TrainConfig.Workers; 0 = GOMAXPROCS) with results byte-identical at
// any worker count. Dictionary.Recognize is the convenience form for
// one-off calls; batch and service callers should hold a Recognizer
// (one per goroutine).
//
// Concurrency: a Dictionary is single-writer. Read-only use
// (recognition, lookup, stats) is safe from any number of goroutines;
// to mix online learning with live recognition, wrap the dictionary
// with Share and route reads through SharedDictionary.Read and
// mutation through SharedDictionary.Write/Learn — the pattern the
// efdd monitoring daemon uses to learn completed jobs while serving
// recognition polls.
//
// # The public API, in layers
//
// This module exposes the always-on monitoring system as three
// packages, one per deployment shape:
//
//   - efd (this package): the library core — datasets, training,
//     offline and streaming recognition, evaluation, the paper's
//     experiment protocols.
//   - efd/monitor: the embeddable monitoring engine. monitor.New
//     wraps a trained dictionary in a sharded, concurrent job table
//     with the full job lifecycle (Register → Ingest → Result →
//     Label/Close), columnar batch ingest, and an optional durable
//     telemetry store (OpenStore) with WAL-backed crash recovery and
//     re-recognizable stored executions. Use it to run a monitor
//     inside your own process.
//   - efd/client: the typed SDK for the efdd daemon's v1 HTTP API
//     (documented in API.md), with connection reuse, retrying
//     idempotent calls, a size/interval-flushing BatchWriter, and a
//     negotiated binary columnar ingest encoding that round-trips
//     float64 telemetry bit-exactly at a fraction of JSON's cost.
//
// The efdd daemon itself (cmd/efdd) is a thin HTTP adapter
// (internal/server) over exactly the efd/monitor engine, so embedded
// and remote deployments behave identically.
//
// The heavy lifting lives in the internal packages; this package
// re-exports the stable surface a downstream user needs: dataset
// generation (a synthetic stand-in for the Taxonomist telemetry
// artifact), dictionary training with rounding-depth selection,
// offline and streaming recognition, evaluation metrics, and the
// paper's experiment protocols.
package efd

import (
	"io"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// Re-exported core types. See the internal/core package for full
// documentation of each.
type (
	// Dictionary is the execution fingerprint dictionary.
	Dictionary = core.Dictionary
	// Fingerprint is a dictionary key.
	Fingerprint = core.Fingerprint
	// Config selects fingerprint construction (metrics, windows,
	// rounding depth, joint mode).
	Config = core.Config
	// TrainConfig controls training, including rounding-depth
	// cross-validation.
	TrainConfig = core.FitConfig
	// TrainReport describes the selected rounding depth.
	TrainReport = core.FitReport
	// Result is a recognition outcome.
	Result = core.Result
	// Recognizer performs recognitions through reused scratch buffers
	// — the zero-allocation batch/service path. One per goroutine.
	Recognizer = core.Recognizer
	// SharedDictionary is the read/write concurrency contract for
	// serving one dictionary to many goroutines: concurrent
	// recognition, exclusive online learning. See Share.
	SharedDictionary = core.SharedDictionary
	// Stream recognizes executions online as telemetry arrives.
	Stream = core.Stream
	// WindowSource yields window means for fingerprinting.
	WindowSource = core.WindowSource

	// Dataset is a labelled collection of executions.
	Dataset = dataset.Dataset
	// Execution is one labelled run.
	Execution = dataset.Execution
	// DatasetConfig describes synthetic dataset generation.
	DatasetConfig = dataset.GenConfig

	// Label is an (application, input size) pair.
	Label = apps.Label
	// Input is a problem size (X, Y, Z or L).
	Input = apps.Input

	// Window is a half-open time interval of an execution.
	Window = telemetry.Window

	// Report is a classification report (precision/recall/F-score).
	Report = eval.Report
	// Pair is one (truth, prediction) outcome.
	Pair = eval.Pair

	// Harness runs the paper's five evaluation protocols.
	Harness = experiments.Harness
	// Score is one protocol outcome.
	Score = experiments.Score
)

// Unknown is the class reported when no fingerprint matches.
const Unknown = core.Unknown

// HeadlineMetric is the single system metric of the paper's headline
// result: nr_mapped_vmstat.
const HeadlineMetric = apps.HeadlineMetric

// PaperWindow is the paper's fingerprint interval, [60:120] seconds
// into the execution.
var PaperWindow = telemetry.PaperWindow

// NewDictionary returns an empty dictionary with the given fingerprint
// configuration.
func NewDictionary(cfg Config) (*Dictionary, error) { return core.NewDictionary(cfg) }

// DefaultConfig is the paper's headline fingerprint configuration at
// the given rounding depth.
func DefaultConfig(depth int) Config { return core.DefaultConfig(depth) }

// DefaultTrainConfig is the paper's headline training configuration:
// single metric, [60:120] window, depth selected from 1–6 by 5-fold
// cross-validation within the training set.
func DefaultTrainConfig() TrainConfig { return core.DefaultFitConfig() }

// Train learns a dictionary from the training set, selecting the
// rounding depth by cross-validation.
func Train(train *Dataset, cfg TrainConfig) (*Dictionary, TrainReport, error) {
	return core.Fit(train, cfg)
}

// Build constructs a dictionary at a fixed rounding depth without
// tuning.
func Build(ds *Dataset, cfg Config) (*Dictionary, error) { return core.Build(ds, cfg) }

// Load reads a dictionary previously written by Dictionary.Save,
// including its configuration (metrics, windows, depth, joint mode).
func Load(r io.Reader) (*Dictionary, error) { return core.Load(r) }

// SourceOf adapts a dataset execution to the WindowSource interface
// consumed by Dictionary.Recognize.
func SourceOf(e *Execution) WindowSource { return core.Source(e) }

// NewStream returns an online recognizer against the dictionary for an
// execution on the given number of nodes.
func NewStream(d *Dictionary, nodes int) *Stream { return core.NewStream(d, nodes) }

// Share wraps a dictionary in the read/write concurrency contract:
// any number of concurrent Read sections (recognition, stats, save)
// run in parallel, while Write sections (online Learn) are exclusive.
// Services that label completed executions back into a live dictionary
// must route all access through the shared wrapper.
func Share(d *Dictionary) *SharedDictionary { return core.Share(d) }

// Classify recognizes every execution of the dataset and returns
// (truth, prediction) pairs with application-name truths.
func Classify(d *Dictionary, ds *Dataset) []Pair { return core.Classify(d, ds) }

// Evaluate computes a classification report over outcomes.
func Evaluate(pairs []Pair) (Report, error) { return eval.Evaluate(pairs) }

// F1Macro returns the macro-averaged F-score of the outcomes — the
// paper's headline measure.
func F1Macro(pairs []Pair) float64 { return eval.F1Macro(pairs) }

// DefaultDatasetConfig is the paper's primary data grid (Table 2): all
// eleven applications, four node jobs, thirty repeats per
// (application, input) pair, default cluster noise.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultGenConfig() }

// GenerateDataset builds a synthetic dataset with the same structure as
// the Taxonomist telemetry artifact the paper evaluates on.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// NewHarness returns an experiment harness with the paper's defaults
// over the dataset.
func NewHarness(ds *Dataset) *Harness { return experiments.NewHarness(ds) }

// Applications lists the eleven modelled application names.
func Applications() []string { return apps.Names() }

// MetricNames lists the modelled system metrics.
func MetricNames() []string { return apps.MetricNames() }

// Split partitions a dataset into train and test subsets with
// stratified sampling: approximately trainFrac of each label's
// executions land in the training set. The seed makes the split
// reproducible.
func Split(ds *Dataset, trainFrac float64, seed int64) (train, test *Dataset) {
	byLabel := make(map[Label][]int)
	for i, e := range ds.Executions {
		byLabel[e.Label] = append(byLabel[e.Label], i)
	}
	labels := make([]Label, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	apps.SortLabels(labels)
	rng := rand.New(rand.NewSource(seed))
	var trainIdx, testIdx []int
	for _, l := range labels {
		idx := byLabel[l]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx))*trainFrac + 0.5)
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	return ds.Subset(trainIdx), ds.Subset(testIdx)
}
