package efd

import (
	"testing"

	"repro/internal/apps"
)

func smallDS(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultDatasetConfig()
	cfg.Apps = []string{"ft", "mg", "cg"}
	cfg.Repeats = 6
	cfg.Cluster.Metrics = []string{HeadlineMetric}
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestQuickstartFlow(t *testing.T) {
	ds := smallDS(t)
	train, test := Split(ds, 0.75, 1)
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	if test.Len() == 0 || train.Len() == 0 {
		t.Fatal("degenerate split")
	}
	dict, report, err := Train(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.BestDepth < 1 {
		t.Errorf("BestDepth = %d", report.BestDepth)
	}
	pairs := Classify(dict, test)
	if f := F1Macro(pairs); f < 0.9 {
		t.Errorf("holdout F1 = %v, want >= 0.9", f)
	}
	rep, err := Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != test.Len() {
		t.Errorf("report total = %d", rep.Total)
	}
}

func TestSplitStratified(t *testing.T) {
	ds := smallDS(t)
	train, _ := Split(ds, 0.5, 7)
	perLabel := make(map[Label]int)
	for _, e := range train.Executions {
		perLabel[e.Label]++
	}
	for l, c := range perLabel {
		if c != 3 { // half of 6 repeats
			t.Errorf("label %v has %d training executions, want 3", l, c)
		}
	}
}

func TestFacadeConstants(t *testing.T) {
	if HeadlineMetric != "nr_mapped_vmstat" {
		t.Errorf("HeadlineMetric = %q", HeadlineMetric)
	}
	if Unknown != "unknown" {
		t.Errorf("Unknown = %q", Unknown)
	}
	if PaperWindow.String() != "[60:120]" {
		t.Errorf("PaperWindow = %v", PaperWindow)
	}
	if len(Applications()) != 11 {
		t.Errorf("Applications = %d", len(Applications()))
	}
	if len(MetricNames()) < 40 {
		t.Errorf("MetricNames = %d", len(MetricNames()))
	}
}

func TestStreamingFacade(t *testing.T) {
	ds := smallDS(t)
	dict, _, err := Train(ds, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(dict, 4)
	if s.Complete() {
		t.Error("fresh stream complete")
	}
	_ = apps.InputX // keep the import honest: facade tests may refer to internals
}

func TestHarnessFacade(t *testing.T) {
	ds := smallDS(t)
	h := NewHarness(ds)
	score, err := h.NormalFold()
	if err != nil {
		t.Fatal(err)
	}
	if score.EFD < 0.9 {
		t.Errorf("normal fold = %v", score.EFD)
	}
}
