package monitor

// Seeded chaos soak for the engine: concurrent feeders and readers
// while the backing store is repeatedly poisoned (permanent injected
// EIO) and healed. Invariants, across every fault cycle:
//
//  1. No ingest, register, or read EVER returns an error — degradation
//     is invisible to callers (memory-only mode absorbs the outage).
//  2. No panics and no data races (run under -race).
//  3. After the final heal the probe returns the engine to healthy and
//     the reopen counters prove the round-trips happened.
//
// CHAOS_SEED pins the schedule; CHAOS_TIME bounds the soak length.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/tsdb"
	"repro/internal/vfs"
)

func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

func chaosBudget(t *testing.T, def time.Duration) time.Duration {
	t.Helper()
	if s := os.Getenv("CHAOS_TIME"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad CHAOS_TIME %q: %v", s, err)
		}
		return d
	}
	return def
}

// TestChaosMonitorSoak drives the engine from several goroutines while
// the main loop cycles the store through poison -> degraded -> heal ->
// healthy. Any error anywhere fails the soak.
func TestChaosMonitorSoak(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("CHAOS_SEED=%d", seed)
	budget := chaosBudget(t, 2*time.Second)

	fs := vfs.NewFault(vfs.OS{}, seed)
	st, err := tsdb.OpenOptions(t.TempDir(), tsdb.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	e := New(testDict(t))
	e.StoreProbeInterval = 5 * time.Millisecond
	if _, err := e.AttachStore(st); err != nil {
		st.Close()
		t.Fatal(err)
	}
	defer e.Close()

	var (
		stop    atomic.Bool
		ingests atomic.Int64
		reads   atomic.Int64
		mu      sync.Mutex
		fails   []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		if len(fails) < 10 {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	const feeders = 4
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				id := fmt.Sprintf("soak-%d-%d", f, n)
				jb, err := e.Register(id, 2)
				if err != nil {
					fail("feeder %d: Register(%s): %v", f, id, err)
					return
				}
				for upTo := 10; upTo <= 40 && !stop.Load(); upTo += 10 {
					if _, err := jb.Ingest(flat(6000, 2, upTo)); err != nil {
						fail("feeder %d: Ingest(%s): %v", f, id, err)
						return
					}
					ingests.Add(1)
				}
				if _, err := jb.Result(); err != nil {
					fail("feeder %d: Result(%s): %v", f, id, err)
					return
				}
				// Recycle: keep the job table bounded across the soak.
				if err := jb.Close(); err != nil {
					fail("feeder %d: Close(%s): %v", f, id, err)
					return
				}
			}
		}(f)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				if h := e.Health(); h.Status == "" {
					fail("reader %d: empty health status", r)
					return
				}
				if _, err := e.Jobs(0, 5); err != nil {
					fail("reader %d: Jobs: %v", r, err)
					return
				}
				if _, err := e.Executions(); err != nil {
					fail("reader %d: Executions: %v", r, err)
					return
				}
				e.Stats()
				reads.Add(1)
			}
		}(r)
	}

	// Fault cycles: poison until the engine degrades, heal until the
	// probe brings it back. At least two full cycles regardless of
	// budget; more while time remains.
	deadline := time.Now().Add(budget)
	waitStatus := func(want string, what string) bool {
		end := time.Now().Add(5 * time.Second)
		for time.Now().Before(end) && !stop.Load() {
			if e.Health().Status == want {
				return true
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !stop.Load() {
			fail("CHAOS_SEED=%d: timed out waiting for %s", seed, what)
		}
		return false
	}
	cycles := 0
	for (cycles < 2 || time.Now().Before(deadline)) && !stop.Load() {
		time.Sleep(20 * time.Millisecond) // healthy traffic
		fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
		if !waitStatus(StatusDegraded, "degradation") {
			break
		}
		time.Sleep(20 * time.Millisecond) // degraded traffic
		fs.Reset()
		if !waitStatus(StatusHealthy, "probe reopen") {
			break
		}
		cycles++
	}
	stop.Store(true)
	wg.Wait()

	for _, f := range fails {
		t.Errorf("CHAOS_SEED=%d: %s", seed, f)
	}
	if t.Failed() {
		t.FailNow()
	}
	h := e.Health()
	if h.Status != StatusHealthy {
		t.Fatalf("CHAOS_SEED=%d: final health = %q after %d cycles", seed, h.Status, cycles)
	}
	if int(h.StoreReopens) < cycles {
		t.Fatalf("CHAOS_SEED=%d: %d reopens recorded across %d cycles", seed, h.StoreReopens, cycles)
	}
	t.Logf("chaos soak: %d cycles, %d ingests, %d reads, %d store reopens",
		cycles, ingests.Load(), reads.Load(), h.StoreReopens)
}
