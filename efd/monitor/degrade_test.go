package monitor

// Graceful-degradation tests: the store poisons itself under the
// engine (injected fsync failures, ENOSPC) and the engine must keep
// serving — ingest succeeds memory-only, every read keeps answering,
// health reports degraded with the triggering error, and the
// background probe returns the engine to durable mode once the fault
// clears.

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"repro/internal/tsdb"
	"repro/internal/vfs"
)

// attachFaultStore opens a tsdb store in dir through a Fault fs and
// attaches it to a fresh engine with a fast probe.
func attachFaultStore(t *testing.T, dir string) (*Engine, *vfs.Fault) {
	t.Helper()
	fs := vfs.NewFault(vfs.OS{}, 1)
	st, err := tsdb.OpenOptions(dir, tsdb.Options{FS: fs, NoSync: false})
	if err != nil {
		t.Fatal(err)
	}
	e := New(testDict(t))
	e.StoreProbeInterval = 5 * time.Millisecond
	if _, err := e.AttachStore(st); err != nil {
		st.Close()
		t.Fatal(err)
	}
	return e, fs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDegradeOnStorePoisoning is the headline degradation contract:
// an fsync failure poisons the store; the very ingest that hit it is
// still acknowledged (memory-only), later ingest and every read keep
// working, and health reports degraded with the triggering error.
func TestDegradeOnStorePoisoning(t *testing.T) {
	e, fs := attachFaultStore(t, t.TempDir())
	defer e.Close()

	jb, err := e.Register("victim", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if got := e.Health().Status; got != StatusHealthy {
		t.Fatalf("pre-fault health = %q", got)
	}

	// Permanent fsync failure: the next commit poisons the store.
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
	n, err := jb.Ingest(flat(6000, 2, 20))
	if err != nil {
		t.Fatalf("ingest across the poisoning failed: %v", err)
	}
	if n == 0 {
		t.Fatal("poisoned-commit ingest accepted nothing")
	}

	h := e.Health()
	if h.Status != StatusDegraded {
		t.Fatalf("health = %q, want degraded", h.Status)
	}
	if h.Error == "" {
		t.Error("degraded health carries no error")
	}
	if got := e.Stats().Health; got != StatusDegraded {
		t.Fatalf("Stats.Health = %q, want degraded", got)
	}

	// Ingest keeps working memory-only.
	if _, err := jb.Ingest(flat(6000, 2, 40)); err != nil {
		t.Fatalf("degraded ingest: %v", err)
	}
	// New registrations are admitted memory-only.
	jb2, err := e.Register("during-outage", 2)
	if err != nil {
		t.Fatalf("degraded Register: %v", err)
	}
	if _, err := jb2.Ingest(flat(7000, 2, 5)); err != nil {
		t.Fatalf("degraded ingest on new job: %v", err)
	}
	// Reads keep answering.
	if _, err := jb.Result(); err != nil {
		t.Fatalf("degraded Result: %v", err)
	}
	if lst, err := e.Jobs(0, 10); err != nil || lst.Total != 2 {
		t.Fatalf("degraded Jobs = %+v, %v", lst, err)
	}
	if _, err := e.Executions(); err != nil {
		t.Fatalf("degraded Executions: %v", err)
	}
	// Labelling still learns, memory-only.
	feedUntilComplete(t, jb)
	if _, err := jb.Label("ft", "X"); err != nil {
		t.Fatalf("degraded Label: %v", err)
	}
}

// feedUntilComplete feeds flat telemetry until the stream's window
// closes so the job becomes labellable.
func feedUntilComplete(t *testing.T, jb *Job) {
	t.Helper()
	for upTo := 60; upTo <= 1200; upTo += 60 {
		done, err := jb.Complete()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
		if _, err := jb.Ingest(flat(6000, 2, upTo)); err != nil {
			t.Fatal(err)
		}
	}
	done, _ := jb.Complete()
	if !done {
		t.Fatal("job never completed")
	}
}

// TestProbeReopensStore: once the fault clears, the background probe
// reopens the store and the engine returns to durable mode — new jobs
// are WAL-backed again, jobs that lived through the outage stay
// memory-only.
func TestProbeReopensStore(t *testing.T) {
	dir := t.TempDir()
	e, fs := attachFaultStore(t, dir)
	defer e.Close()

	jb, err := e.Register("survivor", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
	if _, err := jb.Ingest(flat(6000, 2, 20)); err != nil {
		t.Fatal(err)
	}
	if e.Health().Status != StatusDegraded {
		t.Fatal("engine did not degrade")
	}
	// Samples fed during the outage, then heal the disk.
	if _, err := jb.Ingest(flat(6000, 2, 30)); err != nil {
		t.Fatal(err)
	}
	fs.Reset()
	waitFor(t, "probe reopen", func() bool { return e.Health().Status == StatusHealthy })

	h := e.Health()
	if h.StoreReopens == 0 || h.StoreReopenAttempts == 0 {
		t.Fatalf("probe counters not recorded: %+v", h)
	}
	if !e.HasStore() {
		t.Fatal("no store attached after reopen")
	}

	// The survivor stays memory-only: its ingest must not touch the
	// reopened store's WAL (whose replay of it was dropped).
	pre := e.Store().Stats().AppendedRecords
	if _, err := jb.Ingest(flat(6000, 2, 40)); err != nil {
		t.Fatalf("post-reopen ingest on outage job: %v", err)
	}
	if got := e.Store().Stats().AppendedRecords; got != pre {
		t.Errorf("outage-surviving job appended %d WAL records to the reopened store", got-pre)
	}
	if got := e.Store().Stats().LiveJobs; got != 0 {
		t.Errorf("reopened store tracks %d live jobs, want 0 (stale jobs dropped)", got)
	}

	// New jobs are durable again.
	jb2, err := e.Register("fresh", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb2.Ingest(flat(7000, 2, 5)); err != nil {
		t.Fatal(err)
	}
	if got := e.Store().Stats().AppendedRecords; got == pre {
		t.Error("post-reopen job not WAL-backed")
	}

	// A restart of the whole engine sees the durable state: only the
	// fresh job's records.
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	e2 := New(testDict(t))
	recovered, err := e2.OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1 (fresh)", recovered)
	}
	if _, ok := e2.Lookup("fresh"); !ok {
		t.Error("fresh job missing after restart")
	}
	if _, ok := e2.Lookup("survivor"); ok {
		t.Error("outage job resurrected durable state it never had")
	}
}

// TestDegradeRegisterPoisoning: a poisoning first surfaced by Register
// still admits the job memory-only and degrades the engine.
func TestDegradeRegisterPoisoning(t *testing.T) {
	e, fs := attachFaultStore(t, t.TempDir())
	defer e.Close()
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
	jb, err := e.Register("first", 2)
	if err != nil {
		t.Fatalf("Register across poisoning = %v, want memory-only admission", err)
	}
	if e.Health().Status != StatusDegraded {
		t.Fatal("engine did not degrade")
	}
	if _, err := jb.Ingest(flat(6000, 2, 5)); err != nil {
		t.Fatalf("ingest on memory-only job: %v", err)
	}
}

// TestReadonlyOnDiskFull is the disk-full contract end to end: ENOSPC
// on the WAL flips the engine to read-only (not degraded, not
// poisoned), every read keeps serving, every write is shed with the
// retryable ErrReadOnly, and once space frees the probe resumes
// durable mode with the surviving job still WAL-backed — no acked
// sample lost.
func TestReadonlyOnDiskFull(t *testing.T) {
	dir := t.TempDir()
	e, fs := attachFaultStore(t, dir)
	defer e.Close()

	jb, err := e.Register("tenant", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
		t.Fatal(err)
	}

	// Fill the disk: free space reads 0 (so the probe cannot resume
	// yet) and the next WAL write answers ENOSPC.
	fs.SetFree(0)
	fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC})
	if _, err := jb.Ingest(flat(6000, 2, 20)); !errors.Is(err, ErrReadOnly) || !errors.Is(err, ErrStore) {
		t.Fatalf("disk-full ingest = %v, want ErrStore+ErrReadOnly", err)
	}

	h := e.Health()
	if h.Status != StatusReadonly {
		t.Fatalf("health = %q, want readonly", h.Status)
	}
	if h.Error == "" {
		t.Error("readonly health carries no error")
	}
	if h.Disk == nil || !h.Disk.ReadOnly || h.Disk.FreeBytes != 0 {
		t.Fatalf("disk section = %+v, want read_only with 0 free", h.Disk)
	}
	if got := e.Stats().Health; got != StatusReadonly {
		t.Fatalf("Stats.Health = %q, want readonly", got)
	}

	// Every read keeps serving from the still-open store.
	if _, err := jb.Result(); err != nil {
		t.Fatalf("readonly Result: %v", err)
	}
	if lst, err := e.Jobs(0, 10); err != nil || lst.Total != 1 {
		t.Fatalf("readonly Jobs = %+v, %v", lst, err)
	}
	if sd, err := e.Series("tenant"); err != nil || sd.Source != "live" {
		t.Fatalf("readonly Series = %+v, %v", sd, err)
	}
	if _, err := e.Executions(); err != nil {
		t.Fatalf("readonly Executions: %v", err)
	}

	// Every write is shed with the retryable identity.
	if _, err := jb.Ingest(flat(6000, 2, 30)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("readonly ingest = %v, want ErrReadOnly", err)
	}
	if _, err := e.Register("newcomer", 2); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("readonly Register = %v, want ErrReadOnly", err)
	}
	if err := jb.Close(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("readonly Close = %v, want ErrReadOnly", err)
	}

	// Space frees: the probe bounces the store and durable mode
	// resumes with the tenant re-pinned, not dropped.
	fs.Reset()
	waitFor(t, "disk-full resume", func() bool { return e.Health().Status == StatusHealthy })
	if got := e.Store().Stats().LiveJobs; got != 1 {
		t.Fatalf("reopened store tracks %d live jobs, want 1 (tenant re-pinned)", got)
	}
	pre := e.Store().Stats().AppendedRecords
	if _, err := jb.Ingest(flat(6000, 2, 40)); err != nil {
		t.Fatalf("post-resume ingest: %v", err)
	}
	if got := e.Store().Stats().AppendedRecords; got == pre {
		t.Error("post-resume ingest not WAL-backed: tenant lost durability")
	}

	// Restart over the directory: exactly the acked samples survive.
	acked := int64(0)
	for _, lj := range e.Store().Live() {
		acked += lj.Samples
	}
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	e2 := New(testDict(t))
	recovered, err := e2.OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", recovered)
	}
	replayed := int64(0)
	for _, lj := range e2.Store().Live() {
		replayed += lj.Samples
	}
	if replayed != acked {
		t.Fatalf("replayed %d samples, acked %d — durability hole across readonly window", replayed, acked)
	}
}

// TestReadonlyResumeWaitsForHeadroom: the probe must not bounce the
// readonly store while free space is still below the watermark — the
// reads it serves would go away for a resume that immediately fails
// back to readonly.
func TestReadonlyResumeWaitsForHeadroom(t *testing.T) {
	fs := vfs.NewFault(vfs.OS{}, 1)
	st, err := tsdb.OpenOptions(t.TempDir(), tsdb.Options{FS: fs, DiskLowBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e := New(testDict(t))
	e.StoreProbeInterval = time.Millisecond
	if _, err := e.AttachStore(st); err != nil {
		st.Close()
		t.Fatal(err)
	}
	defer e.Close()

	jb, err := e.Register("j", 2)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFree(1 << 20) // below the 4 MiB watermark
	fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC, Times: 1})
	if _, err := jb.Ingest(flat(6000, 2, 10)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ingest = %v, want ErrReadOnly", err)
	}
	// The write fault is gone but space is still low: many probe
	// ticks later the engine must still be readonly, store attached.
	time.Sleep(30 * time.Millisecond)
	if got := e.Health().Status; got != StatusReadonly {
		t.Fatalf("health with low disk = %q, want readonly", got)
	}
	if !e.HasStore() {
		t.Fatal("readonly store detached while waiting for headroom")
	}
	if attempts := e.Health().StoreReopenAttempts; attempts == 0 {
		t.Fatal("probe never ticked")
	}
	// Headroom returns (above the watermark): resume.
	fs.SetFree(64 << 20)
	waitFor(t, "resume after headroom", func() bool { return e.Health().Status == StatusHealthy })
	if _, err := jb.Ingest(flat(6000, 2, 20)); err != nil {
		t.Fatalf("post-resume ingest: %v", err)
	}
}

// TestCloseStoreWhileDegraded: shutting down a degraded engine stops
// the probe and leaves health clean.
func TestCloseStoreWhileDegraded(t *testing.T) {
	e, fs := attachFaultStore(t, t.TempDir())
	jb, err := e.Register("j", 2)
	if err != nil {
		t.Fatal(err)
	}
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
	if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if e.Health().Status != StatusDegraded {
		t.Fatal("engine did not degrade")
	}
	e.CloseStore() // error expected from the poisoned close; must not hang
	if got := e.Health().Status; got != StatusHealthy {
		t.Fatalf("health after CloseStore = %q", got)
	}
	if e.HasStore() {
		t.Fatal("store still attached")
	}
	if _, err := jb.Ingest(flat(6000, 2, 20)); err != nil {
		t.Fatalf("memory-only ingest after CloseStore: %v", err)
	}
}

// TestAcquireIngestGate exercises the admission gate directly: both
// bounds, rollback on refusal, release restoring capacity, and the
// health readout.
func TestAcquireIngestGate(t *testing.T) {
	e := New(testDict(t))
	e.MaxIngestBytes = 1000
	e.MaxIngestBatches = 2

	rel1, err := e.AcquireIngest(600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AcquireIngest(600); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("byte-cap breach = %v, want ErrOverloaded", err)
	}
	rel2, err := e.AcquireIngest(100)
	if err != nil {
		t.Fatalf("within-cap acquire refused: %v", err)
	}
	if _, err := e.AcquireIngest(100); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch-cap breach = %v, want ErrOverloaded", err)
	}
	if got := e.Health().Status; got != StatusReadonly {
		t.Fatalf("saturated health = %q, want readonly", got)
	}
	if got := e.Health().IngestShedTotal; got != 2 {
		t.Fatalf("shed total = %d, want 2", got)
	}
	rel1()
	rel1() // idempotent
	rel2()
	h := e.Health()
	if h.IngestInflightBytes != 0 || h.IngestInflightBatches != 0 {
		t.Fatalf("gate not drained: %+v", h)
	}
	if h.Status != StatusHealthy {
		t.Fatalf("drained health = %q", h.Status)
	}
	if _, err := e.AcquireIngest(900); err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
}

// TestIngestUnaffectedByGateDefaults: the default caps are far above a
// normal request; plain ingest never sees the gate.
func TestIngestUnaffectedByGateDefaults(t *testing.T) {
	e := New(testDict(t))
	rel, err := e.AcquireIngest(1 << 20)
	if err != nil {
		t.Fatalf("default gate refused 1 MiB: %v", err)
	}
	rel()
}
