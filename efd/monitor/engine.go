// Package monitor is the embeddable always-on recognition engine: the
// HTTP-independent core of the efdd monitoring service, usable
// in-process by any Go program that wants to recognize live HPC jobs
// from streaming telemetry.
//
// An Engine wraps a shared fingerprint dictionary (concurrent
// recognition, exclusive online learning), a sharded table of live
// jobs, and — optionally — a durable telemetry store (OpenStore) that
// write-ahead logs ingest and turns labelled jobs into re-recognizable
// stored executions.
//
// # Lifecycle
//
// Register a job, feed its telemetry, poll recognition, then either
// label it (online learning: the execution's fingerprints join the
// dictionary) or close it:
//
//	eng := monitor.New(dict)
//	job, _ := eng.Register("job-42", 4)
//	job.Ingest(samples)             // or job.IngestRun(columnar runs)
//	state, _ := job.Result()        // answers two minutes in
//	job.Label("lammps", "X")        // or job.Close()
//
// Multi-job feeders (an LDMS aggregator fanning in a whole cluster)
// use the engine-level batch forms IngestBatches / IngestRuns, which
// lock each shard once per call and commit the durable store once for
// the whole batch.
//
// # Concurrency
//
// All methods are safe for concurrent use. Jobs live in NumShards
// shards selected by FNV-1a hash of the job ID, each with its own
// RWMutex, and every job carries its own mutex serializing its
// stream — ingest for job A proceeds in parallel with recognition of
// job B. Sample ingest takes no dictionary lock at all (it touches
// only the immutable fingerprint configuration), so ingest never
// stalls behind recognition or learning.
package monitor

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/efd"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/tsdb"
)

// NumShards is the number of independent job-table shards. Job IDs
// are assigned to shards by FNV-1a hash.
const NumShards = 64

// MaxJobIDLen bounds the byte length of a registered job ID.
const MaxJobIDLen = 256

// DefaultMaxJobs is the default bound on concurrently tracked jobs.
const DefaultMaxJobs = 4096

// Engine is the monitoring engine. It is safe for concurrent use; see
// the package comment for the locking architecture.
type Engine struct {
	dict *core.SharedDictionary

	// store, when attached (OpenStore/AttachStore), makes ingest
	// durable: runs are WAL-appended on the ingest path, one
	// group-commit fsync acknowledges each batch, and labelled jobs
	// become stored, re-recognizable executions. nil runs in-memory.
	// Atomic because CloseStore swaps it to nil while lock-free
	// ingest paths read it; a request racing CloseStore sees either
	// the store (and may get its "closed" error) or nil — never a
	// torn pointer.
	store atomic.Pointer[tsdb.Store]

	// storeMode gates every store write (see health.go): ModeRW is the
	// only state that touches the store; a degraded engine serves
	// memory-only while the probe reopens the directory.
	storeMode atomic.Int32
	// storeReadMu excludes readers of mapped segment data (Series,
	// Executions, RecognizeStored, storeStats) from the probe's
	// close/munmap + reopen window and from CloseStore. Writers don't
	// take it: they only touch the WAL, which the poisoned store
	// refuses by itself.
	storeReadMu sync.RWMutex
	// storeDir / storeOpts remember how to reopen the store after a
	// poisoning; set by OpenStore/AttachStore.
	storeDir  string
	storeOpts tsdb.Options

	healthMu      sync.Mutex
	healthErr     error
	degradedSince time.Time

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeWG   sync.WaitGroup

	// Ingest admission gate (see AcquireIngest).
	inflightBytes   atomic.Int64
	inflightBatches atomic.Int64

	shards   [NumShards]shard
	jobCount atomic.Int64

	// MaxJobs bounds the number of concurrently tracked jobs (default
	// DefaultMaxJobs); registration beyond it is rejected. Set it
	// before serving traffic.
	MaxJobs int

	// MaxIngestBytes / MaxIngestBatches bound the ingest admission gate
	// (AcquireIngest): at most MaxIngestBatches concurrently admitted
	// ingest requests totalling at most MaxIngestBytes payload bytes.
	// 0 means the defaults (DefaultMaxIngestBytes/-Batches), negative
	// disables that bound. Set before serving traffic.
	MaxIngestBytes   int64
	MaxIngestBatches int

	// StoreProbeInterval is how often a degraded engine retries
	// reopening its store (default DefaultStoreProbeInterval). Set
	// before serving traffic.
	StoreProbeInterval time.Duration

	// Logger, when set before serving traffic, receives the engine's
	// structured operational events — store degrade/heal/read-only
	// transitions (exactly one event per transition), recovery, and
	// quarantine reports. nil discards.
	Logger *slog.Logger

	met counters

	// obsm holds the latency/distribution instruments registered by
	// EnableMetrics; nil means the ingest path takes no clock readings.
	obsm *engineObs
	// inst is forwarded to the store on OpenStore and on every probe
	// reopen, so tsdb-level instruments survive store incarnations.
	inst tsdb.Instruments
}

type shard struct {
	mu   sync.RWMutex
	jobs map[string]*job
}

// job is one tracked stream. Its mutex serializes all access to the
// stream and the ingest bookkeeping; the shard lock only guards the
// map that holds it.
type job struct {
	mu      sync.Mutex
	stream  *core.Stream
	nodes   int
	samples int64
	lastOff time.Duration
	// st pins the store incarnation this job is registered in; nil for
	// memory-only jobs (no store, or the job lived through a store
	// outage). Writes resolve their store via Engine.storeFor, which
	// requires st to equal the currently attached store — a stale
	// pointer silently falls back to memory-only.
	st *tsdb.Store
	// done marks a job that has been labelled or closed; a caller
	// that resolved the pointer before removal treats it as gone.
	done bool
	// colOff/colVal are the job's reused ingest scratch: feedSamples
	// regroups each wire batch into columnar (metric, node) runs here
	// before handing them to Stream.FeedRun, so steady-state ingest
	// allocates nothing per batch. Guarded by mu like the stream.
	colOff []time.Duration
	colVal []float64
}

// counters are the engine's monotonically increasing metrics,
// surfaced by Stats.
type counters struct {
	registered      atomic.Int64
	deleted         atomic.Int64
	learned         atomic.Int64
	sampleBatches   atomic.Int64
	samplesAccepted atomic.Int64
	batchesRejected atomic.Int64
	recognitions    atomic.Int64
	recovered       atomic.Int64
	rerecognitions  atomic.Int64
	shed            atomic.Int64
	probeAttempts   atomic.Int64
	probeReopens    atomic.Int64
	// Store-mode transition counters, bumped exactly once per
	// transition alongside the matching log event (see health.go).
	storeDegraded atomic.Int64
	storeReadonly atomic.Int64
	storeHealed   atomic.Int64
}

// New returns an engine over the dictionary. The engine takes
// ownership of the dictionary's concurrency: all further access must
// go through the engine (or Dictionary()).
func New(dict *efd.Dictionary) *Engine {
	e := &Engine{dict: core.Share(dict), MaxJobs: DefaultMaxJobs}
	for i := range e.shards {
		e.shards[i].jobs = make(map[string]*job)
	}
	return e
}

// Dictionary exposes the engine's shared dictionary for direct
// read/learn access outside the job lifecycle (ad-hoc recognitions,
// statistics). The engine's own locking is unaffected.
func (e *Engine) Dictionary() *efd.SharedDictionary { return e.dict }

// SaveDictionary writes the dictionary under shared access, so a save
// never observes a half-applied Learn.
func (e *Engine) SaveDictionary(w io.Writer) error {
	var err error
	e.dict.Read(func(d *core.Dictionary) { err = d.Save(w) })
	return err
}

// shardFor selects the shard of a job ID by FNV-1a hash.
func (e *Engine) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &e.shards[h%NumShards]
}

// getJob resolves a job ID to its live job, or nil.
func (e *Engine) getJob(id string) *job {
	sh := e.shardFor(id)
	sh.mu.RLock()
	j := sh.jobs[id]
	sh.mu.RUnlock()
	return j
}

// removeJob unlinks a specific job pointer from its shard, tolerating
// the ID having been re-registered in the meantime.
func (e *Engine) removeJob(id string, j *job) {
	sh := e.shardFor(id)
	sh.mu.Lock()
	if sh.jobs[id] == j {
		delete(sh.jobs, id)
		e.jobCount.Add(-1)
	}
	sh.mu.Unlock()
}

// validateJobID enforces the registration-time job ID rules. IDs
// containing '/' would collide with path routing in the HTTP adapter,
// and "."/".." are unreachable after ServeMux path cleaning, so all
// are rejected up front.
func validateJobID(id string) error {
	switch {
	case id == "":
		return fmt.Errorf("%w: job_id required", ErrInvalid)
	case len(id) > MaxJobIDLen:
		return fmt.Errorf("%w: job_id longer than %d bytes", ErrInvalid, MaxJobIDLen)
	case strings.Contains(id, "/"):
		return fmt.Errorf("%w: job_id must not contain '/'", ErrInvalid)
	case id == "." || id == "..":
		return fmt.Errorf("%w: job_id must not be '.' or '..'", ErrInvalid)
	}
	return nil
}

// maxOffsetS is the largest offset (in seconds) representable as a
// time.Duration; larger offsets would overflow the conversion.
var maxOffsetS = float64(math.MaxInt64) / float64(time.Second)

// ValidateSamples rejects non-finite offsets/values and offsets whose
// Duration conversion would overflow, before anything is fed — a NaN
// value would otherwise permanently poison the job's Welford
// accumulators. The returned error wraps ErrInvalid.
func ValidateSamples(jobID string, samples []Sample) error {
	for i, smp := range samples {
		// >=/<=: maxOffsetS is float64(MaxInt64)/1e9 and float64
		// rounds MaxInt64 up to 2^63, so equality already overflows
		// the Duration conversion.
		if math.IsNaN(smp.OffsetS) || math.IsInf(smp.OffsetS, 0) || smp.OffsetS <= -maxOffsetS || smp.OffsetS >= maxOffsetS {
			return fmt.Errorf("%w: job %q sample %d: non-finite or out-of-range offset_s", ErrInvalid, jobID, i)
		}
		if math.IsNaN(smp.Value) || math.IsInf(smp.Value, 0) {
			return fmt.Errorf("%w: job %q sample %d: non-finite value", ErrInvalid, jobID, i)
		}
	}
	return nil
}

// validateRuns applies the same value hygiene to columnar runs (their
// offsets are already time.Durations, so only the values can smuggle
// in a NaN).
func validateRuns(jobID string, runs []Run) error {
	for ri, run := range runs {
		if len(run.Offsets) != len(run.Values) {
			return fmt.Errorf("%w: job %q run %d: column lengths differ (%d offsets, %d values)", ErrInvalid, jobID, ri, len(run.Offsets), len(run.Values))
		}
		for i, v := range run.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: job %q run %d sample %d: non-finite value", ErrInvalid, jobID, ri, i)
			}
		}
	}
	return nil
}

// Register starts tracking a job on the given number of nodes and
// returns its handle. With a store attached the registration is
// durable before Register returns.
func (e *Engine) Register(id string, nodes int) (*Job, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("%w: job_id and positive nodes required", ErrInvalid)
	}
	if err := validateJobID(id); err != nil {
		return nil, err
	}
	// Disk-full read-only mode sheds registrations outright (instead of
	// admitting them memory-only, as a poisoned-store outage does):
	// writes resume durable the moment space frees, and every job
	// admitted before then would be stuck memory-only for its lifetime.
	if err := e.shedWrite(nil); err != nil {
		return nil, storeErr("registration", err)
	}
	sh := e.shardFor(id)
	// Cheap precheck so doomed registrations (duplicates, full table)
	// answer from the shard map alone, without building a stream or
	// waiting on the dictionary lock behind a Learn. Both conditions
	// are re-checked authoritatively under the write lock below.
	sh.mu.RLock()
	_, exists := sh.jobs[id]
	sh.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("%w: %q", ErrJobExists, id)
	}
	if e.jobCount.Load() >= int64(e.MaxJobs) {
		return nil, fmt.Errorf("%w (%d)", ErrTableFull, e.MaxJobs)
	}
	var stream *core.Stream
	e.dict.Read(func(d *core.Dictionary) { stream = core.NewStream(d, nodes) })
	sh.mu.Lock()
	if _, exists := sh.jobs[id]; exists {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrJobExists, id)
	}
	if e.jobCount.Add(1) > int64(e.MaxJobs) {
		e.jobCount.Add(-1)
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w (%d)", ErrTableFull, e.MaxJobs)
	}
	j := &job{stream: stream, nodes: nodes}
	// Pin the store incarnation before the job becomes reachable:
	// feeders that race ahead of the durable registration resolve the
	// same store and fail their append (unknown job) without touching
	// the stream, so memory never runs ahead of the WAL.
	var st *tsdb.Store
	if e.storeMode.Load() == storeModeRW {
		st = e.store.Load()
	}
	j.st = st
	sh.jobs[id] = j
	sh.mu.Unlock()
	if st != nil {
		// Durable registration.
		if err := st.Register(id, nodes); err != nil {
			if errors.Is(err, tsdb.ErrJobExists) || !e.noteStoreError(st, err) {
				e.removeJob(id, j)
				return nil, storeErr("registration", err)
			}
			// The store failed (or was closed) under the registration:
			// the engine degrades but the job is admitted memory-only,
			// like every other job during an outage.
			j.mu.Lock()
			j.st = nil
			j.mu.Unlock()
		}
	}
	e.met.registered.Add(1)
	return &Job{e: e, id: id, j: j}, nil
}

// Lookup resolves a live job to its handle.
func (e *Engine) Lookup(id string) (*Job, bool) {
	j := e.getJob(id)
	if j == nil {
		return nil, false
	}
	return &Job{e: e, id: id, j: j}, true
}

// IngestBatches feeds a multi-job batch of wire samples: every batch
// is validated before anything is fed (an invalid batch rejects the
// whole call with ErrInvalid, leaving no partial state), batches are
// resolved shard by shard (one read-lock per shard per call), and a
// store commit — one fsync — acknowledges the entire call. It returns
// the number of samples fed and the sorted IDs of unknown jobs;
// feeding the rest proceeds despite unknowns.
func (e *Engine) IngestBatches(batches []Batch) (accepted int, unknown []string, err error) {
	start := e.obsStart()
	accepted, unknown, err = e.ingestBatches(batches)
	e.observeIngest(start, accepted)
	return accepted, unknown, err
}

func (e *Engine) ingestBatches(batches []Batch) (accepted int, unknown []string, err error) {
	// Count attempts first so rejected batches stay a subset of
	// attempted ones in Stats (rejection rate can never read above
	// 100%).
	e.met.sampleBatches.Add(int64(len(batches)))
	invalid := 0
	var firstErr error
	for _, b := range batches {
		verr := validateJobID(b.JobID)
		if verr == nil {
			verr = ValidateSamples(b.JobID, b.Samples)
		}
		if verr != nil {
			invalid++
			if firstErr == nil {
				firstErr = verr
			}
		}
	}
	if invalid > 0 {
		e.met.batchesRejected.Add(int64(invalid))
		return 0, nil, firstErr
	}
	if len(batches) == 1 {
		// Single-job fast path (the per-node LDMS forwarder shape):
		// resolve directly, no shard grouping.
		b := batches[0]
		j := e.getJob(b.JobID)
		if j == nil {
			return 0, []string{b.JobID}, nil
		}
		n, ok, err := e.feedSamples(b.JobID, j, b.Samples)
		accepted = n
		if err != nil {
			return accepted, nil, err
		}
		if !ok {
			return accepted, []string{b.JobID}, nil
		}
		return accepted, nil, e.commitAccepted(accepted)
	}
	work, unknown := e.resolveByShard(len(batches), func(i int) string { return batches[i].JobID })
	for _, rw := range work {
		b := batches[rw.idx]
		n, ok, err := e.feedSamples(b.JobID, rw.j, b.Samples)
		accepted += n
		if err != nil {
			return accepted, nil, err
		}
		if !ok {
			unknown = append(unknown, b.JobID)
		}
	}
	// Sorted: shard-map iteration order is nondeterministic.
	sort.Strings(unknown)
	return accepted, unknown, e.commitAccepted(accepted)
}

// resolvedJob pairs a request index with its live job.
type resolvedJob struct {
	idx int
	j   *job
}

// resolveByShard resolves request entries 0..n-1 (whose job ID is
// id(i)) to live jobs, grouping by shard so each shard's read lock is
// taken once per call regardless of how many entries land on it.
// Unresolved IDs are returned separately.
func (e *Engine) resolveByShard(n int, id func(int) string) (work []resolvedJob, unknown []string) {
	byShard := make(map[*shard][]int, 1)
	for i := 0; i < n; i++ {
		sh := e.shardFor(id(i))
		byShard[sh] = append(byShard[sh], i)
	}
	work = make([]resolvedJob, 0, n)
	for sh, idxs := range byShard {
		sh.mu.RLock()
		for _, i := range idxs {
			if j := sh.jobs[id(i)]; j != nil {
				work = append(work, resolvedJob{idx: i, j: j})
			} else {
				unknown = append(unknown, id(i))
			}
		}
		sh.mu.RUnlock()
	}
	return work, unknown
}

// IngestRuns is IngestBatches for columnar run batches — the binary
// wire path and the native form for columnar feeders. No regrouping
// happens: each run feeds the stream (and the WAL) as one columnar
// append.
func (e *Engine) IngestRuns(batches []RunBatch) (accepted int, unknown []string, err error) {
	start := e.obsStart()
	accepted, unknown, err = e.ingestRuns(batches)
	e.observeIngest(start, accepted)
	return accepted, unknown, err
}

func (e *Engine) ingestRuns(batches []RunBatch) (accepted int, unknown []string, err error) {
	e.met.sampleBatches.Add(int64(len(batches)))
	invalid := 0
	var firstErr error
	for _, b := range batches {
		verr := validateJobID(b.JobID)
		if verr == nil {
			verr = validateRuns(b.JobID, b.Runs)
		}
		if verr != nil {
			invalid++
			if firstErr == nil {
				firstErr = verr
			}
		}
	}
	if invalid > 0 {
		e.met.batchesRejected.Add(int64(invalid))
		return 0, nil, firstErr
	}
	if len(batches) == 1 {
		// Single-job fast path, mirroring IngestBatches: no shard
		// grouping allocations on the binary forwarder hot path.
		b := batches[0]
		j := e.getJob(b.JobID)
		if j == nil {
			return 0, []string{b.JobID}, nil
		}
		n, ok, err := e.feedRuns(b.JobID, j, b.Runs)
		accepted = n
		if err != nil {
			return accepted, nil, err
		}
		if !ok {
			return accepted, []string{b.JobID}, nil
		}
		return accepted, nil, e.commitAccepted(accepted)
	}
	work, unknown := e.resolveByShard(len(batches), func(i int) string { return batches[i].JobID })
	for _, rw := range work {
		b := batches[rw.idx]
		n, ok, err := e.feedRuns(b.JobID, rw.j, b.Runs)
		accepted += n
		if err != nil {
			return accepted, nil, err
		}
		if !ok {
			unknown = append(unknown, b.JobID)
		}
	}
	sort.Strings(unknown)
	return accepted, unknown, e.commitAccepted(accepted)
}

// commitAccepted makes a batch durable: one group-commit fsync
// acknowledges however many runs the call appended. A commit failure
// leaves the streams already fed (a retry would double-feed them);
// ingest is at-least-once under storage errors, and an fsync failure
// means the durable state is suspect anyway — restart and replay the
// WAL rather than limp on.
func (e *Engine) commitAccepted(accepted int) error {
	if accepted > 0 && e.storeMode.Load() == storeModeRW {
		if st := e.store.Load(); st != nil {
			if err := st.Commit(); err != nil && !e.noteStoreError(st, err) {
				return storeErr("commit", err)
			}
			// An absorbed commit failure (poisoning, graceful close)
			// acknowledges the batch memory-only: the streams are fed
			// and the engine has degraded — reads and further ingest
			// keep working, which is the degradation contract.
		}
	}
	e.met.samplesAccepted.Add(int64(accepted))
	return nil
}

// feedSamples applies one batch of pre-validated samples to a job
// under its mutex, regrouping them into contiguous (metric, node)
// runs in the job's reused scratch — LDMS forwarders emit long runs
// of one metric on one node, so the stream resolves metric
// configuration and window accumulators once per run instead of once
// per sample.
func (e *Engine) feedSamples(id string, j *job, samples []Sample) (int, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return 0, false, nil
	}
	fed := 0
	for i := 0; i < len(samples); {
		metric, node := samples[i].Metric, samples[i].Node
		j.colOff, j.colVal = j.colOff[:0], j.colVal[:0]
		for ; i < len(samples) && samples[i].Metric == metric && samples[i].Node == node; i++ {
			// Round, don't truncate: a forwarder that accumulated
			// 59.999999999999996 means the 60 s tick, and truncation
			// would silently drop it from the [60:120) window.
			// ValidateSamples already bounded the magnitude.
			offset := time.Duration(math.Round(samples[i].OffsetS * float64(time.Second)))
			j.colOff = append(j.colOff, offset)
			j.colVal = append(j.colVal, samples[i].Value)
		}
		n, ok, err := e.feedRunLocked(id, j, metric, node, j.colOff, j.colVal, fed)
		fed += n
		if !ok || err != nil {
			return fed, ok, err
		}
	}
	j.samples += int64(fed)
	return fed, true, nil
}

// feedRuns is feedSamples for ready-made columnar runs.
func (e *Engine) feedRuns(id string, j *job, runs []Run) (int, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return 0, false, nil
	}
	fed := 0
	for _, run := range runs {
		n, ok, err := e.feedRunLocked(id, j, run.Metric, run.Node, run.Offsets, run.Values, fed)
		fed += n
		if !ok || err != nil {
			return fed, ok, err
		}
	}
	j.samples += int64(fed)
	return fed, true, nil
}

// feedRunLocked appends one columnar run to the WAL (store mode) and
// the stream, under the job mutex. No dictionary lock is taken: Feed
// only reads the immutable fingerprint configuration, so ingest never
// stalls behind recognition or learning. With a store attached the
// run is WAL-appended BEFORE it reaches the stream, so the in-memory
// state never runs ahead of what a restart can replay; the fsync
// happens once per batch (commitAccepted). fedSoFar is the batch's
// running total, needed to book partial progress on a store error.
func (e *Engine) feedRunLocked(id string, j *job, metric string, node int, offs []time.Duration, vals []float64, fedSoFar int) (int, bool, error) {
	// Read-only mode: a store-backed job's append is shed with the
	// retryable error instead of silently going memory-only — the
	// stream must stay in lockstep with the WAL so the job can resume
	// durable when space frees.
	if err := e.shedWrite(j); err != nil {
		j.samples += int64(fedSoFar)
		return 0, true, storeErr("append", err)
	}
	if st := e.storeFor(j); st != nil {
		if err := st.Append(id, metric, node, offs, vals); err != nil {
			if errors.Is(err, tsdb.ErrUnknownJob) {
				// The documented register race: the job is in the
				// shard map but its store registration has not landed
				// yet. It can only hit the first run (store
				// registration is atomic and outlives the job), so
				// nothing of this job was fed — report it like an
				// unknown job instead of failing jobs already fed in
				// this batch, whose WAL records still need the
				// batch's commit.
				j.samples += int64(fedSoFar)
				return 0, false, nil
			}
			if !e.noteStoreError(st, err) {
				j.samples += int64(fedSoFar)
				return 0, true, storeErr("append", err)
			}
			// Store poisoned (or gracefully closed) mid-batch: the
			// engine degrades and this run — like everything after it —
			// is fed memory-only. Fall through to the stream feed.
		}
	}
	for _, off := range offs {
		if off > j.lastOff {
			j.lastOff = off
		}
	}
	j.stream.FeedRun(metric, node, offs, vals)
	return len(vals), true, nil
}

// Jobs returns a deterministic (ID-sorted), paginated listing of live
// jobs with lightweight per-job state. Recognition state is
// deliberately per-job (Job.Result), so a wide listing never runs
// recognition for every job.
func (e *Engine) Jobs(offset, limit int) (Listing, error) {
	if offset < 0 {
		return Listing{}, fmt.Errorf("%w: negative offset %d", ErrInvalid, offset)
	}
	if limit <= 0 || limit > 1000 {
		return Listing{}, fmt.Errorf("%w: limit %d out of range (1..1000)", ErrInvalid, limit)
	}
	type idJob struct {
		id string
		j  *job
	}
	var all []idJob
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for id, j := range sh.jobs {
			all = append(all, idJob{id, j})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, k int) bool { return all[i].id < all[k].id })
	out := Listing{Total: len(all), Offset: offset, Limit: limit, Jobs: []Summary{}}
	if offset < len(all) {
		page := all[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
		for _, ij := range page {
			ij.j.mu.Lock()
			out.Jobs = append(out.Jobs, Summary{
				JobID:       ij.id,
				Nodes:       ij.j.nodes,
				Complete:    ij.j.stream.Complete(),
				Samples:     ij.j.samples,
				LastOffsetS: ij.j.lastOff.Seconds(),
			})
			ij.j.mu.Unlock()
		}
	}
	return out, nil
}

// DictionaryInfo snapshots the dictionary statistics.
func (e *Engine) DictionaryInfo() DictionaryInfo {
	var out DictionaryInfo
	e.dict.Read(func(d *core.Dictionary) {
		st := d.Stats()
		out = DictionaryInfo{
			Keys: st.Keys, Exclusive: st.Exclusive, Collisions: st.Collisions,
			Labels: st.Labels, Depth: st.Depth, Apps: d.Apps(),
		}
	})
	out.LiveJobs = int(e.jobCount.Load())
	return out
}

// Stats snapshots the engine's operational counters.
func (e *Engine) Stats() Stats {
	out := Stats{
		LiveJobs:        e.jobCount.Load(),
		MaxJobs:         e.MaxJobs,
		Shards:          NumShards,
		ShardOccupancy:  make([]int, NumShards),
		Registered:      e.met.registered.Load(),
		Deleted:         e.met.deleted.Load(),
		Learned:         e.met.learned.Load(),
		SampleBatches:   e.met.sampleBatches.Load(),
		SamplesAccepted: e.met.samplesAccepted.Load(),
		BatchesRejected: e.met.batchesRejected.Load(),
		Recognitions:    e.met.recognitions.Load(),
		Health:          e.healthStatus(),
		IngestShedTotal: e.met.shed.Load(),
		Store:           e.storeStats(),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		out.ShardOccupancy[i] = len(sh.jobs)
		sh.mu.RUnlock()
	}
	return out
}

// --- the per-job handle ----------------------------------------------

// Job is the handle of one tracked job. A handle stays valid after
// the job is labelled or closed — further calls simply report
// ErrUnknownJob, exactly as a fresh Lookup would.
type Job struct {
	e  *Engine
	id string
	j  *job
}

// ID returns the job's identifier.
func (jb *Job) ID() string { return jb.id }

// Ingest feeds one batch of wire samples and reports how many were
// fed. With a store attached the batch is durable (one fsync) before
// Ingest returns.
func (jb *Job) Ingest(samples []Sample) (int, error) {
	if err := ValidateSamples(jb.id, samples); err != nil {
		jb.e.met.sampleBatches.Add(1)
		jb.e.met.batchesRejected.Add(1)
		return 0, err
	}
	jb.e.met.sampleBatches.Add(1)
	start := jb.e.obsStart()
	n, ok, err := jb.e.feedSamples(jb.id, jb.j, samples)
	if err == nil && ok {
		err = jb.e.commitAccepted(n)
	} else if err == nil {
		err = fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	jb.e.observeIngest(start, n)
	return n, err
}

// IngestRun feeds one columnar (metric, node) run.
func (jb *Job) IngestRun(metric string, node int, offsets []time.Duration, values []float64) (int, error) {
	runs := []Run{{Metric: metric, Node: node, Offsets: offsets, Values: values}}
	if err := validateRuns(jb.id, runs); err != nil {
		jb.e.met.sampleBatches.Add(1)
		jb.e.met.batchesRejected.Add(1)
		return 0, err
	}
	jb.e.met.sampleBatches.Add(1)
	start := jb.e.obsStart()
	n, ok, err := jb.e.feedRuns(jb.id, jb.j, runs)
	if err == nil && ok {
		err = jb.e.commitAccepted(n)
	} else if err == nil {
		err = fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	jb.e.observeIngest(start, n)
	return n, err
}

// Result answers with the job's current recognition state —
// provisional until State.Complete, final (identical to offline
// recognition of the same telemetry) afterwards.
func (jb *Job) Result() (State, error) {
	jb.j.mu.Lock()
	if jb.j.done {
		jb.j.mu.Unlock()
		return State{}, fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	var out State
	// The stream's recognizer scratch is reused across polls (we hold
	// the job mutex, so no concurrent poll can invalidate the Result);
	// the dictionary read section excludes a concurrent Learn while
	// the Result is consumed.
	jb.e.dict.Read(func(*core.Dictionary) {
		res := jb.j.stream.Recognize()
		out = State{
			JobID:      jb.id,
			Complete:   jb.j.stream.Complete(),
			Recognized: res.Recognized(),
			Top:        res.Top(),
			// res.Apps aliases the recognizer's reused scratch; it
			// must be copied before the locks drop or a concurrent
			// poll of the same job would rewrite it mid-encode.
			Apps:       append([]string(nil), res.Apps...),
			Votes:      res.Votes(),
			Confidence: res.Confidence(),
			Matched:    res.Matched,
			Total:      res.Total,
		}
	})
	jb.j.mu.Unlock()
	jb.e.met.recognitions.Add(1)
	jb.e.observeRecognition(&out)
	return out, nil
}

// Complete reports whether the job's fingerprint window has closed —
// the moment Result becomes final. It is much cheaper than Result
// (no recognition pass, no dictionary lock), so per-sample monitors
// should gate their Result polls on it.
func (jb *Job) Complete() (bool, error) {
	jb.j.mu.Lock()
	defer jb.j.mu.Unlock()
	if jb.j.done {
		return false, fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	return jb.j.stream.Complete(), nil
}

// Summary reports the job's lightweight listing state.
func (jb *Job) Summary() (Summary, error) {
	jb.j.mu.Lock()
	defer jb.j.mu.Unlock()
	if jb.j.done {
		return Summary{}, fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	return Summary{
		JobID:       jb.id,
		Nodes:       jb.j.nodes,
		Complete:    jb.j.stream.Complete(),
		Samples:     jb.j.samples,
		LastOffsetS: jb.j.lastOff.Seconds(),
	}, nil
}

// Label learns the completed job into the dictionary under the
// (application, input) label and retires it: the job leaves the live
// table and — with a store attached — becomes a stored,
// re-recognizable execution. Returns the canonical label string.
func (jb *Job) Label(app, input string) (string, error) {
	label, err := apps.ParseLabel(app + "_" + input)
	if err != nil {
		return "", fmt.Errorf("%w: bad label: %v", ErrInvalid, err)
	}
	jb.j.mu.Lock()
	if jb.j.done {
		jb.j.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	if !jb.j.stream.Complete() {
		jb.j.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNotComplete, jb.id)
	}
	// Store first, learn second: Finish mutates nothing when its WAL
	// append fails, so a storage error leaves the job fully intact
	// (still live, still labellable) with the dictionary untouched —
	// whereas Learn cannot be rolled back. Running it under the job
	// mutex and before the unlink also pins the store incarnation:
	// feeders are blocked by j.mu, and a re-registration of the same
	// ID cannot slip in (the ID is still in the shard map, so Register
	// answers ErrJobExists) and have its fresh store entry finished by
	// us.
	if err := jb.e.shedWrite(jb.j); err != nil {
		jb.j.mu.Unlock()
		return "", storeErr("finish", err)
	}
	if st := jb.e.storeFor(jb.j); st != nil {
		if err := st.Finish(jb.id, label.String()); err != nil {
			if !jb.e.noteStoreError(st, err) {
				jb.j.mu.Unlock()
				return "", storeErr("finish", err)
			}
			// Absorbed (store poisoned / closed under us): the label
			// proceeds memory-only — the dictionary still learns, the
			// execution just isn't persisted.
		}
	}
	// Online learning: insert the completed stream's fingerprints
	// under exclusive dictionary access.
	jb.e.dict.Learn(jb.j.stream, label)
	jb.j.done = true
	jb.j.mu.Unlock()
	jb.e.removeJob(jb.id, jb.j)
	jb.e.met.learned.Add(1)
	return label.String(), nil
}

// Close forgets the job outright: its stream is discarded and — with
// a store attached — its telemetry will not survive the next WAL
// compaction. The fingerprints are NOT learned.
func (jb *Job) Close() error {
	// Same order as Label (job mutex, then shard lock via removeJob):
	// done is set before the unlink, so a feeder that resolved the
	// pointer earlier can never feed an unlinked stream.
	jb.j.mu.Lock()
	if jb.j.done {
		jb.j.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownJob, jb.id)
	}
	// Drop from the store before the unlink, under the job mutex, for
	// the same incarnation-pinning reasons as Label: a failed Drop
	// leaves the job fully alive (no state diverged), and a concurrent
	// re-registration cannot create a fresh store entry for this ID
	// that our Drop would then delete.
	if err := jb.e.shedWrite(jb.j); err != nil {
		jb.j.mu.Unlock()
		return storeErr("drop", err)
	}
	if st := jb.e.storeFor(jb.j); st != nil {
		if err := st.Drop(jb.id); err != nil {
			if !jb.e.noteStoreError(st, err) {
				jb.j.mu.Unlock()
				return storeErr("drop", err)
			}
			// Absorbed: the close proceeds memory-only.
		}
	}
	jb.j.done = true
	jb.j.mu.Unlock()
	jb.e.removeJob(jb.id, jb.j)
	jb.e.met.deleted.Add(1)
	return nil
}
