package monitor

// Graceful degradation, disk-full read-only mode, and overload
// control.
//
// The durable store can poison itself at runtime (a WAL write or
// fsync failure): every further store mutation refuses until a reopen
// replays the disk. Rather than turning those refusals into ingest
// failures, the engine degrades: the store is fenced off, ingest and
// every read keep working memory-only, health reporting flips to
// "degraded" with the triggering error, and a supervised background
// probe keeps attempting to reopen the store directory. When a reopen
// succeeds the engine returns to durable mode — jobs registered from
// then on are WAL-backed again, while jobs that lived through the
// outage stay memory-only (their streams hold samples the store never
// saw; resuming their WAL would persist a lie).
//
// A full disk (ENOSPC/EDQUOT) is different: nothing is corrupt, the
// condition is transient, and every byte already acknowledged is
// intact. The engine enters read-only mode instead — the store stays
// open and keeps serving every read, while writes are SHED with the
// retryable ErrReadOnly (HTTP 503 upstream) rather than absorbed
// memory-only; shedding keeps each stream in lockstep with its WAL,
// so when the probe sees disk headroom again (diskRecovered) the
// store is reopened and the surviving jobs resume fully durable.
//
// Overload control is a separate, engine-level concern: AcquireIngest
// bounds the bytes and batch count admitted concurrently, so a flood
// of oversized ingest requests degrades into fast, explicit shedding
// (HTTP 429 upstream) instead of unbounded memory growth.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/tsdb"
)

// Store modes. The mode gates every store write: only ModeRW touches
// the store. A degraded engine keeps serving from memory; a readonly
// engine keeps the store open for reads and sheds writes until the
// disk has space again.
const (
	storeModeNone     int32 = iota // no store attached
	storeModeRW                    // healthy, durable
	storeModeDegraded              // store poisoned; memory-only until reopened
	storeModeReadonly              // disk full; store serves reads, writes shed
)

// Health status strings, the GET /v1/health vocabulary.
const (
	StatusHealthy  = "healthy"
	StatusDegraded = "degraded"
	StatusReadonly = "readonly"
)

// DefaultStoreProbeInterval is how often a degraded engine attempts to
// reopen its store.
const DefaultStoreProbeInterval = 15 * time.Second

// Default ingest admission bounds; see Engine.MaxIngestBytes.
const (
	DefaultMaxIngestBytes   = 64 << 20
	DefaultMaxIngestBatches = 256
)

// HealthInfo is the engine's health snapshot — the GET /v1/health
// response body.
type HealthInfo struct {
	// Status is "healthy", "degraded" (the durable store failed and a
	// background probe is attempting to reopen it; ingest and reads
	// continue memory-only), or "readonly" (writes are being shed —
	// either the store's disk is full, see Disk, or the ingest
	// admission gate is saturated).
	Status string `json:"status"`
	// Error is the triggering store error while degraded or readonly.
	Error string `json:"error,omitempty"`
	// DegradedForS is how long the engine has been degraded.
	DegradedForS float64 `json:"degraded_for_s,omitempty"`
	// StoreReopenAttempts / StoreReopens count probe activity since the
	// engine started.
	StoreReopenAttempts int64 `json:"store_reopen_attempts,omitempty"`
	StoreReopens        int64 `json:"store_reopens,omitempty"`
	// Ingest admission gate occupancy and lifetime shed count.
	IngestInflightBytes   int64 `json:"ingest_inflight_bytes"`
	IngestInflightBatches int64 `json:"ingest_inflight_batches"`
	IngestShedTotal       int64 `json:"ingest_shed_total"`
	// Disk is the durable store's disk state. Present when the store
	// has a configured low-space watermark or is in read-only mode;
	// omitted otherwise (and always for store-less engines).
	Disk *DiskHealth `json:"disk,omitempty"`
}

// DiskHealth is the disk section of HealthInfo.
type DiskHealth struct {
	// FreeBytes is the space available to the store, as reported by
	// the filesystem; -1 when the platform cannot report it.
	FreeBytes int64 `json:"free_bytes"`
	// LowWatermarkBytes is the configured proactive flush-refusal
	// watermark (StoreOptions.DiskLowBytes); 0 when unset.
	LowWatermarkBytes int64 `json:"low_watermark_bytes"`
	// ReadOnly reports disk-full read-only mode: every read keeps
	// serving, writes answer with a retryable error until the
	// background probe sees space freed and resumes durable mode.
	ReadOnly bool `json:"read_only"`
}

// Health snapshots the engine's health. Degraded wins over readonly:
// an operator fixing a dead disk should not have the signal masked by
// a concurrent traffic spike or a full-but-working disk.
func (e *Engine) Health() HealthInfo {
	out := HealthInfo{
		Status:                StatusHealthy,
		StoreReopenAttempts:   e.met.probeAttempts.Load(),
		StoreReopens:          e.met.probeReopens.Load(),
		IngestInflightBytes:   e.inflightBytes.Load(),
		IngestInflightBatches: e.inflightBatches.Load(),
		IngestShedTotal:       e.met.shed.Load(),
	}
	if e.saturated() {
		out.Status = StatusReadonly
	}
	mode := e.storeMode.Load()
	if mode == storeModeReadonly {
		out.Status = StatusReadonly
		e.healthMu.Lock()
		if e.healthErr != nil {
			out.Error = e.healthErr.Error()
		}
		e.healthMu.Unlock()
	}
	if mode == storeModeDegraded {
		out.Status = StatusDegraded
		e.healthMu.Lock()
		if e.healthErr != nil {
			out.Error = e.healthErr.Error()
		}
		if !e.degradedSince.IsZero() {
			out.DegradedForS = time.Since(e.degradedSince).Seconds()
		}
		e.healthMu.Unlock()
	}
	// The disk section appears once disk state is interesting — a
	// configured watermark or read-only mode — so default health
	// bodies stay stable (and byte-reproducible) across machines.
	if st := e.store.Load(); st != nil && (e.storeOpts.DiskLowBytes > 0 || mode == storeModeReadonly) {
		d := &DiskHealth{FreeBytes: -1, LowWatermarkBytes: e.storeOpts.DiskLowBytes, ReadOnly: mode == storeModeReadonly}
		if free, ok := st.DiskFree(); ok {
			d.FreeBytes = int64(min(free, uint64(math.MaxInt64)))
		}
		out.Disk = d
	}
	return out
}

// healthStatus is the one-word form for Stats.
func (e *Engine) healthStatus() string {
	switch e.storeMode.Load() {
	case storeModeDegraded:
		return StatusDegraded
	case storeModeReadonly:
		return StatusReadonly
	}
	if e.saturated() {
		return StatusReadonly
	}
	return StatusHealthy
}

// saturated reports whether the ingest gate is currently full.
func (e *Engine) saturated() bool {
	if maxN := e.ingestBatchCap(); maxN > 0 && e.inflightBatches.Load() >= maxN {
		return true
	}
	if maxB := e.ingestByteCap(); maxB > 0 && e.inflightBytes.Load() >= maxB {
		return true
	}
	return false
}

func (e *Engine) ingestByteCap() int64 {
	if e.MaxIngestBytes != 0 {
		return e.MaxIngestBytes
	}
	return DefaultMaxIngestBytes
}

func (e *Engine) ingestBatchCap() int64 {
	if e.MaxIngestBatches != 0 {
		return int64(e.MaxIngestBatches)
	}
	return DefaultMaxIngestBatches
}

// AcquireIngest admits one ingest request of approximately `bytes`
// payload bytes into the engine, or refuses with ErrOverloaded when
// admission would exceed MaxIngestBytes / MaxIngestBatches. On success
// the returned release must be called exactly once when the request
// finishes (it tolerates duplicates). The HTTP adapter acquires before
// decoding, so an overload answers from the request headers alone.
func (e *Engine) AcquireIngest(bytes int64) (release func(), err error) {
	if bytes < 0 {
		bytes = 0
	}
	maxB, maxN := e.ingestByteCap(), e.ingestBatchCap()
	if b := e.inflightBytes.Add(bytes); maxB > 0 && b > maxB {
		e.inflightBytes.Add(-bytes)
		e.met.shed.Add(1)
		return nil, fmt.Errorf("%w: %d ingest bytes in flight (cap %d)", ErrOverloaded, b-bytes, maxB)
	}
	if n := e.inflightBatches.Add(1); maxN > 0 && n > maxN {
		e.inflightBatches.Add(-1)
		e.inflightBytes.Add(-bytes)
		e.met.shed.Add(1)
		return nil, fmt.Errorf("%w: %d ingest requests in flight (cap %d)", ErrOverloaded, n-1, maxN)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			e.inflightBytes.Add(-bytes)
			e.inflightBatches.Add(-1)
		})
	}, nil
}

// --- degradation ------------------------------------------------------

// storeFor resolves the store a job's writes should go to, or nil when
// the job runs memory-only: the engine must be in durable mode AND the
// job must have been registered against the currently attached store
// incarnation (a job that lived through an outage stays memory-only —
// its stream holds samples the reopened store never saw). Called with
// j.mu held (j.st is guarded by it).
func (e *Engine) storeFor(j *job) *tsdb.Store {
	if e.storeMode.Load() != storeModeRW {
		return nil
	}
	st := e.store.Load()
	if st == nil || j.st != st {
		return nil
	}
	return st
}

// noteStoreError classifies a store write failure. It returns true
// when the engine absorbs the error — the store was gracefully closed
// under the caller (CloseStore race) or has poisoned itself (the
// engine degrades and the caller proceeds memory-only) — and false
// when the error is the caller's to surface (validation, unknown job,
// a failed flush on a healthy store, or a disk-full write: the engine
// enters read-only mode and the caller sheds the write with a
// retryable error rather than acknowledging it memory-only).
func (e *Engine) noteStoreError(st *tsdb.Store, err error) bool {
	if errors.Is(err, tsdb.ErrClosed) {
		return true
	}
	if errors.Is(err, tsdb.ErrReadOnly) || errors.Is(err, tsdb.ErrDiskFull) || st.ReadOnly() != nil {
		e.readonlyStore(err)
		return false
	}
	if st.Failed() != nil {
		e.degradeStore(err)
		return true
	}
	return false
}

// storeErr wraps a store write failure for callers. Disk-full
// failures additionally carry the retryable ErrReadOnly identity, so
// the HTTP adapter can answer 503 + Retry-After instead of 500.
func storeErr(op string, err error) error {
	if errors.Is(err, ErrReadOnly) {
		return fmt.Errorf("%w %s: %w", ErrStore, op, err)
	}
	if errors.Is(err, tsdb.ErrReadOnly) || errors.Is(err, tsdb.ErrDiskFull) {
		return fmt.Errorf("%w %s: %w: %v", ErrStore, op, ErrReadOnly, err)
	}
	return fmt.Errorf("%w %s: %v", ErrStore, op, err)
}

// shedWrite reports the retryable shed error when the engine's store
// is in read-only mode and the write would need it: engine-level
// writes (j == nil) and writes of jobs backed by the readonly store
// are shed; a job already running memory-only proceeds as before.
// Called with j.mu held when j is non-nil.
func (e *Engine) shedWrite(j *job) error {
	if e.storeMode.Load() != storeModeReadonly {
		return nil
	}
	if j != nil && (j.st == nil || j.st != e.store.Load()) {
		return nil
	}
	return ErrReadOnly
}

// readonlyStore fences writes off and starts the resume probe; the
// store stays attached and keeps serving reads. Only the first caller
// transitions.
func (e *Engine) readonlyStore(err error) {
	if !e.storeMode.CompareAndSwap(storeModeRW, storeModeReadonly) {
		return
	}
	e.healthMu.Lock()
	e.healthErr = err
	e.healthMu.Unlock()
	// Exactly one event + counter bump per transition: the CAS above
	// admits a single caller.
	e.met.storeReadonly.Add(1)
	e.logger().Warn("store entered read-only mode; shedding writes",
		"event", "store_readonly", "error", err.Error())
	e.startProbe()
}

// degradeStore fences the store off and starts the reopen probe. Only
// the first caller transitions; the rest are no-ops.
func (e *Engine) degradeStore(err error) {
	if !e.storeMode.CompareAndSwap(storeModeRW, storeModeDegraded) {
		return
	}
	e.healthMu.Lock()
	e.healthErr = err
	e.degradedSince = time.Now()
	e.healthMu.Unlock()
	e.met.storeDegraded.Add(1)
	e.logger().Error("store degraded; serving memory-only",
		"event", "store_degrade", "error", err.Error())
	e.startProbe()
}

// startProbe launches the background reopen loop, once.
func (e *Engine) startProbe() {
	e.probeMu.Lock()
	defer e.probeMu.Unlock()
	if e.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	e.probeStop = stop
	e.probeWG.Add(1)
	go e.probeLoop(stop)
}

// stopProbe halts the probe (if running) and waits for it to exit.
func (e *Engine) stopProbe() {
	e.probeMu.Lock()
	if e.probeStop != nil {
		close(e.probeStop)
		e.probeStop = nil
	}
	e.probeMu.Unlock()
	e.probeWG.Wait()
}

func (e *Engine) probeLoop(stop chan struct{}) {
	defer func() {
		e.probeMu.Lock()
		if e.probeStop == stop {
			e.probeStop = nil
		}
		e.probeMu.Unlock()
		e.probeWG.Done()
	}()
	interval := e.StoreProbeInterval
	if interval <= 0 {
		interval = DefaultStoreProbeInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if e.attemptReopen() {
				return
			}
		}
	}
}

// attemptReopen closes the unhealthy store and reopens its directory.
// It returns true when the probe's job is over — the reopen succeeded,
// or the store was detached underneath it. The write lock on
// storeReadMu excludes every reader for the close/munmap + reopen
// window, so no mapped segment view is torn down mid-read.
func (e *Engine) attemptReopen() bool {
	e.met.probeAttempts.Add(1)
	mode := e.storeMode.Load()
	switch mode {
	case storeModeDegraded:
	case storeModeReadonly:
		// The readonly store is still open and serving reads; don't
		// bounce it until the disk has real headroom again, so the
		// engine can't flap at the edge of full.
		st := e.store.Load()
		if st == nil {
			return true
		}
		if !e.diskRecovered(st) {
			return false
		}
	default:
		return true
	}
	e.storeReadMu.Lock()
	defer e.storeReadMu.Unlock()
	if m := e.storeMode.Load(); m != mode {
		// CloseStore (or a concurrent transition) got here first.
		return m != storeModeDegraded && m != storeModeReadonly
	}
	old := e.store.Swap(nil)
	if old != nil {
		// Unhealthy close: flush and sync are skipped (crash semantics),
		// but descriptors, mappings, and the directory flock release.
		old.Close()
	}
	st, err := tsdb.OpenOptions(e.storeDir, e.storeOpts)
	if err != nil {
		// The old store is gone; whichever mode we came from, the
		// engine is now fully degraded — memory-only, probe still
		// trying.
		e.storeMode.Store(storeModeDegraded)
		e.healthMu.Lock()
		e.healthErr = err
		if e.degradedSince.IsZero() {
			e.degradedSince = time.Now()
		}
		e.healthMu.Unlock()
		if mode == storeModeReadonly {
			// readonly → degraded is a real transition (reads are gone
			// too); repeated failed reopens while already degraded are
			// not, and stay at debug level.
			e.met.storeDegraded.Add(1)
			e.logger().Error("store degraded; serving memory-only",
				"event", "store_degrade", "error", err.Error())
		} else {
			e.logger().Debug("store reopen attempt failed",
				"event", "store_reopen_failed", "error", err.Error())
		}
		return false
	}
	if mode == storeModeReadonly {
		// Writes were shed for the whole readonly window, so the
		// replayed store and the engine-side streams are still in
		// lockstep: re-pin surviving jobs to the new incarnation and
		// stay durable. Anything the engine no longer tracks is
		// dropped.
		for _, lj := range st.Live() {
			repinned := false
			if j := e.getJob(lj.ID); j != nil {
				j.mu.Lock()
				if j.st == old && !j.done {
					j.st = st
					repinned = true
				}
				j.mu.Unlock()
			}
			if !repinned {
				st.Drop(lj.ID)
			}
		}
	} else {
		// Jobs replayed from the WAL lived through the outage: their
		// engine-side streams hold samples the store never saw, so
		// resuming their WAL entries would persist a divergent history.
		// Drop them from the store — their streams keep serving
		// memory-only (storeFor never resolves them: their j.st is a
		// dead pointer).
		for _, lj := range st.Live() {
			st.Drop(lj.ID)
		}
	}
	e.store.Store(st)
	e.storeMode.Store(storeModeRW)
	e.healthMu.Lock()
	e.healthErr = nil
	e.degradedSince = time.Time{}
	e.healthMu.Unlock()
	e.met.probeReopens.Add(1)
	e.met.storeHealed.Add(1)
	e.logger().Info("store reopened; durable mode resumed",
		"event", "store_heal", "from", modeName(mode))
	return true
}

// diskRecovered reports whether the store's disk has enough headroom
// to leave read-only mode: at least the configured watermark, and
// never less than a 1 MiB floor — resuming into an immediately-full
// disk would just bounce straight back. An unknown free-space reading
// errs toward attempting the resume; the next append settles it.
func (e *Engine) diskRecovered(st *tsdb.Store) bool {
	free, ok := st.DiskFree()
	if !ok {
		return true
	}
	floor := uint64(1 << 20)
	if wm := e.storeOpts.DiskLowBytes; wm > 0 && uint64(wm) > floor {
		floor = uint64(wm)
	}
	return free >= floor
}

// Close shuts the engine down: the reopen probe is stopped and the
// store (when attached) is flushed and closed. Live jobs stay readable
// in memory; the engine may keep serving non-durable traffic.
func (e *Engine) Close() error { return e.CloseStore() }
