package monitor

// Graceful degradation and overload control.
//
// The durable store can poison itself at runtime (a WAL write or fsync
// failure, ENOSPC): every further store mutation refuses until a
// reopen replays the disk. Rather than turning those refusals into
// ingest failures, the engine degrades: the store is fenced off,
// ingest and every read keep working memory-only, health reporting
// flips to "degraded" with the triggering error, and a supervised
// background probe keeps attempting to reopen the store directory.
// When a reopen succeeds the engine returns to durable mode — jobs
// registered from then on are WAL-backed again, while jobs that lived
// through the outage stay memory-only (their streams hold samples the
// store never saw; resuming their WAL would persist a lie).
//
// Overload control is a separate, engine-level concern: AcquireIngest
// bounds the bytes and batch count admitted concurrently, so a flood
// of oversized ingest requests degrades into fast, explicit shedding
// (HTTP 429 upstream) instead of unbounded memory growth.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/tsdb"
)

// Store modes. The mode gates every store write: only ModeRW touches
// the store, and a degraded engine keeps serving from memory.
const (
	storeModeNone     int32 = iota // no store attached
	storeModeRW                    // healthy, durable
	storeModeDegraded              // store poisoned; memory-only until reopened
)

// Health status strings, the GET /v1/health vocabulary.
const (
	StatusHealthy  = "healthy"
	StatusDegraded = "degraded"
	StatusReadonly = "readonly"
)

// DefaultStoreProbeInterval is how often a degraded engine attempts to
// reopen its store.
const DefaultStoreProbeInterval = 15 * time.Second

// Default ingest admission bounds; see Engine.MaxIngestBytes.
const (
	DefaultMaxIngestBytes   = 64 << 20
	DefaultMaxIngestBatches = 256
)

// HealthInfo is the engine's health snapshot — the GET /v1/health
// response body.
type HealthInfo struct {
	// Status is "healthy", "degraded" (the durable store failed and a
	// background probe is attempting to reopen it; ingest and reads
	// continue memory-only), or "readonly" (the ingest admission gate
	// is saturated and new ingest is being shed).
	Status string `json:"status"`
	// Error is the triggering store error while degraded.
	Error string `json:"error,omitempty"`
	// DegradedForS is how long the engine has been degraded.
	DegradedForS float64 `json:"degraded_for_s,omitempty"`
	// StoreReopenAttempts / StoreReopens count probe activity since the
	// engine started.
	StoreReopenAttempts int64 `json:"store_reopen_attempts,omitempty"`
	StoreReopens        int64 `json:"store_reopens,omitempty"`
	// Ingest admission gate occupancy and lifetime shed count.
	IngestInflightBytes   int64 `json:"ingest_inflight_bytes"`
	IngestInflightBatches int64 `json:"ingest_inflight_batches"`
	IngestShedTotal       int64 `json:"ingest_shed_total"`
}

// Health snapshots the engine's health. Degraded wins over readonly:
// an operator fixing a dead disk should not have the signal masked by
// a concurrent traffic spike.
func (e *Engine) Health() HealthInfo {
	out := HealthInfo{
		Status:                StatusHealthy,
		StoreReopenAttempts:   e.met.probeAttempts.Load(),
		StoreReopens:          e.met.probeReopens.Load(),
		IngestInflightBytes:   e.inflightBytes.Load(),
		IngestInflightBatches: e.inflightBatches.Load(),
		IngestShedTotal:       e.met.shed.Load(),
	}
	if e.saturated() {
		out.Status = StatusReadonly
	}
	if e.storeMode.Load() == storeModeDegraded {
		out.Status = StatusDegraded
		e.healthMu.Lock()
		if e.healthErr != nil {
			out.Error = e.healthErr.Error()
		}
		if !e.degradedSince.IsZero() {
			out.DegradedForS = time.Since(e.degradedSince).Seconds()
		}
		e.healthMu.Unlock()
	}
	return out
}

// healthStatus is the one-word form for Stats.
func (e *Engine) healthStatus() string {
	if e.storeMode.Load() == storeModeDegraded {
		return StatusDegraded
	}
	if e.saturated() {
		return StatusReadonly
	}
	return StatusHealthy
}

// saturated reports whether the ingest gate is currently full.
func (e *Engine) saturated() bool {
	if maxN := e.ingestBatchCap(); maxN > 0 && e.inflightBatches.Load() >= maxN {
		return true
	}
	if maxB := e.ingestByteCap(); maxB > 0 && e.inflightBytes.Load() >= maxB {
		return true
	}
	return false
}

func (e *Engine) ingestByteCap() int64 {
	if e.MaxIngestBytes != 0 {
		return e.MaxIngestBytes
	}
	return DefaultMaxIngestBytes
}

func (e *Engine) ingestBatchCap() int64 {
	if e.MaxIngestBatches != 0 {
		return int64(e.MaxIngestBatches)
	}
	return DefaultMaxIngestBatches
}

// AcquireIngest admits one ingest request of approximately `bytes`
// payload bytes into the engine, or refuses with ErrOverloaded when
// admission would exceed MaxIngestBytes / MaxIngestBatches. On success
// the returned release must be called exactly once when the request
// finishes (it tolerates duplicates). The HTTP adapter acquires before
// decoding, so an overload answers from the request headers alone.
func (e *Engine) AcquireIngest(bytes int64) (release func(), err error) {
	if bytes < 0 {
		bytes = 0
	}
	maxB, maxN := e.ingestByteCap(), e.ingestBatchCap()
	if b := e.inflightBytes.Add(bytes); maxB > 0 && b > maxB {
		e.inflightBytes.Add(-bytes)
		e.met.shed.Add(1)
		return nil, fmt.Errorf("%w: %d ingest bytes in flight (cap %d)", ErrOverloaded, b-bytes, maxB)
	}
	if n := e.inflightBatches.Add(1); maxN > 0 && n > maxN {
		e.inflightBatches.Add(-1)
		e.inflightBytes.Add(-bytes)
		e.met.shed.Add(1)
		return nil, fmt.Errorf("%w: %d ingest requests in flight (cap %d)", ErrOverloaded, n-1, maxN)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			e.inflightBytes.Add(-bytes)
			e.inflightBatches.Add(-1)
		})
	}, nil
}

// --- degradation ------------------------------------------------------

// storeFor resolves the store a job's writes should go to, or nil when
// the job runs memory-only: the engine must be in durable mode AND the
// job must have been registered against the currently attached store
// incarnation (a job that lived through an outage stays memory-only —
// its stream holds samples the reopened store never saw). Called with
// j.mu held (j.st is guarded by it).
func (e *Engine) storeFor(j *job) *tsdb.Store {
	if e.storeMode.Load() != storeModeRW {
		return nil
	}
	st := e.store.Load()
	if st == nil || j.st != st {
		return nil
	}
	return st
}

// noteStoreError classifies a store write failure. It returns true
// when the engine absorbs the error — the store was gracefully closed
// under the caller (CloseStore race) or has poisoned itself (the
// engine degrades and the caller proceeds memory-only) — and false
// when the error is the caller's to surface (validation, unknown job,
// a failed flush on a healthy store).
func (e *Engine) noteStoreError(st *tsdb.Store, err error) bool {
	if errors.Is(err, tsdb.ErrClosed) {
		return true
	}
	if st.Failed() != nil {
		e.degradeStore(err)
		return true
	}
	return false
}

// degradeStore fences the store off and starts the reopen probe. Only
// the first caller transitions; the rest are no-ops.
func (e *Engine) degradeStore(err error) {
	if !e.storeMode.CompareAndSwap(storeModeRW, storeModeDegraded) {
		return
	}
	e.healthMu.Lock()
	e.healthErr = err
	e.degradedSince = time.Now()
	e.healthMu.Unlock()
	e.startProbe()
}

// startProbe launches the background reopen loop, once.
func (e *Engine) startProbe() {
	e.probeMu.Lock()
	defer e.probeMu.Unlock()
	if e.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	e.probeStop = stop
	e.probeWG.Add(1)
	go e.probeLoop(stop)
}

// stopProbe halts the probe (if running) and waits for it to exit.
func (e *Engine) stopProbe() {
	e.probeMu.Lock()
	if e.probeStop != nil {
		close(e.probeStop)
		e.probeStop = nil
	}
	e.probeMu.Unlock()
	e.probeWG.Wait()
}

func (e *Engine) probeLoop(stop chan struct{}) {
	defer func() {
		e.probeMu.Lock()
		if e.probeStop == stop {
			e.probeStop = nil
		}
		e.probeMu.Unlock()
		e.probeWG.Done()
	}()
	interval := e.StoreProbeInterval
	if interval <= 0 {
		interval = DefaultStoreProbeInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if e.attemptReopen() {
				return
			}
		}
	}
}

// attemptReopen closes the poisoned store and reopens its directory.
// It returns true when the probe's job is over — the reopen succeeded,
// or the store was detached underneath it. The write lock on
// storeReadMu excludes every reader for the close/munmap + reopen
// window, so no mapped segment view is torn down mid-read.
func (e *Engine) attemptReopen() bool {
	e.met.probeAttempts.Add(1)
	e.storeReadMu.Lock()
	defer e.storeReadMu.Unlock()
	if e.storeMode.Load() != storeModeDegraded {
		return true
	}
	if old := e.store.Swap(nil); old != nil {
		// Poisoned close: flush and sync are skipped (crash semantics),
		// but descriptors, mappings, and the directory flock release.
		old.Close()
	}
	st, err := tsdb.OpenOptions(e.storeDir, e.storeOpts)
	if err != nil {
		e.healthMu.Lock()
		e.healthErr = err
		e.healthMu.Unlock()
		return false
	}
	// Jobs replayed from the WAL lived through the outage: their
	// engine-side streams hold samples the store never saw, so
	// resuming their WAL entries would persist a divergent history.
	// Drop them from the store — their streams keep serving memory-only
	// (storeFor never resolves them: their j.st is a dead pointer).
	for _, lj := range st.Live() {
		st.Drop(lj.ID)
	}
	e.store.Store(st)
	e.storeMode.Store(storeModeRW)
	e.healthMu.Lock()
	e.healthErr = nil
	e.degradedSince = time.Time{}
	e.healthMu.Unlock()
	e.met.probeReopens.Add(1)
	return true
}

// Close shuts the engine down: the reopen probe is stopped and the
// store (when attached) is flushed and closed. Live jobs stay readable
// in memory; the engine may keep serving non-durable traffic.
func (e *Engine) Close() error { return e.CloseStore() }
