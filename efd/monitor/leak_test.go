package monitor

// Goroutine-leak checks: Close and CloseStore must reap every
// background goroutine the engine started — most importantly the
// store-reopen probe that only exists while degraded. Run under -race.

import (
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/vfs"
)

// waitGoroutines polls until the goroutine count is back at (or below)
// the baseline, dumping all stacks if it never gets there.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestEngineCloseReapsProbe: closing a DEGRADED engine (probe loop
// running) leaves no goroutine behind, across repeated cycles.
func TestEngineCloseReapsProbe(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e, fs := attachFaultStore(t, t.TempDir())
		jb, err := e.Register("leak", 2)
		if err != nil {
			t.Fatal(err)
		}
		fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
		if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
			t.Fatal(err)
		}
		if e.Health().Status != StatusDegraded {
			t.Fatal("engine did not degrade")
		}
		e.Close() // poisoned store: close errors are expected, leaks are not
	}
	waitGoroutines(t, baseline)
}

// TestCloseStoreReapsProbe: detaching the store from a degraded engine
// stops the probe while the engine itself keeps running.
func TestCloseStoreReapsProbe(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e, fs := attachFaultStore(t, t.TempDir())
		jb, err := e.Register("leak", 2)
		if err != nil {
			t.Fatal(err)
		}
		fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
		if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
			t.Fatal(err)
		}
		if e.Health().Status != StatusDegraded {
			t.Fatal("engine did not degrade")
		}
		e.CloseStore()
		// The engine is still serving, memory-only.
		if _, err := jb.Ingest(flat(6000, 2, 20)); err != nil {
			t.Fatal(err)
		}
		e.Close()
	}
	waitGoroutines(t, baseline)
}
