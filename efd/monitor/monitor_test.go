package monitor

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/telemetry"
)

type fixedSource struct {
	nodes int
	level float64
}

func (f fixedSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f fixedSource) NodeCount() int { return f.nodes }

func testDict(t testing.TB) *core.Dictionary {
	t.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(fixedSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	d.Learn(fixedSource{nodes: 2, level: 7000}, apps.Label{App: "mg", Input: apps.InputX})
	return d
}

func flat(level float64, nodes, upToS int) []Sample {
	var out []Sample
	for sec := 0; sec <= upToS; sec++ {
		for node := 0; node < nodes; node++ {
			out = append(out, Sample{Metric: apps.HeadlineMetric, Node: node, OffsetS: float64(sec), Value: level})
		}
	}
	return out
}

// TestEmbeddedLifecycle is the headline embedding story: register,
// ingest, recognize, label — no HTTP anywhere.
func TestEmbeddedLifecycle(t *testing.T) {
	e := New(testDict(t))
	jb, err := e.Register("job-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	// A recognizable job first: the known ft level.
	known, err := e.Register("known", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := known.Ingest(flat(6010, 2, 125)); err != nil {
		t.Fatal(err)
	}
	if st, err := known.Result(); err != nil || !st.Complete || st.Top != "ft" || st.Confidence != 1 {
		t.Fatalf("known state: %+v, %v", st, err)
	}
	if err := known.Close(); err != nil {
		t.Fatal(err)
	}
	// job-1 runs at a level no trained application uses.
	if _, err := jb.Ingest(flat(9000, 2, 30)); err != nil {
		t.Fatal(err)
	}
	st, err := jb.Result()
	if err != nil || st.Complete {
		t.Fatalf("early state: %+v, %v", st, err)
	}
	if _, err := jb.Ingest(flat(9000, 2, 125)); err != nil {
		t.Fatal(err)
	}
	st, err = jb.Result()
	if err != nil || !st.Complete {
		t.Fatalf("final state: %+v, %v", st, err)
	}
	sum, err := jb.Summary()
	if err != nil || sum.Samples != int64(len(flat(0, 2, 30))+len(flat(0, 2, 125))) {
		t.Fatalf("summary: %+v, %v", sum, err)
	}
	learned, err := jb.Label("lammps", "X")
	if err != nil || learned != "lammps_X" {
		t.Fatalf("label: %q, %v", learned, err)
	}
	// The handle is dead now; so is a fresh lookup.
	if _, err := jb.Result(); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("result after label: %v", err)
	}
	if _, ok := e.Lookup("job-1"); ok {
		t.Fatal("labelled job still resolvable")
	}
	// The engine learned the new application online.
	var top string
	e.Dictionary().Read(func(d *core.Dictionary) {
		top = d.Recognize(fixedSource{nodes: 2, level: 9000}).Top()
	})
	if top != "lammps" {
		t.Fatalf("online learn: %q", top)
	}
}

func TestRegisterErrors(t *testing.T) {
	e := New(testDict(t))
	e.MaxJobs = 2
	if _, err := e.Register("", 2); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty id: %v", err)
	}
	if _, err := e.Register("a", 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero nodes: %v", err)
	}
	if _, err := e.Register("a/b", 1); !errors.Is(err, ErrInvalid) {
		t.Errorf("slash id: %v", err)
	}
	if _, err := e.Register("dup", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("dup", 1); !errors.Is(err, ErrJobExists) {
		t.Errorf("duplicate: %v", err)
	}
	jb, err := e.Register("fill", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("over", 1); !errors.Is(err, ErrTableFull) {
		t.Errorf("over capacity: %v", err)
	}
	if err := jb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jb.Close(); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("double close: %v", err)
	}
	if _, err := e.Register("again", 1); err != nil {
		t.Errorf("register after close: %v", err)
	}
}

func TestLabelBeforeComplete(t *testing.T) {
	e := New(testDict(t))
	jb, _ := e.Register("early", 2)
	if _, err := jb.Label("ft", "X"); !errors.Is(err, ErrNotComplete) {
		t.Fatalf("early label: %v", err)
	}
	if _, err := jb.Label("ft", "NOPE"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad label: %v", err)
	}
}

// TestRunsMatchSamples: feeding columnar runs produces bit-identical
// recognition state to feeding the same telemetry as row samples.
func TestRunsMatchSamples(t *testing.T) {
	values := []float64{6010.123456789, 6009.87654321, 6010.5, 6011.25}
	e1 := New(testDict(t))
	j1, _ := e1.Register("j", 2)
	var samples []Sample
	for node := 0; node < 2; node++ {
		for sec := 0; sec <= 125; sec++ {
			samples = append(samples, Sample{Metric: apps.HeadlineMetric, Node: node, OffsetS: float64(sec), Value: values[sec%len(values)]})
		}
	}
	if _, err := j1.Ingest(samples); err != nil {
		t.Fatal(err)
	}

	e2 := New(testDict(t))
	j2, _ := e2.Register("j", 2)
	var runs []Run
	for node := 0; node < 2; node++ {
		run := Run{Metric: apps.HeadlineMetric, Node: node}
		for sec := 0; sec <= 125; sec++ {
			run.Offsets = append(run.Offsets, time.Duration(sec)*time.Second)
			run.Values = append(run.Values, values[sec%len(values)])
		}
		runs = append(runs, run)
	}
	if _, _, err := e2.IngestRuns([]RunBatch{{JobID: "j", Runs: runs}}); err != nil {
		t.Fatal(err)
	}

	s1, err1 := j1.Result()
	s2, err2 := j2.Result()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if string(b1) != string(b2) {
		t.Errorf("runs diverged from samples:\n samples: %s\n runs:    %s", b1, b2)
	}
}

func TestIngestValidation(t *testing.T) {
	e := New(testDict(t))
	jb, _ := e.Register("v", 1)
	if _, err := jb.Ingest([]Sample{{Metric: "m", OffsetS: 1e300, Value: 1}}); !errors.Is(err, ErrInvalid) {
		t.Errorf("huge offset: %v", err)
	}
	nan := func() float64 { z := 0.0; return z / z }()
	if _, err := jb.IngestRun("m", 0, []time.Duration{0}, []float64{nan}); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN run value: %v", err)
	}
	if _, err := jb.IngestRun("m", 0, []time.Duration{0, 1}, []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("ragged run: %v", err)
	}
	// Nothing was fed by the rejected calls.
	if sum, _ := jb.Summary(); sum.Samples != 0 {
		t.Errorf("samples fed despite rejection: %d", sum.Samples)
	}
	if st := e.Stats(); st.BatchesRejected != 3 || st.SampleBatches != 3 {
		t.Errorf("rejection counters: %+v", st)
	}
}

// TestEngineStoreRoundTrip: a storage-backed engine survives a
// restart with identical recognition state, and labelled executions
// are re-recognizable after further learning.
func TestEngineStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := New(testDict(t))
	if _, err := e.OpenStore(dir, StoreOptions{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	jb, err := e.Register("durable", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Ingest(flat(7010, 2, 125)); err != nil {
		t.Fatal(err)
	}
	want, err := jb.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Fresh engine over the same directory: the job must come back.
	e2 := New(testDict(t))
	recovered, err := e2.OpenStore(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.CloseStore()
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", recovered)
	}
	jb2, ok := e2.Lookup("durable")
	if !ok {
		t.Fatal("recovered job not resolvable")
	}
	got, err := jb2.Result()
	if err != nil {
		t.Fatal(err)
	}
	bw, _ := json.Marshal(want)
	bg, _ := json.Marshal(got)
	if string(bw) != string(bg) {
		t.Errorf("recovered state diverged:\n before: %s\n after:  %s", bw, bg)
	}

	// Label it, then re-recognize the stored execution.
	if _, err := jb2.Label("mg", "X"); err != nil {
		t.Fatal(err)
	}
	execs, err := e2.Executions()
	if err != nil || len(execs) != 1 || execs[0].Label != "mg_X" {
		t.Fatalf("executions: %+v, %v", execs, err)
	}
	st, err := e2.RecognizeStored("durable")
	if err != nil || st.Top != "mg" {
		t.Fatalf("re-recognize: %+v, %v", st, err)
	}
	dump, err := e2.Series("durable")
	if err != nil || dump.Source != "stored" || len(dump.Series) != 2 {
		t.Fatalf("series: source %q, %d series, %v", dump.Source, len(dump.Series), err)
	}
	if stats := e2.Stats(); stats.Store == nil || stats.Store.Rerecognitions != 1 || stats.Store.RecoveredJobs != 1 {
		t.Fatalf("store stats: %+v", stats.Store)
	}
}

// TestNoStoreQueries: storage queries without a store report
// ErrNoStore.
func TestNoStoreQueries(t *testing.T) {
	e := New(testDict(t))
	if _, err := e.Series("x"); !errors.Is(err, ErrNoStore) {
		t.Errorf("series: %v", err)
	}
	if _, err := e.Executions(); !errors.Is(err, ErrNoStore) {
		t.Errorf("executions: %v", err)
	}
	if _, err := e.RecognizeStored("x"); !errors.Is(err, ErrNoStore) {
		t.Errorf("recognize: %v", err)
	}
	if e.HasStore() {
		t.Error("HasStore on storeless engine")
	}
	if err := e.CloseStore(); err != nil {
		t.Errorf("close nil store: %v", err)
	}
}

func TestJobsListing(t *testing.T) {
	e := New(testDict(t))
	for _, id := range []string{"c", "a", "b"} {
		if _, err := e.Register(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	l, err := e.Jobs(1, 1)
	if err != nil || l.Total != 3 || len(l.Jobs) != 1 || l.Jobs[0].JobID != "b" {
		t.Fatalf("listing: %+v, %v", l, err)
	}
	if _, err := e.Jobs(-1, 10); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := e.Jobs(0, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero limit: %v", err)
	}
}
