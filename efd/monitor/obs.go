package monitor

// Observability: the engine's structured event log and its metric
// registration.
//
// Both are opt-in and zero-cost when off. Logging goes through an
// injectable *slog.Logger (Engine.Logger); a nil logger discards.
// Metrics are registered once by EnableMetrics over the engine's
// existing atomic counters (CounterFunc/GaugeFunc — no second
// bookkeeping site), plus a small set of latency/distribution
// histograms whose fast paths are alloc-free, so the instrumented
// ingest path stays at zero allocations (pinned by
// TestIngestInstrumentedAllocFree).

import (
	"log/slog"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// discardLogger backs a nil Engine.Logger so event sites never branch.
var discardLogger = slog.New(slog.DiscardHandler)

// logger resolves the engine's event logger.
func (e *Engine) logger() *slog.Logger {
	if e.Logger != nil {
		return e.Logger
	}
	return discardLogger
}

// engineObs holds the engine's latency and distribution instruments.
// nil (EnableMetrics never called) means the ingest path takes no
// clock readings at all.
type engineObs struct {
	ingestSeconds *obs.Histogram
	batchSamples  *obs.Histogram
	confidence    *obs.Histogram
	voteMargin    *obs.Histogram
}

// obsStart reads the clock iff metrics are enabled; a zero start makes
// the matching observe calls no-ops.
func (e *Engine) obsStart() time.Time {
	if e.obsm == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeIngest records one engine-level ingest call: end-to-end
// latency (feed + WAL append + group commit) and accepted batch size.
func (e *Engine) observeIngest(start time.Time, accepted int) {
	if start.IsZero() {
		return
	}
	e.obsm.ingestSeconds.Observe(time.Since(start).Seconds())
	e.obsm.batchSamples.Observe(float64(accepted))
}

// observeRecognition records the confidence and vote margin of one
// answered recognition (live or stored).
func (e *Engine) observeRecognition(st *State) {
	o := e.obsm
	if o == nil {
		return
	}
	o.confidence.Observe(st.Confidence)
	o.voteMargin.Observe(voteMargin(st.Votes))
}

// voteMargin is the gap between the top and runner-up vote counts — a
// separation signal orthogonal to the normalized Confidence score.
func voteMargin(votes map[string]int) float64 {
	top, second := 0, 0
	for _, v := range votes {
		if v > top {
			top, second = v, top
		} else if v > second {
			second = v
		}
	}
	return float64(top - second)
}

// modeName names a store mode for log events.
func modeName(m int32) string {
	switch m {
	case storeModeRW:
		return "rw"
	case storeModeDegraded:
		return "degraded"
	case storeModeReadonly:
		return "readonly"
	}
	return "none"
}

// EnableMetrics registers the engine's metric families on reg:
// counters and gauges read the engine's existing atomics at scrape
// time (no double bookkeeping), histograms observe on the ingest and
// recognition paths, and the attached store's own operations
// (WAL append, group commit, flush, mmap reads, recovery) report
// through tsdb instruments that survive probe reopens.
//
// Call exactly once, before OpenStore and before serving traffic —
// the store instruments only flow into stores opened after this call.
func (e *Engine) EnableMetrics(reg *obs.Registry) {
	m := &e.met
	reg.CounterFunc("efd_engine_jobs_registered_total", "", "jobs registered since start", m.registered.Load)
	reg.CounterFunc("efd_engine_jobs_deleted_total", "", "jobs closed (discarded) since start", m.deleted.Load)
	reg.CounterFunc("efd_engine_ingest_batches_total", "", "ingest batches attempted", m.sampleBatches.Load)
	reg.CounterFunc("efd_engine_samples_accepted_total", "", "telemetry samples fed into streams", m.samplesAccepted.Load)
	reg.CounterFunc("efd_engine_batches_rejected_total", "", "ingest batches rejected by validation", m.batchesRejected.Load)
	reg.CounterFunc("efd_engine_ingest_shed_total", "", "ingest requests shed by the admission gate", m.shed.Load)
	reg.CounterFunc("efd_engine_recognitions_total", "", "live recognition answers served", m.recognitions.Load)
	reg.CounterFunc("efd_engine_rerecognitions_total", "", "stored executions re-recognized", m.rerecognitions.Load)
	reg.CounterFunc("efd_engine_jobs_recovered", "", "jobs replayed from the store at startup", m.recovered.Load)
	reg.CounterFunc("efd_engine_store_probe_attempts_total", "", "store reopen probe attempts", m.probeAttempts.Load)
	reg.CounterFunc("efd_engine_store_reopens_total", "", "successful store reopens", m.probeReopens.Load)
	reg.CounterFunc("efd_engine_store_degraded_total", "", "transitions into degraded (memory-only) mode", m.storeDegraded.Load)
	reg.CounterFunc("efd_engine_store_readonly_total", "", "transitions into disk-full read-only mode", m.storeReadonly.Load)
	reg.CounterFunc("efd_engine_store_healed_total", "", "store heals back into durable mode", m.storeHealed.Load)
	reg.CounterFunc("efd_dict_learns_total", "", "executions learned into the dictionary", m.learned.Load)

	reg.GaugeFunc("efd_engine_live_jobs", "", "currently tracked jobs", func() float64 {
		return float64(e.jobCount.Load())
	})
	reg.GaugeFunc("efd_engine_ingest_inflight_bytes", "", "payload bytes admitted and in flight", func() float64 {
		return float64(e.inflightBytes.Load())
	})
	reg.GaugeFunc("efd_engine_ingest_inflight_batches", "", "ingest requests admitted and in flight", func() float64 {
		return float64(e.inflightBatches.Load())
	})
	reg.GaugeFunc("efd_engine_store_mode", "", "store mode: 0 none, 1 rw, 2 degraded, 3 readonly", func() float64 {
		return float64(e.storeMode.Load())
	})
	reg.GaugeFunc("efd_dict_keys", "", "fingerprint keys in the dictionary", func() float64 {
		var n int
		e.dict.Read(func(d *core.Dictionary) { n = d.Stats().Keys })
		return float64(n)
	})
	reg.GaugeFunc("efd_dict_labels", "", "distinct labels in the dictionary", func() float64 {
		var n int
		e.dict.Read(func(d *core.Dictionary) { n = d.Stats().Labels })
		return float64(n)
	})

	// Store-level gauges resolve the current store incarnation at
	// scrape time; without one they read 0.
	reg.GaugeFunc("efd_tsdb_wal_bytes", "", "bytes in the write-ahead log", func() float64 {
		if st := e.store.Load(); st != nil {
			return float64(st.Stats().WALBytes)
		}
		return 0
	})
	reg.GaugeFunc("efd_tsdb_mmap_bytes", "", "bytes of mapped segment data", func() float64 {
		if st := e.store.Load(); st != nil {
			return float64(st.Stats().MmapBytes)
		}
		return 0
	})
	reg.GaugeFunc("efd_tsdb_segments", "", "flushed segment files", func() float64 {
		if st := e.store.Load(); st != nil {
			return float64(st.Stats().Segments)
		}
		return 0
	})
	reg.GaugeFunc("efd_tsdb_executions", "", "stored executions", func() float64 {
		if st := e.store.Load(); st != nil {
			return float64(st.Stats().Executions)
		}
		return 0
	})
	reg.GaugeFunc("efd_tsdb_recovery_seconds", "", "wall-clock duration of the last store recovery", func() float64 {
		if st := e.store.Load(); st != nil {
			return st.Recovery().Duration.Seconds()
		}
		return 0
	})
	reg.GaugeFunc("efd_tsdb_recovery_retried_ops", "", "I/O retries the last recovery spent", func() float64 {
		if st := e.store.Load(); st != nil {
			return float64(st.Recovery().RetriedOps)
		}
		return 0
	})

	e.obsm = &engineObs{
		ingestSeconds: reg.Histogram("efd_engine_ingest_seconds", "",
			"engine-side latency of one ingest call (feed + WAL append + group commit)",
			obs.ExpBuckets(1e-5, 4, 12)),
		batchSamples: reg.Histogram("efd_engine_ingest_batch_samples", "",
			"samples accepted per ingest call",
			obs.ExpBuckets(1, 4, 12)),
		confidence: reg.Histogram("efd_engine_recognition_confidence", "",
			"confidence of answered recognitions",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}),
		voteMargin: reg.Histogram("efd_engine_recognition_vote_margin", "",
			"vote gap between the top and runner-up labels",
			obs.ExpBuckets(1, 2, 12)),
	}
	e.inst = tsdb.Instruments{
		AppendSeconds: reg.Histogram("efd_tsdb_wal_append_seconds", "",
			"WAL append latency (encode + CRC + buffered write, no fsync)",
			obs.ExpBuckets(1e-7, 4, 14)),
		CommitSeconds: reg.Histogram("efd_tsdb_commit_seconds", "",
			"group-commit fsync latency",
			obs.ExpBuckets(1e-6, 4, 14)),
		CommitRecords: reg.Histogram("efd_tsdb_commit_batch_records", "",
			"WAL records made durable per group-commit fsync",
			obs.ExpBuckets(1, 4, 10)),
		FlushSeconds: reg.Histogram("efd_tsdb_flush_seconds", "",
			"segment flush latency",
			obs.ExpBuckets(1e-4, 4, 10)),
		FlushBytes: reg.Histogram("efd_tsdb_flush_bytes", "",
			"segment file bytes per flush",
			obs.ExpBuckets(4096, 4, 10)),
		MmapReads: reg.Counter("efd_tsdb_mmap_reads_total", "",
			"stored-execution reads served from mapped segments"),
	}
}
