package monitor

import (
	"context"
	"log/slog"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
	"repro/internal/vfs"
)

// TestInstrumentedIngestZeroAlloc pins the observability contract on
// the ingest hot path: with the full metrics kit enabled, a warmed
// memory-only Job.Ingest still performs zero allocations — the
// instrumentation is two clock reads and an atomic histogram bump.
func TestInstrumentedIngestZeroAlloc(t *testing.T) {
	e := New(testDict(t))
	defer e.Close()
	e.EnableMetrics(obs.NewRegistry())
	jb, err := e.Register("pinned", 2)
	if err != nil {
		t.Fatal(err)
	}
	samples := flat(6000, 2, 40)
	for i := 0; i < 16; i++ { // warm the column scratch and accumulators
		if _, err := jb.Ingest(samples); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := jb.Ingest(samples); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("instrumented warmed Job.Ingest allocates %.1f/op, want 0", allocs)
	}
	if e.obsm.ingestSeconds.Count() == 0 {
		t.Error("ingest latency histogram never observed — instrumentation inactive")
	}
}

// eventLog is a slog.Handler counting records by their "event"
// attribute — the structured identity of every engine state-change
// log line.
type eventLog struct {
	mu     sync.Mutex
	counts map[string]int
}

func newEventLog() *eventLog { return &eventLog{counts: make(map[string]int)} }

func (h *eventLog) Enabled(context.Context, slog.Level) bool { return true }

func (h *eventLog) Handle(_ context.Context, r slog.Record) error {
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == "event" {
			h.mu.Lock()
			h.counts[a.Value.String()]++
			h.mu.Unlock()
			return false
		}
		return true
	})
	return nil
}

func (h *eventLog) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *eventLog) WithGroup(string) slog.Handler      { return h }

func (h *eventLog) count(event string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[event]
}

// obsFaultEngine is attachFaultStore with the observability plane on:
// a counting structured logger and the metrics registry.
func obsFaultEngine(t *testing.T) (*Engine, *vfs.Fault, *eventLog) {
	t.Helper()
	fs := vfs.NewFault(vfs.OS{}, 1)
	st, err := tsdb.OpenOptions(t.TempDir(), tsdb.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	ev := newEventLog()
	e := New(testDict(t))
	e.Logger = slog.New(ev)
	e.EnableMetrics(obs.NewRegistry())
	e.StoreProbeInterval = 5 * time.Millisecond
	if _, err := e.AttachStore(st); err != nil {
		st.Close()
		t.Fatal(err)
	}
	return e, fs, ev
}

// TestChaosTransitionEventsDegradeHeal: a degrade→heal cycle under
// concurrent ingest emits exactly one structured log event per
// transition, and each event's counter moves in lockstep — however
// many racing writers observe the same fault.
func TestChaosTransitionEventsDegradeHeal(t *testing.T) {
	e, fs, ev := obsFaultEngine(t)
	defer e.Close()

	jb, err := e.Register("victim", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
		t.Fatal(err)
	}

	// Poison fsync and hammer the store from several goroutines: every
	// writer can see the failure, only one may transition.
	fs.AddRule(vfs.Rule{Op: vfs.OpSync, Err: syscall.EIO})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := jb.Ingest(flat(6000, 2, 20)); err != nil {
					t.Errorf("degraded ingest: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, "degrade", func() bool { return e.Health().Status == StatusDegraded })
	if got := ev.count("store_degrade"); got != 1 {
		t.Fatalf("store_degrade events = %d, want exactly 1", got)
	}
	if got := e.met.storeDegraded.Load(); got != 1 {
		t.Fatalf("store_degraded counter = %d, want 1", got)
	}

	// Heal: the probe reopens once; one event, one counter bump.
	fs.Reset()
	waitFor(t, "heal", func() bool { return e.Health().Status == StatusHealthy })
	if got := ev.count("store_heal"); got != 1 {
		t.Fatalf("store_heal events = %d, want exactly 1", got)
	}
	if got := e.met.storeHealed.Load(); got != 1 {
		t.Fatalf("store_healed counter = %d, want 1", got)
	}
	if got := ev.count("store_readonly"); got != 0 {
		t.Fatalf("degrade cycle emitted %d store_readonly events", got)
	}
}

// TestChaosTransitionEventsReadonly: the disk-full transition is just
// as disciplined — one store_readonly event and counter bump when
// ENOSPC fences writes, one store_heal when space frees.
func TestChaosTransitionEventsReadonly(t *testing.T) {
	e, fs, ev := obsFaultEngine(t)
	defer e.Close()

	jb, err := e.Register("tenant", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jb.Ingest(flat(6000, 2, 10)); err != nil {
		t.Fatal(err)
	}

	fs.SetFree(0)
	fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC})
	for w := 0; w < 8; w++ { // several shed writes, one transition
		jb.Ingest(flat(6000, 2, 20))
	}
	waitFor(t, "readonly", func() bool { return e.Health().Status == StatusReadonly })
	if got := ev.count("store_readonly"); got != 1 {
		t.Fatalf("store_readonly events = %d, want exactly 1", got)
	}
	if got := e.met.storeReadonly.Load(); got != 1 {
		t.Fatalf("store_readonly counter = %d, want 1", got)
	}

	fs.Reset()
	waitFor(t, "resume", func() bool { return e.Health().Status == StatusHealthy })
	if got := ev.count("store_heal"); got != 1 {
		t.Fatalf("store_heal events = %d, want exactly 1", got)
	}
	if got := e.met.storeHealed.Load(); got != 1 {
		t.Fatalf("store_healed counter = %d, want 1", got)
	}
	if got := ev.count("store_degrade"); got != 0 {
		t.Fatalf("readonly cycle emitted %d store_degrade events", got)
	}
}
