// Storage-backed mode: an optional durable telemetry store behind the
// engine (internal/tsdb) makes ingest durable and finished executions
// re-recognizable.
//
// Ingest keeps its zero-dictionary-lock property — the WAL append
// happens on the same per-job columnar runs the stream consumes, and
// one group-commit fsync acknowledges a whole ingest batch. Startup
// replays the store's live jobs into fresh recognition streams, so a
// restarted engine answers exactly as an uninterrupted one; labelled
// jobs become stored executions, served by Series and re-recognized
// on demand (RecognizeStored) after online learning has extended the
// dictionary.
package monitor

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// StoreOptions tune the durable telemetry store opened by OpenStore.
// The zero value is ready for production use.
type StoreOptions struct {
	// FlushBytes is the pending-execution byte estimate beyond which
	// labelling kicks a background flush into a segment file. Default
	// 8 MiB; negative disables automatic flushing.
	FlushBytes int64
	// HistBins is the per-series histogram sketch resolution persisted
	// in segment footers. Default telemetry.DefaultHistBins.
	HistBins int
	// NoSync skips every fsync — replay correctness is unaffected,
	// only crash durability. For benchmarks and bulk loads.
	NoSync bool
	// DiskLowBytes is the proactive disk-headroom watermark: segment
	// flushes are refused (retryably) while the store volume has less
	// free space, keeping the disk from being driven to hard ENOSPC by
	// the store itself. It also sets the free-space floor the engine
	// requires before resuming from disk-full read-only mode. 0
	// disables the watermark.
	DiskLowBytes int64
}

// OpenStore opens (or creates) a durable telemetry store in dir and
// attaches it: ingest becomes write-ahead logged, and the store's
// live jobs are replayed into fresh recognition streams (honouring
// MaxJobs — set it first). Returns the number of jobs recovered. The
// engine owns the store from here; call CloseStore on shutdown.
func (e *Engine) OpenStore(dir string, opt StoreOptions) (recovered int, err error) {
	st, err := tsdb.OpenOptions(dir, tsdb.Options{
		FlushBytes:   opt.FlushBytes,
		HistBins:     opt.HistBins,
		NoSync:       opt.NoSync,
		DiskLowBytes: opt.DiskLowBytes,
		// Store-level instruments from EnableMetrics (zero when metrics
		// are off). They ride in the saved Options, so probe reopens
		// keep observing into the same instruments.
		Inst: e.inst,
	})
	if err != nil {
		return 0, err
	}
	recovered, err = e.AttachStore(st)
	if err != nil {
		st.Close()
		return 0, err
	}
	return recovered, nil
}

// AttachStore backs the engine with an already-open store and replays
// its live jobs into recognition streams. Call before serving traffic
// (and after setting MaxJobs — recovery honours the cap and errors
// rather than silently over-admitting); the engine takes over all
// writes to the store. In-repo plumbing: external embedders cannot
// construct a *tsdb.Store and use OpenStore instead.
func (e *Engine) AttachStore(st *tsdb.Store) (recovered int, err error) {
	live := st.Live()
	if len(live) > e.MaxJobs {
		// Fail before attaching anything, so an embedder can fall back
		// to in-memory mode without a half-attached (and possibly
		// since-closed) store pointer behind the engine.
		return 0, fmt.Errorf("monitor: store holds %d live jobs, exceeding MaxJobs %d; raise the cap or prune the store", len(live), e.MaxJobs)
	}
	// Remember how to reopen this store: should it poison itself at
	// runtime, the engine degrades to memory-only and a background
	// probe reopens the same directory with the same options.
	e.storeDir = st.Dir()
	e.storeOpts = st.Options()
	e.store.Store(st)
	e.storeMode.Store(storeModeRW)
	for _, lj := range live {
		var stream *core.Stream
		nodes := lj.Nodes
		e.dict.Read(func(d *core.Dictionary) { stream = core.NewStream(d, nodes) })
		j := &job{stream: stream, nodes: nodes, samples: lj.Samples, lastOff: lj.LastOffset, st: st}
		// Feeding per-series runs reproduces the pre-crash stream
		// state exactly: the window accumulators are independent per
		// (metric, node, window) and each series' samples replay in
		// their original order.
		for _, run := range lj.Series {
			j.stream.FeedRun(run.Metric, run.Node, run.Offsets, run.Values)
		}
		sh := e.shardFor(lj.ID)
		sh.mu.Lock()
		if _, exists := sh.jobs[lj.ID]; !exists {
			sh.jobs[lj.ID] = j
			e.jobCount.Add(1)
			recovered++
		}
		sh.mu.Unlock()
	}
	e.met.recovered.Store(int64(recovered))
	rec := st.Recovery()
	e.logger().Info("telemetry store recovered",
		"event", "store_recovery",
		"recovered_jobs", recovered,
		"executions", len(st.Executions()),
		"replayed_records", rec.ReplayedRecords,
		"retried_ops", rec.RetriedOps,
		"duration_ms", float64(rec.Duration)/float64(time.Millisecond))
	if rec.QuarantinedSegments > 0 || rec.QuarantinedWALBytes > 0 {
		e.logger().Warn("store quarantined unreadable data during recovery",
			"event", "store_quarantine",
			"segments", rec.QuarantinedSegments,
			"wal_bytes", rec.QuarantinedWALBytes)
	}
	return recovered, nil
}

// Store returns the attached store, or nil. In-repo plumbing, like
// AttachStore.
func (e *Engine) Store() *tsdb.Store { return e.store.Load() }

// HasStore reports whether a durable store is attached.
func (e *Engine) HasStore() bool { return e.store.Load() != nil }

// CloseStore flushes pending executions into segments, syncs the WAL,
// and releases the store. A no-op without one. The engine keeps
// serving in-memory afterwards, but durable guarantees end here —
// call it on shutdown only. Stops the degraded-mode reopen probe
// first, so no reopen races the shutdown.
func (e *Engine) CloseStore() error {
	e.stopProbe()
	e.storeReadMu.Lock()
	st := e.store.Swap(nil)
	e.storeMode.Store(storeModeNone)
	e.healthMu.Lock()
	e.healthErr = nil
	e.degradedSince = time.Time{}
	e.healthMu.Unlock()
	e.storeReadMu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}

// time1HzOffset is the implicit-grid offset of sample i.
func time1HzOffset(i int) time.Duration { return time.Duration(i) * telemetry.DefaultPeriod }

// Series dumps a job's telemetry from the store: live jobs get a
// snapshot of their accumulated columns, finished ones their stored
// execution.
func (e *Engine) Series(id string) (SeriesDump, error) {
	// The read lock keeps the probe (and CloseStore) from unmapping
	// segment files while this read walks them; see storeReadMu.
	e.storeReadMu.RLock()
	defer e.storeReadMu.RUnlock()
	st := e.store.Load()
	if st == nil {
		return SeriesDump{}, ErrNoStore
	}
	ns, live, err := st.Series(id)
	if err != nil {
		return SeriesDump{}, fmt.Errorf("%w: no telemetry for %q", ErrUnknownJob, id)
	}
	out := SeriesDump{JobID: id, Source: "stored", Series: []SeriesData{}}
	if live {
		out.Source = "live"
	}
	for _, node := range ns.Nodes() {
		for _, metric := range ns.Metrics() {
			series := ns.Get(node, metric)
			if series == nil {
				continue
			}
			sd := SeriesData{Metric: metric, Node: node, Count: series.Len()}
			sd.Values = make([]float64, series.Len())
			grid := true
			for i := 0; i < series.Len(); i++ {
				sd.Values[i] = series.ValueAt(i)
				if series.OffsetAt(i) != time1HzOffset(i) {
					grid = false
				}
			}
			if !grid {
				sd.OffsetsS = make([]float64, series.Len())
				for i := range sd.OffsetsS {
					sd.OffsetsS[i] = series.OffsetAt(i).Seconds()
				}
			}
			out.Series = append(out.Series, sd)
		}
	}
	return out, nil
}

// Executions lists every stored (finished) execution, sorted by
// sequence number.
func (e *Engine) Executions() ([]ExecutionInfo, error) {
	e.storeReadMu.RLock()
	defer e.storeReadMu.RUnlock()
	st := e.store.Load()
	if st == nil {
		return nil, ErrNoStore
	}
	execs := st.Executions() // already Seq-sorted by the store
	var out []ExecutionInfo  // stays nil when empty (wire-compatible "null")
	for _, x := range execs {
		out = append(out, ExecutionInfo{ID: x.ID, Label: x.Label, Nodes: x.Nodes, Seq: x.Seq, Samples: x.Samples, Stored: x.Stored})
	}
	return out, nil
}

// RecognizeStored re-runs recognition over a stored execution with
// the dictionary as it stands now — the payoff of keeping telemetry:
// labels learned after a job finished still apply to it.
func (e *Engine) RecognizeStored(id string) (State, error) {
	e.storeReadMu.RLock()
	defer e.storeReadMu.RUnlock()
	st := e.store.Load()
	if st == nil {
		return State{}, ErrNoStore
	}
	ns, err := st.ExecutionSeries(id)
	if err != nil {
		return State{}, fmt.Errorf("%w: no stored execution %q", ErrUnknownJob, id)
	}
	src := core.NewTelemetrySource(ns)
	var out State
	e.dict.Read(func(d *core.Dictionary) {
		res := d.Recognize(src)
		out = State{
			JobID:      id,
			Complete:   true,
			Recognized: res.Recognized(),
			Top:        res.Top(),
			Apps:       res.Apps,
			Votes:      res.Votes(),
			Confidence: res.Confidence(),
			Matched:    res.Matched,
			Total:      res.Total,
		}
	})
	e.met.rerecognitions.Add(1)
	e.observeRecognition(&out)
	return out, nil
}

// storeStats assembles the Stats store section, or nil without a
// store.
func (e *Engine) storeStats() *StoreStats {
	e.storeReadMu.RLock()
	defer e.storeReadMu.RUnlock()
	store := e.store.Load()
	if store == nil {
		return nil
	}
	st := store.Stats()
	rec := store.Recovery()
	out := &StoreStats{
		LiveJobs:            st.LiveJobs,
		PendingJobs:         st.PendingJobs,
		Executions:          st.Executions,
		Segments:            st.Segments,
		WALBytes:            st.WALBytes,
		MmapBytes:           st.MmapBytes,
		AppendedRecords:     st.AppendedRecords,
		Commits:             st.Commits,
		Flushes:             st.Flushes,
		ReplayedRecords:     st.ReplayedRecords,
		QuarantinedWALBytes: st.QuarantinedWALBytes,
		QuarantinedSegments: st.QuarantinedSegments,
		LastFlushError:      st.LastFlushError,
		RecoveredJobs:       e.met.recovered.Load(),
		Rerecognitions:      e.met.rerecognitions.Load(),
		RecoveryRetriedOps:  rec.RetriedOps,
		// Floor seconds, like DegradedForS's wire resolution: recovery
		// of a healthy test store reads a stable 0.
		RecoveryDurationS: int64(rec.Duration / time.Second),
	}
	// Same presence rule as the /v1/health disk section: the store's
	// disk state appears once it is interesting.
	if mode := e.storeMode.Load(); e.storeOpts.DiskLowBytes > 0 || mode == storeModeReadonly {
		d := &DiskHealth{FreeBytes: -1, LowWatermarkBytes: e.storeOpts.DiskLowBytes, ReadOnly: mode == storeModeReadonly}
		if free, ok := store.DiskFree(); ok {
			d.FreeBytes = int64(min(free, uint64(math.MaxInt64)))
		}
		out.Disk = d
	}
	return out
}
