package monitor

import (
	"errors"
	"time"
)

// Sentinel errors. Engine and Job methods wrap these, so callers (the
// HTTP adapter above all) dispatch with errors.Is and map each onto
// one status code.
var (
	// ErrUnknownJob reports an operation on a job the engine does not
	// track (never registered, already labelled, or closed).
	ErrUnknownJob = errors.New("monitor: unknown job")
	// ErrJobExists reports a registration for an ID that is already
	// live.
	ErrJobExists = errors.New("monitor: job already registered")
	// ErrTableFull reports a registration beyond Engine.MaxJobs.
	ErrTableFull = errors.New("monitor: job table full")
	// ErrNotComplete reports a label attempt before the job's
	// fingerprint window has closed.
	ErrNotComplete = errors.New("monitor: job has not covered the fingerprint window yet")
	// ErrInvalid reports malformed input: a bad job ID, a non-finite
	// sample, an out-of-range offset, an unparsable label.
	ErrInvalid = errors.New("monitor: invalid argument")
	// ErrNoStore reports a storage query on an engine with no durable
	// store attached.
	ErrNoStore = errors.New("monitor: no telemetry store attached")
	// ErrStore wraps failures of the durable store on the write path;
	// the job's in-memory state is unchanged unless documented
	// otherwise.
	ErrStore = errors.New("monitor: telemetry store")
	// ErrOverloaded reports an ingest request refused by the admission
	// gate (AcquireIngest): too many bytes or requests in flight. The
	// condition is transient — retry after backing off.
	ErrOverloaded = errors.New("monitor: ingest overloaded")
	// ErrReadOnly reports a write shed because the durable store's disk
	// is full: the engine keeps serving every read while a background
	// probe waits for space to free, then resumes durable writes. The
	// condition is transient — retry after backing off.
	ErrReadOnly = errors.New("monitor: store is read-only (disk full)")
)

// Sample is one telemetry point in wire form — the JSON shape the v1
// API and the efd/client SDK speak. Offsets travel as float seconds
// (the LDMS convention); the engine rounds them to the nanosecond
// grid on ingest.
type Sample struct {
	Metric  string  `json:"metric"`
	Node    int     `json:"node"`
	OffsetS float64 `json:"offset_s"`
	Value   float64 `json:"value"`
}

// Batch is one job's samples within a multi-job ingest request.
type Batch struct {
	JobID   string   `json:"job_id"`
	Samples []Sample `json:"samples"`
}

// Run is a columnar (metric, node) sample run — parallel offset/value
// columns, the engine's native ingest currency. The binary wire
// encoding (application/x-efd-runs) decodes straight into this shape.
type Run struct {
	Metric  string
	Node    int
	Offsets []time.Duration
	Values  []float64
}

// RunBatch is one job's runs within a columnar ingest request.
type RunBatch struct {
	JobID string
	Runs  []Run
}

// State is a recognition answer for one job — the GET /v1/jobs/{id}
// response body.
type State struct {
	JobID      string         `json:"job_id"`
	Complete   bool           `json:"complete"`
	Recognized bool           `json:"recognized"`
	Top        string         `json:"top"`
	Apps       []string       `json:"apps,omitempty"`
	Votes      map[string]int `json:"votes,omitempty"`
	Confidence float64        `json:"confidence"`
	Matched    int            `json:"matched"`
	Total      int            `json:"total"`
}

// Summary is one job's lightweight listing entry.
type Summary struct {
	JobID       string  `json:"job_id"`
	Nodes       int     `json:"nodes"`
	Complete    bool    `json:"complete"`
	Samples     int64   `json:"samples"`
	LastOffsetS float64 `json:"last_offset_s"`
}

// Listing is a paginated job listing — the GET /v1/jobs response body.
type Listing struct {
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Limit  int       `json:"limit"`
	Jobs   []Summary `json:"jobs"`
}

// DictionaryInfo is a dictionary statistics snapshot — the
// GET /v1/dictionary response body.
type DictionaryInfo struct {
	Keys       int      `json:"keys"`
	Exclusive  int      `json:"exclusive"`
	Collisions int      `json:"collisions"`
	Labels     int      `json:"labels"`
	Depth      int      `json:"depth"`
	Apps       []string `json:"apps"`
	LiveJobs   int      `json:"live_jobs"`
}

// Stats is the engine's operational counter snapshot — the
// GET /v1/metrics response body.
type Stats struct {
	LiveJobs        int64 `json:"live_jobs"`
	MaxJobs         int   `json:"max_jobs"`
	Shards          int   `json:"shards"`
	ShardOccupancy  []int `json:"shard_occupancy"`
	Registered      int64 `json:"registered_total"`
	Deleted         int64 `json:"deleted_total"`
	Learned         int64 `json:"learned_total"`
	SampleBatches   int64 `json:"sample_batches_total"`
	SamplesAccepted int64 `json:"samples_accepted_total"`
	BatchesRejected int64 `json:"batches_rejected_total"`
	Recognitions    int64 `json:"recognitions_total"`
	// Health is the engine's one-word health status — "healthy",
	// "degraded" (store failed, serving memory-only), or "readonly"
	// (ingest admission gate saturated). GET /v1/health has the full
	// picture.
	Health string `json:"health"`
	// IngestShedTotal counts ingest requests refused by the admission
	// gate since start.
	IngestShedTotal int64 `json:"ingest_shed_total"`
	// Store carries the durable-store counters; nil without a store.
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the durable-store section of Stats, mirroring the
// tsdb store's counters plus the engine's recovery totals.
type StoreStats struct {
	LiveJobs            int    `json:"live_jobs"`
	PendingJobs         int    `json:"pending_jobs"`
	Executions          int    `json:"executions"`
	Segments            int    `json:"segments"`
	WALBytes            int64  `json:"wal_bytes"`
	MmapBytes           int64  `json:"mmap_bytes"`
	AppendedRecords     int64  `json:"appended_records"`
	Commits             int64  `json:"commits"`
	Flushes             int64  `json:"flushes"`
	ReplayedRecords     int64  `json:"replayed_records"`
	QuarantinedWALBytes int64  `json:"quarantined_wal_bytes"`
	QuarantinedSegments int64  `json:"quarantined_segments"`
	LastFlushError      string `json:"last_flush_error,omitempty"`
	RecoveredJobs       int64  `json:"recovered_jobs"`
	Rerecognitions      int64  `json:"rerecognitions_total"`
	// RecoveryRetriedOps / RecoveryDurationS surface the last
	// recovery's fault-tolerance work (tsdb.RecoveryStats), unifying
	// GET /v1/metrics with the store facts GET /v1/health reports.
	// Duration is floor seconds, so healthy stores read a stable 0.
	RecoveryRetriedOps int64 `json:"recovery_retried_ops"`
	RecoveryDurationS  int64 `json:"recovery_duration_s"`
	// Disk mirrors the /v1/health disk section under the same presence
	// rule: shown when a low-space watermark is configured or the
	// store is in read-only mode.
	Disk *DiskHealth `json:"disk,omitempty"`
}

// ExecutionInfo describes one stored (finished) execution.
type ExecutionInfo struct {
	ID      string `json:"id"`
	Label   string `json:"label,omitempty"`
	Nodes   int    `json:"nodes"`
	Seq     uint64 `json:"seq"`
	Samples int64  `json:"samples"`
	Stored  bool   `json:"stored"`
}

// SeriesData is one series of a telemetry dump. OffsetsS is omitted
// for implicit-1 Hz-grid series: offset i is exactly i seconds.
type SeriesData struct {
	Metric   string    `json:"metric"`
	Node     int       `json:"node"`
	Count    int       `json:"count"`
	OffsetsS []float64 `json:"offsets_s,omitempty"`
	Values   []float64 `json:"values"`
}

// SeriesDump is a job's accumulated telemetry — the
// GET /v1/jobs/{id}/series response body. Source is "live" (memtable
// snapshot of a running job) or "stored" (immutable flushed
// execution).
type SeriesDump struct {
	JobID  string       `json:"job_id"`
	Source string       `json:"source"`
	Series []SeriesData `json:"series"`
}
