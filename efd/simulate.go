package efd

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/telemetry"
)

// Telemetry-level re-exports, for consumers that work with raw 1 Hz
// series (e.g. online recognition demos) rather than summarized
// datasets.
type (
	// NodeSet is one execution's raw telemetry: per node, per metric
	// series.
	NodeSet = telemetry.NodeSet
	// Series is one metric's samples on one node.
	Series = telemetry.Series
	// Sample is one timestamped measurement.
	Sample = telemetry.Sample
)

// SimulateExecution runs one synthetic execution of the named
// application on the simulated cluster and returns its raw telemetry
// restricted to the given metrics (nil = full catalog). The seed makes
// the run reproducible.
func SimulateExecution(app string, in Input, nodes int, metrics []string, seed int64) (*NodeSet, error) {
	spec, ok := apps.Lookup(app)
	if !ok {
		return nil, fmt.Errorf("efd: unknown application %q", app)
	}
	sim, err := cluster.New(cluster.Config{
		Nodes:   nodes,
		Noise:   noise.DefaultProfile(),
		Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	ns, _, err := sim.Run(spec, in, rand.New(rand.NewSource(seed)))
	return ns, err
}

// SummarizeExecution converts raw telemetry into a dataset execution
// record with the default window set, ready for Recognize via SourceOf.
func SummarizeExecution(id int, label Label, ns *NodeSet) *Execution {
	return dataset.Summarize(id, label, ns, dataset.DefaultWindows())
}
