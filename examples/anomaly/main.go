// Anomaly detection: the paper's motivating scenarios (§1).
//
// Two checks run against a dictionary of known applications:
//
//  1. Unknown-application detection — a job whose fingerprints match
//     nothing in the dictionary is flagged, the EFD's in-built
//     safeguard against e.g. cryptocurrency miners on allocation.
//
//  2. Deviation detection — a job recognized as a known application
//     but whose raw window mean sits far from every stored fingerprint
//     of that application indicates changed behaviour (errors,
//     misconfiguration, interference).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/efd"
	"repro/internal/stats"
)

func main() {
	metrics := []string{efd.HeadlineMetric}

	// Learn a dictionary of sanctioned applications — everything
	// except kripke, which plays the unsanctioned miner below.
	cfg := efd.DefaultDatasetConfig()
	cfg.Repeats = 10
	cfg.Cluster.Metrics = metrics
	cfg.Apps = []string{"ft", "mg", "sp", "lu", "bt", "cg", "CoMD", "miniGhost", "miniAMR", "miniMD"}
	ds, err := efd.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dict, _, err := efd.Train(ds, efd.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary of %d sanctioned applications ready\n", len(dict.Apps()))

	// Scenario 1: an unknown application (our stand-in miner) runs.
	check(dict, metrics, "kripke", "Y", 99)

	// Scenario 2: a sanctioned application runs normally.
	check(dict, metrics, "lu", "X", 7)
}

// check recognizes one fresh execution and applies both anomaly rules.
func check(dict *efd.Dictionary, metrics []string, app string, in efd.Input, seed int64) {
	fmt.Printf("\n--- job arrives (truth: %s_%s, unknown to the monitor) ---\n", app, in)
	ns, err := efd.SimulateExecution(app, in, 4, metrics, seed)
	if err != nil {
		log.Fatal(err)
	}
	exec := efd.SummarizeExecution(0, efd.Label{App: app, Input: in}, ns)
	res := dict.Recognize(efd.SourceOf(exec))

	if !res.Recognized() {
		fmt.Println("ALERT: no fingerprint matched — unknown application on the system")
		fmt.Println("       (deviation from allocation purpose? cryptominer? new code?)")
		return
	}
	fmt.Printf("recognized as %q with confidence %.2f\n", res.Top(), res.Confidence())

	// Deviation check: compare the observed raw means against the
	// recognized application's stored fingerprints.
	worst := 0.0
	for node := 0; node < exec.NumNodes; node++ {
		mean, ok := exec.WindowMean(efd.HeadlineMetric, node, efd.PaperWindow)
		if !ok {
			continue
		}
		best := math.Inf(1)
		for _, e := range dict.PredictUsage(res.Top()) {
			if e.Key.Node != node {
				continue
			}
			stored, err := stats.ParseKey(e.Key.Key)
			if err != nil {
				continue
			}
			if d := math.Abs(mean-stored) / stored; d < best {
				best = d
			}
		}
		if best > worst && !math.IsInf(best, 1) {
			worst = best
		}
	}
	if worst > 0.05 {
		fmt.Printf("ALERT: resource usage deviates %.1f%% from %s's history\n",
			worst*100, res.Top())
	} else {
		fmt.Printf("resource usage within %.1f%% of %s's history — nominal\n",
			worst*100, res.Top())
	}
}
