// Resource prediction: the dictionary in reverse (§6 of the paper).
//
// The paper notes that populating the dictionary with several time
// intervals enables resource-usage prediction: look up a known
// application and report the usage its past executions showed, per
// interval — useful for job scheduling and energy estimation. This
// example trains a multi-interval dictionary and forecasts the usage
// trajectory of an application before it runs.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/efd"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	// Three consecutive one-minute intervals in one dictionary: the
	// fingerprint encoding lets them coexist (metric, node, interval
	// are all part of the key).
	windows := []efd.Window{
		{Start: 0, End: 60e9},
		{Start: 60e9, End: 120e9},
		{Start: 120e9, End: 180e9},
	}
	cfg := efd.DefaultDatasetConfig()
	cfg.Repeats = 10
	cfg.Cluster.Metrics = []string{efd.HeadlineMetric}
	cfg.Windows = windows
	ds, err := efd.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}

	train := efd.DefaultTrainConfig()
	train.Windows = windows
	dict, report, err := efd.Train(ds, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-interval dictionary: %d keys at depth %d over %d intervals\n",
		dict.Len(), report.BestDepth, len(windows))

	// A user submits miniAMR_Z. What resource usage should the
	// scheduler expect, minute by minute?
	forecast(dict, efd.Label{App: "miniAMR", Input: "Z"})
	forecast(dict, efd.Label{App: "ft", Input: "X"})
}

// forecast prints the expected per-interval usage range of a label from
// its stored fingerprints.
func forecast(dict *efd.Dictionary, label efd.Label) {
	entries := dict.PredictUsageForLabel(label)
	if len(entries) == 0 {
		fmt.Printf("\n%s: no history\n", label)
		return
	}
	fmt.Printf("\nforecast for %s (%s):\n", label, efd.HeadlineMetric)
	type rng struct{ lo, hi float64 }
	byWindow := make(map[string]*rng)
	for _, e := range entries {
		v, err := stats.ParseKey(e.Key.Key)
		if err != nil {
			continue
		}
		r, ok := byWindow[e.Key.Window]
		if !ok {
			byWindow[e.Key.Window] = &rng{lo: v, hi: v}
			continue
		}
		if v < r.lo {
			r.lo = v
		}
		if v > r.hi {
			r.hi = v
		}
	}
	keys := make([]string, 0, len(byWindow))
	for k := range byWindow {
		keys = append(keys, k)
	}
	// Sort by interval start (parse the window notation).
	sort.Slice(keys, func(i, j int) bool {
		wi, _ := telemetry.ParseWindow(keys[i])
		wj, _ := telemetry.ParseWindow(keys[j])
		return wi.Start < wj.Start
	})
	for _, k := range keys {
		r := byWindow[k]
		if r.lo == r.hi {
			fmt.Printf("  %-10s expect ≈ %.0f\n", k, r.lo)
		} else {
			fmt.Printf("  %-10s expect %.0f – %.0f\n", k, r.lo, r.hi)
		}
	}
}
