// Quickstart: the paper's headline result end to end.
//
// It generates the Table 2 dataset grid (a synthetic stand-in for the
// Taxonomist telemetry artifact), learns an Execution Fingerprint
// Dictionary from 80% of the executions — choosing the rounding depth
// by cross-validation, exactly as the paper prescribes — and
// recognizes the held-out 20% from a single system metric and the
// first two minutes of telemetry.
package main

import (
	"fmt"
	"log"

	"repro/efd"
)

func main() {
	// Generate a reduced grid to keep the demo under a few seconds:
	// all eleven applications, ten repeats each, only the headline
	// metric collected.
	cfg := efd.DefaultDatasetConfig()
	cfg.Repeats = 10
	cfg.Cluster.Metrics = []string{efd.HeadlineMetric}
	ds, err := efd.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d executions, %d (application, input) labels\n",
		ds.Len(), len(ds.Labels()))

	train, test := efd.Split(ds, 0.8, 42)
	dict, report, err := efd.Train(train, efd.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d executions; cross-validation chose rounding depth %d\n",
		train.Len(), report.BestDepth)
	st := dict.Stats()
	fmt.Printf("dictionary: %d keys (%d application-exclusive, %d collisions)\n",
		st.Keys, st.Exclusive, st.Collisions)

	// Recognize the held-out executions.
	correct := 0
	for _, e := range test.Executions {
		res := dict.Recognize(efd.SourceOf(e))
		if res.Top() == e.Label.App {
			correct++
		}
	}
	fmt.Printf("recognized %d/%d held-out executions correctly\n", correct, test.Len())

	rep, err := efd.Evaluate(efd.Classify(dict, test))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holdout macro F-score: %.3f (paper reports > 0.95 from one metric, 2 minutes)\n",
		rep.MacroF1)
}
