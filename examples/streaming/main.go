// Streaming recognition: answer two minutes into an execution.
//
// The paper's operational pitch is low latency — recognition from the
// first two minutes of telemetry, not a post-mortem over the whole run.
// This example builds a dictionary offline, then replays a fresh
// execution's 1 Hz telemetry into a streaming recognizer sample by
// sample, printing the provisional answer as the fingerprint window
// fills and the final answer the moment it closes, long before the
// job itself finishes.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/efd"
)

func main() {
	metrics := []string{efd.HeadlineMetric}

	// Offline phase: learn the dictionary from past executions.
	cfg := efd.DefaultDatasetConfig()
	cfg.Repeats = 10
	cfg.Cluster.Metrics = metrics
	ds, err := efd.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dict, report, err := efd.Train(ds, efd.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary ready: %d keys at depth %d\n", dict.Len(), report.BestDepth)

	// Online phase: a new job starts — it happens to be miniAMR with
	// input Z, but the monitor does not know that.
	ns, err := efd.SimulateExecution("miniAMR", "Z", 4, metrics, 20260612)
	if err != nil {
		log.Fatal(err)
	}
	stream := efd.NewStream(dict, 4)

	// Replay the telemetry in arrival order: tick by tick across
	// nodes, exactly as an LDMS aggregator would deliver it.
	duration := ns.Duration()
	fmt.Printf("job started (true duration %v); streaming telemetry...\n",
		duration.Round(time.Second))
	for tick := time.Duration(0); tick <= duration; tick += time.Second {
		for _, node := range ns.Nodes() {
			for _, metric := range metrics {
				s := ns.Get(node, metric)
				i := int(tick / time.Second)
				if i < s.Len() {
					stream.Feed(metric, node, s.OffsetAt(i), s.ValueAt(i))
				}
			}
		}
		secs := int(tick.Seconds())
		if secs > 0 && secs%30 == 0 && !stream.Complete() {
			res := stream.Recognize()
			fmt.Printf("  t=%3ds provisional: %-10s (matched %d/%d fingerprints)\n",
				secs, res.Top(), res.Matched, res.Total)
		}
		if stream.Complete() {
			res := stream.Recognize()
			fmt.Printf("  t=%3ds FINAL: %s (votes %v)\n", secs, res.Top(), res.Votes())
			fmt.Printf("answered %v before the job finished\n",
				(duration - tick).Round(time.Second))
			if len(res.Inputs()) > 0 {
				fmt.Printf("input-size estimate: %v\n", res.Inputs())
			}
			return
		}
	}
	log.Fatal("stream never completed — execution shorter than the window")
}
