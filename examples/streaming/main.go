// Streaming recognition through the embeddable monitoring engine:
// answer two minutes into an execution.
//
// The paper's operational pitch is low latency — recognition from the
// first two minutes of telemetry, not a post-mortem over the whole
// run. This example builds a dictionary offline, then drives the same
// engine the efdd daemon serves over HTTP (efd/monitor) fully
// in-process: a job registers, its 1 Hz telemetry streams in batch by
// batch exactly as an LDMS aggregator would deliver it, the monitor
// polls provisional answers as the fingerprint window fills, and the
// final answer arrives the moment it closes — long before the job
// itself finishes. The labelled job is then learned back into the
// dictionary online, the loop the paper calls "learning new
// applications is as simple as adding new keys".
//
// The same lifecycle is available over the wire: run cmd/efdd and
// drive it with the typed efd/client SDK (client.New(baseURL),
// Register/Ingest/Result/Label — or a BatchWriter in columnar mode
// for the binary ingest encoding).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/efd"
	"repro/efd/monitor"
)

func main() {
	metrics := []string{efd.HeadlineMetric}

	// Offline phase: learn the dictionary from past executions.
	cfg := efd.DefaultDatasetConfig()
	cfg.Repeats = 10
	cfg.Cluster.Metrics = metrics
	ds, err := efd.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dict, report, err := efd.Train(ds, efd.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary ready: %d keys at depth %d\n", dict.Len(), report.BestDepth)

	// The always-on monitor: the engine owns the dictionary from here
	// (concurrent recognition, exclusive online learning).
	eng := monitor.New(dict)

	// Online phase: a new job starts — it happens to be miniAMR with
	// input Z, but the monitor does not know that.
	ns, err := efd.SimulateExecution("miniAMR", "Z", 4, metrics, 20260612)
	if err != nil {
		log.Fatal(err)
	}
	job, err := eng.Register("job-0042", 4)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the telemetry in arrival order: tick by tick across
	// nodes, exactly as an LDMS aggregator would forward it.
	duration := ns.Duration()
	fmt.Printf("job started (true duration %v); streaming telemetry...\n",
		duration.Round(time.Second))
	var batch []monitor.Sample
	for tick := time.Duration(0); tick <= duration; tick += time.Second {
		batch = batch[:0]
		for _, node := range ns.Nodes() {
			for _, metric := range metrics {
				s := ns.Get(node, metric)
				i := int(tick / time.Second)
				if i < s.Len() {
					batch = append(batch, monitor.Sample{
						Metric: metric, Node: node,
						OffsetS: s.OffsetAt(i).Seconds(), Value: s.ValueAt(i),
					})
				}
			}
		}
		if _, err := job.Ingest(batch); err != nil {
			log.Fatal(err)
		}
		// Complete is cheap (no recognition pass); run the full
		// Result only at the 30 s marks and at the finish line.
		complete, err := job.Complete()
		if err != nil {
			log.Fatal(err)
		}
		secs := int(tick.Seconds())
		if secs > 0 && secs%30 == 0 && !complete {
			state, err := job.Result()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  t=%3ds provisional: %-10s (matched %d/%d fingerprints)\n",
				secs, state.Top, state.Matched, state.Total)
		}
		if complete {
			state, err := job.Result()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  t=%3ds FINAL: %s (votes %v)\n", secs, state.Top, state.Votes)
			fmt.Printf("answered %v before the job finished\n",
				(duration - tick).Round(time.Second))
			// Close the loop: the operator confirms the label and the
			// engine learns this execution online.
			learned, err := job.Label("miniAMR", "Z")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("learned back into the dictionary as %s (%d keys now)\n",
				learned, eng.DictionaryInfo().Keys)
			return
		}
	}
	log.Fatal("stream never completed — execution shorter than the window")
}
