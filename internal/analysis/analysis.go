package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a precise position, the rule that fired,
// and a message phrased as the violated invariant.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

// String renders the driver's one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects the typed package in the
// pass and reports findings through it.
type Analyzer struct {
	Name string
	// Doc is the one-line summary printed by efdvet -list; LINTS.md
	// carries the full contract.
	Doc string
	Run func(*Pass)
}

// Pass is one (analyzer, package) execution: the typed syntax under
// inspection, the shared module state (call graph and module-wide
// indexes, built once per run), and the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Mod      *Module

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All is the full analyzer suite, in reporting order.
var All = []*Analyzer{
	VFSSeam,
	LockDiscipline,
	HotPath,
	AtomicField,
	APILock,
	ErrIs,
	NoExit,
}

// Run executes the analyzers over one loaded package and returns the
// raw findings, position-sorted. Suppression comments are not applied
// here — see Suppress. The package is analyzed as a module of one:
// transitive rules see only its own edges. Multi-package runs (the
// driver, the dogfood gate) build one Module and use Module.Run so
// cross-package chains resolve and shared indexes build once.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return NewModule([]*Package{pkg}).Run(pkg, analyzers)
}

// Run executes the analyzers over one package of the module, with all
// module-wide state (call graph, access indexes) shared across calls.
func (m *Module) Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Mod:      m,
			pkg:      pkg,
			diags:    &diags,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by (file, line, col, rule) — the
// one canonical order, applied both per package and by the driver
// across packages, so lint output diffs are stable run-to-run.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}
