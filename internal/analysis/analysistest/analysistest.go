// Package analysistest runs analyzers over fixture packages and
// checks their diagnostics against expectations written in the
// fixture source itself:
//
//	f, err := os.OpenFile(p, flags, 0) // want `os.OpenFile bypasses the vfs seam`
//
// Each `// want` comment carries one or more quoted regular
// expressions; every diagnostic on that line must be matched by
// exactly one of them, and every expectation must match exactly one
// diagnostic. Fixtures live under testdata (invisible to the normal
// build) and are loaded under synthetic import paths, so path-scoped
// analyzers (vfsseam, lockdiscipline) can be pointed at — or away
// from — their scope as part of the test.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe recognizes an expectation comment; the payload is a
// sequence of quoted ("..." or `...`) regular expressions.
var wantRe = regexp.MustCompile(`^//\s*want\s+(.+)$`)

// quotedRe splits the payload into its quoted tokens.
var quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture directory under importPath, runs the
// analyzers, and fails t unless the diagnostics and the fixture's
// `// want` comments match one-to-one. The raw diagnostics are
// returned for any further assertions.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkg, diags := Diagnostics(t, dir, importPath, analyzers...)
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
	return diags
}

// Diagnostics loads the fixture and runs the analyzers without
// checking want comments — for asserting an analyzer stays silent
// (scope tests, package-main exemptions).
func Diagnostics(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) (*analysis.Package, []analysis.Diagnostic) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s, %s): %v", dir, importPath, err)
	}
	return pkg, analysis.Run(pkg, analyzers)
}

type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	used    bool
}

// collectWants extracts every expectation comment in the package.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				tokens := quotedRe.FindAllString(m[1], -1)
				if len(tokens) == 0 {
					t.Errorf("%s:%d: malformed want comment: no quoted pattern in %q", pos.Filename, pos.Line, m[1])
					continue
				}
				for _, tok := range tokens {
					pat, err := unquote(tok)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pat, re: re})
				}
			}
		}
	}
	return wants
}

func unquote(tok string) (string, error) {
	if strings.HasPrefix(tok, "`") {
		return strings.Trim(tok, "`"), nil
	}
	return strconv.Unquote(tok)
}

// claim marks the first unused want on the diagnostic's line whose
// regexp matches the message.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.used || w.file != d.File || w.line != d.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}
