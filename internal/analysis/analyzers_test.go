package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func fixture(name string) string { return filepath.Join("testdata", "src", name) }

// tsdbFixturePrefix is a synthetic import path containing the
// internal/tsdb segment, putting a fixture in scope for the
// storage-layer analyzers.
const tsdbFixturePrefix = "fixture/internal/tsdb/"

func TestVFSSeam(t *testing.T) {
	diags := analysistest.Run(t, fixture("vfsseam"), tsdbFixturePrefix+"vfsseam", analysis.VFSSeam)
	if len(diags) == 0 {
		t.Fatal("vfsseam produced no findings on its fixture")
	}
}

// TestVFSSeamOutOfScope loads the same fixture under a path outside
// internal/tsdb: the seam rules must not fire there — os is fine in,
// say, cmd/efd.
func TestVFSSeamOutOfScope(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("vfsseam"), "fixture/plain/vfsseam", analysis.VFSSeam)
	if len(diags) != 0 {
		t.Fatalf("vfsseam fired outside internal/tsdb: %v", diags)
	}
}

func TestLockDiscipline(t *testing.T) {
	diags := analysistest.Run(t, fixture("lockdiscipline"), tsdbFixturePrefix+"lockdiscipline", analysis.LockDiscipline)
	if len(diags) == 0 {
		t.Fatal("lockdiscipline produced no findings on its fixture")
	}
}

func TestLockDisciplineOutOfScope(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("lockdiscipline"), "fixture/plain/lockdiscipline", analysis.LockDiscipline)
	if len(diags) != 0 {
		t.Fatalf("lockdiscipline fired outside internal/tsdb: %v", diags)
	}
}

func TestHotPath(t *testing.T) {
	diags := analysistest.Run(t, fixture("hotpath"), "fixture/hotpath", analysis.HotPath)
	if len(diags) == 0 {
		t.Fatal("hotpath produced no findings on its fixture")
	}
}

func TestErrIs(t *testing.T) {
	diags := analysistest.Run(t, fixture("erris"), "fixture/erris", analysis.ErrIs)
	if len(diags) == 0 {
		t.Fatal("erris produced no findings on its fixture")
	}
}

func TestNoExit(t *testing.T) {
	diags := analysistest.Run(t, fixture("noexit"), "fixture/noexit", analysis.NoExit)
	if len(diags) == 0 {
		t.Fatal("noexit produced no findings on its fixture")
	}
}

// TestNoExitMainExempt: package main owns the process, so the same
// calls that fail a library are silent there.
func TestNoExitMainExempt(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("noexitmain"), "fixture/noexitmain", analysis.NoExit)
	if len(diags) != 0 {
		t.Fatalf("noexit fired in package main: %v", diags)
	}
}

// TestHotPathChain is the tentpole acceptance fixture: a hot root
// reaching fmt through two unmarked hops — one of them interface
// dispatch — is flagged with the full call chain, a go-statement
// callee inherits the contract, and the //efd:coldpath intermediate
// keeps the parallel chain silent.
func TestHotPathChain(t *testing.T) {
	diags := analysistest.Run(t, fixture("hotpathchain"), "fixture/hotpathchain", analysis.HotPath)
	var chain bool
	for _, d := range diags {
		if strings.Contains(d.Message, "Recognize → describe → sprintRenderer.render") {
			chain = true
		}
		if strings.Contains(d.Message, "Clean") || strings.Contains(d.Message, "coldDescribe") {
			t.Errorf("coldpath escape hatch leaked a finding: %s", d)
		}
	}
	if !chain {
		t.Fatalf("no diagnostic carries the full interface-dispatch chain:\n%v", diags)
	}
}

// TestHotPathHorizon caps the traversal at depth 1: the second hop of
// the Recognize chain now crosses the horizon, and the rule says so
// explicitly instead of silently trusting the unexplored tail.
func TestHotPathHorizon(t *testing.T) {
	old := analysis.HotPathMaxDepth
	analysis.HotPathMaxDepth = 1
	t.Cleanup(func() { analysis.HotPathMaxDepth = old })
	_, diags := analysistest.Diagnostics(t, fixture("hotpathchain"), "fixture/hotpathchain", analysis.HotPath)
	var horizon bool
	for _, d := range diags {
		if strings.Contains(d.Message, "exceeds the analysis horizon (depth 1)") &&
			strings.Contains(d.Message, "describe → ") {
			horizon = true
		}
		if strings.Contains(d.Message, "transitive hot path (Recognize") {
			t.Errorf("chain beyond the horizon was still traversed: %s", d)
		}
	}
	if !horizon {
		t.Fatalf("no horizon diagnostic at depth 1:\n%v", diags)
	}
}

func TestAtomicField(t *testing.T) {
	diags := analysistest.Run(t, fixture("atomicfield"), "fixture/atomicfield", analysis.AtomicField)
	if len(diags) == 0 {
		t.Fatal("atomicfield produced no findings on its fixture")
	}
}

// TestAtomicFieldCleanRegression pins the shapes the real tree relies
// on — the engine's storeMode CAS ladder and the obs kit's
// CAS-on-float-bits loop — as finding-free (the PR 10 audit result).
func TestAtomicFieldCleanRegression(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("atomicfieldclean"), "fixture/atomicfieldclean", analysis.AtomicField)
	if len(diags) != 0 {
		t.Fatalf("atomicfield flagged the engine/obs atomic patterns: %v", diags)
	}
}

// TestAPILockFixtureGoldens keeps the committed fixture goldens in
// sync with the deterministic renderer: the matching golden is the
// fixture's exact surface, the drifted one records a Sum with an
// extra parameter. UPDATE_API_FIXTURES=1 regenerates both.
func TestAPILockFixtureGoldens(t *testing.T) {
	render := func(importPath string) string {
		loader, err := analysis.NewLoader(fixture("apilock"))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(fixture("apilock"), importPath)
		if err != nil {
			t.Fatal(err)
		}
		return analysis.FormatAPI(pkg.Types)
	}
	drifted := strings.Replace(render("fixture/apilockdrift"),
		"func Sum(a int, b int) int\n", "func Sum(a int, b int, c int) int\n", 1)
	if !strings.Contains(drifted, "func Sum(a int, b int, c int) int\n") {
		t.Fatal("drift seed line missing from the rendered surface")
	}
	for _, g := range []struct{ file, want string }{
		{"fixture_apilock.golden", render("fixture/apilock")},
		{"fixture_apilockdrift.golden", drifted},
	} {
		path := filepath.Join("testdata", "api", g.file)
		if os.Getenv("UPDATE_API_FIXTURES") != "" {
			if err := os.WriteFile(path, []byte(g.want), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fixture golden (regenerate with UPDATE_API_FIXTURES=1 go test): %v", err)
		}
		if string(data) != g.want {
			t.Errorf("%s is stale (regenerate with UPDATE_API_FIXTURES=1 go test)", g.file)
		}
	}
}

// TestAPILock drives the three golden states — matching, drifted,
// missing — by loading one fixture directory under three pinned
// import paths.
func TestAPILock(t *testing.T) {
	saved := analysis.APIPinnedPackages
	analysis.APIPinnedPackages = append(append([]string(nil), saved...),
		"fixture/apilock", "fixture/apilockdrift", "fixture/apilockmissing")
	t.Cleanup(func() { analysis.APIPinnedPackages = saved })

	_, clean := analysistest.Diagnostics(t, fixture("apilock"), "fixture/apilock", analysis.APILock)
	if len(clean) != 0 {
		t.Fatalf("matching golden produced findings: %v", clean)
	}

	_, drift := analysistest.Diagnostics(t, fixture("apilock"), "fixture/apilockdrift", analysis.APILock)
	if len(drift) != 1 ||
		!strings.Contains(drift[0].Message, "drifted from its golden") ||
		!strings.Contains(drift[0].Message, "make api-golden") {
		t.Fatalf("drifted golden: want one drift finding naming make api-golden, got %v", drift)
	}
	if !strings.Contains(drift[0].Message, "Sum") {
		t.Fatalf("drift finding does not pinpoint the changed line: %s", drift[0])
	}

	_, missing := analysistest.Diagnostics(t, fixture("apilock"), "fixture/apilockmissing", analysis.APILock)
	if len(missing) != 1 || !strings.Contains(missing[0].Message, "has no golden") {
		t.Fatalf("missing golden: want one finding, got %v", missing)
	}
}

// TestAPILockUnpinned: packages outside the pinned set have no locked
// surface — the rule must stay silent no matter what they export.
func TestAPILockUnpinned(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("apilock"), "fixture/unpinned/apilock", analysis.APILock)
	if len(diags) != 0 {
		t.Fatalf("apilock fired on an unpinned package: %v", diags)
	}
}
