package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func fixture(name string) string { return filepath.Join("testdata", "src", name) }

// tsdbFixturePrefix is a synthetic import path containing the
// internal/tsdb segment, putting a fixture in scope for the
// storage-layer analyzers.
const tsdbFixturePrefix = "fixture/internal/tsdb/"

func TestVFSSeam(t *testing.T) {
	diags := analysistest.Run(t, fixture("vfsseam"), tsdbFixturePrefix+"vfsseam", analysis.VFSSeam)
	if len(diags) == 0 {
		t.Fatal("vfsseam produced no findings on its fixture")
	}
}

// TestVFSSeamOutOfScope loads the same fixture under a path outside
// internal/tsdb: the seam rules must not fire there — os is fine in,
// say, cmd/efd.
func TestVFSSeamOutOfScope(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("vfsseam"), "fixture/plain/vfsseam", analysis.VFSSeam)
	if len(diags) != 0 {
		t.Fatalf("vfsseam fired outside internal/tsdb: %v", diags)
	}
}

func TestLockDiscipline(t *testing.T) {
	diags := analysistest.Run(t, fixture("lockdiscipline"), tsdbFixturePrefix+"lockdiscipline", analysis.LockDiscipline)
	if len(diags) == 0 {
		t.Fatal("lockdiscipline produced no findings on its fixture")
	}
}

func TestLockDisciplineOutOfScope(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("lockdiscipline"), "fixture/plain/lockdiscipline", analysis.LockDiscipline)
	if len(diags) != 0 {
		t.Fatalf("lockdiscipline fired outside internal/tsdb: %v", diags)
	}
}

func TestHotPath(t *testing.T) {
	diags := analysistest.Run(t, fixture("hotpath"), "fixture/hotpath", analysis.HotPath)
	if len(diags) == 0 {
		t.Fatal("hotpath produced no findings on its fixture")
	}
}

func TestErrIs(t *testing.T) {
	diags := analysistest.Run(t, fixture("erris"), "fixture/erris", analysis.ErrIs)
	if len(diags) == 0 {
		t.Fatal("erris produced no findings on its fixture")
	}
}

func TestNoExit(t *testing.T) {
	diags := analysistest.Run(t, fixture("noexit"), "fixture/noexit", analysis.NoExit)
	if len(diags) == 0 {
		t.Fatal("noexit produced no findings on its fixture")
	}
}

// TestNoExitMainExempt: package main owns the process, so the same
// calls that fail a library are silent there.
func TestNoExitMainExempt(t *testing.T) {
	_, diags := analysistest.Diagnostics(t, fixture("noexitmain"), "fixture/noexitmain", analysis.NoExit)
	if len(diags) != 0 {
		t.Fatalf("noexit fired in package main: %v", diags)
	}
}
