package analysis

import (
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// APIPinnedPackages lists the module-relative packages whose exported
// surface is locked by golden files: the three-layer public API
// (PR 5) plus the two documented internal surfaces other layers build
// on (the telemetry data plane the public types alias, and the wire
// codec the binary content type is specified against). A variable so
// tests can pin fixture packages; the real set is the contract.
var APIPinnedPackages = []string{
	"efd",
	"efd/client",
	"efd/monitor",
	"internal/telemetry",
	"internal/wire",
}

// APIGoldenDir is where the goldens live, relative to the module
// root.
const APIGoldenDir = "internal/analysis/testdata/api"

// APILock fails the build when the exported surface of a pinned
// package drifts from its golden file: every breaking change to the
// public API becomes a deliberate, reviewable regeneration
// (`make api-golden`) instead of a silent diff in a feature PR. The
// rendering is deterministic (sorted names, import-path-qualified
// types, receiver forms, struct tags), so the golden is stable across
// runs and machines.
var APILock = &Analyzer{
	Name: "apilock",
	Doc:  "exported surfaces of the pinned public packages must match their goldens; regenerate deliberately with make api-golden",
	Run:  runAPILock,
}

// apiRel maps a loaded package path to its module-relative form.
func apiRel(pkg *Package) string {
	if rest, ok := strings.CutPrefix(pkg.Path, pkg.ModPath+"/"); ok {
		return rest
	}
	return pkg.Path
}

// APIGoldenFile returns the golden path for a pinned package, or
// ok=false when the package is not pinned.
func APIGoldenFile(pkg *Package) (string, bool) {
	rel := apiRel(pkg)
	for _, p := range APIPinnedPackages {
		if p == rel {
			base := strings.ReplaceAll(rel, "/", "_") + ".golden"
			return filepath.Join(pkg.ModDir, filepath.FromSlash(APIGoldenDir), base), true
		}
	}
	return "", false
}

func runAPILock(pass *Pass) {
	golden, pinned := APIGoldenFile(pass.pkg)
	if !pinned || len(pass.Files) == 0 {
		return
	}
	pos := pass.Files[0].Name.Pos() // the package clause of the first file
	got := FormatAPI(pass.Pkg)
	want, err := os.ReadFile(golden)
	if err != nil {
		pass.Reportf(pos, "public API surface of %s has no golden (%s): run make api-golden and commit it",
			apiRel(pass.pkg), filepath.ToSlash(filepath.Join(APIGoldenDir, filepath.Base(golden))))
		return
	}
	if got == string(want) {
		return
	}
	line, g, w := firstDiff(got, string(want))
	pass.Reportf(pos, "public API surface of %s drifted from its golden at line %d: have %q, golden has %q — an intended API change is regenerated deliberately with make api-golden",
		apiRel(pass.pkg), line, g, w)
}

// firstDiff locates the first differing line between two renderings.
func firstDiff(got, want string) (line int, g, w string) {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w = "", ""
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return i + 1, g, w
		}
	}
	return 0, "", ""
}

// FormatAPI renders the exported surface of a typechecked package
// deterministically: package clause, then every exported object in
// sorted order — consts and vars with their types, funcs with full
// signatures, types with exported fields (tags included: they are
// wire contract), flattened interface method sets, and the exported
// method set of *T with receiver forms. Types from other packages are
// qualified by full import path, so renames anywhere in a signature
// surface as drift.
func FormatAPI(pkg *types.Package) string {
	var b strings.Builder
	qf := func(p *types.Package) string {
		if p == pkg {
			return ""
		}
		return p.Path()
	}
	fmt.Fprintf(&b, "package %s // import %q\n", pkg.Name(), pkg.Path())
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			fmt.Fprintf(&b, "const %s %s\n", name, types.TypeString(o.Type(), qf))
		case *types.Var:
			fmt.Fprintf(&b, "var %s %s\n", name, types.TypeString(o.Type(), qf))
		case *types.Func:
			fmt.Fprintf(&b, "func %s%s\n", name, signatureString(o.Type().(*types.Signature), qf))
		case *types.TypeName:
			formatType(&b, pkg, o, qf)
		}
	}
	return b.String()
}

// signatureString renders "(params) results" for a signature.
func signatureString(sig *types.Signature, qf types.Qualifier) string {
	return strings.TrimPrefix(types.TypeString(sig, qf), "func")
}

func formatType(b *strings.Builder, pkg *types.Package, o *types.TypeName, qf types.Qualifier) {
	if o.IsAlias() {
		fmt.Fprintf(b, "type %s = %s\n", o.Name(), types.TypeString(o.Type(), qf))
		return
	}
	n, ok := o.Type().(*types.Named)
	if !ok {
		fmt.Fprintf(b, "type %s %s\n", o.Name(), types.TypeString(o.Type(), qf))
		return
	}
	switch u := n.Underlying().(type) {
	case *types.Struct:
		fmt.Fprintf(b, "type %s struct\n", o.Name())
		unexported := 0
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				unexported++
				continue
			}
			line := "\t" + f.Name() + " " + types.TypeString(f.Type(), qf)
			if f.Embedded() {
				line = "\t" + types.TypeString(f.Type(), qf)
			}
			if tag := u.Tag(i); tag != "" {
				line += " `" + tag + "`"
			}
			fmt.Fprintln(b, line)
		}
		if unexported > 0 {
			fmt.Fprintf(b, "\t// +%d unexported field(s)\n", unexported)
		}
	case *types.Interface:
		fmt.Fprintf(b, "type %s interface\n", o.Name())
		var methods []string
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			name := m.Name()
			if !m.Exported() && m.Pkg() != nil && m.Pkg() != pkg {
				name = m.Pkg().Path() + "." + name
			}
			methods = append(methods, "\t"+name+signatureString(m.Type().(*types.Signature), qf))
		}
		sort.Strings(methods)
		for _, m := range methods {
			fmt.Fprintln(b, m)
		}
	default:
		fmt.Fprintf(b, "type %s %s\n", o.Name(), types.TypeString(n.Underlying(), qf))
	}
	// The exported method set of *T covers both receiver forms; the
	// rendered receiver records which one the method declares, since
	// moving a method between them changes the method set of T.
	ms := types.NewMethodSet(types.NewPointer(n))
	var lines []string
	for i := 0; i < ms.Len(); i++ {
		m, ok := ms.At(i).Obj().(*types.Func)
		if !ok || !m.Exported() {
			continue
		}
		sig := m.Type().(*types.Signature)
		recv := "?"
		if sig.Recv() != nil {
			recv = types.TypeString(sig.Recv().Type(), qf)
		}
		lines = append(lines, fmt.Sprintf("func (%s) %s%s", recv, m.Name(), signatureString(sig, qf)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(b, l)
	}
}

// WriteAPIGoldens regenerates the golden files for every pinned
// package present in pkgs and returns the module-relative paths
// written — the `efdvet -api-golden` / `make api-golden` entry point.
func WriteAPIGoldens(pkgs []*Package) ([]string, error) {
	var written []string
	for _, pkg := range pkgs {
		golden, pinned := APIGoldenFile(pkg)
		if !pinned {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			return written, err
		}
		if err := os.WriteFile(golden, []byte(FormatAPI(pkg.Types)), 0o644); err != nil {
			return written, err
		}
		rel, err := filepath.Rel(pkg.ModDir, golden)
		if err != nil {
			rel = golden
		}
		written = append(written, filepath.ToSlash(rel))
	}
	sort.Strings(written)
	return written, nil
}
