package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces whole-module atomic-field discipline (the
// PR 6/8/9 state machines live on lock-free atomics): a struct field
// that is accessed through sync/atomic anywhere in the module must be
// accessed atomically everywhere — one plain read racing a CAS is the
// exact bug class the exactly-once transition counters were
// hand-audited against, and it is invisible to review one function at
// a time. Mixed access is a finding at the plain site, carrying the
// atomic site it races with.
//
// The typed atomics (atomic.Int64-family, atomic.Value) are safe by
// construction — except when copied: a copy starts a second,
// unsynchronized word, so any expression that copies such a value
// (assignment, argument, return, composite literal, range value) is a
// finding too.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed through sync/atomic anywhere must be accessed atomically everywhere; atomic.Int64-family values must not be copied",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	emitOwned(pass, pass.Mod.atomicDiags())
}

func (m *Module) atomicDiags() []ownedDiag {
	m.atomicOnce.Do(func() { m.atomic = buildAtomicDiags(m.Pkgs) })
	return m.atomic
}

// atomicWordFuncs are the package-level sync/atomic operations whose
// first argument addresses the word they operate on.
var atomicWordFuncs = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicWordFuncs[op+ty] = true
		}
	}
}

// typedAtomicNames are the sync/atomic struct types whose methods are
// atomic by construction and whose values must never be copied.
var typedAtomicNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

type fieldAccess struct {
	pkg *Package
	pos token.Pos
}

type fieldUses struct {
	field  *types.Var
	owner  string // rendered owner type, for messages
	atomic []fieldAccess
	plain  []fieldAccess
}

func buildAtomicDiags(pkgs []*Package) []ownedDiag {
	ordered := append([]*Package(nil), pkgs...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].Path > ordered[j].Path; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	uses := make(map[*types.Var]*fieldUses)
	var order []*types.Var // first-seen order, deterministic
	var out []ownedDiag
	for _, pkg := range ordered {
		// accounted marks selector expressions consumed as the &field
		// operand of a sync/atomic call — those are the atomic
		// accesses, not plain ones.
		accounted := make(map[ast.Expr]bool)
		record := func(sel *ast.SelectorExpr, atomic bool) {
			field := fieldOf(pkg.Info, sel)
			if field == nil {
				return
			}
			fu := uses[field]
			if fu == nil {
				fu = &fieldUses{field: field, owner: ownerName(pkg.Info, sel)}
				uses[field] = fu
				order = append(order, field)
			}
			acc := fieldAccess{pkg: pkg, pos: sel.Sel.Pos()}
			if atomic {
				fu.atomic = append(fu.atomic, acc)
			} else {
				fu.plain = append(fu.plain, acc)
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if sel := atomicWordArg(pkg.Info, x); sel != nil {
						accounted[sel] = true
						record(sel, true)
					}
				case *ast.SelectorExpr:
					if !accounted[x] {
						record(x, false)
					}
				}
				return true
			})
			out = append(out, copyViolations(pkg, f)...)
		}
	}
	for _, field := range order {
		fu := uses[field]
		if len(fu.atomic) == 0 || len(fu.plain) == 0 {
			continue
		}
		a := fu.atomic[0]
		aPos := a.pkg.Fset.Position(a.pos)
		for _, p := range fu.plain {
			out = append(out, ownedDiag{pkg: p.pkg, pos: p.pos, msg: fmt.Sprintf(
				"field %s.%s is accessed through sync/atomic at %s:%d:%d but plainly here: mixed access races; use sync/atomic (or an atomic.%s field) at every site",
				fu.owner, field.Name(), shortPath(aPos.Filename), aPos.Line, aPos.Column,
				suggestTypedAtomic(field.Type()))})
		}
	}
	return out
}

// atomicWordArg returns the field selector addressed by a
// sync/atomic package-level call (atomic.AddInt64(&s.f, 1) → s.f),
// or nil.
func atomicWordArg(info *types.Info, call *ast.CallExpr) *ast.SelectorExpr {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // a typed-atomic method, not a word operation
	}
	if !atomicWordFuncs[fn.Name()] || len(call.Args) == 0 {
		return nil
	}
	unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(unary.X).(*ast.SelectorExpr)
	return sel
}

// fieldOf resolves a selector to the struct field it reads or
// writes, or nil for methods, package selectors, and locals.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// ownerName renders the type owning the selected field.
func ownerName(info *types.Info, sel *ast.SelectorExpr) string {
	if tv, ok := info.Types[sel.X]; ok {
		if n := namedType(tv.Type); n != nil {
			return n.Obj().Name()
		}
	}
	return "?"
}

// suggestTypedAtomic names the typed atomic matching the field's
// width, for the fix-it half of the message.
func suggestTypedAtomic(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Int64"
}

// shortPath trims the path to its last three segments — enough to
// locate the racing site without absolute-path noise in messages.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 3 {
		parts = parts[len(parts)-3:]
	}
	return strings.Join(parts, "/")
}

// copyViolations flags expressions that copy a typed-atomic value:
// the copy is a second, unsynchronized word.
func copyViolations(pkg *Package, f *ast.File) []ownedDiag {
	var out []ownedDiag
	check := func(e ast.Expr) {
		e = ast.Unparen(e)
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return // construction of a fresh value, not a copy
		}
		if _, isAddr := e.(*ast.UnaryExpr); isAddr {
			return
		}
		tv, ok := pkg.Info.Types[e]
		if !ok || !isTypedAtomic(tv.Type) {
			return
		}
		out = append(out, ownedDiag{pkg: pkg, pos: e.Pos(), msg: fmt.Sprintf(
			"copy of %s: the copy is a second unsynchronized word whose updates readers of the original never see; keep a pointer instead",
			types.TypeString(tv.Type, nil))})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				check(r)
			}
		case *ast.ValueSpec:
			for _, v := range x.Values {
				check(v)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				check(r)
			}
		case *ast.CallExpr:
			if !isConversion(pkg.Info, x) {
				for _, a := range x.Args {
					check(a)
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					check(kv.Value)
				} else {
					check(el)
				}
			}
		case *ast.RangeStmt:
			if x.Value != nil {
				// In `for _, v := range …` the value is a defining
				// ident, typed through Defs rather than Types.
				var t types.Type
				if tv, ok := pkg.Info.Types[x.Value]; ok {
					t = tv.Type
				} else if id, ok := x.Value.(*ast.Ident); ok {
					if obj := pkg.Info.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
				if t != nil && isTypedAtomic(t) {
					out = append(out, ownedDiag{pkg: pkg, pos: x.Value.Pos(), msg: fmt.Sprintf(
						"range copies %s per element: range over indexes and address the element instead",
						types.TypeString(t, nil))})
				}
			}
		}
		return true
	})
	return out
}

// isTypedAtomic reports whether t is one of the sync/atomic struct
// types (atomic.Int64, atomic.Value, …).
func isTypedAtomic(t types.Type) bool {
	n, _ := types.Unalias(t).(*types.Named)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic" && typedAtomicNames[n.Obj().Name()]
}

// isConversion reports whether the call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
