package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// Module is the shared state of one efdvet run: every loaded target
// package plus the lazily built module-wide indexes (the call graph,
// the atomic-field access index, the transitive hot-path findings).
// The driver builds one Module and routes every package's pass through
// it, so the expensive constructions happen exactly once per run no
// matter how many analyzers consume them.
type Module struct {
	Pkgs []*Package

	graphOnce sync.Once
	graph     *CallGraph

	hotOnce sync.Once
	hot     []ownedDiag

	atomicOnce sync.Once
	atomic     []ownedDiag
}

// NewModule groups loaded packages into one analysis unit. Transitive
// rules only see edges between the packages given here: run efdvet
// over ./... for whole-module guarantees.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs}
}

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Pkgs) })
	return m.graph
}

// ownedDiag is a module-level finding pre-routed to the package whose
// pass reports it — the package owning the file the position points
// into — so per-file //efdvet:ignore suppressions keep working.
type ownedDiag struct {
	pkg *Package
	pos token.Pos
	msg string
}

// emitOwned reports the module-level findings that belong to this
// pass's package.
func emitOwned(pass *Pass, diags []ownedDiag) {
	for _, d := range diags {
		if d.pkg.Types == pass.Pkg {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

// EdgeKind classifies how control reaches the callee.
type EdgeKind uint8

const (
	// EdgeCall is a statically resolved direct call.
	EdgeCall EdgeKind = iota
	// EdgeGo is a call launched by a go statement.
	EdgeGo
	// EdgeDefer is a deferred call.
	EdgeDefer
	// EdgeIface is an interface-dispatch call resolved to a possible
	// concrete method by class-hierarchy analysis.
	EdgeIface
	// EdgeRef records a function or method value taken as a value (a
	// callback handed elsewhere); the reference may be invoked later,
	// so transitive rules follow it conservatively.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	case EdgeIface:
		return "iface"
	case EdgeRef:
		return "ref"
	}
	return "?"
}

// Edge is one caller→callee relation with the site it was derived
// from (the first such site when the pair repeats).
type Edge struct {
	Caller *types.Func
	Callee *types.Func
	Site   token.Pos
	Kind   EdgeKind
}

// FuncInfo is one declared function of a target package: its syntax,
// owning package, and the hot/cold path markers from its doc comment.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Hot  bool // doc comment carries //efd:hotpath
	Cold bool // doc comment carries //efd:coldpath
}

// CallGraph is the type-resolved, module-wide call graph: every
// function declared in the target packages, with edges for static
// calls (precise), interface and method-value dispatch (class-
// hierarchy analysis over go/types), go statements, and deferred
// calls. Calls into packages outside the analysis unit (stdlib,
// non-target module packages) carry no edge — their effects are
// judged at the call site by the body rules.
type CallGraph struct {
	// Funcs indexes every declared function in the unit.
	Funcs map[*types.Func]*FuncInfo
	// Order lists the functions deterministically: package path, then
	// declaration position.
	Order []*types.Func
	// BuildTime is the wall-clock cost of construction, surfaced by
	// the driver so analysis-cost regressions are visible in CI logs.
	BuildTime time.Duration

	edges     map[*types.Func][]Edge
	edgeCount int
}

// EdgesFrom returns fn's outgoing edges in source order.
func (g *CallGraph) EdgesFrom(fn *types.Func) []Edge { return g.edges[fn] }

// NumNodes and NumEdges size the graph for the driver's build report.
func (g *CallGraph) NumNodes() int { return len(g.Funcs) }
func (g *CallGraph) NumEdges() int { return g.edgeCount }

// ColdPathMarker is the doc-comment directive that stops hot-path
// propagation: the reviewed, written-down escape hatch for a branch
// that is deliberately cold (error construction, rare lifecycle work).
const ColdPathMarker = "//efd:coldpath"

type graphBuilder struct {
	g     *CallGraph
	named []*types.Named
	// impls caches class-hierarchy resolution per abstract method.
	impls map[*types.Func][]*types.Func
	// seen dedupes (caller, callee, kind) triples; the first site wins.
	seen map[[2]*types.Func]map[EdgeKind]bool
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	start := time.Now()
	g := &CallGraph{
		Funcs: make(map[*types.Func]*FuncInfo),
		edges: make(map[*types.Func][]Edge),
	}
	b := &graphBuilder{
		g:     g,
		impls: make(map[*types.Func][]*types.Func),
		seen:  make(map[[2]*types.Func]map[EdgeKind]bool),
	}
	ordered := append([]*Package(nil), pkgs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path < ordered[j].Path })
	for _, pkg := range ordered {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Funcs[fn] = &FuncInfo{
					Fn:   fn,
					Decl: fd,
					Pkg:  pkg,
					Hot:  commentHasDirective(fd.Doc, HotPathMarker),
					Cold: commentHasDirective(fd.Doc, ColdPathMarker),
				}
				g.Order = append(g.Order, fn)
			}
		}
		// Every non-generic named concrete type in the unit joins the
		// class hierarchy for interface-dispatch resolution.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok || n.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := n.Underlying().(*types.Interface); isIface {
				continue
			}
			b.named = append(b.named, n)
		}
	}
	for _, pkg := range ordered {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					b.walkBody(pkg, fn, fd.Body)
				}
			}
		}
	}
	g.BuildTime = time.Since(start)
	return g
}

// walkBody derives fn's outgoing edges. Function-literal bodies are
// attributed to the enclosing declared function: a closure built and
// run inside F is F's work.
func (b *graphBuilder) walkBody(pkg *Package, caller *types.Func, body ast.Node) {
	// First pass: calls. Go/defer statements tag their CallExpr so the
	// edge carries how control transfers; the Fun expressions in call
	// position are remembered so the reference pass skips them.
	stmtKind := make(map[*ast.CallExpr]EdgeKind)
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			stmtKind[x.Call] = EdgeGo
		case *ast.DeferStmt:
			stmtKind[x.Call] = EdgeDefer
		case *ast.CallExpr:
			kind := EdgeCall
			if k, ok := stmtKind[x]; ok {
				kind = k
			}
			fun := ast.Unparen(x.Fun)
			callFuns[fun] = true
			b.call(pkg, caller, fun, kind)
		}
		return true
	})
	// Second pass: function and method values referenced outside call
	// position — callbacks that may run later.
	handled := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			handled[x.Sel] = true
			if callFuns[x] {
				return true
			}
			if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
				b.ref(pkg, caller, x.Pos(), fn)
			}
		case *ast.Ident:
			if handled[x] || callFuns[x] {
				return true
			}
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				b.ref(pkg, caller, x.Pos(), fn)
			}
		}
		return true
	})
}

// call records the edge(s) for one call expression.
func (b *graphBuilder) call(pkg *Package, caller *types.Func, fun ast.Expr, kind EdgeKind) {
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			b.edge(caller, fn, f.Pos(), kind)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			if iface := interfaceRecv(fn); iface != nil {
				// go/defer through an interface keeps the statement
				// kind; a plain dispatch is tagged iface.
				ik := kind
				if ik == EdgeCall {
					ik = EdgeIface
				}
				for _, impl := range b.implsOf(fn, iface) {
					b.edge(caller, impl, f.Pos(), ik)
				}
				return
			}
			b.edge(caller, fn, f.Pos(), kind)
			return
		}
		// Package-qualified call or method expression (T.M(recv, …)).
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			b.edge(caller, fn, f.Pos(), kind)
		}
	}
}

// ref records a function value taken as a value. Interface method
// values fan out to their possible concrete receivers.
func (b *graphBuilder) ref(pkg *Package, caller *types.Func, pos token.Pos, fn *types.Func) {
	if iface := interfaceRecv(fn); iface != nil {
		for _, impl := range b.implsOf(fn, iface) {
			b.edge(caller, impl, pos, EdgeRef)
		}
		return
	}
	b.edge(caller, fn, pos, EdgeRef)
}

// edge appends caller→callee if the callee is declared in the unit
// and the (caller, callee, kind) triple is new.
func (b *graphBuilder) edge(caller, callee *types.Func, site token.Pos, kind EdgeKind) {
	if caller == callee {
		return
	}
	if _, ok := b.g.Funcs[callee]; !ok {
		return
	}
	key := [2]*types.Func{caller, callee}
	kinds := b.seen[key]
	if kinds == nil {
		kinds = make(map[EdgeKind]bool)
		b.seen[key] = kinds
	}
	if kinds[kind] {
		return
	}
	kinds[kind] = true
	b.g.edges[caller] = append(b.g.edges[caller], Edge{Caller: caller, Callee: callee, Site: site, Kind: kind})
	b.g.edgeCount++
}

// interfaceRecv returns the receiver interface of an abstract method,
// or nil for concrete methods and plain functions.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implsOf resolves an interface method to the concrete methods of
// every named type in the unit whose method set satisfies the
// interface — class-hierarchy analysis: sound over the loaded
// packages, imprecise exactly where dynamic dispatch is.
func (b *graphBuilder) implsOf(m *types.Func, iface *types.Interface) []*types.Func {
	if impls, ok := b.impls[m]; ok {
		return impls
	}
	var impls []*types.Func
	for _, n := range b.named {
		if !types.Implements(n, iface) && !types.Implements(types.NewPointer(n), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, declared := b.g.Funcs[fn]; declared {
			impls = append(impls, fn)
		}
	}
	b.impls[m] = impls
	return impls
}

// FuncDisplayName renders fn for call-chain diagnostics: methods as
// Type.Name, functions bare.
func FuncDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// chainString renders root→…→last following the BFS parent links.
func chainString(parent map[*types.Func]*types.Func, last *types.Func) string {
	var names []string
	for fn := last; fn != nil; fn = parent[fn] {
		names = append(names, FuncDisplayName(fn))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}
