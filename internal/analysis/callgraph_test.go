package analysis_test

import (
	"go/types"
	"sort"
	"testing"

	"repro/internal/analysis"
)

// loadFixturePkg typechecks one fixture directory under a synthetic
// import path and returns the loaded package.
func loadFixturePkg(t *testing.T, name, importPath string) *analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader(fixture(name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(fixture(name), importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestCallGraphEdgeSets pins the edge set of the fixture's root
// function: one edge per kind the graph distinguishes — static call,
// interface dispatch fanned out to every implementation by
// class-hierarchy analysis, go statement, deferred call, and a
// function value taken as a callback.
func TestCallGraphEdgeSets(t *testing.T) {
	pkg := loadFixturePkg(t, "callgraph", "fixture/callgraph")
	g := analysis.NewModule([]*analysis.Package{pkg}).Graph()

	// Every declared function with a body is a node.
	if got, want := g.NumNodes(), 8; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}

	var root *types.Func
	for _, fn := range g.Order {
		if analysis.FuncDisplayName(fn) == "root" {
			root = fn
		}
	}
	if root == nil {
		t.Fatal("root not in the graph")
	}

	var got []string
	for _, e := range g.EdgesFrom(root) {
		if e.Caller != root {
			t.Errorf("edge from EdgesFrom(root) has Caller %s", analysis.FuncDisplayName(e.Caller))
		}
		if !e.Site.IsValid() {
			t.Errorf("edge to %s has no site", analysis.FuncDisplayName(e.Callee))
		}
		got = append(got, e.Kind.String()+" "+analysis.FuncDisplayName(e.Callee))
	}
	sort.Strings(got)
	want := []string{
		"call direct",
		"call use",
		"defer cleanup",
		"go spawn",
		"iface alt.greet",
		"iface eng.greet",
		"ref callback",
	}
	if len(got) != len(want) {
		t.Fatalf("edges from root = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges from root = %v, want %v", got, want)
		}
	}
}

// TestCallGraphMarkers: the hot/cold doc directives land on the nodes
// the traversal consults.
func TestCallGraphMarkers(t *testing.T) {
	pkg := loadFixturePkg(t, "hotpathchain", "fixture/hotpathchain")
	g := analysis.NewModule([]*analysis.Package{pkg}).Graph()
	want := map[string]struct{ hot, cold bool }{
		"Recognize":    {hot: true},
		"Spawn":        {hot: true},
		"Clean":        {hot: true},
		"coldDescribe": {cold: true},
		"describe":     {},
		"tick":         {},
	}
	seen := 0
	for _, fn := range g.Order {
		fi := g.Funcs[fn]
		w, ok := want[analysis.FuncDisplayName(fn)]
		if !ok {
			continue
		}
		seen++
		if fi.Hot != w.hot || fi.Cold != w.cold {
			t.Errorf("%s: hot=%v cold=%v, want hot=%v cold=%v",
				analysis.FuncDisplayName(fn), fi.Hot, fi.Cold, w.hot, w.cold)
		}
	}
	if seen != len(want) {
		t.Errorf("found %d of %d marker functions in the graph", seen, len(want))
	}
}

// TestCallGraphSharedAcrossAnalyzers: one Module builds its graph
// exactly once no matter how many consumers ask.
func TestCallGraphSharedAcrossAnalyzers(t *testing.T) {
	pkg := loadFixturePkg(t, "callgraph", "fixture/callgraph")
	mod := analysis.NewModule([]*analysis.Package{pkg})
	if g1, g2 := mod.Graph(), mod.Graph(); g1 != g2 {
		t.Fatal("Module.Graph rebuilt the call graph on second use")
	}
}
