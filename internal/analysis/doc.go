// Package analysis hosts efdvet, the repo's custom static-analysis
// suite: a stdlib-only framework (go/parser + go/ast + go/types over
// a from-source importer, zero module dependencies) plus the seven
// analyzers that mechanically enforce invariants earlier PRs paid for
// in benchmarks and crash tests:
//
//	vfsseam        every internal/tsdb filesystem operation flows
//	               through the vfs.FS seam (PR 6) — otherwise fault
//	               injection and CrashAt sweeps silently lose
//	               coverage of it
//	lockdiscipline no fsync / record encoding / direct file writes
//	               inside the tsdb store-mutex critical sections —
//	               the off-lock group-commit rule (PR 4)
//	hotpath        functions marked //efd:hotpath — and, since PR 10,
//	               everything module-internal reachable from them
//	               through the call graph, minus //efd:coldpath —
//	               stay free of fmt, time.Now, slog, runtime string
//	               concatenation, and map allocation (PR 1/3
//	               allocation-free contract); transitive findings
//	               carry the full call chain from the marked root
//	atomicfield    a struct field accessed through sync/atomic
//	               anywhere is accessed atomically everywhere, and
//	               atomic.Int64-family values are never copied
//	               (PR 10, guarding the PR 6/8/9 lock-free state
//	               machines)
//	apilock        the exported surface of the pinned public packages
//	               matches its golden under testdata/api; intended
//	               changes regenerate with make api-golden (PR 10)
//	erris          sentinel errors are matched with errors.Is, not
//	               ==/!= (PR 5 typed-sentinel contract), excepting
//	               io.EOF from a direct Reader.Read
//	noexit         library packages never terminate or panic on
//	               error values; only cmd/* may (PR 5 embeddability)
//
// Since PR 10 the engine is interprocedural: one run builds a
// type-resolved module-wide call graph (callgraph.go — static calls
// precise, interface and method-value dispatch via class-hierarchy
// analysis, go statements and deferred calls as edges), cached on the
// run's shared Module so every analyzer consumes one construction.
// Transitive rules only see edges between the packages loaded
// together; the driver loads ./... so the guarantees are
// module-wide.
//
// The cmd/efdvet driver loads ./..., runs the suite, and prints
// file:line:col: [rule] message (or -json), sorted by (file, line,
// col, rule) across packages. Findings are suppressed in place with
//
//	//efdvet:ignore <rule> <reason>
//
// on or directly above the offending line; the reason is mandatory,
// and a suppression whose finding has disappeared is itself reported
// (stale) so the gate cannot rot. LINTS.md at the repo root documents
// each rule, the invariant it guards, and the PR that established it.
//
// Test files are deliberately out of scope: the suite checks shipped
// code, and tests legitimately reach around seams (fault injection
// handles, sentinel identity assertions).
//
// The framework typechecks everything from source — module packages
// resolve against the module tree, the rest against GOROOT — so the
// suite needs no compiled export data, no go/packages, and no
// network. A full ./... pass over this repo costs a few seconds; the
// TestTreeClean dogfood gate runs exactly that on every make
// check, so the tree is always lint-clean by construction.
package analysis
