// Package analysis hosts efdvet, the repo's custom static-analysis
// suite: a stdlib-only framework (go/parser + go/ast + go/types over
// a from-source importer, zero module dependencies) plus the five
// analyzers that mechanically enforce invariants earlier PRs paid for
// in benchmarks and crash tests:
//
//	vfsseam        every internal/tsdb filesystem operation flows
//	               through the vfs.FS seam (PR 6) — otherwise fault
//	               injection and CrashAt sweeps silently lose
//	               coverage of it
//	lockdiscipline no fsync / record encoding / direct file writes
//	               inside the tsdb store-mutex critical sections —
//	               the off-lock group-commit rule (PR 4)
//	hotpath        functions marked //efd:hotpath stay free of fmt,
//	               time.Now, runtime string concatenation, and map
//	               allocation (PR 1/3 allocation-free contract)
//	erris          sentinel errors are matched with errors.Is, not
//	               ==/!= (PR 5 typed-sentinel contract), excepting
//	               io.EOF from a direct Reader.Read
//	noexit         library packages never terminate or panic on
//	               error values; only cmd/* may (PR 5 embeddability)
//
// The cmd/efdvet driver loads ./..., runs the suite, and prints
// file:line:col: [rule] message (or -json). Findings are suppressed
// in place with
//
//	//efdvet:ignore <rule> <reason>
//
// on or directly above the offending line; the reason is mandatory,
// and a suppression whose finding has disappeared is itself reported
// (stale) so the gate cannot rot. LINTS.md at the repo root documents
// each rule, the invariant it guards, and the PR that established it.
//
// Test files are deliberately out of scope: the suite checks shipped
// code, and tests legitimately reach around seams (fault injection
// handles, sentinel identity assertions).
//
// The framework typechecks everything from source — module packages
// resolve against the module tree, the rest against GOROOT — so the
// suite needs no compiled export data, no go/packages, and no
// network. A full ./... pass over this repo costs a few seconds; the
// meta-test in zero_findings_test.go runs exactly that on every make
// check, so the tree is always lint-clean by construction.
package analysis
