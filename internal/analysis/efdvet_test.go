package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestTreeClean is the dogfood gate: every analyzer over every
// package of the real module must produce zero unsuppressed findings.
// A new violation — or a suppression whose finding has since been
// fixed — fails this test (and `make lint`) until addressed.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern expansion is broken", len(pkgs))
	}
	// One shared Module, exactly as the driver builds it: transitive
	// rules must see cross-package call chains, and the call graph
	// must be constructed once for the whole run.
	mod := analysis.NewModule(pkgs)
	for _, pkg := range pkgs {
		for _, d := range analysis.Suppress(pkg, mod.Run(pkg, analysis.All)) {
			t.Errorf("%s", d)
		}
	}
}
