package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrIs enforces the PR 5 error contract: sentinel errors are matched
// with errors.Is, never ==/!= — the public packages wrap their
// sentinels (`fmt.Errorf("%w: ...", ErrUnknownJob)`), so identity
// comparison silently stops matching the moment a call site gains
// context. One idiom is exempt: comparing == io.EOF on an error that
// came from a direct Reader.Read call, whose contract returns the
// bare sentinel (wrapping it is the implementation's bug).
var ErrIs = &Analyzer{
	Name: "erris",
	Doc:  "compare sentinel errors with errors.Is, not ==/!= (io.EOF from a direct Read excepted)",
	Run:  runErrIs,
}

func runErrIs(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				checkErrCompare(pass, fd.Body, be)
				return true
			})
		}
	}
}

func checkErrCompare(pass *Pass, body *ast.BlockStmt, be *ast.BinaryExpr) {
	sentinel := sentinelError(pass, be.X)
	other := be.Y
	if sentinel == nil {
		sentinel = sentinelError(pass, be.Y)
		other = be.X
	}
	if sentinel == nil {
		return
	}
	if isPkgVar(sentinel, "io", "EOF") && fromDirectRead(pass, body, other) {
		return
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	name := sentinel.Name()
	if sentinel.Pkg() != nil && sentinel.Pkg() != pass.Pkg {
		name = sentinel.Pkg().Name() + "." + name
	}
	pass.Reportf(be.Pos(),
		"sentinel %s matched with %s: use errors.Is — a wrapped sentinel (%%w) compares false by identity", name, op)
}

// sentinelError resolves e to a package-level error variable (io.EOF,
// tsdb.ErrClosed, ...) or nil.
func sentinelError(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

func isPkgVar(v *types.Var, pkgPath, name string) bool {
	return v.Pkg() != nil && v.Pkg().Path() == pkgPath && v.Name() == name
}

// fromDirectRead reports whether e is a variable that some assignment
// in the enclosing function body fills from a direct Read call with
// the io.Reader shape — `n, err := r.Read(buf)` — the one producer
// whose contract hands back bare io.EOF. The whole body is searched
// rather than exact reaching definitions: a lexical pass errs on the
// side of allowing the documented idiom.
func fromDirectRead(pass *Pass, body *ast.BlockStmt, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		assignsObj := false
		for _, lhs := range as.Lhs {
			if lid, ok := lhs.(*ast.Ident); ok {
				if pass.Info.Defs[lid] == obj || pass.Info.Uses[lid] == obj {
					assignsObj = true
					break
				}
			}
		}
		if !assignsObj {
			return true
		}
		for _, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isReaderRead(pass, call) {
				found = true
			}
		}
		return true
	})
	return found
}

// isReaderRead reports whether call invokes a Read-named method or
// function with the io.Reader result shape (..., int, error) taking a
// []byte.
func isReaderRead(pass *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if name != "Read" && name != "ReadAt" {
		return false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Int {
		return false
	}
	if !implementsError(sig.Results().At(1).Type()) {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if s, ok := sig.Params().At(i).Type().Underlying().(*types.Slice); ok {
			if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
				return true
			}
		}
	}
	return false
}
