package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathMarker is the doc-comment directive that opts a function
// into the hot-path allocation rules.
const HotPathMarker = "//efd:hotpath"

// HotPath keeps the recognition, wire-codec, and sealed-window paths
// allocation-free (the PR 1/3 contract): inside a function whose doc
// comment carries //efd:hotpath, no fmt calls, no time.Now/Since, no
// non-constant string concatenation, and no map allocation. The
// point is catching alloc regressions at review time instead of bench
// time — formatting belongs in cold helpers the error path calls.
//
// Observability (PR 9) extends the contract: no slog calls (every
// handler allocates attribute slices), and of the internal/obs kit
// only the instrument fast paths — Counter.Add/Inc, Gauge.Set/Add,
// Histogram.Observe and the atomic reads — are allowed; registration
// and exposition belong at construction/scrape time.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//efd:hotpath functions must stay free of fmt, time.Now, slog, string concat, map allocation, and non-fast-path obs calls",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !commentHasDirective(fd.Doc, HotPathMarker) {
				continue
			}
			h := &hotWalker{pass: pass, covered: make(map[ast.Expr]bool)}
			ast.Inspect(fd.Body, h.visit)
		}
	}
}

type hotWalker struct {
	pass *Pass
	// covered marks string-concat operands already reported through
	// their parent expression, so a+b+c yields one finding, not two.
	covered map[ast.Expr]bool
}

func (h *hotWalker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.CallExpr:
		h.call(x)
	case *ast.BinaryExpr:
		if x.Op == token.ADD && h.isAllocatingConcat(x) {
			if !h.covered[x] {
				h.pass.Reportf(x.Pos(), "string concatenation allocates in a hot path: build into a reused []byte instead")
			}
			h.covered[ast.Unparen(x.X)] = true
			h.covered[ast.Unparen(x.Y)] = true
		}
	case *ast.AssignStmt:
		if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && h.isString(x.Lhs[0]) {
			h.pass.Reportf(x.Pos(), "string += allocates in a hot path: build into a reused []byte instead")
		}
	case *ast.CompositeLit:
		if tv, ok := h.pass.Info.Types[x]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				h.pass.Reportf(x.Pos(), "map literal allocates in a hot path: hoist it to a package var or the enclosing struct")
			}
		}
	}
	return true
}

func (h *hotWalker) call(x *ast.CallExpr) {
	if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := h.pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
			if tv, ok := h.pass.Info.Types[x.Args[0]]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					h.pass.Reportf(x.Pos(), "map allocation (make) in a hot path: hoist it out or reuse across calls")
				}
			}
		}
		return
	}
	fn := calleeFunc(h.pass.Info, x)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch path := fn.Pkg().Path(); {
	case path == "fmt":
		h.pass.Reportf(x.Pos(), "fmt.%s in a hot path allocates: move formatting to a cold error-path helper", fn.Name())
	case path == "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			h.pass.Reportf(x.Pos(), "time.%s in a hot path costs a clock read per call: take the timestamp once outside", fn.Name())
		}
	case path == "log/slog":
		h.pass.Reportf(x.Pos(), "slog.%s in a hot path allocates: emit a counter here and log from the cold path", fn.Name())
	case strings.HasSuffix(path, "internal/obs"):
		// Only the alloc-free instrument fast paths are hot-path
		// safe; registration, exposition, and tracing helpers are
		// construction/scrape-time API.
		switch fn.Name() {
		case "Add", "Inc", "Set", "Observe", "Value", "Count", "Sum":
		default:
			h.pass.Reportf(x.Pos(), "obs.%s in a hot path allocates: only the instrument fast paths (Add, Inc, Set, Observe) are hot-path safe", fn.Name())
		}
	}
}

// isAllocatingConcat reports whether e is a string + that survives to
// runtime: constant-folded concatenations ("a" + "b") cost nothing
// and stay legal.
func (h *hotWalker) isAllocatingConcat(e *ast.BinaryExpr) bool {
	tv, ok := h.pass.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (h *hotWalker) isString(e ast.Expr) bool {
	tv, ok := h.pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
