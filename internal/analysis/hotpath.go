package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathMarker is the doc-comment directive that opts a function
// into the hot-path allocation rules.
const HotPathMarker = "//efd:hotpath"

// HotPathMaxDepth bounds the transitive traversal: a call chain
// deeper than this from its marked root is reported as crossing the
// analysis horizon instead of being silently trusted. It is a
// variable so the horizon behavior itself is testable; the default is
// far beyond any real chain in the tree.
var HotPathMaxDepth = 20

// HotPath keeps the recognition, wire-codec, and sealed-window paths
// allocation-free (the PR 1/3 contract): no fmt calls, no
// time.Now/Since, no non-constant string concatenation, no map
// allocation, no slog, and of the internal/obs kit only the
// instrument fast paths. The point is catching alloc regressions at
// review time instead of bench time — formatting belongs in cold
// helpers the error path calls.
//
// The contract is transitive: it binds the //efd:hotpath-marked
// function AND every module-internal function reachable from it
// through the call graph — static calls, interface dispatch (resolved
// by class-hierarchy analysis), go statements, deferred calls, and
// function values taken as callbacks. Violations in unmarked callees
// are reported with the full call chain from the marked root.
// //efd:coldpath on a callee's doc comment is the reviewed escape
// hatch: traversal stops there and its body stays unchecked.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//efd:hotpath functions — and everything reachable from them, minus //efd:coldpath — stay free of fmt, time.Now, slog, string concat, map allocation, and non-fast-path obs calls",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	emitOwned(pass, pass.Mod.hotDiags())
}

// hotDiags computes the transitive hot-path findings once per module.
func (m *Module) hotDiags() []ownedDiag {
	m.hotOnce.Do(func() { m.hot = buildHotDiags(m.Graph()) })
	return m.hot
}

type hotViolation struct {
	pos token.Pos
	msg string
}

func buildHotDiags(g *CallGraph) []ownedDiag {
	var out []ownedDiag
	bodyCache := make(map[*types.Func][]hotViolation)
	violations := func(fi *FuncInfo) []hotViolation {
		if v, ok := bodyCache[fi.Fn]; ok {
			return v
		}
		h := &hotWalker{pkg: fi.Pkg, covered: make(map[ast.Expr]bool)}
		ast.Inspect(fi.Decl.Body, h.visit)
		bodyCache[fi.Fn] = h.found
		return h.found
	}
	// reported dedupes by position across roots: when two marked
	// roots reach the same violating call, the first root in
	// deterministic order owns the finding and prints its chain.
	reported := make(map[token.Pos]bool)
	report := func(pkg *Package, pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			out = append(out, ownedDiag{pkg: pkg, pos: pos, msg: msg})
		}
	}
	for _, root := range g.Order {
		ri := g.Funcs[root]
		if !ri.Hot {
			continue
		}
		// The marked body itself: the original intraprocedural form.
		for _, v := range violations(ri) {
			report(ri.Pkg, v.pos, v.msg)
		}
		// Breadth-first over the call graph, so each reached function
		// carries its shortest chain from this root.
		type qent struct {
			fn    *types.Func
			depth int
		}
		parent := map[*types.Func]*types.Func{}
		visited := map[*types.Func]bool{root: true}
		queue := []qent{{root, 0}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range g.EdgesFrom(cur.fn) {
				ci := g.Funcs[e.Callee]
				if ci == nil || visited[e.Callee] {
					continue
				}
				visited[e.Callee] = true
				if ci.Cold || ci.Hot {
					// Cold: the written-down escape hatch. Hot: the
					// callee is its own root and reports directly.
					continue
				}
				if cur.depth+1 > HotPathMaxDepth {
					report(g.Funcs[cur.fn].Pkg, e.Site, fmt.Sprintf(
						"call chain from //efd:hotpath %s exceeds the analysis horizon (depth %d) at %s → %s: mark the intermediate //efd:hotpath or //efd:coldpath so the contract stays checkable",
						FuncDisplayName(root), HotPathMaxDepth,
						FuncDisplayName(cur.fn), FuncDisplayName(e.Callee)))
					continue
				}
				parent[e.Callee] = cur.fn
				queue = append(queue, qent{e.Callee, cur.depth + 1})
				for _, v := range violations(ci) {
					report(ci.Pkg, v.pos, fmt.Sprintf(
						"transitive hot path (%s): %s (a deliberately cold callee needs //efd:coldpath)",
						chainString(parent, e.Callee), v.msg))
				}
			}
		}
	}
	return out
}

// hotWalker applies the body rules to one function and collects the
// violations; the transitive layer decides where and how they are
// reported.
type hotWalker struct {
	pkg   *Package
	found []hotViolation
	// covered marks string-concat operands already reported through
	// their parent expression, so a+b+c yields one finding, not two.
	covered map[ast.Expr]bool
}

func (h *hotWalker) reportf(pos token.Pos, format string, args ...any) {
	h.found = append(h.found, hotViolation{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (h *hotWalker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.CallExpr:
		h.call(x)
	case *ast.BinaryExpr:
		if x.Op == token.ADD && h.isAllocatingConcat(x) {
			if !h.covered[x] {
				h.reportf(x.Pos(), "string concatenation allocates in a hot path: build into a reused []byte instead")
			}
			h.covered[ast.Unparen(x.X)] = true
			h.covered[ast.Unparen(x.Y)] = true
		}
	case *ast.AssignStmt:
		if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && h.isString(x.Lhs[0]) {
			h.reportf(x.Pos(), "string += allocates in a hot path: build into a reused []byte instead")
		}
	case *ast.CompositeLit:
		if tv, ok := h.pkg.Info.Types[x]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				h.reportf(x.Pos(), "map literal allocates in a hot path: hoist it to a package var or the enclosing struct")
			}
		}
	}
	return true
}

func (h *hotWalker) call(x *ast.CallExpr) {
	if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := h.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
			if tv, ok := h.pkg.Info.Types[x.Args[0]]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					h.reportf(x.Pos(), "map allocation (make) in a hot path: hoist it out or reuse across calls")
				}
			}
		}
		return
	}
	fn := calleeFunc(h.pkg.Info, x)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch path := fn.Pkg().Path(); {
	case path == "fmt":
		h.reportf(x.Pos(), "fmt.%s in a hot path allocates: move formatting to a cold error-path helper", fn.Name())
	case path == "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			h.reportf(x.Pos(), "time.%s in a hot path costs a clock read per call: take the timestamp once outside", fn.Name())
		}
	case path == "log/slog":
		h.reportf(x.Pos(), "slog.%s in a hot path allocates: emit a counter here and log from the cold path", fn.Name())
	case strings.HasSuffix(path, "internal/obs"):
		// Only the alloc-free instrument fast paths are hot-path
		// safe; registration, exposition, and tracing helpers are
		// construction/scrape-time API.
		switch fn.Name() {
		case "Add", "Inc", "Set", "Observe", "Value", "Count", "Sum":
		default:
			h.reportf(x.Pos(), "obs.%s in a hot path allocates: only the instrument fast paths (Add, Inc, Set, Observe) are hot-path safe", fn.Name())
		}
	}
}

// isAllocatingConcat reports whether e is a string + that survives to
// runtime: constant-folded concatenations ("a" + "b") cost nothing
// and stay legal.
func (h *hotWalker) isAllocatingConcat(e *ast.BinaryExpr) bool {
	tv, ok := h.pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (h *hotWalker) isString(e ast.Expr) bool {
	tv, ok := h.pkg.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
