package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// srcImporter typechecks packages from source, recursively. The stock
// go/importer "source" importer cannot resolve module-internal import
// paths (go/build's module support needs the go command's package
// graph), so this one does the resolution itself: paths under the
// module prefix map onto the module tree, everything else must be
// GOROOT source (including the std-vendored golang.org/x packages).
// The result is a fully from-source type graph with zero external
// dependencies and no reliance on compiled export data.
type srcImporter struct {
	fset    *token.FileSet
	modPath string
	modDir  string
	ctxt    build.Context

	// targets are import paths the loader wants full syntax+Info for;
	// everything else is typechecked types-only. Building targets
	// through the importer means a target that is also a dependency of
	// a later target is checked exactly once.
	targets map[string]bool
	built   map[string]*Package
	pkgs    map[string]*types.Package
	conf    *types.Config
}

func newSrcImporter(fset *token.FileSet, modPath, modDir string) *srcImporter {
	im := &srcImporter{
		fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		ctxt:    build.Default,
		targets: make(map[string]bool),
		built:   make(map[string]*Package),
		pkgs:    make(map[string]*types.Package),
	}
	// cgo sources cannot be typechecked without running cgo; with it
	// disabled go/build selects the pure-Go variants (net's Go
	// resolver, etc.), which is exactly what a static pass wants.
	im.ctxt.CgoEnabled = false
	im.conf = &types.Config{Importer: im}
	return im
}

// dirFor resolves an import path to its source directory.
func (im *srcImporter) dirFor(path string) (string, error) {
	if path == im.modPath {
		return im.modDir, nil
	}
	if rest, ok := strings.CutPrefix(path, im.modPath+"/"); ok {
		return filepath.Join(im.modDir, filepath.FromSlash(rest)), nil
	}
	goroot := im.ctxt.GOROOT
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q: not under module %s and not in GOROOT", path, im.modPath)
}

func (im *srcImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *srcImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	dir, err := im.dirFor(path)
	if err != nil {
		return nil, err
	}
	p, err := im.check(path, dir)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// check typechecks the package in dir under the given import path and
// caches it. Targets additionally keep their syntax and types.Info.
func (im *srcImporter) check(path, dir string) (*types.Package, error) {
	im.pkgs[path] = nil // in-progress marker for cycle detection
	defer func() {
		if im.pkgs[path] == nil {
			delete(im.pkgs, path)
		}
	}()
	bp, err := im.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolve %s: %w", dir, err)
	}
	target := im.targets[path]
	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if target {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	pkg, err := im.conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = pkg
	if target {
		im.built[path] = &Package{
			Path:    path,
			Dir:     dir,
			ModPath: im.modPath,
			ModDir:  im.modDir,
			Fset:    im.fset,
			Files:   files,
			Types:   pkg,
			Info:    info,
		}
	}
	return pkg, nil
}
