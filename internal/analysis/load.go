package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded target: parsed syntax (with comments)
// plus complete type information, and the module it was loaded from
// (apilock resolves golden paths against ModDir).
type Package struct {
	Path    string
	Dir     string
	ModPath string
	ModDir  string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// LoadError reports that a package could not be loaded or typechecked
// — a broken tree, not a lint finding. The efdvet driver maps it onto
// a distinct exit code so CI can tell "dirty" from "didn't run".
type LoadError struct {
	Pattern string
	Err     error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("load %s: %v", e.Pattern, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// Loader loads typed packages out of one module. Test files
// (_test.go) are outside its scope: the suite checks shipped code.
type Loader struct {
	ModPath string
	ModDir  string

	imp *srcImporter
}

// NewLoader returns a loader rooted at the module containing dir
// (found by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{ModPath: modPath, ModDir: modDir}
	l.imp = newSrcImporter(token.NewFileSet(), modPath, modDir)
	return l, nil
}

// findModuleRoot walks from dir upward to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module line", file)
}

// Load resolves the patterns ("./...", "./dir/...", "./dir" —
// relative to the module root) into package directories and returns
// them typechecked, in path order. Any failure is a *LoadError.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths := make(map[string]bool)
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, &LoadError{Pattern: pat, Err: err}
		}
		for _, dir := range dirs {
			paths[l.importPath(dir)] = true
		}
	}
	ordered := make([]string, 0, len(paths))
	for p := range paths {
		ordered = append(ordered, p)
		l.imp.targets[p] = true
	}
	sort.Strings(ordered)
	out := make([]*Package, 0, len(ordered))
	for _, path := range ordered {
		if _, err := l.imp.ImportFrom(path, "", 0); err != nil {
			return nil, &LoadError{Pattern: path, Err: err}
		}
		out = append(out, l.imp.built[path])
	}
	return out, nil
}

// LoadDir typechecks a single directory under an explicit import path
// — the fixture-package entry point, where the path the analyzers see
// (e.g. a synthetic ".../internal/tsdb/...") is part of the test.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, &LoadError{Pattern: dir, Err: err}
	}
	l.imp.targets[importPath] = true
	if _, err := l.imp.check(importPath, abs); err != nil {
		return nil, &LoadError{Pattern: dir, Err: err}
	}
	return l.imp.built[importPath], nil
}

// importPath maps a module-tree directory to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// expand resolves one pattern to package directories (directories
// containing at least one buildable non-test .go file). testdata,
// hidden, and underscore-prefixed directories are skipped, matching
// the go tool's pattern rules.
func (l *Loader) expand(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	root := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	st, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("%s: not a directory", pat)
	}
	if !recursive {
		if !l.hasGoFiles(root) {
			return nil, fmt.Errorf("%s: no buildable Go files", pat)
		}
		return []string{root}, nil
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", pat)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one buildable
// (constraint-matching, non-test) Go file.
func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.imp.ctxt.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
