package analysis

import (
	"go/ast"
	"strings"
)

// LockDiscipline enforces the PR 4 off-lock group-commit rule inside
// internal/tsdb: critical sections of a sync.Mutex/RWMutex must not
// fsync (Sync/SyncDir family), encode records (encode* calls), or
// write directly to a file — the disk work happens before the lock or
// after it, so concurrent appenders never stall behind an fsync. The
// sections are resolved lexically: statements between a Lock/RLock
// call and the matching Unlock at the same nesting (a deferred Unlock
// extends the section to the end of the function), plus — for the
// fsync family only — the whole body of functions following the
// *Locked naming convention, which run under a mutex their caller
// holds. The blessed exceptions (the rare lifecycle records' simple
// commit form, the compactor's documented stop-the-world) carry
// //efdvet:ignore suppressions where they stand.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no fsync/encode/direct file writes under the tsdb store mutex",
	Run:  runLockDiscipline,
}

// syncFamily are the fsync-shaped names: the operations whose latency
// a held mutex turns into a store-wide stall.
var syncFamily = map[string]bool{
	"Sync":    true,
	"sync":    true,
	"SyncDir": true,
	"Fsync":   true,
}

// fileWriteNames are direct-write methods that only count when the
// receiver is a file (vfs.File or *os.File) — buffered writers are
// memory traffic and explicitly fine under the mutex.
var fileWriteNames = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"ReadFrom":    true,
}

func runLockDiscipline(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path(), tsdbScope) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, lockedBody: strings.HasSuffix(fd.Name.Name, "Locked")}
			w.stmts(fd.Body.List, false)
		}
	}
}

type lockWalker struct {
	pass *Pass
	// lockedBody marks a *Locked function: the caller holds the store
	// mutex for the whole body, so the fsync family is banned
	// throughout even with no lexical Lock in sight.
	lockedBody bool
}

// stmts scans one statement list in order, tracking the lexical lock
// state. Nested blocks inherit the state but do not leak changes back
// out: an Unlock inside an early-return branch does not end the
// section on the fall-through path.
func (w *lockWalker) stmts(list []ast.Stmt, locked bool) {
	for _, stmt := range list {
		locked = w.stmt(stmt, locked)
	}
}

// stmt scans one statement and returns the lock state after it.
func (w *lockWalker) stmt(stmt ast.Stmt, locked bool) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch w.mutexOp(call) {
			case "Lock", "RLock":
				return true
			case "Unlock", "RUnlock":
				return false
			}
		}
		w.exprs(s, locked)
	case *ast.DeferStmt:
		switch w.mutexOp(s.Call) {
		case "Unlock", "RUnlock":
			// The section now runs to the end of the function; the
			// state simply stays locked.
			return locked
		}
		w.exprs(s, locked)
	case *ast.GoStmt:
		// A spawned goroutine does not run under the caller's lock.
		w.exprs(s, false)
	case *ast.BlockStmt:
		w.stmts(s.List, locked)
	case *ast.IfStmt:
		w.maybeExpr(s.Init, locked)
		w.exprNode(s.Cond, locked)
		w.stmts(s.Body.List, locked)
		if s.Else != nil {
			w.stmt(s.Else, locked)
		}
	case *ast.ForStmt:
		w.maybeExpr(s.Init, locked)
		w.exprNode(s.Cond, locked)
		w.maybeExpr(s.Post, locked)
		w.stmts(s.Body.List, locked)
	case *ast.RangeStmt:
		w.exprNode(s.X, locked)
		w.stmts(s.Body.List, locked)
	case *ast.SwitchStmt:
		w.maybeExpr(s.Init, locked)
		w.exprNode(s.Tag, locked)
		w.caseBodies(s.Body, locked)
	case *ast.TypeSwitchStmt:
		w.maybeExpr(s.Init, locked)
		w.maybeExpr(s.Assign, locked)
		w.caseBodies(s.Body, locked)
	case *ast.SelectStmt:
		w.caseBodies(s.Body, locked)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, locked)
	default:
		w.exprs(stmt, locked)
	}
	return locked
}

func (w *lockWalker) caseBodies(body *ast.BlockStmt, locked bool) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.exprNode(e, locked)
			}
			w.stmts(c.Body, locked)
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, locked)
			}
			w.stmts(c.Body, locked)
		}
	}
}

func (w *lockWalker) maybeExpr(n ast.Stmt, locked bool) {
	if n != nil {
		w.exprs(n, locked)
	}
}

func (w *lockWalker) exprNode(e ast.Expr, locked bool) {
	if e != nil {
		w.exprs(e, locked)
	}
}

// exprs inspects a non-sectioning node for banned calls, descending
// into function literals with the current state: a closure built in a
// critical section is assumed to run in it (extract a named function
// and suppress with a reason if it truly does not).
func (w *lockWalker) exprs(n ast.Node, locked bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			w.stmts(x.Body.List, locked)
			return false
		case *ast.CallExpr:
			w.checkCall(x, locked)
		}
		return true
	})
}

// checkCall reports x when it is a banned operation for the current
// state.
func (w *lockWalker) checkCall(x *ast.CallExpr, locked bool) {
	sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
	name := ""
	if ok {
		name = sel.Sel.Name
	} else if id, isId := ast.Unparen(x.Fun).(*ast.Ident); isId {
		name = id.Name
	}
	if name == "" {
		return
	}
	if syncFamily[name] && (locked || w.lockedBody) {
		w.pass.Reportf(x.Pos(),
			"fsync (%s) under the store mutex: group commit syncs off-lock so appends never stall behind the disk (PR 4)", name)
		return
	}
	if !locked {
		return
	}
	if lower := strings.ToLower(name); strings.HasPrefix(lower, "encode") {
		w.pass.Reportf(x.Pos(),
			"record encoding (%s) under the store mutex: encode into scratch before taking the lock (PR 4)", name)
		return
	}
	if fileWriteNames[name] && ok && w.isFileRecv(sel) {
		w.pass.Reportf(x.Pos(),
			"direct file write (%s) under the store mutex: hand bytes to the buffered writer or move the I/O off-lock", name)
	}
}

// isFileRecv reports whether the method's receiver is a raw file —
// vfs.File or *os.File — rather than a buffered writer.
func (w *lockWalker) isFileRecv(sel *ast.SelectorExpr) bool {
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return isNamed(tv.Type, "internal/vfs", "File") || isNamed(tv.Type, "os", "File")
}

// mutexOp classifies a call as a sync.Mutex/RWMutex operation,
// returning the method name ("Lock", "Unlock", ...) or "".
func (w *lockWalker) mutexOp(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok {
		return ""
	}
	n := namedType(tv.Type)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return sel.Sel.Name
	}
	return ""
}
