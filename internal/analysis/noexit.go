package analysis

import (
	"go/ast"
	"go/types"
)

// NoExit keeps process termination out of library packages: the
// monitor is embeddable (efd/monitor is an engine inside someone
// else's process — PR 5), so only package main gets to call os.Exit
// or log.Fatal, and nobody gets to panic on an ordinary error value.
// Invariant panics with a string message remain legal.
var NoExit = &Analyzer{
	Name: "noexit",
	Doc:  "library packages must not os.Exit/log.Fatal or panic on error values; only cmd/* terminates the process",
	Run:  runNoExit,
}

// fatalLogNames are the std log package's process-terminating calls.
var fatalLogNames = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

func runNoExit(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
					if tv, ok := pass.Info.Types[call.Args[0]]; ok && implementsError(tv.Type) {
						pass.Reportf(call.Pos(),
							"panic on an error value in a library package: return the error (embedding hosts own the process)")
					}
				}
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "os", "Exit"):
				pass.Reportf(call.Pos(),
					"os.Exit in a library package: only cmd/* may terminate the process")
			case fn.Pkg().Path() == "log" && fatalLogNames[fn.Name()]:
				pass.Reportf(call.Pos(),
					"log.%s in a library package terminates the process: return the error to the caller", fn.Name())
			}
			return true
		})
	}
}
