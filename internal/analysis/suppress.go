package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// MetaRule is the rule name under which the framework itself reports:
// malformed and stale suppression comments. Meta findings cannot be
// suppressed — a suppression that suppresses its own audit trail
// would let the lint gate rot silently.
const MetaRule = "efdvet"

// suppressPrefix introduces a suppression comment:
//
//	//efdvet:ignore <rule> <reason>
//
// It silences findings of <rule> on the same line (trailing form) or
// on the line directly below (standalone form). The reason is
// mandatory: an exception to an invariant is only acceptable written
// down, and LINTS.md documents the blessed ones.
const suppressPrefix = "//efdvet:ignore"

type suppression struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// Suppress applies //efdvet:ignore comments in the package to the raw
// findings: suppressed findings are dropped, and malformed or stale
// (matching nothing) suppressions are reported as MetaRule findings,
// so a suppression outliving its finding fails the gate until it is
// deleted. Returns the surviving findings, position-sorted.
func Suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	var sups []*suppression
	kept := diags[:0]
	var meta []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, suppressPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					meta = append(meta, metaDiag(pos,
						"malformed suppression: want //efdvet:ignore <rule> <reason>"))
					continue
				}
				sups = append(sups, &suppression{pos: pos, rule: fields[0], reason: strings.Join(fields[1:], " ")})
			}
		}
	}
	for _, d := range diags {
		if d.Rule == MetaRule || !suppressed(sups, d) {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.used {
			meta = append(meta, metaDiag(s.pos,
				"stale suppression: no %s finding on this or the next line (%s)", s.rule, s.reason))
		}
	}
	kept = append(kept, meta...)
	SortDiagnostics(kept)
	return kept
}

func metaDiag(pos token.Position, format string, args ...any) Diagnostic {
	d := Diagnostic{Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: MetaRule}
	d.Message = fmt.Sprintf(format, args...)
	return d
}

// suppressed reports whether some suppression covers d, marking the
// first match used. Every matching suppression on the line is marked:
// two identical comments both cover the finding, and neither should
// then read as stale.
func suppressed(sups []*suppression, d Diagnostic) bool {
	hit := false
	for _, s := range sups {
		if s.rule != d.Rule || s.pos.Filename != d.File {
			continue
		}
		if s.pos.Line == d.Line || s.pos.Line == d.Line-1 {
			s.used = true
			hit = true
		}
	}
	return hit
}
