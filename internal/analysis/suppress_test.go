package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSuppress runs noexit over the suppress fixture and checks the
// full suppression ledger: trailing and standalone forms drop their
// findings, a wrong-rule suppression leaves the finding and goes
// stale, a reasonless one is malformed, and the meta rule itself
// cannot be suppressed.
func TestSuppress(t *testing.T) {
	pkg, raw := analysistest.Diagnostics(t, fixture("suppress"), "fixture/suppress", analysis.NoExit)
	if len(raw) != 5 {
		t.Fatalf("raw findings = %d, want 5 (one per os.Exit): %v", len(raw), raw)
	}
	kept := analysis.Suppress(pkg, raw)

	count := func(rule, substr string) int {
		n := 0
		for _, d := range kept {
			if d.Rule == rule && strings.Contains(d.Message, substr) {
				n++
			}
		}
		return n
	}
	if got := count("noexit", ""); got != 3 {
		t.Errorf("surviving noexit findings = %d, want 3 (Abort, Leave, Mask): %v", got, kept)
	}
	if got := count(analysis.MetaRule, "malformed suppression"); got != 2 {
		t.Errorf("malformed-suppression findings = %d, want 2: %v", got, kept)
	}
	if got := count(analysis.MetaRule, "stale suppression"); got != 2 {
		t.Errorf("stale-suppression findings = %d, want 2: %v", got, kept)
	}
	if got := count(analysis.MetaRule, "no vfsseam finding"); got != 1 {
		t.Errorf("stale wrong-rule suppression findings = %d, want 1: %v", got, kept)
	}
	// The suppression aimed at the meta rule never matches anything —
	// meta findings are exempt from suppression by design.
	if got := count(analysis.MetaRule, "no efdvet finding"); got != 1 {
		t.Errorf("stale meta-rule suppression findings = %d, want 1: %v", got, kept)
	}
	if len(kept) != 7 {
		t.Errorf("total kept = %d, want 7: %v", len(kept), kept)
	}
}
