// Package atomicfield exercises the module-wide atomic-field
// discipline: a field touched through sync/atomic anywhere must be
// touched atomically everywhere, and typed atomics must not be
// copied.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64 // word-atomic via atomic.AddInt64 — every site must follow
	drops int64 // consistently atomic: clean
	total atomic.Int64
}

// bump is the atomic site the mixed-access findings point back at.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// snapshot reads hits plainly — racing bump's AddInt64.
func (c *counters) snapshot() int64 {
	return c.hits // want `field counters\.hits is accessed through sync/atomic at .*atomicfield\.go:\d+:\d+ but plainly here: mixed access races`
}

// reset writes hits plainly — same race, write side.
func (c *counters) reset() {
	c.hits = 0 // want `field counters\.hits is accessed through sync/atomic .* but plainly here: mixed access races`
}

// drain is the consistent counterpart: drops is atomic at every site,
// so neither function is a finding.
func (c *counters) drain() int64 {
	atomic.AddInt64(&c.drops, 1)
	return atomic.LoadInt64(&c.drops)
}

// leak copies the typed atomic: the copy is a second word nobody
// else's Store ever reaches.
func (c *counters) leak() int64 {
	snap := c.total // want `copy of sync/atomic\.Int64: the copy is a second unsynchronized word`
	return snap.Load()
}

// sink takes the typed atomic by value — a copy at the call site.
func sink(v atomic.Int64) int64 { return v.Load() }

func (c *counters) pass() int64 {
	return sink(c.total) // want `copy of sync/atomic\.Int64: the copy is a second unsynchronized word`
}

// iterate ranges over a slice of typed atomics by value: one copy per
// element.
func iterate(all []atomic.Int64) int64 {
	var sum int64
	for _, v := range all { // want `range copies sync/atomic\.Int64 per element: range over indexes`
		sum += v.Load()
	}
	return sum
}

// viaPointer is the fixed forms of all of the above: pointers and
// methods, never value copies — clean.
func viaPointer(c *counters) int64 {
	p := &c.total
	p.Add(1)
	return c.total.Load()
}

var (
	_ = (*counters).bump
	_ = (*counters).snapshot
	_ = (*counters).reset
	_ = (*counters).drain
	_ = (*counters).leak
	_ = (*counters).pass
	_ = iterate
	_ = viaPointer
)
