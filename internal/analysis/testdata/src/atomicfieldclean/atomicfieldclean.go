// Package atomicfieldclean is the negative fixture for atomicfield:
// the exact shapes the real tree relies on — the engine's
// storeMode CAS ladder (efd/monitor/health.go) and the obs kit's
// CAS-on-float64-bits loop (internal/obs) — must stay finding-free.
// If a future analyzer change flags any of this, the analyzer is
// wrong, not the tree.
package atomicfieldclean

import (
	"math"
	"sync/atomic"
)

const (
	modeNone int32 = iota
	modeRW
	modeDegraded
	modeReadonly
)

// engine models the monitor engine's store-mode state machine: a
// typed atomic field, transitions via CompareAndSwap so each
// transition's side effects run exactly once, reads via Load.
type engine struct {
	storeMode atomic.Int32
	demotions atomic.Int64
}

func (e *engine) degrade() bool {
	if !e.storeMode.CompareAndSwap(modeRW, modeDegraded) {
		return false // lost the race; the winner logged and counted
	}
	e.demotions.Add(1)
	return true
}

func (e *engine) readonly() bool {
	return e.storeMode.CompareAndSwap(modeRW, modeReadonly)
}

func (e *engine) writable() bool {
	return e.storeMode.Load() == modeRW
}

func (e *engine) reset() {
	e.storeMode.Store(modeNone)
}

// gauge models the obs kit's float64 gauge: the value lives as bits
// in an atomic.Uint64, updated by a CAS loop.
type gauge struct {
	bits atomic.Uint64
}

func (g *gauge) add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

func (g *gauge) value() float64 {
	return math.Float64frombits(g.bits.Load())
}

// word models the pre-typed-atomic style still legal when every site
// is atomic: a plain int64 field whose accesses all go through
// sync/atomic word operations.
type word struct {
	n int64
}

func (w *word) incr() int64 { return atomic.AddInt64(&w.n, 1) }
func (w *word) get() int64  { return atomic.LoadInt64(&w.n) }
func (w *word) set(v int64) { atomic.StoreInt64(&w.n, v) }
func (w *word) cas(o, n int64) bool {
	return atomic.CompareAndSwapInt64(&w.n, o, n)
}

var (
	_ = (*engine).degrade
	_ = (*engine).readonly
	_ = (*engine).writable
	_ = (*engine).reset
	_ = (*gauge).add
	_ = (*gauge).value
	_ = (*word).incr
	_ = (*word).get
	_ = (*word).set
	_ = (*word).cas
)
