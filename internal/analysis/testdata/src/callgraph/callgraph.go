// Package callgraph is the edge-set fixture: one function exercising
// every edge kind the graph distinguishes — static call, interface
// dispatch (class-hierarchy analysis), go statement, deferred call,
// and a function value taken as a callback.
package callgraph

type greeter interface {
	greet() string
}

type eng struct{}

func (eng) greet() string { return "hi" }

type alt struct{}

func (alt) greet() string { return "yo" }

func root(g greeter) {
	direct()
	_ = g.greet()
	go spawn()
	defer cleanup()
	use(callback)
}

func direct() {}

func spawn() {}

func cleanup() {}

func callback() {}

func use(f func()) { f() }

var _ = root
