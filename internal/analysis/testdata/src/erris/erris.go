// Package erris exercises the erris analyzer: sentinel errors are
// matched with errors.Is, with the io.EOF direct-Read allowance.
package erris

import (
	"errors"
	"io"
)

// ErrClosed is a package-level sentinel like the ones the efd
// packages export (and wrap with %w).
var ErrClosed = errors.New("erris: closed")

type poller struct{ err error }

func (p *poller) next() error { return p.err }

// Classify compares sentinels by identity: both operand orders and
// both operators are flagged; errors.Is is the required form.
func Classify(err error) int {
	if err == ErrClosed { // want `sentinel ErrClosed matched with ==`
		return 0
	}
	if ErrClosed != err { // want `sentinel ErrClosed matched with !=`
		return 1
	}
	if errors.Is(err, ErrClosed) {
		return 2
	}
	return 3
}

// Drain reads a Reader directly: the io.Reader contract hands back
// bare io.EOF, so the identity comparison is the documented
// allowance.
func Drain(r io.Reader, buf []byte) (int, error) {
	total := 0
	for {
		n, err := r.Read(buf)
		total += n
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Relay gets its error from an arbitrary call, not a direct Read: the
// allowance does not apply.
func Relay(p *poller) bool {
	err := p.next()
	return err == io.EOF // want `sentinel io.EOF matched with ==`
}
