// Package hotpath exercises the hotpath analyzer: the rules bind only
// inside functions whose doc comment carries the //efd:hotpath
// marker.
package hotpath

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/obs"
)

// decode is a marked hot function: every allocating idiom below is
// flagged.
//
//efd:hotpath
func decode(name, field string, n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("bad count %d", n) // want `fmt.Errorf in a hot path allocates`
	}
	start := time.Now() // want `time.Now in a hot path costs a clock read`
	_ = start
	key := name + ":" + field // want `string concatenation allocates in a hot path`
	key += "!"                // want `string \+= allocates in a hot path`
	seen := map[string]int{}  // want `map literal allocates in a hot path`
	seen[key] = n
	idx := make(map[string]int, n) // want `map allocation \(make\) in a hot path`
	_ = idx
	buf := make([]byte, 0, n)
	buf = append(buf, key...)
	const prefix = "efd" + ":"
	_ = prefix
	return key, nil
}

// observe is a marked hot function exercising the observability
// rules: the obs instrument fast paths stay legal, everything else in
// the kit — and any slog call — is flagged.
//
//efd:hotpath
func observe(log *slog.Logger, reg *obs.Registry, c *obs.Counter, g *obs.Gauge, h *obs.Histogram, v float64) int64 {
	c.Add(1)
	c.Inc()
	g.Set(v)
	g.Add(-v)
	h.Observe(v)
	log.Info("observed", "v", v)              // want `slog.Info in a hot path allocates`
	slog.Warn("observed")                     // want `slog.Warn in a hot path allocates`
	_ = reg.Counter("x_total", "", "a count") // want `obs.Counter in a hot path allocates`
	return c.Value() + h.Count()
}

// format is cold — no marker, so fmt stays legal here; so are slog
// and obs registration.
func format(log *slog.Logger, reg *obs.Registry, n int) string {
	log.Info("formatting", "n", n)
	reg.Counter("format_total", "", "calls").Inc()
	return fmt.Sprintf("%d", n)
}

var _ = decode
var _ = observe
var _ = format
