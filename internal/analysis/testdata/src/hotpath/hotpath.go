// Package hotpath exercises the hotpath analyzer: the rules bind only
// inside functions whose doc comment carries the //efd:hotpath
// marker.
package hotpath

import (
	"fmt"
	"time"
)

// decode is a marked hot function: every allocating idiom below is
// flagged.
//
//efd:hotpath
func decode(name, field string, n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("bad count %d", n) // want `fmt.Errorf in a hot path allocates`
	}
	start := time.Now() // want `time.Now in a hot path costs a clock read`
	_ = start
	key := name + ":" + field // want `string concatenation allocates in a hot path`
	key += "!"                // want `string \+= allocates in a hot path`
	seen := map[string]int{}  // want `map literal allocates in a hot path`
	seen[key] = n
	idx := make(map[string]int, n) // want `map allocation \(make\) in a hot path`
	_ = idx
	buf := make([]byte, 0, n)
	buf = append(buf, key...)
	const prefix = "efd" + ":"
	_ = prefix
	return key, nil
}

// format is cold — no marker, so fmt stays legal here.
func format(n int) string { return fmt.Sprintf("%d", n) }

var _ = decode
var _ = format
