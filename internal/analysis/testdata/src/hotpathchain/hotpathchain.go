// Package hotpathchain exercises the transitive hotpath analyzer:
// the //efd:hotpath contract propagates through the call graph — two
// unmarked hops, one of them interface dispatch — and //efd:coldpath
// is the reviewed escape hatch that stops propagation.
package hotpathchain

import "fmt"

// renderer is dispatched through an interface so the second hop is
// only resolvable by class-hierarchy analysis.
type renderer interface {
	render(v int) string
}

// sprintRenderer formats with fmt — legal in isolation, fatal two
// hops below a hot root.
type sprintRenderer struct{}

func (sprintRenderer) render(v int) string {
	return fmt.Sprintf("%d", v) // want `transitive hot path \(Recognize → describe → sprintRenderer\.render\): fmt\.Sprintf in a hot path allocates`
}

// constRenderer is an allocation-free implementation: reached by the
// same dispatch, no finding.
type constRenderer struct{}

func (constRenderer) render(v int) string { return "v" }

// Recognize is the hot root: it never calls fmt itself, and before
// the interprocedural engine it passed lint while regressing at bench
// time.
//
//efd:hotpath
func Recognize(r renderer) string {
	return describe(r)
}

// describe is the unmarked intermediate hop: reached transitively,
// checked transitively.
func describe(r renderer) string {
	return r.render(1)
}

// Spawn launches work on a goroutine: go statements are call-graph
// edges, so the spawned body inherits the contract.
//
//efd:hotpath
func Spawn() {
	go tick()
}

func tick() {
	fmt.Println("tick") // want `transitive hot path \(Spawn → tick\): fmt\.Println in a hot path allocates`
}

// Clean reaches formatting only through a //efd:coldpath helper: the
// identical shape as Recognize, passing because the cold boundary is
// written down.
//
//efd:hotpath
func Clean(r renderer) string {
	return coldDescribe(r)
}

// coldDescribe is the deliberately cold intermediate: traversal stops
// at the marker, so neither its fmt call nor anything it dispatches
// to is a finding under the Clean root.
//
//efd:coldpath
func coldDescribe(r renderer) string {
	return fmt.Sprintf("cold: %s", r.render(3))
}

var _ = Recognize
var _ = Spawn
var _ = Clean
