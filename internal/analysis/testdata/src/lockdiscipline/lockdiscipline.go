// Package lockdiscipline exercises the lockdiscipline analyzer. The
// tests load it under a synthetic internal/tsdb import path.
package lockdiscipline

import (
	"bufio"
	"sync"

	"repro/internal/vfs"
)

type store struct {
	mu  sync.Mutex
	f   vfs.File
	w   *bufio.Writer
	buf []byte
}

func encodeRecord(dst []byte) []byte { return append(dst, 0) }

// Append holds the mutex across encode, a direct file write, and the
// fsync — each a banned operation in a critical section.
func (s *store) Append(b []byte) error {
	s.mu.Lock()
	s.buf = encodeRecord(s.buf)             // want `record encoding \(encodeRecord\) under the store mutex`
	if _, err := s.f.Write(b); err != nil { // want `direct file write \(Write\) under the store mutex`
		s.mu.Unlock()
		return err
	}
	err := s.f.Sync() // want `fsync \(Sync\) under the store mutex`
	s.mu.Unlock()
	return err
}

// Flush uses a deferred unlock, so the section runs to the end of the
// function: the sync is still under the mutex.
func (s *store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `fsync \(Sync\) under the store mutex`
}

// Buffer hands bytes to the buffered writer under the mutex — memory
// traffic, explicitly fine.
func (s *store) Buffer(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(b)
}

// Commit is the compliant group-commit shape: stage under the lock,
// write and sync after releasing it.
func (s *store) Commit(b []byte) error {
	s.mu.Lock()
	s.buf = append(s.buf[:0], b...)
	out := s.buf
	s.mu.Unlock()
	if _, err := s.f.Write(out); err != nil {
		return err
	}
	return s.f.Sync()
}

// Background spawns the sync onto a goroutine, which does not run
// under the caller's lock.
func (s *store) Background() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.f.Sync() }()
}

// syncLocked follows the *Locked naming convention: the caller holds
// the mutex, so the fsync family is banned across the whole body even
// with no lexical Lock in sight.
func (s *store) syncLocked() error {
	return s.f.Sync() // want `fsync \(Sync\) under the store mutex`
}

// stageLocked may encode: only the fsync family is banned by the
// naming convention alone (encoding is cheap; fsync stalls).
func (s *store) stageLocked(b []byte) {
	s.buf = encodeRecord(append(s.buf, b...))
}
