// Package noexit exercises the noexit analyzer in a library package:
// process termination belongs to cmd/* alone.
package noexit

import (
	"log"
	"os"
)

// Shutdown terminates the process from a library: every form is
// flagged.
func Shutdown(err error) {
	if err != nil {
		log.Fatalf("shutdown: %v", err) // want `log.Fatalf in a library package terminates the process`
	}
	os.Exit(0) // want `os.Exit in a library package`
}

// Check panics on an error value — flagged — while invariant panics
// with a plain message stay legal.
func Check(ok bool, err error) {
	if err != nil {
		panic(err) // want `panic on an error value in a library package`
	}
	if !ok {
		panic("noexit: impossible state")
	}
}
