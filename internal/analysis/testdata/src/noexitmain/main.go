// Command noexitmain exercises the noexit analyzer's exemption:
// package main owns the process and may terminate it.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("too many arguments")
	}
	os.Exit(0)
}
