// Package suppress exercises //efdvet:ignore handling: trailing and
// standalone forms, a wrong-rule suppression going stale, the
// mandatory reason, and the unsuppressable meta rule.
package suppress

import "os"

// Quit is suppressed with the trailing form: the finding is dropped
// and the suppression counts as used.
func Quit() {
	os.Exit(1) //efdvet:ignore noexit fixture: blessed exception
}

// Stop is suppressed with the standalone form, which covers the next
// line.
func Stop() {
	//efdvet:ignore noexit fixture: standalone form
	os.Exit(2)
}

// Abort carries a suppression for the wrong rule: the finding
// survives and the suppression is reported stale.
func Abort() {
	//efdvet:ignore vfsseam fixture: wrong rule
	os.Exit(3)
}

// Leave carries a reasonless suppression: malformed, and the finding
// survives.
func Leave() {
	//efdvet:ignore noexit
	os.Exit(4)
}

// Mask tries to suppress the framework's own audit trail: meta
// findings cannot be ignored, so the efdvet suppression goes stale
// and the malformed one below it is still reported.
func Mask() {
	//efdvet:ignore efdvet fixture: cannot silence the auditor
	//efdvet:ignore noexit
	os.Exit(5)
}
