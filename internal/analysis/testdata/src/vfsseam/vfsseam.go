// Package vfsseam exercises the vfsseam analyzer. The tests load it
// under a synthetic internal/tsdb import path, which puts it in scope
// for the storage-layer seam rules.
package vfsseam

import (
	"errors"
	"os"
	"syscall" // want `import "syscall" bypasses the vfs seam`

	"repro/internal/vfs"
)

// Constants, sentinel errors, and types from os stay legal — only
// behavior bypasses the seam.
var flags = os.O_CREATE | os.O_WRONLY

var _ = syscall.O_RDONLY

// pinned constructs the real filesystem inline instead of taking it
// from Options, cutting injected faults out of the path.
var pinned vfs.FS = vfs.OS{} // want `vfs\.OS\{\} constructed inside internal/tsdb pins the real disk`

// Open reaches around the seam to the os package directly.
func Open(path string) error {
	if dir := os.Getenv("EFD_DIR"); dir != "" {
		path = dir
	}
	f, err := os.OpenFile(path, flags, 0o644) // want `os.OpenFile bypasses the vfs seam`
	if err != nil {
		return err
	}
	return f.Sync() // want `os.Sync bypasses the vfs seam`
}

// OpenSeam is the compliant form: every filesystem operation flows
// through the injected FS.
func OpenSeam(fs vfs.FS, path string) error {
	f, err := fs.OpenFile(path, flags, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	return f.Sync()
}

// recoverWAL is recovery-shaped code: a bounded-backoff retry loop
// whose reads reach around the seam. Faults injected during reopen
// (the recovery-torture chaos mode) would never fire on this path.
func recoverWAL(path string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		b, err := os.ReadFile(path) // want `os.ReadFile bypasses the vfs seam`
		if err == nil {
			return b, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// recoverWALSeam is the compliant form: every retry attempt reads
// through the injected FS, so recovery-torture faults hit each one.
func recoverWALSeam(fs vfs.FS, path string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		b, err := fs.ReadFile(path)
		if err == nil {
			return b, nil
		}
		lastErr = err
	}
	return nil, lastErr
}
