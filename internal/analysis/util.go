package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errorIface is the universe error interface, for implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (as-is, no implicit addressing)
// satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// pathHasSegment reports whether the import path contains seg as a
// complete slash-delimited run, e.g. pathHasSegment("a/internal/tsdb",
// "internal/tsdb") — suffix, prefix, and interior positions all match,
// partial segment names ("internal/tsdbx") do not.
func pathHasSegment(path, seg string) bool {
	return strings.Contains("/"+path+"/", "/"+seg+"/")
}

// calleeFunc resolves the function or method a call statically
// invokes, or nil for builtins, type conversions, and calls through
// function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function from the package
// with the given import path.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedType unwraps pointers and aliases down to a *types.Named, or
// nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isNamed reports whether t names pkgSuffix.name (the package matched
// by import-path suffix segment, so fixtures and the real module both
// qualify).
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return n.Obj().Name() == name && (p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix) || pathHasSegment(p, pkgSuffix))
}

// commentHasDirective reports whether any comment in the group is the
// given directive (e.g. "//efd:hotpath"). Directive-style comments are
// stripped by CommentGroup.Text, so the raw list is scanned.
func commentHasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
