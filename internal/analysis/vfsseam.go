package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// tsdbScope is the import-path segment that puts a package under the
// storage-layer seam rules (vfsseam, lockdiscipline).
const tsdbScope = "internal/tsdb"

// VFSSeam enforces the PR 6 I/O seam: every filesystem operation in
// internal/tsdb must flow through vfs.FS, or the fault-injection and
// CrashAt chaos sweeps silently lose coverage of it. Constants,
// sentinel errors, and types from os remain fine — only behavior
// (function and method uses) bypasses the seam.
var VFSSeam = &Analyzer{
	Name: "vfsseam",
	Doc:  "internal/tsdb file I/O must go through the vfs.FS seam, not os/syscall",
	Run:  runVFSSeam,
}

// osAllowed are os functions with no filesystem or process-state
// side effects worth intercepting.
var osAllowed = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Getpid":    true,
}

func runVFSSeam(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path(), tsdbScope) {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "syscall" || path == "golang.org/x/sys" || strings.HasPrefix(path, "golang.org/x/sys/") {
				pass.Reportf(imp.Pos(),
					"import %q bypasses the vfs seam: tsdb I/O must flow through vfs.FS so fault injection covers it", path)
			}
		}
	}
	// Any use of an os function or method — os.OpenFile as a call or
	// as a value, (*os.File).Sync on a smuggled handle — is a seam
	// bypass. Identifier uses catch both forms.
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			continue
		}
		if osAllowed[fn.Name()] {
			continue
		}
		pass.Reportf(id.Pos(),
			"os.%s bypasses the vfs seam (fault injection and CrashAt sweeps cannot see it): use the store's vfs.FS", fn.Name())
	}
	// Constructing vfs.OS{} pins the real disk, cutting any injected
	// Fault wrapper out of the path: tsdb code must take its FS from
	// Options.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if tv, ok := pass.Info.Types[lit]; ok && isNamed(tv.Type, "internal/vfs", "OS") {
				pass.Reportf(lit.Pos(),
					"vfs.OS{} constructed inside internal/tsdb pins the real disk: take the FS from Options so faults inject")
			}
			return true
		})
	}
}
