// Package apps models the behaviour of the eleven HPC applications of
// the paper's dataset (Table 2): the NAS Parallel Benchmarks FT, MG, SP,
// LU, BT, CG plus CoMD, miniGhost, miniAMR, miniMD and Kripke, each with
// input sizes X, Y, Z and (for a subset) L.
//
// A model answers one question: what is the ideal (noise-free) value of
// a given system metric on a given node at a given time into the
// execution? The LDMS-style monitor samples these ideals through the
// noise models of package noise to produce telemetry with the same
// structure as the Taxonomist artifact the paper evaluates on.
//
// The levels are chosen to reproduce the qualitative facts the paper
// reports rather than the Volta cluster's absolute numbers: the
// nr_mapped_vmstat levels of Table 4 (including the SP/BT collision at
// rounding depth 2 and miniAMR's input-dependent keys), near-perfect
// separability on the top memory metrics of Table 3, weaker separability
// on the NIC counters, and useless constant metrics such as
// MemTotal_meminfo.
package apps

import "hash/fnv"

// MetricKind classifies metrics by the behaviour of their levels.
type MetricKind int

const (
	// KindGauge metrics hold a level that reflects the application's
	// working set (most vmstat/meminfo metrics).
	KindGauge MetricKind = iota
	// KindRate metrics reflect per-second activity (NIC counters,
	// page-fault rates); they carry more jitter.
	KindRate
	// KindConstant metrics are properties of the node, not the
	// application (MemTotal); they carry no application signal.
	KindConstant
)

// Separation grades how far apart the per-application levels of a metric
// sit, relative to the rounding steps the EFD uses. Strong separation
// yields F-scores near 1.0 in Table 3; weak separation yields poor ones.
type Separation int

const (
	SepNone   Separation = iota // no application signal
	SepWeak                     // levels overlap heavily
	SepMedium                   // a few application pairs collide
	SepStrong                   // all applications separable
)

// MetricDef describes one monitored system metric.
type MetricDef struct {
	// Name is the LDMS-style metric name, e.g. "nr_mapped_vmstat".
	Name string
	// Set is the sampler set the metric belongs to: "vmstat",
	// "meminfo" or "metric_set_nic".
	Set string
	// Base is the cluster-wide baseline level of the metric.
	Base float64
	// Kind classifies level behaviour.
	Kind MetricKind
	// Sep grades application separability.
	Sep Separation
	// JitterRel is the per-sample relative measurement noise specific
	// to this metric, layered on top of the cluster noise profile.
	JitterRel float64
	// InputSens is the largest relative per-input-step level change an
	// application may exhibit on this metric (drawn per application).
	InputSens float64
}

// sepSpread maps a separation grade to the relative half-range of
// per-application level multipliers.
func sepSpread(s Separation) float64 {
	switch s {
	case SepStrong:
		return 0.45
	case SepMedium:
		return 0.22
	case SepWeak:
		return 0.05
	default:
		return 0
	}
}

// catalog lists every modelled metric. The thirteen metrics named in
// Table 3 and Table 4 of the paper appear with the behaviour the paper
// reports; the remainder fill out the vmstat/meminfo/NIC sets with a
// realistic mix of useful, mediocre and useless discriminators.
var catalog = []MetricDef{
	// --- vmstat set ---------------------------------------------------
	// The paper's headline metric. Levels are overridden per app in
	// table4Levels to reproduce Table 4 exactly.
	{Name: "nr_mapped_vmstat", Set: "vmstat", Base: 7000, Kind: KindGauge, Sep: SepStrong, JitterRel: 0.002, InputSens: 0},
	{Name: "nr_active_anon_vmstat", Set: "vmstat", Base: 52000, Kind: KindGauge, Sep: SepStrong, JitterRel: 0.002, InputSens: 0.02},
	{Name: "nr_anon_pages_vmstat", Set: "vmstat", Base: 48000, Kind: KindGauge, Sep: SepStrong, JitterRel: 0.002, InputSens: 0.02},
	{Name: "nr_page_table_pages_vmstat", Set: "vmstat", Base: 1800, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.004, InputSens: 0.03},
	{Name: "nr_free_pages_vmstat", Set: "vmstat", Base: 15500000, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.006, InputSens: 0.05},
	{Name: "nr_dirty_vmstat", Set: "vmstat", Base: 220, Kind: KindRate, Sep: SepWeak, JitterRel: 0.25, InputSens: 0.05},
	{Name: "nr_writeback_vmstat", Set: "vmstat", Base: 8, Kind: KindRate, Sep: SepNone, JitterRel: 0.6, InputSens: 0},
	{Name: "nr_file_pages_vmstat", Set: "vmstat", Base: 310000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.003, InputSens: 0.01},
	{Name: "nr_slab_reclaimable_vmstat", Set: "vmstat", Base: 42000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.005, InputSens: 0.01},
	{Name: "nr_slab_unreclaimable_vmstat", Set: "vmstat", Base: 21000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.004, InputSens: 0.01},
	{Name: "nr_kernel_stack_vmstat", Set: "vmstat", Base: 680, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.006, InputSens: 0},
	{Name: "nr_active_file_vmstat", Set: "vmstat", Base: 180000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.004, InputSens: 0.01},
	{Name: "nr_inactive_file_vmstat", Set: "vmstat", Base: 125000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.004, InputSens: 0.01},
	{Name: "nr_inactive_anon_vmstat", Set: "vmstat", Base: 9800, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.004, InputSens: 0.02},
	{Name: "nr_shmem_vmstat", Set: "vmstat", Base: 7400, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.003, InputSens: 0.01},
	{Name: "pgfault_vmstat", Set: "vmstat", Base: 95000, Kind: KindRate, Sep: SepMedium, JitterRel: 0.06, InputSens: 0.08},
	{Name: "pgmajfault_vmstat", Set: "vmstat", Base: 2, Kind: KindRate, Sep: SepNone, JitterRel: 0.9, InputSens: 0},
	{Name: "pgpgin_vmstat", Set: "vmstat", Base: 1300, Kind: KindRate, Sep: SepWeak, JitterRel: 0.2, InputSens: 0.05},
	{Name: "pgpgout_vmstat", Set: "vmstat", Base: 900, Kind: KindRate, Sep: SepWeak, JitterRel: 0.2, InputSens: 0.05},
	{Name: "numa_hit_vmstat", Set: "vmstat", Base: 420000, Kind: KindRate, Sep: SepMedium, JitterRel: 0.05, InputSens: 0.06},
	{Name: "numa_miss_vmstat", Set: "vmstat", Base: 3100, Kind: KindRate, Sep: SepWeak, JitterRel: 0.3, InputSens: 0.05},
	{Name: "thp_fault_alloc_vmstat", Set: "vmstat", Base: 140, Kind: KindRate, Sep: SepWeak, JitterRel: 0.3, InputSens: 0.05},

	// --- meminfo set --------------------------------------------------
	{Name: "Committed_AS_meminfo", Set: "meminfo", Base: 5200000, Kind: KindGauge, Sep: SepStrong, JitterRel: 0.002, InputSens: 0.02},
	{Name: "Active_meminfo", Set: "meminfo", Base: 930000, Kind: KindGauge, Sep: SepStrong, JitterRel: 0.0035, InputSens: 0.02},
	{Name: "Mapped_meminfo", Set: "meminfo", Base: 28000, Kind: KindGauge, Sep: SepStrong, JitterRel: 0.0035, InputSens: 0},
	{Name: "AnonPages_meminfo", Set: "meminfo", Base: 192000, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.004, InputSens: 0.02},
	{Name: "MemFree_meminfo", Set: "meminfo", Base: 62000000, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.005, InputSens: 0.05},
	{Name: "PageTables_meminfo", Set: "meminfo", Base: 7200, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.005, InputSens: 0.03},
	{Name: "MemTotal_meminfo", Set: "meminfo", Base: 65536000, Kind: KindConstant, Sep: SepNone, JitterRel: 0, InputSens: 0},
	{Name: "CommitLimit_meminfo", Set: "meminfo", Base: 98304000, Kind: KindConstant, Sep: SepNone, JitterRel: 0, InputSens: 0},
	{Name: "Cached_meminfo", Set: "meminfo", Base: 1240000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.004, InputSens: 0.01},
	{Name: "Buffers_meminfo", Set: "meminfo", Base: 310000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.005, InputSens: 0},
	{Name: "Inactive_meminfo", Set: "meminfo", Base: 540000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.004, InputSens: 0.01},
	{Name: "Shmem_meminfo", Set: "meminfo", Base: 29600, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.004, InputSens: 0.01},
	{Name: "Slab_meminfo", Set: "meminfo", Base: 252000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.004, InputSens: 0.01},
	{Name: "SReclaimable_meminfo", Set: "meminfo", Base: 168000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.005, InputSens: 0.01},
	{Name: "SUnreclaim_meminfo", Set: "meminfo", Base: 84000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.005, InputSens: 0.01},
	{Name: "KernelStack_meminfo", Set: "meminfo", Base: 10900, Kind: KindGauge, Sep: SepMedium, JitterRel: 0.006, InputSens: 0},
	{Name: "VmallocUsed_meminfo", Set: "meminfo", Base: 481000, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.003, InputSens: 0},
	{Name: "HugePages_Free_meminfo", Set: "meminfo", Base: 512, Kind: KindGauge, Sep: SepWeak, JitterRel: 0.02, InputSens: 0.02},
	{Name: "Dirty_meminfo", Set: "meminfo", Base: 880, Kind: KindRate, Sep: SepWeak, JitterRel: 0.25, InputSens: 0.05},
	{Name: "Writeback_meminfo", Set: "meminfo", Base: 32, Kind: KindRate, Sep: SepNone, JitterRel: 0.6, InputSens: 0},

	// --- Aries NIC set ------------------------------------------------
	// Communication counters separate applications well but carry the
	// burstiness of real interconnect traffic, costing a few points of
	// F-score (Table 3 reports 0.95-0.96 for these).
	{Name: "AMO_PKTS_metric_set_nic", Set: "metric_set_nic", Base: 310000, Kind: KindRate, Sep: SepStrong, JitterRel: 0.014, InputSens: 0.055},
	{Name: "AMO_FLITS_metric_set_nic", Set: "metric_set_nic", Base: 620000, Kind: KindRate, Sep: SepStrong, JitterRel: 0.016, InputSens: 0.06},
	{Name: "PI_PKTS_metric_set_nic", Set: "metric_set_nic", Base: 430000, Kind: KindRate, Sep: SepStrong, JitterRel: 0.012, InputSens: 0.03},
	{Name: "PI_FLITS_metric_set_nic", Set: "metric_set_nic", Base: 860000, Kind: KindRate, Sep: SepMedium, JitterRel: 0.012, InputSens: 0.04},
	{Name: "GNI_PKTS_metric_set_nic", Set: "metric_set_nic", Base: 240000, Kind: KindRate, Sep: SepMedium, JitterRel: 0.015, InputSens: 0.04},
	{Name: "GNI_FLITS_metric_set_nic", Set: "metric_set_nic", Base: 480000, Kind: KindRate, Sep: SepMedium, JitterRel: 0.015, InputSens: 0.04},
	{Name: "totaloutput_optA_metric_set_nic", Set: "metric_set_nic", Base: 1900000, Kind: KindRate, Sep: SepWeak, JitterRel: 0.03, InputSens: 0.06},
	{Name: "totalinput_metric_set_nic", Set: "metric_set_nic", Base: 1900000, Kind: KindRate, Sep: SepWeak, JitterRel: 0.03, InputSens: 0.06},
}

// Metrics returns the full metric catalog. The returned slice is shared;
// callers must not modify it.
func Metrics() []MetricDef { return catalog }

// MetricNames returns the names of all catalog metrics in catalog order.
func MetricNames() []string {
	out := make([]string, len(catalog))
	for i, m := range catalog {
		out[i] = m.Name
	}
	return out
}

// LookupMetric returns the definition of the named metric.
func LookupMetric(name string) (MetricDef, bool) {
	for _, m := range catalog {
		if m.Name == name {
			return m, true
		}
	}
	return MetricDef{}, false
}

// HeadlineMetric is the single metric the paper's headline result uses.
const HeadlineMetric = "nr_mapped_vmstat"

// hash01 maps a string deterministically to [0,1). It seeds all the
// per-(application, metric) level draws so the synthetic cluster is
// identical across runs and platforms.
func hash01(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// centered maps a string deterministically to [-1,1).
func centered(parts ...string) float64 {
	return hash01(parts...)*2 - 1
}
