package apps

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Input identifies a problem size. The dataset uses X, Y, Z and L, with
// L available only for a subset of applications (Table 2).
type Input string

// The four input sizes of the dataset.
const (
	InputX Input = "X"
	InputY Input = "Y"
	InputZ Input = "Z"
	InputL Input = "L"
)

// AllInputs lists the input sizes in increasing problem-size order.
var AllInputs = []Input{InputX, InputY, InputZ, InputL}

// inputIndex maps an input size to its position in the size ordering.
func inputIndex(in Input) int {
	switch in {
	case InputX:
		return 0
	case InputY:
		return 1
	case InputZ:
		return 2
	case InputL:
		return 3
	}
	return -1
}

// Spec describes the modelled behaviour of one application.
type Spec struct {
	// Name is the application name as it appears in dataset labels.
	Name string
	// Inputs lists the supported input sizes.
	Inputs []Input

	// headline holds explicit nr_mapped_vmstat levels per input; the
	// per-node pattern cycles over the nodes of an execution. These
	// values reproduce Table 4 of the paper.
	headline map[Input][]float64
	// headlineExecSigma is the relative cross-execution variability of
	// the headline levels; miniAMR Z uses a large value to reproduce
	// the multiple fingerprints of Table 4.
	headlineExecSigma map[Input]float64

	// inputGain scales how strongly this application's gauge metrics
	// react to input size (multiplies MetricDef.InputSens).
	inputGain float64
	// nodeSkew is the per-node relative level skew applied to gauge
	// metrics (cycled over nodes); nil means uniform node usage.
	nodeSkew []float64
	// ripplePeriod and rippleGain shape the iteration oscillation of
	// rate metrics.
	ripplePeriod time.Duration
	rippleGain   float64
	// baseDuration is the X-input execution time; larger inputs run
	// longer by durationGrowth per input step.
	baseDuration   time.Duration
	durationGrowth float64
}

// xyz and xyzl are the two input sets of Table 2.
var (
	xyz  = []Input{InputX, InputY, InputZ}
	xyzl = []Input{InputX, InputY, InputZ, InputL}
)

// flat returns the same headline level for every node.
func flat(v float64) []float64 { return []float64{v} }

// specs models the eleven applications. Headline (nr_mapped_vmstat)
// levels reproduce Table 4: ft/mg/lu/miniGhost input-invariant, the
// SP/BT near-collision (identical keys at rounding depth 2, distinct at
// depth 3), SP/BT/LU using node 0 differently from the others, and
// miniAMR's strongly input-dependent, high-variance levels. cg and
// kripke are additionally input-sensitive on the headline metric so the
// "hard input" protocol degrades as in Figure 2.
var specs = []Spec{
	{
		Name: "ft", Inputs: xyz,
		headline:  map[Input][]float64{InputX: flat(6000), InputY: flat(6000), InputZ: flat(6000)},
		inputGain: 0.4, ripplePeriod: 7 * time.Second, rippleGain: 1.0,
		baseDuration: 170 * time.Second, durationGrowth: 0.45,
	},
	{
		Name: "mg", Inputs: xyz,
		headline:  map[Input][]float64{InputX: flat(6100), InputY: flat(6100), InputZ: flat(6100)},
		inputGain: 0.5, ripplePeriod: 9 * time.Second, rippleGain: 0.9,
		baseDuration: 160 * time.Second, durationGrowth: 0.5,
	},
	{
		Name: "sp", Inputs: xyz,
		headline: map[Input][]float64{
			InputX: {7620, 7530, 7530, 7130},
			InputY: {7620, 7530, 7530, 7130},
			InputZ: {7620, 7530, 7530, 7130},
		},
		inputGain: 0.4, nodeSkew: []float64{0.012, 0, 0, -0.045},
		ripplePeriod: 11 * time.Second, rippleGain: 1.1,
		baseDuration: 200 * time.Second, durationGrowth: 0.4,
	},
	{
		Name: "lu", Inputs: xyz,
		headline: map[Input][]float64{
			InputX: {8440, 8330, 8330, 8330},
			InputY: {8440, 8330, 8330, 8330},
			InputZ: {8440, 8330, 8330, 8330},
		},
		inputGain: 0.4, nodeSkew: []float64{0.013, 0, 0, 0},
		ripplePeriod: 8 * time.Second, rippleGain: 1.0,
		baseDuration: 210 * time.Second, durationGrowth: 0.4,
	},
	{
		Name: "bt", Inputs: xyz,
		headline: map[Input][]float64{
			InputX: {7580, 7470, 7470, 7070},
			InputY: {7580, 7470, 7470, 7070},
			InputZ: {7580, 7470, 7470, 7070},
		},
		inputGain: 0.4, nodeSkew: []float64{0.011, 0, 0, -0.047},
		ripplePeriod: 12 * time.Second, rippleGain: 1.1,
		baseDuration: 220 * time.Second, durationGrowth: 0.4,
	},
	{
		Name: "cg", Inputs: xyz,
		headline:  map[Input][]float64{InputX: flat(6550), InputY: flat(6840), InputZ: flat(7340)},
		inputGain: 0.8, ripplePeriod: 10 * time.Second, rippleGain: 1.3,
		baseDuration: 180 * time.Second, durationGrowth: 0.55,
	},
	{
		Name: "CoMD", Inputs: xyz,
		headline:  map[Input][]float64{InputX: flat(5600), InputY: flat(5600), InputZ: flat(5600)},
		inputGain: 0.7, ripplePeriod: 14 * time.Second, rippleGain: 0.8,
		baseDuration: 190 * time.Second, durationGrowth: 0.5,
	},
	{
		Name: "miniGhost", Inputs: xyzl,
		headline: map[Input][]float64{
			InputX: flat(7880), InputY: flat(7880), InputZ: flat(7880), InputL: flat(7880),
		},
		inputGain: 0.5, ripplePeriod: 13 * time.Second, rippleGain: 0.9,
		baseDuration: 175 * time.Second, durationGrowth: 0.5,
	},
	{
		Name: "miniAMR", Inputs: xyzl,
		headline: map[Input][]float64{
			InputX: flat(7800), InputY: flat(8000), InputZ: flat(10550), InputL: flat(13100),
		},
		headlineExecSigma: map[Input]float64{InputZ: 0.009, InputL: 0.006},
		inputGain:         3.0, ripplePeriod: 17 * time.Second, rippleGain: 1.2,
		baseDuration: 230 * time.Second, durationGrowth: 0.45,
	},
	{
		Name: "miniMD", Inputs: xyzl,
		headline: map[Input][]float64{
			InputX: flat(5150), InputY: flat(5150), InputZ: flat(5150), InputL: flat(5150),
		},
		inputGain: 0.6, ripplePeriod: 15 * time.Second, rippleGain: 0.8,
		baseDuration: 185 * time.Second, durationGrowth: 0.5,
	},
	{
		Name: "kripke", Inputs: xyzl,
		headline: map[Input][]float64{
			InputX: flat(9300), InputY: flat(9560), InputZ: flat(9830), InputL: flat(9830),
		},
		inputGain: 0.7, ripplePeriod: 16 * time.Second, rippleGain: 1.0,
		baseDuration: 240 * time.Second, durationGrowth: 0.45,
	},
}

// Catalog returns the specs of all eleven applications in dataset order.
// The returned slice is shared; callers must not modify it.
func Catalog() []Spec { return specs }

// Names returns the application names in dataset order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the spec of the named application.
func Lookup(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SupportsInput reports whether the application runs with the given
// input size.
func (s Spec) SupportsInput(in Input) bool {
	for _, i := range s.Inputs {
		if i == in {
			return true
		}
	}
	return false
}

// steadyLevel returns the noise-free steady-state level of metric m for
// this application, input size and node (of numNodes). It combines the
// explicit headline table with hash-derived levels for the remaining
// catalog metrics.
func (s Spec) steadyLevel(m MetricDef, in Input, node, numNodes int) float64 {
	if m.Name == HeadlineMetric {
		if pat, ok := s.headline[in]; ok && len(pat) > 0 {
			return pat[node%len(pat)]
		}
	}
	if m.Kind == KindConstant {
		return m.Base
	}
	// Application multiplier: applications are spaced evenly across the
	// metric's separation range, in a per-metric shuffled order, so the
	// minimum inter-application gap is controlled by the separation
	// grade rather than left to chance.
	level := m.Base * appMultiplier(s.Name, m)
	// Input scaling: a per-(app,metric) sensitivity in
	// [0, InputSens×inputGain], compounded per input step.
	sens := m.InputSens * s.inputGain * hash01(s.Name, m.Name, "input")
	if sens > 0 {
		level *= math.Pow(1+sens, float64(inputIndex(in)))
	}
	// Node skew: applications such as SP/BT/LU use node 0 differently.
	if len(s.nodeSkew) > 0 && m.Kind == KindGauge {
		level *= 1 + s.nodeSkew[node%len(s.nodeSkew)]
	}
	// Rate metrics additionally vary with the node's position in the
	// communication topology.
	if m.Kind == KindRate && numNodes > 1 {
		level *= 1 + 0.01*centered(s.Name, m.Name, fmt.Sprint(node%numNodes))
	}
	return level
}

// appMultiplier returns the relative level of the application on the
// metric. Applications are ranked by a per-metric hash shuffle and
// spaced evenly over [1-spread, 1+spread], guaranteeing a minimum
// inter-application gap of 2·spread/(n-1) — the property that makes
// strongly separating metrics reach F-scores near 1.0 in Table 3 while
// weakly separating ones collide.
func appMultiplier(app string, m MetricDef) float64 {
	spread := sepSpread(m.Sep)
	if spread == 0 {
		return 1
	}
	mulOnce.Do(buildAppMultipliers)
	return mulCache[m.Name][app]
}

var (
	mulOnce  sync.Once
	mulCache map[string]map[string]float64
)

func buildAppMultipliers() {
	mulCache = make(map[string]map[string]float64, len(catalog))
	names := Names()
	n := len(names)
	for _, m := range catalog {
		spread := sepSpread(m.Sep)
		order := make([]string, n)
		copy(order, names)
		sort.Slice(order, func(i, j int) bool {
			return hash01(order[i], m.Name, "order") < hash01(order[j], m.Name, "order")
		})
		byApp := make(map[string]float64, n)
		for pos, app := range order {
			frac := 0.5
			if n > 1 {
				frac = float64(pos) / float64(n-1)
			}
			byApp[app] = 1 + spread*(2*frac-1)
		}
		mulCache[m.Name] = byApp
	}
}

// Execution is one instantiated run of an application: per-(metric,node)
// levels including the cross-execution variability drawn at
// instantiation time, a duration, and ripple phases. It is the object
// the cluster simulator samples.
type Execution struct {
	Spec     Spec
	Input    Input
	NumNodes int

	duration time.Duration
	// levels[metricIndex][node]
	levels [][]float64
	// phases[metricIndex] is the ripple phase offset of this run.
	phases []float64
	// growthAmp is the relative height of the miniAMR-style staircase
	// growth applied after the fingerprint window (0 for most apps).
	growthAmp float64
}

// Instantiate draws one execution of the application with the given
// input on numNodes nodes. All randomness comes from rng. It returns an
// error for unsupported inputs or a non-positive node count.
func (s Spec) Instantiate(in Input, numNodes int, rng *rand.Rand) (*Execution, error) {
	if !s.SupportsInput(in) {
		return nil, fmt.Errorf("apps: %s does not support input %s", s.Name, in)
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("apps: non-positive node count %d", numNodes)
	}
	e := &Execution{Spec: s, Input: in, NumNodes: numNodes}

	// Duration: base × growth^step × (1 ± 10%).
	d := s.baseDuration.Seconds() * math.Pow(1+s.durationGrowth, float64(inputIndex(in)))
	d *= 0.9 + 0.2*rng.Float64()
	e.duration = time.Duration(d * float64(time.Second))

	mets := Metrics()
	e.levels = make([][]float64, len(mets))
	e.phases = make([]float64, len(mets))
	for mi, m := range mets {
		e.phases[mi] = rng.Float64() * 2 * math.Pi
		// Cross-execution level variability: gauges are stable run to
		// run, rates wobble more, and the headline metric may carry an
		// app/input-specific sigma (miniAMR Z/L).
		sigma := 0.0008
		if m.Kind == KindRate {
			sigma = 0.005
		}
		if m.Kind == KindConstant {
			sigma = 0
		}
		if m.Name == HeadlineMetric {
			if hs, ok := s.headlineExecSigma[in]; ok {
				sigma = hs
			}
		}
		execFactor := 1 + sigma*rng.NormFloat64()
		row := make([]float64, numNodes)
		for node := 0; node < numNodes; node++ {
			row[node] = s.steadyLevel(m, in, node, numNodes) * execFactor
		}
		e.levels[mi] = row
	}
	if s.Name == "miniAMR" {
		e.growthAmp = 0.03
	}
	return e, nil
}

// Duration reports how long this execution runs.
func (e *Execution) Duration() time.Duration { return e.duration }

// Ideal returns the noise-free value of the metric with catalog index
// metricIndex on the given node at offset t from execution start. The
// monitoring layer perturbs this through the noise models.
func (e *Execution) Ideal(metricIndex, node int, t time.Duration) float64 {
	m := Metrics()[metricIndex]
	v := e.levels[metricIndex][node]
	if m.Kind == KindConstant {
		return v
	}
	// Iteration ripple: strong on rates, faint on gauges.
	amp := 0.002
	if m.Kind == KindRate {
		amp = 0.04
	}
	amp *= e.Spec.rippleGain
	period := e.Spec.ripplePeriod.Seconds()
	if period > 0 {
		v *= 1 + amp*math.Sin(2*math.Pi*t.Seconds()/period+e.phases[metricIndex])
	}
	// Staircase growth (adaptive mesh refinement) kicks in only after
	// the fingerprint window so Table 4 levels stay put.
	if e.growthAmp > 0 && m.Kind == KindGauge && t > 130*time.Second {
		steps := math.Floor((t.Seconds() - 130) / 40)
		v *= 1 + e.growthAmp*steps
	}
	return v
}

// Labels enumerates every (application, input) pair of the dataset in
// deterministic order — the 37 label combinations of Table 2.
func Labels() []Label {
	var out []Label
	for _, s := range specs {
		for _, in := range s.Inputs {
			out = append(out, Label{App: s.Name, Input: in})
		}
	}
	return out
}

// Label identifies an (application, input size) pair, e.g. {ft, X}. Its
// string form "ft_X" matches the value format of Table 4.
type Label struct {
	App   string
	Input Input
}

// String renders the label as "app_input".
func (l Label) String() string { return l.App + "_" + string(l.Input) }

// ParseLabel parses the "app_input" form back into a Label. The
// application name may itself contain underscores; the input size is the
// final segment.
func ParseLabel(s string) (Label, error) {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '_' {
			l := Label{App: s[:i], Input: Input(s[i+1:])}
			if inputIndex(l.Input) < 0 {
				return Label{}, fmt.Errorf("apps: bad input size in label %q", s)
			}
			return l, nil
		}
	}
	return Label{}, fmt.Errorf("apps: bad label %q", s)
}

// SortLabels orders labels by application then input size, the order
// used in reports and in Table 4.
func SortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].App != ls[j].App {
			return ls[i].App < ls[j].App
		}
		return inputIndex(ls[i].Input) < inputIndex(ls[j].Input)
	})
}
