package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCatalogShape(t *testing.T) {
	specs := Catalog()
	if len(specs) != 11 {
		t.Fatalf("expected 11 applications, got %d", len(specs))
	}
	withL := 0
	for _, s := range specs {
		if len(s.Inputs) < 3 {
			t.Errorf("%s supports %d inputs, want >= 3", s.Name, len(s.Inputs))
		}
		if s.SupportsInput(InputL) {
			withL++
		}
	}
	// Table 2: input L is only available for a subset (the four
	// starred applications).
	if withL != 4 {
		t.Errorf("%d applications support input L, want 4", withL)
	}
	// 7×3 + 4×4 = 37 label combinations.
	if got := len(Labels()); got != 37 {
		t.Errorf("label combinations = %d, want 37", got)
	}
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		s, ok := Lookup(name)
		if !ok || s.Name != name {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("hpl"); ok {
		t.Error("Lookup of unknown app should fail")
	}
}

func TestMetricCatalog(t *testing.T) {
	mets := Metrics()
	if len(mets) < 40 {
		t.Fatalf("metric catalog has %d entries, want >= 40", len(mets))
	}
	// The thirteen metrics of Table 3 must all exist.
	table3 := []string{
		"nr_mapped_vmstat", "Committed_AS_meminfo", "nr_active_anon_vmstat",
		"nr_anon_pages_vmstat", "Active_meminfo", "Mapped_meminfo",
		"AnonPages_meminfo", "MemFree_meminfo", "PageTables_meminfo",
		"nr_page_table_pages_vmstat", "AMO_PKTS_metric_set_nic",
		"AMO_FLITS_metric_set_nic", "PI_PKTS_metric_set_nic",
	}
	for _, name := range table3 {
		m, ok := LookupMetric(name)
		if !ok {
			t.Errorf("Table 3 metric %q missing from catalog", name)
			continue
		}
		if m.Base <= 0 {
			t.Errorf("%s has non-positive base", name)
		}
	}
	if _, ok := LookupMetric("nope"); ok {
		t.Error("LookupMetric of unknown metric should succeed only for catalog entries")
	}
	seen := make(map[string]bool)
	for _, m := range mets {
		if seen[m.Name] {
			t.Errorf("duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
		if m.Set != "vmstat" && m.Set != "meminfo" && m.Set != "metric_set_nic" {
			t.Errorf("%s has unknown set %q", m.Name, m.Set)
		}
	}
}

func TestInstantiateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ft, _ := Lookup("ft")
	if _, err := ft.Instantiate(InputL, 4, rng); err == nil {
		t.Error("ft does not support L; Instantiate should fail")
	}
	if _, err := ft.Instantiate(InputX, 0, rng); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := ft.Instantiate(InputX, 4, rng); err != nil {
		t.Errorf("valid instantiation failed: %v", err)
	}
}

func TestExecutionDurationCoversWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range Catalog() {
		for _, in := range s.Inputs {
			for r := 0; r < 5; r++ {
				e, err := s.Instantiate(in, 4, rng)
				if err != nil {
					t.Fatal(err)
				}
				if e.Duration() < 130*time.Second {
					t.Errorf("%s_%s duration %v does not cover the [60:120] window",
						s.Name, in, e.Duration())
				}
			}
		}
	}
}

func TestDurationGrowsWithInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := Lookup("miniAMR")
	avg := func(in Input) time.Duration {
		var total time.Duration
		for i := 0; i < 20; i++ {
			e, err := s.Instantiate(in, 4, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += e.Duration()
		}
		return total / 20
	}
	if !(avg(InputX) < avg(InputY) && avg(InputY) < avg(InputZ) && avg(InputZ) < avg(InputL)) {
		t.Error("durations should grow with input size")
	}
}

// TestHeadlineLevelsReproduceTable4 checks the noise-free levels that
// generate Table 4 of the paper.
func TestHeadlineLevelsReproduceTable4(t *testing.T) {
	mi := headlineIndex(t)
	rng := rand.New(rand.NewSource(4))
	level := func(app string, in Input, node int) float64 {
		s, ok := Lookup(app)
		if !ok {
			t.Fatalf("no app %s", app)
		}
		e, err := s.Instantiate(in, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Sample the ideal at 90s (mid-window) and strip the ripple by
		// averaging over a full ripple period.
		period := s.ripplePeriod
		n := 0
		sum := 0.0
		for dt := time.Duration(0); dt < period; dt += 100 * time.Millisecond {
			sum += e.Ideal(mi, node, 90*time.Second+dt)
			n++
		}
		return sum / float64(n)
	}
	round2 := func(v float64) float64 { return math.Round(v/100) * 100 }

	// ft/mg flat and input-invariant.
	for _, in := range []Input{InputX, InputY, InputZ} {
		for node := 0; node < 4; node++ {
			if got := round2(level("ft", in, node)); got != 6000 {
				t.Errorf("ft_%s node %d ≈ %v, want 6000", in, node, got)
			}
			if got := round2(level("mg", in, node)); got != 6100 {
				t.Errorf("mg_%s node %d ≈ %v, want 6100", in, node, got)
			}
		}
	}
	// SP and BT collide at depth-2 rounding on every node.
	for node := 0; node < 4; node++ {
		sp := round2(level("sp", InputX, node))
		bt := round2(level("bt", InputX, node))
		if sp != bt {
			t.Errorf("node %d: sp %v and bt %v should collide at depth 2", node, sp, bt)
		}
	}
	// ...but separate at finer rounding (the underlying levels differ).
	if level("sp", InputX, 0) == level("bt", InputX, 0) {
		t.Error("sp and bt underlying levels should differ")
	}
	// miniAMR is input-dependent.
	x := level("miniAMR", InputX, 0)
	z := level("miniAMR", InputZ, 0)
	if z < x*1.2 {
		t.Errorf("miniAMR Z level %v should be well above X level %v", z, x)
	}
}

func headlineIndex(t *testing.T) int {
	t.Helper()
	for i, m := range Metrics() {
		if m.Name == HeadlineMetric {
			return i
		}
	}
	t.Fatal("headline metric missing")
	return -1
}

func TestConstantMetricsAreConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var idx []int
	for i, m := range Metrics() {
		if m.Kind == KindConstant {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		t.Fatal("catalog should include constant metrics")
	}
	ft, _ := Lookup("ft")
	cg, _ := Lookup("cg")
	e1, _ := ft.Instantiate(InputX, 4, rng)
	e2, _ := cg.Instantiate(InputZ, 4, rng)
	for _, mi := range idx {
		v1 := e1.Ideal(mi, 0, 90*time.Second)
		v2 := e2.Ideal(mi, 3, 200*time.Second)
		if v1 != v2 {
			t.Errorf("constant metric %s differs across apps: %v vs %v",
				Metrics()[mi].Name, v1, v2)
		}
	}
}

func TestExecutionDeterminism(t *testing.T) {
	s, _ := Lookup("kripke")
	e1, err := s.Instantiate(InputY, 4, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Instantiate(InputY, 4, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Duration() != e2.Duration() {
		t.Error("same seed should reproduce duration")
	}
	mi := headlineIndex(t)
	for node := 0; node < 4; node++ {
		a := e1.Ideal(mi, node, 83*time.Second)
		b := e2.Ideal(mi, node, 83*time.Second)
		if a != b {
			t.Errorf("same seed should reproduce ideals: %v vs %v", a, b)
		}
	}
}

func TestLabelStringParse(t *testing.T) {
	cases := []Label{
		{App: "ft", Input: InputX},
		{App: "miniAMR", Input: InputZ},
		{App: "CoMD", Input: InputL},
	}
	for _, l := range cases {
		got, err := ParseLabel(l.String())
		if err != nil || got != l {
			t.Errorf("round trip %v -> %q -> %v (%v)", l, l.String(), got, err)
		}
	}
	for _, bad := range []string{"", "ft", "ft_Q", "_X"} {
		if _, err := ParseLabel(bad); err == nil {
			t.Errorf("ParseLabel(%q) should fail", bad)
		}
	}
	// App names containing underscores survive the round trip.
	l := Label{App: "my_app", Input: InputY}
	got, err := ParseLabel(l.String())
	if err != nil || got != l {
		t.Errorf("underscore app round trip failed: %v %v", got, err)
	}
}

func TestLabelParseQuick(t *testing.T) {
	f := func(app string, which uint8) bool {
		for _, r := range app {
			if r == '_' || r == 0 {
				return true // covered separately; final-underscore split is documented
			}
		}
		if app == "" {
			return true
		}
		in := AllInputs[int(which)%len(AllInputs)]
		l := Label{App: app, Input: in}
		got, err := ParseLabel(l.String())
		return err == nil && got == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortLabels(t *testing.T) {
	ls := []Label{
		{App: "mg", Input: InputX},
		{App: "ft", Input: InputZ},
		{App: "ft", Input: InputX},
	}
	SortLabels(ls)
	want := []Label{
		{App: "ft", Input: InputX},
		{App: "ft", Input: InputZ},
		{App: "mg", Input: InputX},
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("SortLabels = %v", ls)
		}
	}
}

func TestAppMultiplierSpacing(t *testing.T) {
	// Strongly separating metrics must space all 11 applications with
	// a guaranteed minimum gap.
	m, _ := LookupMetric("Committed_AS_meminfo")
	var muls []float64
	for _, app := range Names() {
		muls = append(muls, appMultiplier(app, m))
	}
	for i := 0; i < len(muls); i++ {
		for j := i + 1; j < len(muls); j++ {
			gap := math.Abs(muls[i] - muls[j])
			if gap < 0.08 {
				t.Errorf("apps %s and %s multipliers too close: %v",
					Names()[i], Names()[j], gap)
			}
		}
	}
	// Separation-free metrics multiply by exactly 1.
	c, _ := LookupMetric("MemTotal_meminfo")
	for _, app := range Names() {
		if appMultiplier(app, c) != 1 {
			t.Errorf("constant metric should have unit multiplier for %s", app)
		}
	}
}

func TestHash01Range(t *testing.T) {
	f := func(a, b string) bool {
		v := hash01(a, b)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// Deterministic.
	if hash01("x", "y") != hash01("x", "y") {
		t.Error("hash01 must be deterministic")
	}
	// Part boundaries matter: ("ab","c") != ("a","bc").
	if hash01("ab", "c") == hash01("a", "bc") {
		t.Error("hash01 should separate part boundaries")
	}
}
