// Package cluster simulates the HPC system the telemetry comes from: a
// set of nodes on which application executions run while an LDMS-style
// monitor samples every catalog metric once per second on every node.
//
// The simulator is the stand-in for the Volta cluster behind the
// Taxonomist dataset. It owns the composition of ideal application
// behaviour (package apps) with system perturbations (package noise) and
// produces per-execution telemetry (package telemetry).
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/noise"
	"repro/internal/telemetry"
)

// Config describes the simulated system.
type Config struct {
	// Nodes is the number of nodes allocated to each execution.
	Nodes int
	// Period is the monitoring sampling period (default 1 s).
	Period time.Duration
	// Noise is the perturbation environment of the system.
	Noise noise.Profile
	// Metrics restricts collection to the named metrics; nil collects
	// the full catalog. Restricting collection makes large parameter
	// sweeps dramatically cheaper.
	Metrics []string
}

// DefaultConfig returns the 4-node, 1 Hz, default-noise configuration
// matching the primary grid of Table 2.
func DefaultConfig() Config {
	return Config{
		Nodes:  4,
		Period: telemetry.DefaultPeriod,
		Noise:  noise.DefaultProfile(),
	}
}

// Simulator runs application executions on the simulated system.
type Simulator struct {
	cfg           Config
	metricIndexes []int
}

// New returns a simulator for the configuration. It validates the node
// count, period and metric names.
func New(cfg Config) (*Simulator, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("cluster: node count must be positive")
	}
	if cfg.Period <= 0 {
		cfg.Period = telemetry.DefaultPeriod
	}
	s := &Simulator{cfg: cfg}
	if cfg.Metrics == nil {
		for i := range apps.Metrics() {
			s.metricIndexes = append(s.metricIndexes, i)
		}
		return s, nil
	}
	for _, name := range cfg.Metrics {
		found := false
		for i, m := range apps.Metrics() {
			if m.Name == name {
				s.metricIndexes = append(s.metricIndexes, i)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: unknown metric %q", name)
		}
	}
	if len(s.metricIndexes) == 0 {
		return nil, errors.New("cluster: empty metric selection")
	}
	return s, nil
}

// Config returns the simulator configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Run instantiates one execution of the application with the given
// input and collects its telemetry. All randomness is drawn from rng.
func (s *Simulator) Run(spec apps.Spec, in apps.Input, rng *rand.Rand) (*telemetry.NodeSet, *apps.Execution, error) {
	exec, err := spec.Instantiate(in, s.cfg.Nodes, rng)
	if err != nil {
		return nil, nil, err
	}
	ns := s.Collect(exec, rng)
	return ns, exec, nil
}

// Collect samples an already-instantiated execution through the noise
// environment and returns its telemetry.
func (s *Simulator) Collect(exec *apps.Execution, rng *rand.Rand) *telemetry.NodeSet {
	ns := telemetry.NewNodeSet()
	nSamples := int(exec.Duration()/s.cfg.Period) + 1
	// The initialization transient's height varies run to run: some
	// executions start more turbulently than others. This is the main
	// reason early windows make poor fingerprints (interval ablation).
	ampScale := 0.7 + 0.6*rng.Float64()
	mets := apps.Metrics()
	for _, mi := range s.metricIndexes {
		m := mets[mi]
		prof := s.cfg.Noise
		prof.Jitter += m.JitterRel
		prof.InitAmplitude *= ampScale
		if m.Kind == apps.KindConstant {
			// Node properties are immune to application noise.
			prof = noise.Profile{Jitter: prof.Jitter}
		}
		for node := 0; node < exec.NumNodes; node++ {
			chain := prof.NewChain()
			series := telemetry.NewSeries(m.Name, node, nSamples)
			for i := 0; i < nSamples; i++ {
				t := time.Duration(i) * s.cfg.Period
				v := chain.Perturb(rng, t, exec.Ideal(mi, node, t))
				if v < 0 {
					v = 0
				}
				series.Append(t, v)
			}
			ns.Put(series)
		}
	}
	return ns
}

// MetricNames returns the names of the metrics this simulator collects,
// in catalog order.
func (s *Simulator) MetricNames() []string {
	out := make([]string, len(s.metricIndexes))
	for i, mi := range s.metricIndexes {
		out[i] = apps.Metrics()[mi].Name
	}
	return out
}
