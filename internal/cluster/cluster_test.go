package cluster

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/noise"
	"repro/internal/telemetry"
)

func quietSim(t *testing.T, nodes int, metrics []string) *Simulator {
	t.Helper()
	s, err := New(Config{Nodes: nodes, Noise: noise.QuietProfile(), Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := New(Config{Nodes: 1, Metrics: []string{"bogus"}}); err == nil {
		t.Error("unknown metric should fail")
	}
	if _, err := New(Config{Nodes: 1, Metrics: []string{}}); err == nil {
		t.Error("explicitly empty metric selection should fail")
	}
	s, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.MetricNames()); got != len(apps.Metrics()) {
		t.Errorf("default selection = %d metrics, want full catalog %d",
			got, len(apps.Metrics()))
	}
	if s.Config().Period != telemetry.DefaultPeriod {
		t.Errorf("default period = %v", s.Config().Period)
	}
}

func TestRunProducesCompleteTelemetry(t *testing.T) {
	metrics := []string{apps.HeadlineMetric, "Committed_AS_meminfo"}
	sim := quietSim(t, 3, metrics)
	spec, _ := apps.Lookup("lu")
	ns, exec, err := sim.Run(spec, apps.InputX, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Validate(); err != nil {
		t.Fatalf("telemetry invalid: %v", err)
	}
	if got := ns.Nodes(); len(got) != 3 {
		t.Fatalf("nodes = %v", got)
	}
	if got := ns.Metrics(); len(got) != 2 {
		t.Fatalf("metrics = %v", got)
	}
	s := ns.Get(0, apps.HeadlineMetric)
	wantSamples := int(exec.Duration()/time.Second) + 1
	if s.Len() != wantSamples {
		t.Errorf("series length %d, want %d", s.Len(), wantSamples)
	}
	// 1 Hz grid.
	if s.OffsetAt(1)-s.OffsetAt(0) != time.Second {
		t.Error("sampling period is not 1s")
	}
}

func TestRunRejectsUnsupportedInput(t *testing.T) {
	sim := quietSim(t, 2, []string{apps.HeadlineMetric})
	spec, _ := apps.Lookup("ft")
	if _, _, err := sim.Run(spec, apps.InputL, rand.New(rand.NewSource(1))); err == nil {
		t.Error("ft with input L should fail")
	}
}

func TestQuietWindowMeanNearModelLevel(t *testing.T) {
	sim := quietSim(t, 4, []string{apps.HeadlineMetric})
	spec, _ := apps.Lookup("lu")
	ns, _, err := sim.Run(spec, apps.InputY, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	// lu node 0 models 8440, others 8330 (Table 4).
	want := []float64{8440, 8330, 8330, 8330}
	for node, w := range want {
		mean, err := ns.Get(node, apps.HeadlineMetric).WindowMean(telemetry.PaperWindow)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-w)/w > 0.01 {
			t.Errorf("node %d window mean %v, want ≈ %v", node, mean, w)
		}
	}
}

func TestInitTransientVisible(t *testing.T) {
	cfg := Config{Nodes: 1, Noise: noise.DefaultProfile(), Metrics: []string{apps.HeadlineMetric}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := apps.Lookup("ft")
	ns, _, err := sim.Run(spec, apps.InputX, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s := ns.Get(0, apps.HeadlineMetric)
	first := s.ValueAt(0)
	steady, err := s.WindowMean(telemetry.PaperWindow)
	if err != nil {
		t.Fatal(err)
	}
	// The start-up excursion must be clearly above the steady level.
	if first < steady*1.2 {
		t.Errorf("init transient too weak: first=%v steady=%v", first, steady)
	}
}

func TestValuesNonNegative(t *testing.T) {
	sim, err := New(Config{Nodes: 2, Noise: noise.DefaultProfile()})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := apps.Lookup("miniMD")
	ns, _, err := sim.Run(spec, apps.InputX, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ns.Metrics() {
		for _, node := range ns.Nodes() {
			for _, v := range ns.Get(node, m).ValuesView() {
				if v < 0 {
					t.Fatalf("negative telemetry %v for %s", v, m)
				}
			}
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	sim := quietSim(t, 2, []string{apps.HeadlineMetric})
	spec, _ := apps.Lookup("cg")
	run := func() *telemetry.NodeSet {
		ns, _, err := sim.Run(spec, apps.InputZ, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	a, b := run(), run()
	sa, sb := a.Get(1, apps.HeadlineMetric), b.Get(1, apps.HeadlineMetric)
	if sa.Len() != sb.Len() {
		t.Fatal("lengths differ across identical seeds")
	}
	for i := 0; i < sa.Len(); i++ {
		if sa.At(i) != sb.At(i) {
			t.Fatalf("sample %d differs: %v vs %v", i, sa.At(i), sb.At(i))
		}
	}
}

func TestConstantMetricUnperturbedByExecution(t *testing.T) {
	sim := quietSim(t, 1, []string{"MemTotal_meminfo"})
	specA, _ := apps.Lookup("ft")
	specB, _ := apps.Lookup("kripke")
	nsA, _, err := sim.Run(specA, apps.InputX, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	nsB, _, err := sim.Run(specB, apps.InputZ, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := nsA.Get(0, "MemTotal_meminfo").WindowMean(telemetry.PaperWindow)
	mb, _ := nsB.Get(0, "MemTotal_meminfo").WindowMean(telemetry.PaperWindow)
	if math.Abs(ma-mb)/ma > 0.001 {
		t.Errorf("constant metric differs across apps: %v vs %v", ma, mb)
	}
}
