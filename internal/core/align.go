package core

import (
	"time"

	"repro/internal/telemetry"
)

// TelemetrySource adapts raw telemetry (a NodeSet of 1 Hz series) to
// the WindowSource interface, optionally shifting every window by a
// fixed offset. It lets the recognizer operate directly on collected
// series — and, with non-zero shifts, probe alternative alignments of
// the execution's start time.
type TelemetrySource struct {
	NS *telemetry.NodeSet
	// Shift is added to both window bounds before slicing, so a
	// positive shift looks later into the telemetry. Windows shifted
	// below zero yield no mean.
	Shift time.Duration

	nodes []int
}

// NewTelemetrySource wraps raw telemetry for recognition.
func NewTelemetrySource(ns *telemetry.NodeSet) *TelemetrySource {
	return &TelemetrySource{NS: ns, nodes: ns.Nodes()}
}

// WindowMean implements WindowSource over the raw series.
func (t *TelemetrySource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	s := t.NS.Get(node, metric)
	if s == nil {
		return 0, false
	}
	w.Start += t.Shift
	w.End += t.Shift
	if w.Start < 0 || !w.Valid() {
		return 0, false
	}
	mean, err := s.WindowMean(w)
	if err != nil {
		return 0, false
	}
	return mean, true
}

// NodeCount implements WindowSource.
func (t *TelemetrySource) NodeCount() int {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.nodes[len(t.nodes)-1] + 1
}

// AlignedResult extends a recognition result with the temporal offset
// that produced it.
type AlignedResult struct {
	Result
	// Offset is the shift applied to the fingerprint windows.
	Offset time.Duration
}

// RecognizeAligned performs temporally aligned recognition — the third
// Shazam aspect the paper lists as future work (§2, §6). Monitoring
// pipelines do not always know the exact moment an application started
// (queue time, MPI launch, container start all blur it); a fingerprint
// window anchored at the wrong origin misses the dictionary. This
// method probes each candidate offset, recognizes the telemetry as if
// the execution had started that much earlier or later, and returns
// the offset whose recognition matched the most fingerprints (ties:
// more votes for the top application, then smaller absolute offset).
//
// With offsets == nil, offsets of 0, ±5 s, ±10 s, ±20 s and ±30 s are
// probed.
//
// RecognizeAligned is read-only on ns, so sorted telemetry can be
// probed concurrently. Every candidate offset re-queries the same
// series with shifted windows, so callers that can afford a one-time
// mutation should ns.Seal() beforehand: the sealed prefix sums
// amortize the whole alignment sweep to one pass per series.
func (d *Dictionary) RecognizeAligned(ns *telemetry.NodeSet, offsets []time.Duration) AlignedResult {
	if offsets == nil {
		offsets = []time.Duration{
			0,
			5 * time.Second, -5 * time.Second,
			10 * time.Second, -10 * time.Second,
			20 * time.Second, -20 * time.Second,
			30 * time.Second, -30 * time.Second,
		}
	}
	src := NewTelemetrySource(ns)
	best := AlignedResult{Offset: 0}
	first := true
	for _, off := range offsets {
		src.Shift = off
		res := d.Recognize(src)
		if first || betterAlignment(res, off, best) {
			best = AlignedResult{Result: res, Offset: off}
			first = false
		}
	}
	return best
}

// betterAlignment reports whether (res, off) beats the current best.
func betterAlignment(res Result, off time.Duration, best AlignedResult) bool {
	if res.Matched != best.Matched {
		return res.Matched > best.Matched
	}
	rv, bv := topVotes(res), topVotes(best.Result)
	if rv != bv {
		return rv > bv
	}
	return absDur(off) < absDur(best.Offset)
}

func topVotes(r Result) int {
	if len(r.Apps) == 0 {
		return 0
	}
	return r.VotesFor(r.Apps[0])
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
