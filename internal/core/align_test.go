package core

import (
	"io"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// rampTelemetry builds raw telemetry whose value is level during
// [realStart+60, realStart+120) and level+1000 elsewhere, so a
// misaligned window produces a visibly different mean.
func rampTelemetry(level float64, nodes int, realStart, total time.Duration) *telemetry.NodeSet {
	ns := telemetry.NewNodeSet()
	for node := 0; node < nodes; node++ {
		s := telemetry.NewSeries(apps.HeadlineMetric, node, int(total/time.Second))
		for t := time.Duration(0); t <= total; t += time.Second {
			v := level + 1000
			rel := t - realStart
			if rel >= 60*time.Second && rel < 120*time.Second {
				v = level
			}
			s.Append(t, v)
		}
		ns.Put(s)
	}
	return ns
}

func TestTelemetrySourceBasics(t *testing.T) {
	ns := rampTelemetry(6000, 2, 0, 200*time.Second)
	src := NewTelemetrySource(ns)
	if src.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", src.NodeCount())
	}
	mean, ok := src.WindowMean(apps.HeadlineMetric, 0, telemetry.PaperWindow)
	if !ok || mean != 6000 {
		t.Fatalf("WindowMean = %v ok=%v, want 6000", mean, ok)
	}
	if _, ok := src.WindowMean("nope", 0, telemetry.PaperWindow); ok {
		t.Error("unknown metric should yield no mean")
	}
	// Negative-shifted window below zero yields no mean.
	src.Shift = -2 * time.Minute
	if _, ok := src.WindowMean(apps.HeadlineMetric, 0, telemetry.PaperWindow); ok {
		t.Error("window shifted below zero should yield no mean")
	}
}

func TestRecognizeAlignedRecoversOffset(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	label := apps.Label{App: "ft", Input: apps.InputX}
	// Learn from perfectly aligned telemetry.
	d.Learn(NewTelemetrySource(rampTelemetry(6000, 2, 0, 200*time.Second)), label)

	// The test execution actually started 20 s before the monitor
	// began attributing samples to it: its steady window sits at
	// [40:100) in monitor time, so the nominal [60:120) window mixes
	// in the elevated phase and misses the dictionary.
	shifted := rampTelemetry(6000, 2, -20*time.Second, 200*time.Second)

	plain := d.Recognize(NewTelemetrySource(shifted))
	if plain.Recognized() {
		t.Fatalf("misaligned telemetry should not match plainly: %+v", plain)
	}
	aligned := d.RecognizeAligned(shifted, nil)
	if aligned.Top() != "ft" {
		t.Fatalf("aligned recognition = %+v, want ft", aligned)
	}
	if aligned.Offset != -20*time.Second {
		t.Errorf("recovered offset = %v, want -20s", aligned.Offset)
	}
}

func TestRecognizeAlignedPrefersZeroOffsetOnTies(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	label := apps.Label{App: "ft", Input: apps.InputX}
	// Constant telemetry: every offset matches equally well.
	ns := telemetry.NewNodeSet()
	s := telemetry.NewSeries(apps.HeadlineMetric, 0, 200)
	for t0 := time.Duration(0); t0 <= 200*time.Second; t0 += time.Second {
		s.Append(t0, 6000)
	}
	ns.Put(s)
	d.Learn(NewTelemetrySource(ns), label)
	res := d.RecognizeAligned(ns, nil)
	if res.Top() != "ft" || res.Offset != 0 {
		t.Fatalf("tie should prefer zero offset: %+v", res)
	}
}

func TestWeightedVotingBreaksNoiseTies(t *testing.T) {
	d, _ := NewDictionary(paperCfg(3))
	a := apps.Label{App: "steady", Input: apps.InputX}
	b := apps.Label{App: "noisy", Input: apps.InputX}
	src := srcWith(1, apps.HeadlineMetric, 6000)
	// "steady" produced this key in 9 runs, "noisy" once.
	for i := 0; i < 9; i++ {
		d.Learn(src, a)
	}
	d.Learn(src, b)

	uniform := d.Recognize(src)
	if len(uniform.Apps) != 2 {
		t.Fatalf("uniform voting should tie: %+v", uniform)
	}
	weighted := d.RecognizeWeighted(src)
	if weighted.Top() != "steady" || len(weighted.Apps) != 1 {
		t.Fatalf("weighted voting should pick steady: %+v", weighted)
	}
	if weighted.VotesFor("steady") != 9 || weighted.VotesFor("noisy") != 1 {
		t.Errorf("weighted votes = %v", weighted.Votes())
	}
	if c := weighted.Confidence(); c != 1 {
		t.Errorf("weighted confidence should clamp to 1, got %v", c)
	}
}

func TestCountsAndCompact(t *testing.T) {
	d, _ := NewDictionary(paperCfg(3))
	l := apps.Label{App: "ft", Input: apps.InputX}
	common := srcWith(1, apps.HeadlineMetric, 6000)
	rare := srcWith(1, apps.HeadlineMetric, 6060)
	for i := 0; i < 5; i++ {
		d.Learn(common, l)
	}
	d.Learn(rare, l)

	fpCommon := Extract(common, d.Config())[0]
	fpRare := Extract(rare, d.Config())[0]
	if d.Count(fpCommon, l) != 5 || d.Count(fpRare, l) != 1 {
		t.Fatalf("counts: common=%d rare=%d", d.Count(fpCommon, l), d.Count(fpRare, l))
	}
	if d.Count(Fingerprint{Metric: "x"}, l) != 0 {
		t.Error("unknown key should count 0")
	}

	if removed := d.Compact(1); removed != 0 {
		t.Errorf("Compact(1) removed %d", removed)
	}
	if removed := d.Compact(3); removed != 1 {
		t.Errorf("Compact(3) removed %d, want 1 (the rare key)", removed)
	}
	if d.Len() != 1 || d.Lookup(fpCommon) == nil {
		t.Error("common key should survive compaction")
	}
	// The last key of a label is never removed.
	if removed := d.Compact(100); removed != 0 {
		t.Errorf("Compact must not orphan a label, removed %d", removed)
	}
	if d.Len() != 1 {
		t.Error("label orphaned by compaction")
	}
}

func TestCountsSurviveSaveLoadAndMerge(t *testing.T) {
	d, _ := NewDictionary(paperCfg(3))
	l := apps.Label{App: "ft", Input: apps.InputX}
	src := srcWith(1, apps.HeadlineMetric, 6000)
	for i := 0; i < 4; i++ {
		d.Learn(src, l)
	}
	fp := Extract(src, d.Config())[0]

	var buf stringsBuilder
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(buf.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count(fp, l) != 4 {
		t.Errorf("loaded count = %d, want 4", loaded.Count(fp, l))
	}

	other, _ := NewDictionary(paperCfg(3))
	other.Learn(src, l)
	other.Merge(d)
	if other.Count(fp, l) != 5 {
		t.Errorf("merged count = %d, want 5", other.Count(fp, l))
	}
}

func TestJointExtract(t *testing.T) {
	cfg := Config{
		Metrics: []string{"m1", "m2"},
		Windows: []telemetry.Window{telemetry.PaperWindow},
		Depth:   2,
		Joint:   true,
	}
	src := mapSource{nodes: 2, means: map[string]float64{
		key("m1", 0, telemetry.PaperWindow): 6012,
		key("m2", 0, telemetry.PaperWindow): 84321,
		key("m1", 1, telemetry.PaperWindow): 6012,
		// m2 missing on node 1: the composite key is suppressed.
	}}
	fps := Extract(src, cfg)
	if len(fps) != 1 {
		t.Fatalf("joint fingerprints = %d, want 1", len(fps))
	}
	if fps[0].Metric != "m1+m2" || fps[0].Key != "6000|84000" {
		t.Errorf("joint fingerprint = %+v", fps[0])
	}
	if fps[0].Mean() != 6000 {
		t.Errorf("joint Mean() = %v", fps[0].Mean())
	}
}

// stringsBuilder is a tiny buffer usable as both writer and reader in
// round-trip tests.
type stringsBuilder struct{ data []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *stringsBuilder) Reader() *bytesReader { return &bytesReader{data: b.data} }

type bytesReader struct {
	data []byte
	pos  int
}

func (r *bytesReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, errEOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

var errEOF = io.EOF
