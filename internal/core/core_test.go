package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// mapSource is a WindowSource backed by literal means, for tests.
type mapSource struct {
	nodes int
	means map[string]float64 // "metric|node|window" -> raw mean
}

func key(metric string, node int, w telemetry.Window) string {
	return metric + "|" + string(rune('0'+node)) + "|" + w.String()
}

func (m mapSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	v, ok := m.means[key(metric, node, w)]
	return v, ok
}

func (m mapSource) NodeCount() int { return m.nodes }

func paperCfg(depth int) Config { return DefaultConfig(depth) }

func srcWith(nodes int, metric string, values ...float64) mapSource {
	ms := mapSource{nodes: nodes, means: make(map[string]float64)}
	for node, v := range values {
		ms.means[key(metric, node, telemetry.PaperWindow)] = v
	}
	return ms
}

func TestFingerprintString(t *testing.T) {
	fp := NewFingerprint("nr_mapped_vmstat", 0, telemetry.PaperWindow, 6012.7, 2)
	want := "[nr_mapped_vmstat, 0, [60:120], 6000]"
	if fp.String() != want {
		t.Errorf("String = %q, want %q", fp.String(), want)
	}
	if fp.Mean() != 6000 || fp.Key != "6000" {
		t.Errorf("Key = %q, want 6000 (rounded)", fp.Key)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := paperCfg(3).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Windows: []telemetry.Window{telemetry.PaperWindow}, Depth: 1},
		{Metrics: []string{"m"}, Depth: 1},
		{Metrics: []string{"m"}, Windows: []telemetry.Window{{Start: 5, End: 2}}, Depth: 1},
		{Metrics: []string{"m"}, Windows: []telemetry.Window{telemetry.PaperWindow}, Depth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := NewDictionary(Config{}); err == nil {
		t.Error("NewDictionary should reject invalid config")
	}
}

func TestExtract(t *testing.T) {
	src := srcWith(4, apps.HeadlineMetric, 6012, 6049, 5988, 6031)
	fps := Extract(src, paperCfg(2))
	if len(fps) != 4 {
		t.Fatalf("Extract returned %d fingerprints, want 4", len(fps))
	}
	for _, fp := range fps {
		if fp.Mean() != 6000 {
			t.Errorf("node %d mean = %v, want 6000", fp.Node, fp.Mean())
		}
	}
	// Nodes without data contribute nothing.
	src2 := srcWith(4, apps.HeadlineMetric, 6012, 6049)
	if got := len(Extract(src2, paperCfg(2))); got != 2 {
		t.Errorf("partial source: %d fingerprints, want 2", got)
	}
}

func TestLearnLookupRecognize(t *testing.T) {
	d, err := NewDictionary(paperCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	ftX := apps.Label{App: "ft", Input: apps.InputX}
	mgX := apps.Label{App: "mg", Input: apps.InputX}
	d.Learn(srcWith(4, apps.HeadlineMetric, 6010, 6020, 5990, 6000), ftX)
	d.Learn(srcWith(4, apps.HeadlineMetric, 6110, 6120, 6090, 6100), mgX)

	if d.Len() != 8 {
		t.Fatalf("dictionary keys = %d, want 8", d.Len())
	}
	res := d.Recognize(srcWith(4, apps.HeadlineMetric, 6030, 5970, 6010, 6049))
	if !res.Recognized() || res.Top() != "ft" {
		t.Fatalf("Recognize = %+v, want ft", res)
	}
	if res.Matched != 4 || res.Total != 4 {
		t.Errorf("Matched/Total = %d/%d", res.Matched, res.Total)
	}
	if res.Confidence() != 1 {
		t.Errorf("Confidence = %v", res.Confidence())
	}
	// An execution near nothing in the dictionary is unknown.
	res = d.Recognize(srcWith(4, apps.HeadlineMetric, 9000, 9100, 9000, 9100))
	if res.Recognized() || res.Top() != Unknown {
		t.Fatalf("unmatched execution should be unknown, got %+v", res)
	}
	if res.Confidence() != 0 {
		t.Errorf("unknown Confidence = %v", res.Confidence())
	}
}

func TestRecognizeMajorityAcrossNodes(t *testing.T) {
	d, _ := NewDictionary(paperCfg(3))
	a := apps.Label{App: "aaa", Input: apps.InputX}
	b := apps.Label{App: "bbb", Input: apps.InputX}
	d.Learn(srcWith(4, apps.HeadlineMetric, 1000, 1010, 1020, 1030), a)
	d.Learn(srcWith(4, apps.HeadlineMetric, 2000, 2010, 1020, 1030), b) // shares nodes 2,3 keys with a

	// Test execution: nodes 0,1 match only a; nodes 2,3 match both.
	res := d.Recognize(srcWith(4, apps.HeadlineMetric, 1000, 1010, 1020, 1030))
	if res.Top() != "aaa" {
		t.Fatalf("majority vote should pick aaa, got %+v", res)
	}
	if res.VotesFor("aaa") != 4 || res.VotesFor("bbb") != 2 {
		t.Errorf("votes = %v", res.Votes())
	}
}

func TestRecognizeTieLearningOrder(t *testing.T) {
	// The SP/BT situation: identical keys at a coarse depth. The tie
	// resolves in learning order (the paper returns SP because SP was
	// learned first).
	d, _ := NewDictionary(paperCfg(2))
	sp := apps.Label{App: "sp", Input: apps.InputX}
	bt := apps.Label{App: "bt", Input: apps.InputX}
	d.Learn(srcWith(4, apps.HeadlineMetric, 7620, 7530, 7530, 7130), sp)
	d.Learn(srcWith(4, apps.HeadlineMetric, 7580, 7470, 7470, 7070), bt)

	res := d.Recognize(srcWith(4, apps.HeadlineMetric, 7600, 7500, 7500, 7100))
	if len(res.Apps) != 2 {
		t.Fatalf("expected a 2-way tie, got %+v", res)
	}
	if res.Apps[0] != "sp" || res.Apps[1] != "bt" {
		t.Errorf("tie order = %v, want [sp bt]", res.Apps)
	}
	if res.Top() != "sp" {
		t.Errorf("Top = %q", res.Top())
	}
}

func TestDepth3ResolvesSPBT(t *testing.T) {
	d, _ := NewDictionary(paperCfg(3))
	sp := apps.Label{App: "sp", Input: apps.InputX}
	bt := apps.Label{App: "bt", Input: apps.InputX}
	d.Learn(srcWith(4, apps.HeadlineMetric, 7620, 7530, 7530, 7130), sp)
	d.Learn(srcWith(4, apps.HeadlineMetric, 7580, 7470, 7470, 7070), bt)
	res := d.Recognize(srcWith(4, apps.HeadlineMetric, 7581, 7472, 7468, 7069))
	if res.Top() != "bt" || len(res.Apps) != 1 {
		t.Fatalf("depth 3 should recognize bt exclusively, got %+v", res)
	}
}

func TestInputsAggregation(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	for _, in := range []apps.Input{apps.InputX, apps.InputY, apps.InputZ} {
		d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 6000), apps.Label{App: "ft", Input: in})
	}
	res := d.Recognize(srcWith(2, apps.HeadlineMetric, 6001, 5999))
	if res.Top() != "ft" {
		t.Fatal("should recognize ft")
	}
	// All three input labels share the keys.
	if len(res.Inputs()) != 3 {
		t.Errorf("Inputs = %v", res.Inputs())
	}
	// One vote per matched key per app, not per label.
	if res.VotesFor("ft") != 2 {
		t.Errorf("votes = %v, want 2 (one per node)", res.Votes())
	}
}

func TestDictionaryStats(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 6000), apps.Label{App: "ft", Input: apps.InputX})
	d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 7000), apps.Label{App: "mg", Input: apps.InputX})
	s := d.Stats()
	if s.Keys != 3 {
		t.Errorf("Keys = %d, want 3", s.Keys)
	}
	// (6000,node0) and (6000,node1) are ft+mg collisions... node0 6000
	// shared, node1 6000 ft only, node1 7000 mg only.
	if s.Collisions != 1 || s.Exclusive != 2 {
		t.Errorf("Collisions=%d Exclusive=%d", s.Collisions, s.Exclusive)
	}
	if s.Labels != 2 || s.Depth != 2 {
		t.Errorf("Labels=%d Depth=%d", s.Labels, s.Depth)
	}
}

func TestAddIdempotent(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	fp := Fingerprint{Metric: "m", Node: 0, Window: "[60:120]", Key: "6000"}
	l := apps.Label{App: "ft", Input: apps.InputX}
	d.Add(fp, l)
	d.Add(fp, l)
	if got := d.Lookup(fp); len(got) != 1 {
		t.Errorf("duplicate Add should not duplicate labels: %v", got)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestEntriesSortedLikeTable4(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Add(Fingerprint{Metric: "m", Node: 1, Window: "[60:120]", Key: "7000"}, apps.Label{App: "b", Input: "X"})
	d.Add(Fingerprint{Metric: "m", Node: 0, Window: "[60:120]", Key: "7000"}, apps.Label{App: "b", Input: "X"})
	d.Add(Fingerprint{Metric: "m", Node: 3, Window: "[60:120]", Key: "6000"}, apps.Label{App: "a", Input: "X"})
	es := d.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries = %d", len(es))
	}
	if es[0].Key.Mean() != 6000 || es[1].Key.Node != 0 || es[2].Key.Node != 1 {
		t.Errorf("sort order wrong: %+v", es)
	}
}

func TestDumpFormat(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(1, apps.HeadlineMetric, 6012), apps.Label{App: "ft", Input: apps.InputX})
	var b strings.Builder
	if err := d.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"nr_mapped_vmstat", "[60:120]", "6000", "ft_X", "Application + Input Size"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, _ := NewDictionary(paperCfg(3))
	d.Learn(srcWith(4, apps.HeadlineMetric, 7620, 7530, 7530, 7130), apps.Label{App: "sp", Input: apps.InputX})
	d.Learn(srcWith(4, apps.HeadlineMetric, 7580, 7470, 7470, 7070), apps.Label{App: "bt", Input: apps.InputY})

	var buf strings.Builder
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("loaded %d keys, want %d", got.Len(), d.Len())
	}
	if got.Config().Depth != 3 {
		t.Errorf("loaded depth = %d", got.Config().Depth)
	}
	// Learning order must survive (tie-break semantics).
	a1, a2 := d.Apps(), got.Apps()
	if len(a1) != len(a2) || a1[0] != a2[0] || a1[1] != a2[1] {
		t.Errorf("app order: %v vs %v", a1, a2)
	}
	// Every entry must round-trip exactly.
	e1, e2 := d.Entries(), got.Entries()
	for i := range e1 {
		if e1[i].Key != e2[i].Key {
			t.Errorf("entry %d key: %v vs %v", i, e1[i].Key, e2[i].Key)
		}
		if len(e1[i].Labels) != len(e2[i].Labels) {
			t.Errorf("entry %d labels differ", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := Load(strings.NewReader(`{"metrics":["m"],"windows":["bogus"],"depth":2}`)); err == nil {
		t.Error("bad window should fail to load")
	}
	if _, err := Load(strings.NewReader(`{"metrics":["m"],"windows":["[60:120]"],"depth":2,"entries":[{"metric":"m","node":0,"window":"[60:120]","key":"","labels":["a_X"]}]}`)); err == nil {
		t.Error("empty key should fail to load")
	}
	if _, err := Load(strings.NewReader(`{"metrics":["m"],"windows":["[60:120]"],"depth":2,"entries":[{"metric":"m","node":0,"window":"[60:120]","key":"6000","labels":["badlabel"]}]}`)); err == nil {
		t.Error("bad label should fail to load")
	}
}

func TestMerge(t *testing.T) {
	a, _ := NewDictionary(paperCfg(2))
	b, _ := NewDictionary(paperCfg(2))
	a.Learn(srcWith(1, apps.HeadlineMetric, 6000), apps.Label{App: "ft", Input: apps.InputX})
	b.Learn(srcWith(1, apps.HeadlineMetric, 7000), apps.Label{App: "mg", Input: apps.InputX})
	b.Learn(srcWith(1, apps.HeadlineMetric, 6000), apps.Label{App: "cg", Input: apps.InputX})
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d", a.Len())
	}
	fp := Fingerprint{Metric: apps.HeadlineMetric, Node: 0, Window: "[60:120]", Key: "6000"}
	if got := a.Lookup(fp); len(got) != 2 {
		t.Errorf("merged entry labels = %v", got)
	}
}

func TestPredictUsage(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 6100), apps.Label{App: "ft", Input: apps.InputX})
	d.Learn(srcWith(2, apps.HeadlineMetric, 7000, 7100), apps.Label{App: "mg", Input: apps.InputX})
	got := d.PredictUsage("ft")
	if len(got) != 2 {
		t.Fatalf("PredictUsage = %d entries, want 2", len(got))
	}
	for _, e := range got {
		if e.Key.Mean() >= 7000 {
			t.Errorf("ft prediction contains mg key %v", e.Key)
		}
	}
	if got := d.PredictUsage("nosuch"); len(got) != 0 {
		t.Errorf("unknown app should predict nothing, got %d", len(got))
	}
	byLabel := d.PredictUsageForLabel(apps.Label{App: "mg", Input: apps.InputX})
	if len(byLabel) != 2 {
		t.Errorf("PredictUsageForLabel = %d", len(byLabel))
	}
}

func TestStreamMatchesOffline(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 6000), apps.Label{App: "ft", Input: apps.InputX})

	s := NewStream(d, 2)
	if s.Complete() {
		t.Fatal("fresh stream should not be complete")
	}
	// Feed 1 Hz samples for 125 seconds on both nodes; init phase has
	// wild values which must be ignored (outside the window).
	for sec := 0; sec <= 125; sec++ {
		v := 6000.0
		if sec < 60 {
			v = 12000
		}
		for node := 0; node < 2; node++ {
			s.Feed(apps.HeadlineMetric, node, time.Duration(sec)*time.Second, v)
		}
		// Unconfigured metrics and out-of-range nodes are ignored.
		s.Feed("other_metric", 0, time.Duration(sec)*time.Second, 1)
		s.Feed(apps.HeadlineMetric, 7, time.Duration(sec)*time.Second, 1)
	}
	if !s.Complete() {
		t.Fatal("stream should be complete after 125s")
	}
	res := s.Recognize()
	if res.Top() != "ft" || res.Matched != 2 {
		t.Fatalf("stream recognition = %+v", res)
	}
}

func TestStreamProvisionalAnswer(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(1, apps.HeadlineMetric, 6000), apps.Label{App: "ft", Input: apps.InputX})
	s := NewStream(d, 1)
	// Only half the window fed.
	for sec := 60; sec < 90; sec++ {
		s.Feed(apps.HeadlineMetric, 0, time.Duration(sec)*time.Second, 6000)
	}
	if s.Complete() {
		t.Error("half-fed stream should not be complete")
	}
	if res := s.Recognize(); res.Top() != "ft" {
		t.Errorf("provisional answer should already match: %+v", res)
	}
}
