package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// Dictionary is the Execution Fingerprint Dictionary: a hash table from
// fingerprints to the set of (application, input size) labels whose
// training executions produced them. Keys are unique; a key observed
// under several labels accumulates all of them — that is the collision
// case discussed in §5 of the paper (e.g. SP and BT at rounding
// depth 2).
//
// A Dictionary is not safe for concurrent mutation; concurrent Lookup
// and Recognize calls are safe once learning is done.
type Dictionary struct {
	cfg     Config
	entries map[Fingerprint]*entry
	// appOrder records the order in which application names were first
	// learned; ties during recognition resolve in this order (the
	// paper returns SP for the SP/BT tie because SP was learned
	// first).
	appOrder map[string]int
	apps     []string
}

type entry struct {
	labels []apps.Label
	seen   map[apps.Label]bool
	// counts tracks how many training executions produced this key per
	// label — the "repetition count" of §3. It feeds weighted voting
	// and Compact.
	counts map[apps.Label]int
}

// NewDictionary returns an empty dictionary with the given fingerprint
// configuration.
func NewDictionary(cfg Config) (*Dictionary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Dictionary{
		cfg:      cfg,
		entries:  make(map[Fingerprint]*entry),
		appOrder: make(map[string]int),
	}, nil
}

// Config returns the dictionary's fingerprint configuration.
func (d *Dictionary) Config() Config { return d.cfg }

// Add inserts one fingerprint/label pair. A repeated pair increments
// the pair's observation count; a fingerprint gaining a second label
// becomes a collision entry.
func (d *Dictionary) Add(fp Fingerprint, label apps.Label) {
	d.AddN(fp, label, 1)
}

// AddN inserts a fingerprint/label pair observed n times (n must be
// positive; non-positive counts are ignored).
func (d *Dictionary) AddN(fp Fingerprint, label apps.Label, n int) {
	if n <= 0 {
		return
	}
	e, ok := d.entries[fp]
	if !ok {
		e = &entry{seen: make(map[apps.Label]bool), counts: make(map[apps.Label]int)}
		d.entries[fp] = e
	}
	e.counts[label] += n
	if e.seen[label] {
		return
	}
	e.seen[label] = true
	e.labels = append(e.labels, label)
	if _, ok := d.appOrder[label.App]; !ok {
		d.appOrder[label.App] = len(d.apps)
		d.apps = append(d.apps, label.App)
	}
}

// Count reports how many training executions produced the fingerprint
// under the label.
func (d *Dictionary) Count(fp Fingerprint, label apps.Label) int {
	e, ok := d.entries[fp]
	if !ok {
		return 0
	}
	return e.counts[label]
}

// Compact removes keys whose total observation count is below min,
// pruning one-off noise fingerprints (e.g. a single interference-
// shifted run) while keeping the repeated, reliable keys. It returns
// the number of keys removed. Compact never removes the last key of a
// label, so no learned application vanishes from the dictionary.
func (d *Dictionary) Compact(min int) int {
	if min <= 1 {
		return 0
	}
	// Count keys per label so the guard below can hold.
	keysPerLabel := make(map[apps.Label]int)
	for _, e := range d.entries {
		for _, l := range e.labels {
			keysPerLabel[l]++
		}
	}
	removed := 0
	for fp, e := range d.entries {
		total := 0
		for _, c := range e.counts {
			total += c
		}
		if total >= min {
			continue
		}
		last := false
		for _, l := range e.labels {
			if keysPerLabel[l] <= 1 {
				last = true
				break
			}
		}
		if last {
			continue
		}
		for _, l := range e.labels {
			keysPerLabel[l]--
		}
		delete(d.entries, fp)
		removed++
	}
	return removed
}

// Learn extracts the fingerprints of a labelled execution and adds them
// all. This is the entire training step of the EFD — no optimization,
// no model.
func (d *Dictionary) Learn(src WindowSource, label apps.Label) {
	for _, fp := range Extract(src, d.cfg) {
		d.Add(fp, label)
	}
}

// Lookup returns the labels stored under the fingerprint, in learning
// order, or nil when the fingerprint is unknown. The returned slice is
// shared; callers must not modify it.
func (d *Dictionary) Lookup(fp Fingerprint) []apps.Label {
	e, ok := d.entries[fp]
	if !ok {
		return nil
	}
	return e.labels
}

// Len reports the number of distinct fingerprint keys.
func (d *Dictionary) Len() int { return len(d.entries) }

// Apps returns the application names known to the dictionary in
// learning order.
func (d *Dictionary) Apps() []string {
	out := make([]string, len(d.apps))
	copy(out, d.apps)
	return out
}

// Stats summarizes dictionary composition: how many keys are exclusive
// to one application versus collisions shared by several — the
// exclusiveness/pruning trade-off that rounding depth controls.
type Stats struct {
	Keys       int
	Exclusive  int // keys whose labels all share one application
	Collisions int // keys spanning two or more applications
	Labels     int // distinct labels seen
	Depth      int
}

// Stats computes composition statistics.
func (d *Dictionary) Stats() Stats {
	s := Stats{Keys: len(d.entries), Depth: d.cfg.Depth}
	labelSet := make(map[apps.Label]bool)
	for _, e := range d.entries {
		firstApp := ""
		exclusive := true
		for _, l := range e.labels {
			labelSet[l] = true
			if firstApp == "" {
				firstApp = l.App
			} else if l.App != firstApp {
				exclusive = false
			}
		}
		if exclusive {
			s.Exclusive++
		} else {
			s.Collisions++
		}
	}
	s.Labels = len(labelSet)
	return s
}

// Entry pairs a fingerprint with its labels for enumeration.
type Entry struct {
	Key    Fingerprint
	Labels []apps.Label
	// Counts holds per-label observation counts, parallel to Labels.
	Counts []int
}

// Entries returns every dictionary entry sorted the way Table 4 lists
// them: by metric, window, ascending mean, then node — so related keys
// group together. Labels inside an entry keep learning order.
func (d *Dictionary) Entries() []Entry {
	out := make([]Entry, 0, len(d.entries))
	for fp, e := range d.entries {
		labels := make([]apps.Label, len(e.labels))
		copy(labels, e.labels)
		counts := make([]int, len(e.labels))
		for i, l := range e.labels {
			counts[i] = e.counts[l]
		}
		out = append(out, Entry{Key: fp, Labels: labels, Counts: counts})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Key != b.Key {
			am, bm := a.Mean(), b.Mean()
			if am != bm {
				return am < bm
			}
			return a.Key < b.Key
		}
		return a.Node < b.Node
	})
	return out
}

// Dump renders the dictionary in the layout of Table 4.
func (d *Dictionary) Dump(w io.Writer) error {
	fmt.Fprintf(w, "%-28s %5s %10s %10s   %s\n", "Metric Name", "Node", "Interval", "Mean", "Application + Input Size")
	for _, e := range d.Entries() {
		vals := make([]string, len(e.Labels))
		for i, l := range e.Labels {
			vals[i] = l.String()
		}
		if _, err := fmt.Fprintf(w, "%-28s %5d %10s %10s   %s\n",
			e.Key.Metric, e.Key.Node, e.Key.Window,
			e.Key.Key, strings.Join(vals, ", ")); err != nil {
			return err
		}
	}
	return nil
}

// Merge adds every entry of other into d. Label order within merged
// entries follows d first, then other's additions.
func (d *Dictionary) Merge(other *Dictionary) {
	for fp, e := range other.entries {
		for _, l := range e.labels {
			d.AddN(fp, l, e.counts[l])
		}
	}
}

// jsonDict is the serialized form of a Dictionary.
type jsonDict struct {
	Metrics []string    `json:"metrics"`
	Windows []string    `json:"windows"`
	Depth   int         `json:"depth"`
	Apps    []string    `json:"apps"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Metric string   `json:"metric"`
	Node   int      `json:"node"`
	Window string   `json:"window"`
	Key    string   `json:"key"` // canonical decimal string(s), bit-exact
	Labels []string `json:"labels"`
	// Counts are per-label observation counts, parallel to Labels;
	// absent counts load as 1.
	Counts []int `json:"counts,omitempty"`
}

// Save writes the dictionary as JSON. Keys are canonical decimal
// strings, so a load reproduces bit-identical fingerprints.
func (d *Dictionary) Save(w io.Writer) error {
	jd := jsonDict{Depth: d.cfg.Depth, Apps: d.Apps()}
	jd.Metrics = append(jd.Metrics, d.cfg.Metrics...)
	for _, win := range d.cfg.Windows {
		jd.Windows = append(jd.Windows, win.String())
	}
	for _, e := range d.Entries() {
		je := jsonEntry{
			Metric: e.Key.Metric,
			Node:   e.Key.Node,
			Window: e.Key.Window,
			Key:    e.Key.Key,
		}
		for i, l := range e.Labels {
			je.Labels = append(je.Labels, l.String())
			je.Counts = append(je.Counts, e.Counts[i])
		}
		jd.Entries = append(jd.Entries, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

// Load reads a dictionary previously written by Save.
func Load(r io.Reader) (*Dictionary, error) {
	var jd jsonDict
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("core: decode dictionary: %w", err)
	}
	cfg := Config{Metrics: jd.Metrics, Depth: jd.Depth}
	for _, ws := range jd.Windows {
		w, err := telemetry.ParseWindow(ws)
		if err != nil {
			return nil, err
		}
		cfg.Windows = append(cfg.Windows, w)
	}
	d, err := NewDictionary(cfg)
	if err != nil {
		return nil, err
	}
	// Pre-register apps so learning order survives the round trip.
	for _, a := range jd.Apps {
		d.appOrder[a] = len(d.apps)
		d.apps = append(d.apps, a)
	}
	for _, je := range jd.Entries {
		fp := Fingerprint{Metric: je.Metric, Node: je.Node, Window: je.Window, Key: je.Key}
		if fp.Key == "" {
			return nil, fmt.Errorf("core: entry with empty key")
		}
		for i, ls := range je.Labels {
			l, err := apps.ParseLabel(ls)
			if err != nil {
				return nil, err
			}
			n := 1
			if i < len(je.Counts) && je.Counts[i] > 0 {
				n = je.Counts[i]
			}
			d.AddN(fp, l, n)
		}
	}
	return d, nil
}
