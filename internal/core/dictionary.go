package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// Dictionary is the Execution Fingerprint Dictionary: a hash table from
// fingerprints to the set of (application, input size) labels whose
// training executions produced them. Keys are unique; a key observed
// under several labels accumulates all of them — that is the collision
// case discussed in §5 of the paper (e.g. SP and BT at rounding
// depth 2).
//
// Internally the dictionary does not store the public 3-string
// Fingerprint form. Metric names, window encodings, application names
// and labels are interned into small integer IDs at construction and
// Add time, and entries live in per-(metric, window, node) buckets
// keyed only by the canonical mean encoding. The public Fingerprint is
// converted to and from that compact space at the API boundary (Add,
// Lookup, Count, Entries, Save/Load), which keeps the recognition hot
// path free of string formatting and per-call map allocation.
//
// Concurrency contract: a Dictionary is single-writer. Concurrent
// Lookup/Recognize/Stats/Save calls are safe with each other but not
// with any mutation (Learn, Add, Merge, Compact). Services that mix
// online learning with live recognition must wrap the dictionary in a
// SharedDictionary (see Share), which grants readers shared access and
// writers exclusive access; the recognition hot path inside a read
// section stays lock-free per entry.
type Dictionary struct {
	cfg Config

	// Interning tables for the key components. metricIDs covers both
	// configured metrics and any metric name seen through Add (e.g.
	// foreign names during Merge or Load).
	metricIDs   map[string]int32
	metricNames []string
	windowIDs   map[string]int32
	windowKeys  []string

	// The extraction plan: interned IDs of the configured metrics and
	// windows, resolved once at NewDictionary so extraction never
	// formats a window or re-interns a metric per call.
	planMetrics []int32 // per cfg.Metrics (independent keys)
	planJoint   int32   // the "+"-joined metric, -1 unless cfg.Joint
	planWindows []int32 // per cfg.Windows

	// buckets holds the entries: one inner map per (metric, window,
	// node) coordinate, keyed by the canonical mean encoding. Inner
	// lookups take the key as bytes ([]byte-to-string map access does
	// not allocate), which is what makes warmed recognition
	// allocation-free.
	buckets map[bucketKey]map[string]*entry
	size    int

	// appOrder records the order in which application names were first
	// learned; ties during recognition resolve in this order (the
	// paper returns SP for the SP/BT tie because SP was learned
	// first). apps is the same ordering as a slice, so an app ID
	// doubles as a dense vote-accumulator index.
	appOrder map[string]int
	apps     []string

	// Labels are interned like apps; labelApps maps a label ID to its
	// application's ID.
	labelIDs  map[apps.Label]int32
	labels    []apps.Label
	labelApps []int32

	// learnRawBuf and learnKeyBuf are Learn's reused extraction
	// buffers. Learn mutates the dictionary, which is single-writer by
	// contract, so dictionary-owned scratch is race-free and keeps
	// repeated learning allocation-light.
	learnRawBuf rawExec
	learnKeyBuf keySet
}

// bucketKey addresses one (metric, window, node) coordinate of the key
// space through interned IDs. It contains no strings, so bucket lookup
// never allocates.
type bucketKey struct {
	metric int32
	window int32
	node   int32
}

// entry is the value stored under one fingerprint key.
type entry struct {
	// labels lists the label IDs in learning order; counts is parallel
	// and tracks how many training executions produced this key per
	// label — the "repetition count" of §3. It feeds weighted voting
	// and Compact.
	labels []int32
	counts []int32
	// votes precomputes the per-application voting contribution of
	// this key: one element per distinct application (learning order)
	// carrying the maximum per-label count, so recognition needs no
	// per-key scratch map.
	votes []appVote
}

type appVote struct {
	app int32
	max int32
}

// NewDictionary returns an empty dictionary with the given fingerprint
// configuration.
func NewDictionary(cfg Config) (*Dictionary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dictionary{
		cfg:       cfg,
		metricIDs: make(map[string]int32),
		windowIDs: make(map[string]int32),
		buckets:   make(map[bucketKey]map[string]*entry),
		appOrder:  make(map[string]int),
		labelIDs:  make(map[apps.Label]int32),
		planJoint: -1,
	}
	d.planMetrics = make([]int32, len(cfg.Metrics))
	for i, m := range cfg.Metrics {
		d.planMetrics[i] = d.internMetric(m)
	}
	if cfg.Joint {
		d.planJoint = d.internMetric(strings.Join(cfg.Metrics, "+"))
	}
	d.planWindows = make([]int32, len(cfg.Windows))
	for i, w := range cfg.Windows {
		d.planWindows[i] = d.internWindow(w.Key())
	}
	return d, nil
}

func (d *Dictionary) internMetric(name string) int32 {
	if id, ok := d.metricIDs[name]; ok {
		return id
	}
	id := int32(len(d.metricNames))
	d.metricIDs[name] = id
	d.metricNames = append(d.metricNames, name)
	return id
}

func (d *Dictionary) internWindow(key string) int32 {
	if id, ok := d.windowIDs[key]; ok {
		return id
	}
	id := int32(len(d.windowKeys))
	d.windowIDs[key] = id
	d.windowKeys = append(d.windowKeys, key)
	return id
}

func (d *Dictionary) internApp(app string) int32 {
	if i, ok := d.appOrder[app]; ok {
		return int32(i)
	}
	i := len(d.apps)
	d.appOrder[app] = i
	d.apps = append(d.apps, app)
	return int32(i)
}

func (d *Dictionary) internLabel(l apps.Label) int32 {
	if id, ok := d.labelIDs[l]; ok {
		return id
	}
	id := int32(len(d.labels))
	d.labelIDs[l] = id
	d.labels = append(d.labels, l)
	d.labelApps = append(d.labelApps, d.internApp(l.App))
	return id
}

// Config returns the dictionary's fingerprint configuration.
func (d *Dictionary) Config() Config { return d.cfg }

// Add inserts one fingerprint/label pair. A repeated pair increments
// the pair's observation count; a fingerprint gaining a second label
// becomes a collision entry.
func (d *Dictionary) Add(fp Fingerprint, label apps.Label) {
	d.AddN(fp, label, 1)
}

// AddN inserts a fingerprint/label pair observed n times (n must be
// positive; non-positive counts are ignored).
func (d *Dictionary) AddN(fp Fingerprint, label apps.Label, n int) {
	if n <= 0 {
		return
	}
	bk := bucketKey{
		metric: d.internMetric(fp.Metric),
		window: d.internWindow(fp.Window),
		node:   int32(fp.Node),
	}
	b := d.buckets[bk]
	if b == nil {
		b = make(map[string]*entry)
		d.buckets[bk] = b
	}
	e := b[fp.Key]
	if e == nil {
		e = &entry{}
		b[fp.Key] = e
		d.size++
	}
	d.bump(e, d.internLabel(label), int32(n))
}

// addKeyBytes is the allocation-aware insertion used by the extraction
// paths: the key arrives as bytes in a reused buffer and is only cloned
// into a string when the entry does not exist yet.
func (d *Dictionary) addKeyBytes(bk bucketKey, key []byte, label apps.Label, n int32) {
	b := d.buckets[bk]
	if b == nil {
		b = make(map[string]*entry)
		d.buckets[bk] = b
	}
	e := b[string(key)] // compiler-optimized: no allocation for the lookup
	if e == nil {
		e = &entry{}
		b[string(key)] = e
		d.size++
	}
	d.bump(e, d.internLabel(label), n)
}

// bump records n more observations of label ID lid on entry e,
// maintaining the per-application vote precompute.
func (d *Dictionary) bump(e *entry, lid, n int32) {
	count := n
	found := false
	for i, l := range e.labels {
		if l == lid {
			e.counts[i] += n
			count = e.counts[i]
			found = true
			break
		}
	}
	if !found {
		e.labels = append(e.labels, lid)
		e.counts = append(e.counts, n)
	}
	app := d.labelApps[lid]
	for i := range e.votes {
		if e.votes[i].app == app {
			if count > e.votes[i].max {
				e.votes[i].max = count
			}
			return
		}
	}
	e.votes = append(e.votes, appVote{app: app, max: count})
}

// entryFor resolves the public fingerprint form to its entry, or nil.
func (d *Dictionary) entryFor(fp Fingerprint) *entry {
	mid, ok := d.metricIDs[fp.Metric]
	if !ok {
		return nil
	}
	wid, ok := d.windowIDs[fp.Window]
	if !ok {
		return nil
	}
	return d.buckets[bucketKey{metric: mid, window: wid, node: int32(fp.Node)}][fp.Key]
}

// Count reports how many training executions produced the fingerprint
// under the label.
func (d *Dictionary) Count(fp Fingerprint, label apps.Label) int {
	e := d.entryFor(fp)
	if e == nil {
		return 0
	}
	lid, ok := d.labelIDs[label]
	if !ok {
		return 0
	}
	for i, l := range e.labels {
		if l == lid {
			return int(e.counts[i])
		}
	}
	return 0
}

// Compact removes keys whose total observation count is below min,
// pruning one-off noise fingerprints (e.g. a single interference-
// shifted run) while keeping the repeated, reliable keys. It returns
// the number of keys removed. Compact never removes the last key of a
// label, so no learned application vanishes from the dictionary.
func (d *Dictionary) Compact(min int) int {
	if min <= 1 {
		return 0
	}
	// Count keys per label so the guard below can hold.
	keysPerLabel := make([]int, len(d.labels))
	for _, b := range d.buckets {
		for _, e := range b {
			for _, lid := range e.labels {
				keysPerLabel[lid]++
			}
		}
	}
	removed := 0
	for _, b := range d.buckets {
		for key, e := range b {
			total := int32(0)
			for _, c := range e.counts {
				total += c
			}
			if int(total) >= min {
				continue
			}
			last := false
			for _, lid := range e.labels {
				if keysPerLabel[lid] <= 1 {
					last = true
					break
				}
			}
			if last {
				continue
			}
			for _, lid := range e.labels {
				keysPerLabel[lid]--
			}
			delete(b, key)
			d.size--
			removed++
		}
	}
	return removed
}

// Learn extracts the fingerprints of a labelled execution and adds them
// all. This is the entire training step of the EFD — no optimization,
// no model. Keys already present only have counts bumped; new keys
// clone their canonical encoding out of the extraction buffer.
func (d *Dictionary) Learn(src WindowSource, label apps.Label) {
	extractRawInto(&d.learnRawBuf, src, d.cfg.Metrics, d.cfg.Windows, d.cfg.Joint)
	d.learnRaw(d.learnRawBuf, label, &d.learnKeyBuf)
}

// keySet is a reusable extraction buffer: the canonical key bytes of
// every fingerprint of one execution, plus their bucket coordinates.
// keysFromRaw fills it from a rawExec walk.
type keySet struct {
	buf  []byte
	refs []keyRef
}

type keyRef struct {
	bk       bucketKey
	off, end int32
}

// materializeLabels converts an entry's interned labels to the public
// form.
func (d *Dictionary) materializeLabels(e *entry) []apps.Label {
	out := make([]apps.Label, len(e.labels))
	for i, lid := range e.labels {
		out[i] = d.labels[lid]
	}
	return out
}

// Lookup returns the labels stored under the fingerprint, in learning
// order, or nil when the fingerprint is unknown. The slice is freshly
// allocated and owned by the caller.
func (d *Dictionary) Lookup(fp Fingerprint) []apps.Label {
	e := d.entryFor(fp)
	if e == nil {
		return nil
	}
	return d.materializeLabels(e)
}

// Len reports the number of distinct fingerprint keys.
func (d *Dictionary) Len() int { return d.size }

// Apps returns the application names known to the dictionary in
// learning order.
func (d *Dictionary) Apps() []string {
	out := make([]string, len(d.apps))
	copy(out, d.apps)
	return out
}

// Stats summarizes dictionary composition: how many keys are exclusive
// to one application versus collisions shared by several — the
// exclusiveness/pruning trade-off that rounding depth controls.
type Stats struct {
	Keys       int
	Exclusive  int // keys whose labels all share one application
	Collisions int // keys spanning two or more applications
	Labels     int // distinct labels seen
	Depth      int
}

// Stats computes composition statistics.
func (d *Dictionary) Stats() Stats {
	s := Stats{Keys: d.size, Depth: d.cfg.Depth}
	labelSeen := make([]bool, len(d.labels))
	for _, b := range d.buckets {
		for _, e := range b {
			for _, lid := range e.labels {
				labelSeen[lid] = true
			}
			if len(e.votes) <= 1 {
				s.Exclusive++
			} else {
				s.Collisions++
			}
		}
	}
	for _, seen := range labelSeen {
		if seen {
			s.Labels++
		}
	}
	return s
}

// Entry pairs a fingerprint with its labels for enumeration.
type Entry struct {
	Key    Fingerprint
	Labels []apps.Label
	// Counts holds per-label observation counts, parallel to Labels.
	Counts []int
}

// Entries returns every dictionary entry sorted the way Table 4 lists
// them: by metric, window, ascending mean, then node — so related keys
// group together. Labels inside an entry keep learning order.
func (d *Dictionary) Entries() []Entry {
	type sortEntry struct {
		e Entry
		// mean caches Fingerprint.Mean() so the comparator does not
		// re-parse the key string O(n log n) times.
		mean float64
	}
	rows := make([]sortEntry, 0, d.size)
	for bk, b := range d.buckets {
		for key, e := range b {
			fp := Fingerprint{
				Metric: d.metricNames[bk.metric],
				Node:   int(bk.node),
				Window: d.windowKeys[bk.window],
				Key:    key,
			}
			counts := make([]int, len(e.counts))
			for i, c := range e.counts {
				counts[i] = int(c)
			}
			rows = append(rows, sortEntry{
				e:    Entry{Key: fp, Labels: d.materializeLabels(e), Counts: counts},
				mean: fp.Mean(),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].e.Key, rows[j].e.Key
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Key != b.Key {
			am, bm := rows[i].mean, rows[j].mean
			if am != bm {
				return am < bm
			}
			return a.Key < b.Key
		}
		return a.Node < b.Node
	})
	out := make([]Entry, len(rows))
	for i, r := range rows {
		out[i] = r.e
	}
	return out
}

// Dump renders the dictionary in the layout of Table 4.
func (d *Dictionary) Dump(w io.Writer) error {
	fmt.Fprintf(w, "%-28s %5s %10s %10s   %s\n", "Metric Name", "Node", "Interval", "Mean", "Application + Input Size")
	for _, e := range d.Entries() {
		vals := make([]string, len(e.Labels))
		for i, l := range e.Labels {
			vals[i] = l.String()
		}
		if _, err := fmt.Fprintf(w, "%-28s %5d %10s %10s   %s\n",
			e.Key.Metric, e.Key.Node, e.Key.Window,
			e.Key.Key, strings.Join(vals, ", ")); err != nil {
			return err
		}
	}
	return nil
}

// Merge adds every entry of other into d. Entries arrive in other's
// Entries() order (deterministic); label order within merged entries
// follows d first, then other's additions.
func (d *Dictionary) Merge(other *Dictionary) {
	for _, e := range other.Entries() {
		for i, l := range e.Labels {
			d.AddN(e.Key, l, e.Counts[i])
		}
	}
}

// jsonDict is the serialized form of a Dictionary.
type jsonDict struct {
	Metrics []string    `json:"metrics"`
	Windows []string    `json:"windows"`
	Depth   int         `json:"depth"`
	Joint   bool        `json:"joint,omitempty"`
	Apps    []string    `json:"apps"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Metric string   `json:"metric"`
	Node   int      `json:"node"`
	Window string   `json:"window"`
	Key    string   `json:"key"` // canonical decimal string(s), bit-exact
	Labels []string `json:"labels"`
	// Counts are per-label observation counts, parallel to Labels;
	// absent counts load as 1.
	Counts []int `json:"counts,omitempty"`
}

// Save writes the dictionary as JSON. Keys are canonical decimal
// strings, so a load reproduces bit-identical fingerprints.
func (d *Dictionary) Save(w io.Writer) error {
	jd := jsonDict{Depth: d.cfg.Depth, Joint: d.cfg.Joint, Apps: d.Apps()}
	jd.Metrics = append(jd.Metrics, d.cfg.Metrics...)
	for _, win := range d.cfg.Windows {
		jd.Windows = append(jd.Windows, win.Key())
	}
	for _, e := range d.Entries() {
		je := jsonEntry{
			Metric: e.Key.Metric,
			Node:   e.Key.Node,
			Window: e.Key.Window,
			Key:    e.Key.Key,
		}
		for i, l := range e.Labels {
			je.Labels = append(je.Labels, l.String())
			je.Counts = append(je.Counts, e.Counts[i])
		}
		jd.Entries = append(jd.Entries, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

// Load reads a dictionary previously written by Save, including the
// joint-mode flag, so a combinatorial-fingerprint dictionary keeps
// producing composite keys after a reload.
func Load(r io.Reader) (*Dictionary, error) {
	var jd jsonDict
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("core: decode dictionary: %w", err)
	}
	cfg := Config{Metrics: jd.Metrics, Depth: jd.Depth, Joint: jd.Joint}
	for _, ws := range jd.Windows {
		w, err := telemetry.ParseWindow(ws)
		if err != nil {
			return nil, err
		}
		cfg.Windows = append(cfg.Windows, w)
	}
	d, err := NewDictionary(cfg)
	if err != nil {
		return nil, err
	}
	// Pre-register apps so learning order survives the round trip.
	for _, a := range jd.Apps {
		d.internApp(a)
	}
	for _, je := range jd.Entries {
		fp := Fingerprint{Metric: je.Metric, Node: je.Node, Window: je.Window, Key: je.Key}
		if fp.Key == "" {
			return nil, fmt.Errorf("core: entry with empty key")
		}
		for i, ls := range je.Labels {
			l, err := apps.ParseLabel(ls)
			if err != nil {
				return nil, err
			}
			n := 1
			if i < len(je.Counts) && je.Counts[i] > 0 {
				n = je.Counts[i]
			}
			d.AddN(fp, l, n)
		}
	}
	return d, nil
}
