// Package core implements the paper's contribution: the Execution
// Fingerprint Dictionary (EFD).
//
// An execution fingerprint is the rounded mean of one system metric on
// one node over one time interval of an execution — e.g.
// [nr_mapped_vmstat, 0, [60:120], 6000.0]. The dictionary stores
// fingerprints as keys mapped to the (application, input size) labels
// that produced them. Recognition looks up the fingerprints of an
// unlabelled execution and returns the most-matched application name,
// Shazam-style: no distance computations, no model training — a hash
// lookup.
//
// Beyond the paper's headline mechanism, the package implements the
// paper's §6 future-work direction of combinatorial fingerprints: in
// Joint mode, the rounded means of several metrics merge into a single
// composite key per (node, window), trading noise robustness for
// exclusiveness.
//
// # Interned keys and the public Fingerprint boundary
//
// The Fingerprint struct — three strings and a node index — is the
// public and serialized form of a key, but not the stored one. Inside a
// Dictionary, metric names, window encodings, applications and labels
// are interned into small integer IDs, entries live in
// per-(metric, window, node) buckets keyed by the canonical mean
// encoding alone, and each entry precomputes its per-application voting
// contribution. Conversion between the two forms happens only at the
// API boundary (Add, Lookup, Count, Entries, Save/Load).
//
// That split is what makes the recognition hot path allocation-free:
// a Recognizer extracts key bytes into a reused buffer, looks them up
// without string construction, and tallies votes in dense accumulators
// indexed by interned app ID. On a warmed dictionary,
// Recognizer.Recognize performs zero allocations per execution;
// Dictionary.Recognize is the convenience form that allocates a fresh
// scratch so its Result is independently owned. Training (Fit) runs the
// depth×fold cross-validation grid on a bounded worker pool with
// deterministic assembly, and extracts raw window means once per
// execution, re-rounding per candidate depth.
package core

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Fingerprint is the dictionary key: metric name, node ID, time
// interval, and the canonical encoding of the rounded window mean(s).
// The paper's example is [nr_mapped_vmstat, 0, [60:120], 6000.0].
//
// For joint (combinatorial) fingerprints, Metric is the "+"-joined
// metric list and Key the "|"-joined rounded means, in metric order.
type Fingerprint struct {
	// Metric is the system metric name, e.g. "nr_mapped_vmstat", or a
	// "+"-joined list for joint fingerprints.
	Metric string
	// Node is the node's index within the execution.
	Node int
	// Window is the interval in the paper's "[60:120]" notation.
	Window string
	// Key is the canonical shortest-decimal encoding of the rounded
	// mean (single metric) or of the "|"-joined rounded means (joint).
	// Two raw means produce the same Key exactly when they round to
	// the same value, so Key equality is fingerprint equality.
	Key string
}

// String renders the fingerprint in the paper's bracketed notation.
func (f Fingerprint) String() string {
	return fmt.Sprintf("[%s, %d, %s, %s]", f.Metric, f.Node, f.Window, f.Key)
}

// Mean returns the rounded mean encoded in the key. For joint
// fingerprints it returns the first component. It returns 0 for
// malformed keys (which Extract never produces).
func (f Fingerprint) Mean() float64 {
	s := f.Key
	if i := strings.IndexByte(s, '|'); i >= 0 {
		s = s[:i]
	}
	v, err := stats.ParseKey(s)
	if err != nil {
		return 0
	}
	return v
}

// NewFingerprint builds a single-metric fingerprint from a raw
// (unrounded) mean by applying the given rounding depth.
func NewFingerprint(metric string, node int, w telemetry.Window, rawMean float64, depth int) Fingerprint {
	return Fingerprint{
		Metric: metric,
		Node:   node,
		Window: w.String(),
		Key:    stats.FormatKey(stats.RoundDepth(rawMean, depth)),
	}
}

// Config selects which fingerprints are constructed from an execution.
// The paper's headline configuration is a single metric
// (nr_mapped_vmstat) and the single window [60:120].
type Config struct {
	// Metrics are the system metrics to fingerprint.
	Metrics []string
	// Windows are the time intervals to fingerprint.
	Windows []telemetry.Window
	// Depth is the rounding depth applied to window means.
	Depth int
	// Joint combines all metrics into one composite key per
	// (node, window) — the combinatorial fingerprints of §6 — instead
	// of one independent key per metric. Joint keys are more exclusive
	// (better unknown rejection) but require every component metric to
	// repeat simultaneously.
	Joint bool
}

// DefaultConfig returns the paper's headline configuration at the given
// rounding depth.
func DefaultConfig(depth int) Config {
	return Config{
		Metrics: []string{apps.HeadlineMetric},
		Windows: []telemetry.Window{telemetry.PaperWindow},
		Depth:   depth,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if len(c.Metrics) == 0 {
		return fmt.Errorf("core: config needs at least one metric")
	}
	if len(c.Windows) == 0 {
		return fmt.Errorf("core: config needs at least one window")
	}
	for _, w := range c.Windows {
		if !w.Valid() {
			return fmt.Errorf("core: invalid window %v", w)
		}
	}
	if c.Depth < 1 {
		return fmt.Errorf("core: rounding depth must be >= 1, got %d", c.Depth)
	}
	return nil
}

// WindowSource yields window means for fingerprint construction. Both
// dataset executions (offline) and streaming accumulators (online)
// implement it.
type WindowSource interface {
	// WindowMean returns the raw mean of the metric on the node over
	// the window, and whether the value is available.
	WindowMean(metric string, node int, w telemetry.Window) (float64, bool)
	// NodeCount reports the number of nodes of the execution.
	NodeCount() int
}

// Extract builds all fingerprints of the source under the
// configuration. Nodes whose telemetry does not cover a window simply
// contribute no fingerprint for it; in Joint mode a missing component
// suppresses the whole composite key.
func Extract(src WindowSource, cfg Config) []Fingerprint {
	return ExtractInto(nil, src, cfg)
}

// ExtractInto appends all fingerprints of the source under the
// configuration to dst and returns the extended slice, reusing dst's
// capacity. Streaming and batch callers that recognize many executions
// can pass the previous call's slice (re-sliced to length zero) to
// avoid re-allocating the fingerprint array; window key strings are
// computed once per call rather than once per (metric, node) probe.
//
// Note that recognition itself does not go through Fingerprint
// construction at all — Dictionary.Recognize and Recognizer extract
// interned keys into byte buffers instead. ExtractInto is the public
// boundary for callers that want the fingerprints themselves; it
// renders the same extraction walk (extractRawInto) the interned paths
// consume, so order and keys never diverge between the two forms.
func ExtractInto(dst []Fingerprint, src WindowSource, cfg Config) []Fingerprint {
	winKeys := make([]string, len(cfg.Windows))
	for i, w := range cfg.Windows {
		winKeys[i] = w.Key()
	}
	var re rawExec
	extractRawInto(&re, src, cfg.Metrics, cfg.Windows, cfg.Joint)
	jointMetric := ""
	if cfg.Joint {
		jointMetric = strings.Join(cfg.Metrics, "+")
	}
	var buf []byte
	for _, fp := range re.fps {
		buf = buf[:0]
		for c := int32(0); c < fp.n; c++ {
			if c > 0 {
				buf = append(buf, '|')
			}
			buf = stats.AppendRoundedKey(buf, re.means[fp.off+c], cfg.Depth)
		}
		metric := jointMetric
		if !cfg.Joint {
			metric = cfg.Metrics[fp.metric]
		}
		dst = append(dst, Fingerprint{
			Metric: metric,
			Node:   int(fp.node),
			Window: winKeys[fp.window],
			Key:    string(buf),
		})
	}
	return dst
}
