package core

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Source adapts a dataset execution to the WindowSource interface.
func Source(e *dataset.Execution) WindowSource { return execSource{e} }

type execSource struct{ e *dataset.Execution }

func (s execSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	return s.e.WindowMean(metric, node, w)
}

func (s execSource) NodeCount() int { return s.e.NumNodes }

// FitConfig controls dictionary training. Rounding depth is the EFD's
// only tunable parameter; Fit selects it by cross-validation within the
// training set, exactly as the paper prescribes.
type FitConfig struct {
	// Metrics and Windows select the fingerprints (see Config).
	Metrics []string
	Windows []telemetry.Window
	// Joint combines all metrics into composite keys (see Config).
	Joint bool
	// Depths are the candidate rounding depths; nil tries 1 through 6.
	Depths []int
	// InnerFolds is the fold count of the internal cross-validation
	// (default 5, reduced automatically when classes are small).
	InnerFolds int
	// Seed drives the internal fold shuffling.
	Seed int64
	// Workers bounds the worker pool of the depth×fold
	// cross-validation grid: 0 means GOMAXPROCS, 1 runs sequentially.
	// The selected depth, the report, and the resulting dictionary are
	// byte-identical at every worker count — parallelism only changes
	// wall-clock time.
	Workers int
}

// DefaultFitConfig returns the paper's headline setting: the single
// metric nr_mapped_vmstat over [60:120], depths 1–6, 5 inner folds.
func DefaultFitConfig() FitConfig {
	base := DefaultConfig(1)
	return FitConfig{Metrics: base.Metrics, Windows: base.Windows, InnerFolds: 5, Seed: 1}
}

// FitReport describes how the rounding depth was chosen.
type FitReport struct {
	// BestDepth is the selected rounding depth.
	BestDepth int
	// DepthScores maps each candidate depth to its cross-validated
	// macro F1 on the training set.
	DepthScores map[int]float64
	// Folds is the inner fold count actually used (0 when the
	// training set was too small for cross-validation and the median
	// candidate depth was used instead).
	Folds int
}

// rawFP locates one fingerprint's unrounded mean component(s) inside a
// rawExec: the raw means are extracted from the dataset once and
// re-rounded per candidate depth, instead of re-walking the dataset for
// every depth of the cross-validation grid.
type rawFP struct {
	metric int32 // index into cfg.Metrics (unused for joint keys)
	node   int32
	window int32 // index into cfg.Windows
	off    int32 // offset into rawExec.means
	n      int32 // component count (1 unless joint)
}

// rawExec is the depth-independent extraction of one execution.
type rawExec struct {
	fps   []rawFP
	means []float64
}

// extractRaw walks the source once in Extract order and records every
// available raw window mean.
func extractRaw(src WindowSource, metrics []string, windows []telemetry.Window, joint bool) rawExec {
	var re rawExec
	extractRawInto(&re, src, metrics, windows, joint)
	return re
}

// extractRawInto is extractRaw with reused buffers. It is the single
// extraction walk of the package: ExtractInto (public Fingerprint
// form), Learn, the Recognizer, and the Fit grid all consume its
// output, so iteration order — and therefore learning/tie-break order
// — cannot drift between paths.
func extractRawInto(re *rawExec, src WindowSource, metrics []string, windows []telemetry.Window, joint bool) {
	re.fps = re.fps[:0]
	re.means = re.means[:0]
	nodes := src.NodeCount()
	if joint {
		for node := 0; node < nodes; node++ {
			for wi, w := range windows {
				off := len(re.means)
				ok := true
				for _, metric := range metrics {
					mean, have := src.WindowMean(metric, node, w)
					if !have {
						ok = false
						break
					}
					re.means = append(re.means, mean)
				}
				if !ok {
					re.means = re.means[:off]
					continue
				}
				re.fps = append(re.fps, rawFP{
					node: int32(node), window: int32(wi),
					off: int32(off), n: int32(len(metrics)),
				})
			}
		}
		return
	}
	for mi, metric := range metrics {
		for node := 0; node < nodes; node++ {
			for wi, w := range windows {
				mean, have := src.WindowMean(metric, node, w)
				if !have {
					continue
				}
				re.fps = append(re.fps, rawFP{
					metric: int32(mi), node: int32(node), window: int32(wi),
					off: int32(len(re.means)), n: 1,
				})
				re.means = append(re.means, mean)
			}
		}
	}
}

// keysFromRaw renders the raw means of re into canonical key bytes at
// the dictionary's rounding depth, producing exactly the keys
// extractKeys would have produced from the original source.
func (d *Dictionary) keysFromRaw(ks *keySet, re rawExec) {
	ks.buf = ks.buf[:0]
	ks.refs = ks.refs[:0]
	depth := d.cfg.Depth
	for _, fp := range re.fps {
		start := len(ks.buf)
		for c := int32(0); c < fp.n; c++ {
			if c > 0 {
				ks.buf = append(ks.buf, '|')
			}
			ks.buf = stats.AppendRoundedKey(ks.buf, re.means[fp.off+c], depth)
		}
		metric := d.planJoint
		if !d.cfg.Joint {
			metric = d.planMetrics[fp.metric]
		}
		ks.refs = append(ks.refs, keyRef{
			bk:  bucketKey{metric: metric, window: d.planWindows[fp.window], node: fp.node},
			off: int32(start), end: int32(len(ks.buf)),
		})
	}
}

// learnRaw inserts the raw extraction of one labelled execution,
// re-rounded at the dictionary's depth, through the reused key buffer.
func (d *Dictionary) learnRaw(re rawExec, label apps.Label, ks *keySet) {
	d.keysFromRaw(ks, re)
	for _, ref := range ks.refs {
		d.addKeyBytes(ref.bk, ks.buf[ref.off:ref.end], label, 1)
	}
}

// recognizeRaw recognizes a raw extraction at the dictionary's depth.
func (r *Recognizer) recognizeRaw(re rawExec) Result {
	r.d.keysFromRaw(&r.ks, re)
	return r.vote(false)
}

// Fit learns a dictionary from the training set, selecting the rounding
// depth by stratified cross-validation within the training set, then
// building the final dictionary at the chosen depth over all training
// executions.
//
// The depth×fold grid runs on a bounded worker pool (FitConfig.Workers)
// and each execution's raw window means are extracted once and
// re-rounded per candidate depth. Assembly is deterministic: the
// report, scores, and dictionary are byte-identical to a sequential
// run.
func Fit(train *dataset.Dataset, cfg FitConfig) (*Dictionary, FitReport, error) {
	if train.Len() == 0 {
		return nil, FitReport{}, fmt.Errorf("core: empty training set")
	}
	depths := cfg.Depths
	if depths == nil {
		depths = []int{1, 2, 3, 4, 5, 6}
	}
	folds := cfg.InnerFolds
	if folds <= 0 {
		folds = 5
	}
	// Clamp the fold count to the smallest class size so stratified
	// folding stays possible on small training sets.
	minClass := train.Len()
	counts := make(map[string]int)
	for _, e := range train.Executions {
		counts[e.Label.String()]++
	}
	for _, c := range counts {
		if c < minClass {
			minClass = c
		}
	}
	if folds > minClass {
		folds = minClass
	}

	report := FitReport{DepthScores: make(map[int]float64), Folds: folds}
	if folds < 2 {
		// Too small to cross-validate: fall back to the median
		// candidate depth.
		report.Folds = 0
		report.BestDepth = depths[len(depths)/2]
	} else {
		kf, err := train.KFold(folds, cfg.Seed)
		if err != nil {
			return nil, FitReport{}, err
		}
		// Validate the fingerprint configuration once, up front, so
		// grid workers cannot race on reporting the same error.
		if err := (Config{Metrics: cfg.Metrics, Windows: cfg.Windows, Depth: depths[0], Joint: cfg.Joint}).Validate(); err != nil {
			return nil, FitReport{}, err
		}
		// Extract each execution's raw means exactly once.
		raws := make([]rawExec, train.Len())
		par.For(train.Len(), cfg.Workers, func(i int) {
			raws[i] = extractRaw(Source(train.Executions[i]), cfg.Metrics, cfg.Windows, cfg.Joint)
		})
		// Per-fold training order: ascending execution ID, matching
		// build(), so per-fold dictionaries are identical to the ones
		// the sequential path constructed.
		trainOrder := make([][]int, len(kf))
		for fi, fold := range kf {
			idx := append([]int(nil), fold.Train...)
			sort.Slice(idx, func(a, b int) bool {
				return train.Executions[idx[a]].ID < train.Executions[idx[b]].ID
			})
			trainOrder[fi] = idx
		}
		// The grid: one task per (depth, fold) cell, results written
		// into task-indexed slots and assembled in depth-major order
		// below, so scores never depend on scheduling.
		nf := len(kf)
		cells := make([][]eval.Pair, len(depths)*nf)
		errs := make([]error, len(cells))
		par.For(len(cells), cfg.Workers, func(t int) {
			di, fi := t/nf, t%nf
			d, err := NewDictionary(Config{Metrics: cfg.Metrics, Windows: cfg.Windows, Depth: depths[di], Joint: cfg.Joint})
			if err != nil {
				errs[t] = err
				return
			}
			var ks keySet
			for _, i := range trainOrder[fi] {
				d.learnRaw(raws[i], train.Executions[i].Label, &ks)
			}
			rec := d.NewRecognizer()
			pairs := make([]eval.Pair, len(kf[fi].Test))
			for pi, i := range kf[fi].Test {
				pairs[pi] = eval.Pair{
					Truth: train.Executions[i].Label.App,
					Pred:  rec.recognizeRaw(raws[i]).Top(),
				}
			}
			cells[t] = pairs
		})
		for _, err := range errs {
			if err != nil {
				return nil, FitReport{}, err
			}
		}
		bestScore := -1.0
		var pooled []eval.Pair
		for di, depth := range depths {
			pooled = pooled[:0]
			for fi := 0; fi < nf; fi++ {
				pooled = append(pooled, cells[di*nf+fi]...)
			}
			score := eval.F1Macro(pooled)
			report.DepthScores[depth] = score
			// Strict improvement keeps the tie-break at the smaller
			// (more pruned, more general) depth.
			if score > bestScore {
				bestScore = score
				report.BestDepth = depth
			}
		}
	}

	d, err := build(train, cfg, report.BestDepth)
	if err != nil {
		return nil, FitReport{}, err
	}
	return d, report, nil
}

// build constructs a dictionary over the whole dataset at a fixed
// depth, learning executions in a deterministic order.
func build(ds *dataset.Dataset, cfg FitConfig, depth int) (*Dictionary, error) {
	d, err := NewDictionary(Config{Metrics: cfg.Metrics, Windows: cfg.Windows, Depth: depth, Joint: cfg.Joint})
	if err != nil {
		return nil, err
	}
	execs := make([]*dataset.Execution, len(ds.Executions))
	copy(execs, ds.Executions)
	sort.Slice(execs, func(i, j int) bool { return execs[i].ID < execs[j].ID })
	for _, e := range execs {
		d.Learn(Source(e), e.Label)
	}
	return d, nil
}

// Build constructs a dictionary over the dataset at a fixed rounding
// depth without any tuning, for callers that already know the depth
// (e.g. the Table 4 example uses depth 2).
func Build(ds *dataset.Dataset, cfg Config) (*Dictionary, error) {
	return build(ds, FitConfig{Metrics: cfg.Metrics, Windows: cfg.Windows, Joint: cfg.Joint}, cfg.Depth)
}

// Classify recognizes every execution of the dataset and pairs the
// predicted application with the ground-truth application name. The
// correctness criterion follows the paper: only the application name is
// compared, so returning ft for an ft execution with a different input
// size is correct.
//
// Executions are evaluated concurrently in contiguous chunks (one
// reused Recognizer per chunk) on up to GOMAXPROCS goroutines; the
// returned pair order is the dataset order regardless of scheduling.
// Use ClassifyWorkers to bound (or serialize) the pool.
func Classify(d *Dictionary, ds *dataset.Dataset) []eval.Pair {
	return ClassifyWorkers(d, ds, 0)
}

// ClassifyWorkers is Classify with an explicit worker bound: 0 means
// GOMAXPROCS, 1 runs single-threaded (profiling, or embedding inside
// an already-parallel caller). The pair order is identical at every
// worker count.
func ClassifyWorkers(d *Dictionary, ds *dataset.Dataset, workers int) []eval.Pair {
	pairs := make([]eval.Pair, ds.Len())
	par.Chunks(ds.Len(), workers, 16, func(lo, hi int) {
		rec := d.NewRecognizer()
		for i := lo; i < hi; i++ {
			e := ds.Executions[i]
			pairs[i] = eval.Pair{Truth: e.Label.App, Pred: rec.Recognize(Source(e)).Top()}
		}
	})
	return pairs
}
