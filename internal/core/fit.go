package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/telemetry"
)

// Source adapts a dataset execution to the WindowSource interface.
func Source(e *dataset.Execution) WindowSource { return execSource{e} }

type execSource struct{ e *dataset.Execution }

func (s execSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	return s.e.WindowMean(metric, node, w)
}

func (s execSource) NodeCount() int { return s.e.NumNodes }

// FitConfig controls dictionary training. Rounding depth is the EFD's
// only tunable parameter; Fit selects it by cross-validation within the
// training set, exactly as the paper prescribes.
type FitConfig struct {
	// Metrics and Windows select the fingerprints (see Config).
	Metrics []string
	Windows []telemetry.Window
	// Joint combines all metrics into composite keys (see Config).
	Joint bool
	// Depths are the candidate rounding depths; nil tries 1 through 6.
	Depths []int
	// InnerFolds is the fold count of the internal cross-validation
	// (default 5, reduced automatically when classes are small).
	InnerFolds int
	// Seed drives the internal fold shuffling.
	Seed int64
}

// DefaultFitConfig returns the paper's headline setting: the single
// metric nr_mapped_vmstat over [60:120], depths 1–6, 5 inner folds.
func DefaultFitConfig() FitConfig {
	base := DefaultConfig(1)
	return FitConfig{Metrics: base.Metrics, Windows: base.Windows, InnerFolds: 5, Seed: 1}
}

// FitReport describes how the rounding depth was chosen.
type FitReport struct {
	// BestDepth is the selected rounding depth.
	BestDepth int
	// DepthScores maps each candidate depth to its cross-validated
	// macro F1 on the training set.
	DepthScores map[int]float64
	// Folds is the inner fold count actually used (0 when the
	// training set was too small for cross-validation and the median
	// candidate depth was used instead).
	Folds int
}

// Fit learns a dictionary from the training set, selecting the rounding
// depth by stratified cross-validation within the training set, then
// building the final dictionary at the chosen depth over all training
// executions.
func Fit(train *dataset.Dataset, cfg FitConfig) (*Dictionary, FitReport, error) {
	if train.Len() == 0 {
		return nil, FitReport{}, fmt.Errorf("core: empty training set")
	}
	depths := cfg.Depths
	if depths == nil {
		depths = []int{1, 2, 3, 4, 5, 6}
	}
	folds := cfg.InnerFolds
	if folds <= 0 {
		folds = 5
	}
	// Clamp the fold count to the smallest class size so stratified
	// folding stays possible on small training sets.
	minClass := train.Len()
	counts := make(map[string]int)
	for _, e := range train.Executions {
		counts[e.Label.String()]++
	}
	for _, c := range counts {
		if c < minClass {
			minClass = c
		}
	}
	if folds > minClass {
		folds = minClass
	}

	report := FitReport{DepthScores: make(map[int]float64), Folds: folds}
	if folds < 2 {
		// Too small to cross-validate: fall back to the median
		// candidate depth.
		report.Folds = 0
		report.BestDepth = depths[len(depths)/2]
	} else {
		kf, err := train.KFold(folds, cfg.Seed)
		if err != nil {
			return nil, FitReport{}, err
		}
		bestScore := -1.0
		for _, depth := range depths {
			var pairs []eval.Pair
			for _, fold := range kf {
				d, err := build(train.Subset(fold.Train), cfg, depth)
				if err != nil {
					return nil, FitReport{}, err
				}
				pairs = append(pairs, Classify(d, train.Subset(fold.Test))...)
			}
			score := eval.F1Macro(pairs)
			report.DepthScores[depth] = score
			// Strict improvement keeps the tie-break at the smaller
			// (more pruned, more general) depth.
			if score > bestScore {
				bestScore = score
				report.BestDepth = depth
			}
		}
	}

	d, err := build(train, cfg, report.BestDepth)
	if err != nil {
		return nil, FitReport{}, err
	}
	return d, report, nil
}

// build constructs a dictionary over the whole dataset at a fixed
// depth, learning executions in a deterministic order.
func build(ds *dataset.Dataset, cfg FitConfig, depth int) (*Dictionary, error) {
	d, err := NewDictionary(Config{Metrics: cfg.Metrics, Windows: cfg.Windows, Depth: depth, Joint: cfg.Joint})
	if err != nil {
		return nil, err
	}
	execs := make([]*dataset.Execution, len(ds.Executions))
	copy(execs, ds.Executions)
	sort.Slice(execs, func(i, j int) bool { return execs[i].ID < execs[j].ID })
	for _, e := range execs {
		d.Learn(Source(e), e.Label)
	}
	return d, nil
}

// Build constructs a dictionary over the dataset at a fixed rounding
// depth without any tuning, for callers that already know the depth
// (e.g. the Table 4 example uses depth 2).
func Build(ds *dataset.Dataset, cfg Config) (*Dictionary, error) {
	return build(ds, FitConfig{Metrics: cfg.Metrics, Windows: cfg.Windows, Joint: cfg.Joint}, cfg.Depth)
}

// Classify recognizes every execution of the dataset and pairs the
// predicted application with the ground-truth application name. The
// correctness criterion follows the paper: only the application name is
// compared, so returning ft for an ft execution with a different input
// size is correct.
func Classify(d *Dictionary, ds *dataset.Dataset) []eval.Pair {
	pairs := make([]eval.Pair, 0, ds.Len())
	for _, e := range ds.Executions {
		res := d.Recognize(Source(e))
		pairs = append(pairs, eval.Pair{Truth: e.Label.App, Pred: res.Top()})
	}
	return pairs
}
