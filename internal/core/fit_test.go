package core

import (
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/telemetry"
)

// smallDataset generates a fast labelled dataset shared by fit tests.
func smallDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultGenConfig()
	cfg.Apps = []string{"ft", "mg", "sp", "bt", "miniAMR"}
	cfg.Repeats = 8
	cfg.Cluster.Metrics = []string{apps.HeadlineMetric}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFitSelectsResolvingDepth(t *testing.T) {
	ds := smallDataset(t)
	d, rep, err := Fit(ds, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With SP and BT in the mix, depth 2 collides; cross-validation
	// must land on a depth that resolves them (the paper reports
	// depth 3 does).
	if rep.BestDepth < 3 {
		t.Errorf("BestDepth = %d, want >= 3 (SP/BT collide below)", rep.BestDepth)
	}
	if rep.DepthScores[rep.BestDepth] < rep.DepthScores[2] {
		t.Error("best depth should score at least as well as depth 2")
	}
	if rep.Folds < 2 {
		t.Errorf("Folds = %d", rep.Folds)
	}
	if d.Len() == 0 {
		t.Error("fitted dictionary is empty")
	}
	// Self-classification should be near perfect.
	pairs := Classify(d, ds)
	if f := eval.F1Macro(pairs); f < 0.95 {
		t.Errorf("training-set F1 = %v, want >= 0.95", f)
	}
}

func TestFitEmptyTrainingSet(t *testing.T) {
	if _, _, err := Fit(&dataset.Dataset{}, DefaultFitConfig()); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestFitTinyTrainingSetFallsBack(t *testing.T) {
	ds := smallDataset(t)
	// One execution per label: cross-validation impossible.
	seen := make(map[apps.Label]bool)
	tiny := ds.Filter(func(e *dataset.Execution) bool {
		if seen[e.Label] {
			return false
		}
		seen[e.Label] = true
		return true
	})
	d, rep, err := Fit(tiny, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Folds != 0 {
		t.Errorf("expected CV fallback, got Folds=%d", rep.Folds)
	}
	if rep.BestDepth < 1 {
		t.Errorf("fallback depth = %d", rep.BestDepth)
	}
	if d.Len() == 0 {
		t.Error("dictionary empty after fallback fit")
	}
}

func TestFitRestrictedDepths(t *testing.T) {
	ds := smallDataset(t)
	cfg := DefaultFitConfig()
	cfg.Depths = []int{2}
	_, rep, err := Fit(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestDepth != 2 {
		t.Errorf("BestDepth = %d, want 2 (only candidate)", rep.BestDepth)
	}
}

func TestBuildFixedDepth(t *testing.T) {
	ds := smallDataset(t)
	d, err := Build(ds, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().Depth != 2 {
		t.Errorf("Depth = %d", d.Config().Depth)
	}
	// At depth 2 the sp/bt keys must collide somewhere.
	if d.Stats().Collisions == 0 {
		t.Error("expected SP/BT collisions at depth 2")
	}
}

func TestClassifyTruthIsAppName(t *testing.T) {
	ds := smallDataset(t)
	d, _, err := Fit(ds, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs := Classify(d, ds)
	if len(pairs) != ds.Len() {
		t.Fatalf("pairs = %d, want %d", len(pairs), ds.Len())
	}
	for i, p := range pairs {
		if p.Truth != ds.Executions[i].Label.App {
			t.Fatalf("pair %d truth %q, want app name %q", i, p.Truth, ds.Executions[i].Label.App)
		}
	}
}

func TestSourceAdapter(t *testing.T) {
	ds := smallDataset(t)
	e := ds.Executions[0]
	src := Source(e)
	if src.NodeCount() != e.NumNodes {
		t.Errorf("NodeCount = %d", src.NodeCount())
	}
	v1, ok1 := src.WindowMean(apps.HeadlineMetric, 0, telemetry.PaperWindow)
	v2, ok2 := e.WindowMean(apps.HeadlineMetric, 0, telemetry.PaperWindow)
	if ok1 != ok2 || v1 != v2 {
		t.Error("Source adapter does not delegate")
	}
}

// Property: anything learned is recognized — an execution whose
// fingerprints were all added under label L yields L (or a tie
// containing L) when recognized immediately.
func TestLearnThenRecognizeProperty(t *testing.T) {
	f := func(rawMeans []uint16, appSel uint8) bool {
		if len(rawMeans) == 0 {
			return true
		}
		if len(rawMeans) > 8 {
			rawMeans = rawMeans[:8]
		}
		names := []string{"ft", "mg", "cg"}
		label := apps.Label{App: names[int(appSel)%3], Input: apps.InputX}
		d, err := NewDictionary(paperCfg(3))
		if err != nil {
			return false
		}
		means := make([]float64, len(rawMeans))
		for i, m := range rawMeans {
			means[i] = float64(m) + 0.5
		}
		src := srcWith(len(means), apps.HeadlineMetric, means...)
		d.Learn(src, label)
		res := d.Recognize(src)
		for _, a := range res.Apps {
			if a == label.App {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: recognition votes never exceed the number of constructed
// fingerprints, and Matched <= Total.
func TestVoteBoundsProperty(t *testing.T) {
	ds := smallDataset(t)
	d, _, err := Fit(ds, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Executions {
		res := d.Recognize(Source(e))
		if res.Matched > res.Total {
			t.Fatalf("Matched %d > Total %d", res.Matched, res.Total)
		}
		for app, v := range res.Votes() {
			if v > res.Matched {
				t.Fatalf("votes for %s (%d) exceed matched keys (%d)", app, v, res.Matched)
			}
		}
	}
}
