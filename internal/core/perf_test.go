package core

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// TestRecognizerZeroAlloc pins the headline guarantee of the interned
// hot path: on a warmed dictionary, recognizing a dataset execution
// through a reused Recognizer performs zero allocations.
func TestRecognizerZeroAlloc(t *testing.T) {
	ds := smallDataset(t)
	d, err := Build(ds, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rec := d.NewRecognizer()
	// Warm the scratch buffers and the dataset's window indexes.
	for _, e := range ds.Executions {
		if res := rec.Recognize(Source(e)); res.Total == 0 {
			t.Fatal("no fingerprints constructed")
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		e := ds.Executions[i%ds.Len()]
		i++
		if res := rec.Recognize(Source(e)); res.Total == 0 {
			t.Fatal("no fingerprints constructed")
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Recognizer.Recognize allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		e := ds.Executions[i%ds.Len()]
		i++
		if res := rec.RecognizeWeighted(Source(e)); res.Total == 0 {
			t.Fatal("no fingerprints constructed")
		}
	})
	if allocs != 0 {
		t.Errorf("warmed RecognizeWeighted allocates %.1f/op, want 0", allocs)
	}
}

// TestStreamRecognizeZeroAlloc checks the streaming poll path: once a
// stream's accumulators exist, Feed and Recognize are allocation-free.
func TestStreamRecognizeZeroAlloc(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 6000), apps.Label{App: "ft", Input: apps.InputX})
	s := NewStream(d, 2)
	for sec := 0; sec <= 125; sec++ {
		for node := 0; node < 2; node++ {
			s.Feed(apps.HeadlineMetric, node, time.Duration(sec)*time.Second, 6000)
		}
	}
	if s.Recognize().Top() != "ft" {
		t.Fatal("stream should recognize ft")
	}
	feedAllocs := testing.AllocsPerRun(500, func() {
		s.Feed(apps.HeadlineMetric, 0, 90*time.Second, 6000)
	})
	if feedAllocs != 0 {
		t.Errorf("warmed Feed allocates %.1f/op, want 0", feedAllocs)
	}
	recAllocs := testing.AllocsPerRun(200, func() {
		if s.Recognize().Top() != "ft" {
			t.Fatal("recognition flipped")
		}
	})
	if recAllocs != 0 {
		t.Errorf("warmed Stream.Recognize allocates %.1f/op, want 0", recAllocs)
	}
}

// TestFitDeterministicAcrossWorkers verifies the parallel grid promise:
// the report and the serialized dictionary are byte-identical at any
// worker count.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	ds := smallDataset(t)
	var reports []FitReport
	var saved [][]byte
	for _, workers := range []int{1, 8} {
		cfg := DefaultFitConfig()
		cfg.Workers = workers
		d, rep, err := Fit(ds, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		saved = append(saved, buf.Bytes())
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Errorf("reports differ across worker counts:\n  1: %+v\n  8: %+v", reports[0], reports[1])
	}
	if !bytes.Equal(saved[0], saved[1]) {
		t.Error("serialized dictionaries differ across worker counts")
	}
}

// TestClassifyDeterministicAcrossGOMAXPROCS verifies that the pair
// order of the chunked Classify is the dataset order regardless of
// available parallelism.
func TestClassifyDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ds := smallDataset(t)
	d, _, err := Fit(ds, DefaultFitConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	seq := Classify(d, ds)
	runtime.GOMAXPROCS(8)
	par := Classify(d, ds)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(seq, par) {
		t.Error("Classify pairs differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
	for i, p := range seq {
		if p.Truth != ds.Executions[i].Label.App {
			t.Fatalf("pair %d out of dataset order", i)
		}
	}
}

// TestFitRawPathMatchesSourcePath cross-checks the re-rounding
// optimization: a dictionary learned from cached raw means at a given
// depth equals one learned from the dataset directly.
func TestFitRawPathMatchesSourcePath(t *testing.T) {
	ds := smallDataset(t)
	for _, joint := range []bool{false, true} {
		cfg := DefaultFitConfig()
		cfg.Joint = joint
		if joint {
			cfg.Metrics = []string{apps.HeadlineMetric, apps.HeadlineMetric}
		}
		for _, depth := range []int{1, 3, 6} {
			direct, err := build(ds, cfg, depth)
			if err != nil {
				t.Fatal(err)
			}
			viaRaw, err := NewDictionary(Config{Metrics: cfg.Metrics, Windows: cfg.Windows, Depth: depth, Joint: joint})
			if err != nil {
				t.Fatal(err)
			}
			var ks keySet
			for _, e := range ds.Executions { // IDs are already ascending
				viaRaw.learnRaw(extractRaw(Source(e), cfg.Metrics, cfg.Windows, joint), e.Label, &ks)
			}
			var a, b bytes.Buffer
			if err := direct.Save(&a); err != nil {
				t.Fatal(err)
			}
			if err := viaRaw.Save(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("joint=%v depth=%d: raw-path dictionary differs from direct build", joint, depth)
			}
		}
	}
}

// TestJointSaveLoadRoundTrip covers the serialization fix: a joint-mode
// dictionary must round-trip its Joint flag, and recognition must still
// work after reload (composite keys only match when extraction stays in
// joint mode).
func TestJointSaveLoadRoundTrip(t *testing.T) {
	cfg := Config{
		Metrics: []string{apps.HeadlineMetric, "Committed_AS_meminfo"},
		Windows: []telemetry.Window{telemetry.PaperWindow},
		Depth:   2,
		Joint:   true,
	}
	d, err := NewDictionary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := mapSource{nodes: 1, means: map[string]float64{
		key(apps.HeadlineMetric, 0, telemetry.PaperWindow):    6012,
		key("Committed_AS_meminfo", 0, telemetry.PaperWindow): 91000,
	}}
	label := apps.Label{App: "ft", Input: apps.InputX}
	d.Learn(src, label)
	if d.Len() != 1 {
		t.Fatalf("joint learning produced %d keys, want 1 composite", d.Len())
	}

	var buf strings.Builder
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Config().Joint {
		t.Fatal("Joint flag lost in round trip")
	}
	res := got.Recognize(src)
	if res.Top() != "ft" || res.Matched != 1 {
		t.Errorf("reloaded joint dictionary failed recognition: %+v", res)
	}
	// The reloaded serialization must be identical, too.
	var buf2 strings.Builder
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("joint dictionary serialization not stable across a round trip")
	}
}

// TestExtractIntoReusesBuffer checks the append-style extraction API.
func TestExtractIntoReusesBuffer(t *testing.T) {
	src := srcWith(4, apps.HeadlineMetric, 6012, 6049, 5988, 6031)
	first := ExtractInto(nil, src, paperCfg(2))
	if len(first) != 4 {
		t.Fatalf("ExtractInto returned %d fingerprints, want 4", len(first))
	}
	reused := ExtractInto(first[:0], src, paperCfg(2))
	if len(reused) != 4 {
		t.Fatalf("reused ExtractInto returned %d fingerprints", len(reused))
	}
	if &first[0] != &reused[0] {
		t.Error("ExtractInto did not reuse the destination's backing array")
	}
	if !reflect.DeepEqual(Extract(src, paperCfg(2)), reused) {
		t.Error("ExtractInto and Extract disagree")
	}
}
