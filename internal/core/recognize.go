package core

import (
	"repro/internal/apps"
)

// Unknown is the class name reported when no fingerprint of an
// execution matches the dictionary — the EFD's in-built safeguard
// against unknown applications (§5).
const Unknown = "unknown"

// Result is the outcome of recognizing one execution.
//
// Per-application votes and per-label input counts are held in dense
// accumulators indexed by the dictionary's interned app/label IDs; the
// Votes and Inputs methods materialize map views on demand, and
// VotesFor/InputCount read single cells without allocating. A Result
// produced by a Recognizer borrows the recognizer's buffers and is only
// valid until that recognizer's next call; Dictionary.Recognize returns
// a Result with freshly allocated buffers.
type Result struct {
	// Apps lists the most-matched application names. One element is
	// the normal case; several indicate a tie the dictionary cannot
	// break (e.g. SP/BT at rounding depth 2). Empty means no
	// fingerprint matched.
	Apps []string
	// Matched and Total count the execution's fingerprints that hit
	// the dictionary versus all constructed fingerprints.
	Matched int
	Total   int

	votes  []int32 // dense, indexed by app ID
	inputs []int32 // dense, indexed by label ID
	d      *Dictionary
}

// Recognized reports whether any fingerprint matched.
func (r Result) Recognized() bool { return len(r.Apps) > 0 }

// Top returns the first (tie-broken) application name, or Unknown when
// nothing matched. The paper evaluates exactly this value.
func (r Result) Top() string {
	if len(r.Apps) == 0 {
		return Unknown
	}
	return r.Apps[0]
}

// VotesFor returns the vote count of one application without
// allocating.
func (r Result) VotesFor(app string) int {
	if r.d == nil {
		return 0
	}
	i, ok := r.d.appOrder[app]
	if !ok || i >= len(r.votes) {
		return 0
	}
	return int(r.votes[i])
}

// Votes materializes the per-application vote counts as a map
// (applications with zero votes are absent). Each call allocates; hot
// paths should use VotesFor.
func (r Result) Votes() map[string]int {
	out := make(map[string]int)
	if r.d == nil {
		return out
	}
	for i, v := range r.votes {
		if v != 0 {
			out[r.d.apps[i]] = int(v)
		}
	}
	return out
}

// InputCount returns the match count of one full (application, input)
// label without allocating, for input-size estimation.
func (r Result) InputCount(label apps.Label) int {
	if r.d == nil {
		return 0
	}
	lid, ok := r.d.labelIDs[label]
	if !ok || int(lid) >= len(r.inputs) {
		return 0
	}
	return int(r.inputs[lid])
}

// Inputs materializes the per-label match counts as a map (labels with
// zero matches are absent). Each call allocates; hot paths should use
// InputCount.
func (r Result) Inputs() map[apps.Label]int {
	out := make(map[apps.Label]int)
	if r.d == nil {
		return out
	}
	for lid, v := range r.inputs {
		if v != 0 {
			out[r.d.labels[lid]] = int(v)
		}
	}
	return out
}

// Confidence is the fraction of constructed fingerprints that voted for
// the top application. It is not part of the paper's mechanism but is
// useful for monitoring dashboards.
func (r Result) Confidence() float64 {
	if r.Total == 0 || len(r.Apps) == 0 {
		return 0
	}
	c := float64(r.VotesFor(r.Apps[0])) / float64(r.Total)
	if c > 1 {
		// Weighted voting can push the top vote count past the
		// fingerprint count; full confidence is the ceiling.
		c = 1
	}
	return c
}

// Recognizer performs recognitions against one dictionary through a
// reused scratch state: the extraction buffer, the dense vote/input
// accumulators, and the tie slice. After warm-up, Recognize performs
// zero allocations per call (given an allocation-free WindowSource,
// e.g. a dataset execution or a stream).
//
// A Recognizer is not safe for concurrent use; create one per
// goroutine. The Result of each call borrows the recognizer's buffers
// and is valid only until the next call.
type Recognizer struct {
	d      *Dictionary
	raw    rawExec
	ks     keySet
	votes  []int32
	inputs []int32
	apps   []string
}

// NewRecognizer returns a reusable recognizer against the dictionary.
func (d *Dictionary) NewRecognizer() *Recognizer {
	return &Recognizer{d: d}
}

// extract runs the shared extraction walk into the recognizer's reused
// buffers and renders the canonical key bytes at the dictionary's
// depth.
//
//efd:hotpath
func (r *Recognizer) extract(src WindowSource) {
	extractRawInto(&r.raw, src, r.d.cfg.Metrics, r.d.cfg.Windows, r.d.cfg.Joint)
	r.d.keysFromRaw(&r.ks, r.raw)
}

// Recognize looks up every fingerprint of the execution and returns the
// most-matched application name(s). Each matched key contributes one
// vote to every application present in its label set; the application
// with the most votes wins. Ties are returned in learning order, so the
// caller can still "consider the first application name in the array"
// as the paper does.
//
//efd:hotpath
func (r *Recognizer) Recognize(src WindowSource) Result {
	r.extract(src)
	return r.vote(false)
}

// RecognizeWeighted is a variant of Recognize in which each matched key
// contributes its per-application observation count rather than a
// single vote, so frequently repeated fingerprints outweigh one-off
// noise keys. This is an extension beyond the paper (which votes
// uniformly); the voting ablation compares the two.
//
//efd:hotpath
func (r *Recognizer) RecognizeWeighted(src WindowSource) Result {
	r.extract(src)
	return r.vote(true)
}

// grow returns s resized to n elements, all zero, reusing capacity.
//
//efd:hotpath
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// vote tallies the extracted keys in r.ks against the dictionary using
// the dense accumulators. It contains no map allocation: bucket lookup
// is by integer-coordinate struct, key lookup passes the buffered bytes
// directly, and votes accumulate per interned app ID.
//
//efd:hotpath
func (r *Recognizer) vote(weighted bool) Result {
	d := r.d
	r.votes = grow(r.votes, len(d.apps))
	r.inputs = grow(r.inputs, len(d.labels))
	res := Result{Total: len(r.ks.refs), votes: r.votes, inputs: r.inputs, d: d}
	for _, ref := range r.ks.refs {
		b := d.buckets[ref.bk]
		if b == nil {
			continue
		}
		e := b[string(r.ks.buf[ref.off:ref.end])] // no-alloc []byte key lookup
		if e == nil || len(e.labels) == 0 {
			continue
		}
		res.Matched++
		// A key may store several inputs of one application (e.g.
		// ft_X, ft_Y, ft_Z); the application still gets a single vote
		// per matched key (or its maximum label count when weighted),
		// which is what the precomputed entry.votes encode.
		if weighted {
			for i, lid := range e.labels {
				r.inputs[lid] += e.counts[i]
			}
			for _, av := range e.votes {
				r.votes[av.app] += av.max
			}
		} else {
			for _, lid := range e.labels {
				r.inputs[lid]++
			}
			for _, av := range e.votes {
				r.votes[av.app]++
			}
		}
	}
	if res.Matched == 0 {
		return res
	}
	best := int32(0)
	for _, v := range r.votes {
		if v > best {
			best = v
		}
	}
	// App IDs are assigned in learning order, so ascending-ID
	// collection yields the paper's tie-break order directly.
	r.apps = r.apps[:0]
	for i, v := range r.votes {
		if v == best {
			r.apps = append(r.apps, d.apps[i])
		}
	}
	res.Apps = r.apps
	return res
}

// Recognize looks up every fingerprint of the execution and returns the
// most-matched application name(s); see Recognizer.Recognize. This
// convenience form allocates a fresh scratch per call so the Result is
// independently owned; batch callers should hold a Recognizer.
func (d *Dictionary) Recognize(src WindowSource) Result {
	r := Recognizer{d: d}
	return r.Recognize(src)
}

// RecognizeWeighted is the count-weighted voting variant of Recognize;
// see Recognizer.RecognizeWeighted.
func (d *Dictionary) RecognizeWeighted(src WindowSource) Result {
	r := Recognizer{d: d}
	return r.RecognizeWeighted(src)
}

// PredictUsage performs the paper's "dictionary in reverse" (§6):
// given an application name, it returns the stored fingerprints of that
// application grouped by metric and window — the resource usage one
// should expect from a future execution. Entries are sorted as in
// Entries().
func (d *Dictionary) PredictUsage(app string) []Entry {
	var out []Entry
	for _, e := range d.Entries() {
		for _, l := range e.Labels {
			if l.App == app {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// PredictUsageForLabel restricts PredictUsage to one (application,
// input) pair.
func (d *Dictionary) PredictUsageForLabel(label apps.Label) []Entry {
	var out []Entry
	for _, e := range d.Entries() {
		for _, l := range e.Labels {
			if l == label {
				out = append(out, e)
				break
			}
		}
	}
	return out
}
