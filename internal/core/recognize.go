package core

import (
	"sort"

	"repro/internal/apps"
)

// Unknown is the class name reported when no fingerprint of an
// execution matches the dictionary — the EFD's in-built safeguard
// against unknown applications (§5).
const Unknown = "unknown"

// Result is the outcome of recognizing one execution.
type Result struct {
	// Apps lists the most-matched application names. One element is
	// the normal case; several indicate a tie the dictionary cannot
	// break (e.g. SP/BT at rounding depth 2). Empty means no
	// fingerprint matched.
	Apps []string
	// Votes counts dictionary matches per application name.
	Votes map[string]int
	// Inputs counts matches per full label, for input-size estimation.
	Inputs map[apps.Label]int
	// Matched and Total count the execution's fingerprints that hit
	// the dictionary versus all constructed fingerprints.
	Matched int
	Total   int
}

// Recognized reports whether any fingerprint matched.
func (r Result) Recognized() bool { return len(r.Apps) > 0 }

// Top returns the first (tie-broken) application name, or Unknown when
// nothing matched. The paper evaluates exactly this value.
func (r Result) Top() string {
	if len(r.Apps) == 0 {
		return Unknown
	}
	return r.Apps[0]
}

// Confidence is the fraction of constructed fingerprints that voted for
// the top application. It is not part of the paper's mechanism but is
// useful for monitoring dashboards.
func (r Result) Confidence() float64 {
	if r.Total == 0 || len(r.Apps) == 0 {
		return 0
	}
	c := float64(r.Votes[r.Apps[0]]) / float64(r.Total)
	if c > 1 {
		// Weighted voting can push the top vote count past the
		// fingerprint count; full confidence is the ceiling.
		c = 1
	}
	return c
}

// Recognize looks up every fingerprint of the execution and returns the
// most-matched application name(s). Each matched key contributes one
// vote to every application present in its label set; the application
// with the most votes wins. Ties are returned in learning order, so the
// caller can still "consider the first application name in the array"
// as the paper does.
func (d *Dictionary) Recognize(src WindowSource) Result {
	return d.recognize(src, false)
}

// RecognizeWeighted is a variant of Recognize in which each matched key
// contributes its per-application observation count rather than a
// single vote, so frequently repeated fingerprints outweigh one-off
// noise keys. This is an extension beyond the paper (which votes
// uniformly); the voting ablation compares the two.
func (d *Dictionary) RecognizeWeighted(src WindowSource) Result {
	return d.recognize(src, true)
}

func (d *Dictionary) recognize(src WindowSource, weighted bool) Result {
	fps := Extract(src, d.cfg)
	res := Result{
		Votes:  make(map[string]int),
		Inputs: make(map[apps.Label]int),
		Total:  len(fps),
	}
	for _, fp := range fps {
		e, ok := d.entries[fp]
		if !ok || len(e.labels) == 0 {
			continue
		}
		res.Matched++
		// A key may store several inputs of one application (e.g.
		// ft_X, ft_Y, ft_Z); the application still gets a single vote
		// per matched key (or its maximum label count when weighted).
		appWeight := make(map[string]int)
		for _, l := range e.labels {
			w := 1
			if weighted {
				w = e.counts[l]
				res.Inputs[l] += w
			} else {
				res.Inputs[l]++
			}
			if w > appWeight[l.App] {
				appWeight[l.App] = w
			}
		}
		for app, w := range appWeight {
			res.Votes[app] += w
		}
	}
	if res.Matched == 0 {
		return res
	}
	best := 0
	for _, v := range res.Votes {
		if v > best {
			best = v
		}
	}
	for app, v := range res.Votes {
		if v == best {
			res.Apps = append(res.Apps, app)
		}
	}
	sort.Slice(res.Apps, func(i, j int) bool {
		return d.appOrder[res.Apps[i]] < d.appOrder[res.Apps[j]]
	})
	return res
}

// PredictUsage performs the paper's "dictionary in reverse" (§6):
// given an application name, it returns the stored fingerprints of that
// application grouped by metric and window — the resource usage one
// should expect from a future execution. Entries are sorted as in
// Entries().
func (d *Dictionary) PredictUsage(app string) []Entry {
	var out []Entry
	for _, e := range d.Entries() {
		for _, l := range e.Labels {
			if l.App == app {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// PredictUsageForLabel restricts PredictUsage to one (application,
// input) pair.
func (d *Dictionary) PredictUsageForLabel(label apps.Label) []Entry {
	var out []Entry
	for _, e := range d.Entries() {
		for _, l := range e.Labels {
			if l == label {
				out = append(out, e)
				break
			}
		}
	}
	return out
}
