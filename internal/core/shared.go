package core

import (
	"sync"

	"repro/internal/apps"
)

// SharedDictionary is the concurrency contract for serving one
// Dictionary to many goroutines: any number of concurrent readers
// (recognition, stats, lookup, save) proceed in parallel, while
// mutation (online Learn, Add, Merge, Compact) is exclusive. It is the
// coordination point the HTTP monitoring server uses so recognition
// polls of many jobs run concurrently and an online Learn briefly
// drains them.
//
// The contract, precisely:
//
//   - Read sections may call any non-mutating Dictionary method —
//     Recognize, Lookup, Stats, Apps, Entries, Save — and may drive a
//     Recognizer or Stream bound to the dictionary. Reads take no
//     per-entry locks: inside a Read section the recognition hot path
//     is exactly the allocation-free interned lookup of the unshared
//     dictionary.
//   - Write sections get the dictionary exclusively and may call
//     anything, including Learn (which reuses dictionary-owned
//     extraction scratch — safe only because writers are exclusive).
//   - A Result borrows its Recognizer's scratch AND reads the
//     dictionary's interning tables through methods like Votes and
//     Top, so it must be consumed inside the Read section that
//     produced it; do not let a Result escape the closure.
//   - Recognizers and Streams are still single-goroutine objects; the
//     shared wrapper serializes them against writers, not against each
//     other.
//
// The zero value is not usable; wrap an existing dictionary with
// Share.
type SharedDictionary struct {
	mu sync.RWMutex
	d  *Dictionary
}

// Share wraps the dictionary in the read/write concurrency contract.
// The caller must stop using the raw pointer directly once shared.
func Share(d *Dictionary) *SharedDictionary {
	return &SharedDictionary{d: d}
}

// Read runs fn with shared (read) access: any number of Read sections
// run in parallel, and no writer runs concurrently. fn must not mutate
// the dictionary and must not retain d or a Result beyond the call.
func (s *SharedDictionary) Read(fn func(d *Dictionary)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.d)
}

// Write runs fn with exclusive access, excluding all readers and other
// writers. fn must not retain d beyond the call.
func (s *SharedDictionary) Write(fn func(d *Dictionary)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.d)
}

// Learn performs one exclusive online-learning step: it extracts the
// fingerprints of the labelled execution and adds them to the
// dictionary, excluding concurrent readers for the duration.
func (s *SharedDictionary) Learn(src WindowSource, label apps.Label) {
	s.Write(func(d *Dictionary) { d.Learn(src, label) })
}
