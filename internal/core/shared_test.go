package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// levelSource yields a flat level on the headline metric — the same
// shape the dataset's flat phases produce, so every execution of one
// level lands on one fingerprint per node.
type levelSource struct {
	nodes int
	level float64
}

func (f levelSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f levelSource) NodeCount() int { return f.nodes }

// TestSharedDictionaryConcurrentReadersAndLearn drives the read/write
// contract under the race detector: many goroutines recognize through
// their own Recognizers and Streams while a writer keeps learning new
// labels. Recognition of the pre-learned levels must stay correct
// throughout, and every learned label must be visible once the writer
// is done.
func TestSharedDictionaryConcurrentReadersAndLearn(t *testing.T) {
	d, err := NewDictionary(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(levelSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	d.Learn(levelSource{nodes: 2, level: 7000}, apps.Label{App: "mg", Input: apps.InputX})
	sd := Share(d)

	const (
		readers   = 8
		perReader = 200
		learned   = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var rec *Recognizer
			sd.Read(func(d *Dictionary) { rec = d.NewRecognizer() })
			for i := 0; i < perReader; i++ {
				level, want := 6000.0, "ft"
				if (g+i)%2 == 1 {
					level, want = 7000, "mg"
				}
				var got string
				sd.Read(func(d *Dictionary) {
					got = rec.Recognize(levelSource{nodes: 2, level: level}).Top()
				})
				if got != want {
					errs <- fmt.Errorf("reader %d: recognized %q, want %q", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < learned; i++ {
			// Multiples of 10000 stay distinct after depth-2 rounding.
			sd.Learn(levelSource{nodes: 2, level: 10000 * float64(i+1)},
				apps.Label{App: fmt.Sprintf("new%d", i), Input: apps.InputX})
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every learned label is now recognizable.
	sd.Read(func(d *Dictionary) {
		for i := 0; i < learned; i++ {
			want := fmt.Sprintf("new%d", i)
			if got := d.Recognize(levelSource{nodes: 2, level: 10000 * float64(i+1)}).Top(); got != want {
				t.Errorf("learned level %d: recognized %q, want %q", i, got, want)
			}
		}
	})
}

// TestSharedDictionaryStreamUnderLearn feeds a stream (no dictionary
// lock needed: Feed only reads the immutable config) while a writer
// learns, then checks the completed stream recognizes correctly inside
// a Read section.
func TestSharedDictionaryStreamUnderLearn(t *testing.T) {
	d, err := NewDictionary(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(levelSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	sd := Share(d)

	var st *Stream
	sd.Read(func(d *Dictionary) { st = NewStream(d, 2) })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			sd.Learn(levelSource{nodes: 2, level: 200000 + 10000*float64(i)},
				apps.Label{App: fmt.Sprintf("bg%d", i), Input: apps.InputY})
		}
	}()
	for sec := 0; sec <= 125; sec++ {
		for node := 0; node < 2; node++ {
			st.Feed(apps.HeadlineMetric, node, time.Duration(sec)*time.Second, 6000)
		}
	}
	wg.Wait()
	sd.Read(func(d *Dictionary) {
		if !st.Complete() {
			t.Fatal("stream not complete")
		}
		if got := st.Recognize().Top(); got != "ft" {
			t.Errorf("stream recognized %q, want ft", got)
		}
	})
}
