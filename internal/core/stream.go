package core

import (
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Stream recognizes an execution online, as its telemetry arrives. It
// accumulates window means incrementally (Welford accumulators, no
// sample buffering) and can answer as soon as the latest-ending
// configured window has closed — two minutes into the execution for the
// paper's configuration. This is the low-latency deployment mode that
// motivates the EFD over whole-execution ML pipelines.
//
// Accumulators are keyed by the Window value itself (not its string
// form), so Feed performs no formatting and, once every configured
// (metric, node, window) accumulator exists, no allocation per sample.
//
// A Stream is not safe for concurrent use; the HTTP server serializes
// access per job.
type Stream struct {
	dict  *Dictionary
	nodes int
	acc   map[streamKey]*stats.Online
	// rec is the stream's reused recognizer, so repeated polling of
	// Recognize allocates nothing once warmed.
	rec *Recognizer
	// horizon is the largest window end; recognition is final once
	// telemetry at or beyond this offset has been fed.
	horizon time.Duration
	seen    time.Duration
}

type streamKey struct {
	metric string
	node   int
	window telemetry.Window
}

// NewStream returns a streaming recognizer against the dictionary for
// an execution on the given number of nodes.
func NewStream(d *Dictionary, nodes int) *Stream {
	s := &Stream{
		dict:  d,
		nodes: nodes,
		acc:   make(map[streamKey]*stats.Online),
		rec:   d.NewRecognizer(),
	}
	for _, w := range d.cfg.Windows {
		if w.End > s.horizon {
			s.horizon = w.End
		}
	}
	return s
}

// Feed delivers one sample. Samples outside every configured window,
// for unconfigured metrics, or for out-of-range nodes are ignored, so
// the monitor can blindly forward its full stream.
//
//efd:hotpath
func (s *Stream) Feed(metric string, node int, offset time.Duration, value float64) {
	if offset > s.seen {
		s.seen = offset
	}
	if node < 0 || node >= s.nodes {
		return
	}
	configured := false
	for _, m := range s.dict.cfg.Metrics {
		if m == metric {
			configured = true
			break
		}
	}
	if !configured {
		return
	}
	for _, w := range s.dict.cfg.Windows {
		if !w.Contains(offset) {
			continue
		}
		k := streamKey{metric: metric, node: node, window: w}
		acc, ok := s.acc[k]
		if !ok {
			acc = &stats.Online{}
			s.acc[k] = acc
		}
		acc.Add(value)
	}
}

// FeedRun delivers a run of samples sharing one (metric, node) pair as
// parallel offset/value columns — the bulk form of Feed that the
// server's batch ingest uses. The configured-metric check runs once
// for the whole run and each window's accumulator is resolved at most
// once, instead of per sample; the per-accumulator update sequence is
// identical to feeding the samples one by one, so the resulting state
// is exactly the same. Offsets and values must have equal length.
//
//efd:hotpath
func (s *Stream) FeedRun(metric string, node int, offsets []time.Duration, values []float64) {
	for _, off := range offsets {
		if off > s.seen {
			s.seen = off
		}
	}
	if node < 0 || node >= s.nodes {
		return
	}
	configured := false
	for _, m := range s.dict.cfg.Metrics {
		if m == metric {
			configured = true
			break
		}
	}
	if !configured {
		return
	}
	for _, w := range s.dict.cfg.Windows {
		var acc *stats.Online
		for i, off := range offsets {
			if !w.Contains(off) {
				continue
			}
			if acc == nil {
				k := streamKey{metric: metric, node: node, window: w}
				acc = s.acc[k]
				if acc == nil {
					acc = &stats.Online{}
					s.acc[k] = acc
				}
			}
			acc.Add(values[i])
		}
	}
}

// Complete reports whether every configured window has closed, i.e.
// telemetry at or beyond the latest window end has been observed.
func (s *Stream) Complete() bool { return s.seen >= s.horizon }

// WindowMean implements WindowSource over the accumulated stream.
func (s *Stream) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	acc, ok := s.acc[streamKey{metric: metric, node: node, window: w}]
	if !ok || acc.Count() == 0 {
		return 0, false
	}
	return acc.Mean(), true
}

// NodeCount implements WindowSource.
func (s *Stream) NodeCount() int { return s.nodes }

// Recognize answers with the current accumulated state. Calling it
// before Complete() returns a provisional answer based on partial
// windows; once Complete(), the answer is identical to offline
// recognition of the same telemetry. The Result borrows the stream's
// reused recognizer scratch and is valid until the next Recognize call
// on this stream.
func (s *Stream) Recognize() Result {
	return s.rec.Recognize(s)
}
