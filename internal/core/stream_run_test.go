package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
)

// TestFeedRunMatchesFeed pins the bulk columnar ingest to the
// per-sample path: feeding the same telemetry through FeedRun (in
// metric/node runs, as the server's batch handler does) must leave the
// stream in exactly the state Feed leaves it in — same accumulated
// means, same completion horizon, same recognition.
func TestFeedRunMatchesFeed(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(2, apps.HeadlineMetric, 6000, 6000), apps.Label{App: "ft", Input: apps.InputX})

	rng := rand.New(rand.NewSource(21))
	secs := 130
	values := make([]float64, secs)
	for i := range values {
		values[i] = 6000 + 50*rng.NormFloat64()
	}

	one := NewStream(d, 2)
	bulk := NewStream(d, 2)
	offs := make([]time.Duration, secs)
	for i := range offs {
		offs[i] = time.Duration(i) * time.Second
	}
	for node := 0; node < 2; node++ {
		for i := 0; i < secs; i++ {
			one.Feed(apps.HeadlineMetric, node, offs[i], values[i])
		}
		bulk.FeedRun(apps.HeadlineMetric, node, offs, values)
	}
	// Runs for unconfigured metrics and out-of-range nodes are ignored
	// but still advance the horizon, like Feed.
	one.Feed("other_metric", 0, time.Duration(secs)*time.Second, 1)
	bulk.FeedRun("other_metric", 0, []time.Duration{time.Duration(secs) * time.Second}, []float64{1})
	one.Feed(apps.HeadlineMetric, 9, 0, 1)
	bulk.FeedRun(apps.HeadlineMetric, 9, []time.Duration{0}, []float64{1})

	if one.Complete() != bulk.Complete() {
		t.Fatalf("Complete: Feed %v vs FeedRun %v", one.Complete(), bulk.Complete())
	}
	for _, w := range d.cfg.Windows {
		for node := 0; node < 2; node++ {
			a, aok := one.WindowMean(apps.HeadlineMetric, node, w)
			b, bok := bulk.WindowMean(apps.HeadlineMetric, node, w)
			if aok != bok || a != b {
				t.Errorf("window %v node %d: Feed (%v,%v) vs FeedRun (%v,%v)", w, node, a, aok, b, bok)
			}
		}
	}
	ra, rb := one.Recognize(), bulk.Recognize()
	if ra.Top() != rb.Top() || ra.Matched != rb.Matched || ra.Total != rb.Total {
		t.Errorf("recognition differs: Feed %+v vs FeedRun %+v", ra, rb)
	}
}

// TestFeedRunWarmAllocFree pins the warmed bulk-ingest path at zero
// allocations per run, the property the server's ingest relies on.
func TestFeedRunWarmAllocFree(t *testing.T) {
	d, _ := NewDictionary(paperCfg(2))
	d.Learn(srcWith(1, apps.HeadlineMetric, 6000), apps.Label{App: "ft", Input: apps.InputX})
	s := NewStream(d, 1)
	offs := make([]time.Duration, 64)
	vals := make([]float64, 64)
	for i := range offs {
		offs[i] = time.Duration(60+i) * time.Second
		vals[i] = 6000
	}
	s.FeedRun(apps.HeadlineMetric, 0, offs, vals) // warm the accumulators
	allocs := testing.AllocsPerRun(100, func() {
		s.FeedRun(apps.HeadlineMetric, 0, offs, vals)
	})
	if allocs != 0 {
		t.Errorf("warmed FeedRun = %v allocs/op, want 0", allocs)
	}
}
