package dataset

import "fmt"

// Concat combines datasets into one, re-numbering execution IDs so they
// stay unique. It is how the two grids of Table 2 (4-node × 30 repeats
// and 32-node × 6 repeats) merge into a single evaluation corpus: node
// count is part of the fingerprint space (node IDs are key components),
// so executions of different widths coexist in one dictionary.
//
// All inputs must share the same window configuration; executions are
// shallow-copied (their Stats maps are shared), so callers must not
// mutate them afterwards.
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: nothing to concatenate")
	}
	out := &Dataset{Windows: parts[0].Windows}
	id := 0
	for pi, p := range parts {
		if len(p.Windows) != len(out.Windows) {
			return nil, fmt.Errorf("dataset: part %d has %d windows, expected %d",
				pi, len(p.Windows), len(out.Windows))
		}
		for wi := range p.Windows {
			if p.Windows[wi] != out.Windows[wi] {
				return nil, fmt.Errorf("dataset: part %d window %d is %v, expected %v",
					pi, wi, p.Windows[wi], out.Windows[wi])
			}
		}
		for _, e := range p.Executions {
			copied := *e
			copied.ID = id
			id++
			out.Executions = append(out.Executions, &copied)
		}
	}
	return out, nil
}
