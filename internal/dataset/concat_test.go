package dataset

import (
	"testing"

	"repro/internal/apps"
)

func TestConcatMergesGrids(t *testing.T) {
	// A miniature version of Table 2's two grids: 4-node and 32-node
	// executions of the same applications in one corpus.
	small := smallConfig()
	small.Repeats = 3

	large := smallConfig()
	large.Repeats = 2
	large.Cluster.Nodes = 8
	large.Seed = 2

	a, err := Generate(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(large)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != a.Len()+b.Len() {
		t.Fatalf("merged %d executions, want %d", merged.Len(), a.Len()+b.Len())
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged dataset invalid: %v", err)
	}
	// Both node widths must be present.
	widths := make(map[int]int)
	for _, e := range merged.Executions {
		widths[e.NumNodes]++
	}
	if widths[2] != a.Len() || widths[8] != b.Len() {
		t.Errorf("node widths = %v", widths)
	}
	// Source datasets keep their own IDs; merged IDs are renumbered.
	if a.Executions[0].ID != 0 || merged.Executions[a.Len()].ID != a.Len() {
		t.Error("ID renumbering wrong")
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := Concat(); err == nil {
		t.Error("empty concat should fail")
	}
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	differentWindows := &Dataset{Windows: a.Windows[:1]}
	if _, err := Concat(a, differentWindows); err == nil {
		t.Error("mismatched window configurations should fail")
	}
}

func TestLargeNodeGenConfig(t *testing.T) {
	cfg := LargeNodeGenConfig()
	if cfg.Cluster.Nodes != 32 || cfg.Repeats != 6 {
		t.Fatalf("secondary grid = %d nodes × %d repeats, want 32 × 6",
			cfg.Cluster.Nodes, cfg.Repeats)
	}
	// Generate one application's worth to keep the test fast, and
	// verify the 32-node executions fingerprint correctly.
	cfg.Apps = []string{"ft"}
	cfg.Repeats = 2
	cfg.Cluster.Metrics = []string{apps.HeadlineMetric}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Executions[0].NumNodes != 32 {
		t.Fatalf("NumNodes = %d", ds.Executions[0].NumNodes)
	}
	for node := 0; node < 32; node++ {
		if _, ok := ds.Executions[0].WindowMean(apps.HeadlineMetric, node, ds.Windows[1]); !ok {
			t.Fatalf("node %d missing window mean", node)
		}
	}
}
