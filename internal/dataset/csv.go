package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/apps"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// csvStatCols are the full-summary columns, matching stats.Summary.
var csvStatCols = []string{
	"count", "mean", "std", "min", "max", "skew", "kurtosis",
	"p5", "p25", "p50", "p75", "p95",
}

// SaveCSV writes the summarized dataset as one CSV: a row per
// (execution, metric, node) carrying the full-window summary and the
// per-window means. Floats use the shortest round-trippable form, so a
// load reproduces bit-identical fingerprints.
func (d *Dataset) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"exec_id", "app", "input", "num_nodes", "duration_s", "metric", "node"}
	header = append(header, csvStatCols...)
	for _, win := range d.Windows {
		header = append(header, "mean"+win.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range d.Executions {
		metrics := e.Metrics()
		for _, m := range metrics {
			for node, nms := range e.Stats[m] {
				rec := []string{
					strconv.Itoa(e.ID),
					e.Label.App,
					string(e.Label.Input),
					strconv.Itoa(e.NumNodes),
					g(e.Duration.Seconds()),
					m,
					strconv.Itoa(node),
					strconv.Itoa(nms.Full.Count),
					g(nms.Full.Mean), g(nms.Full.StdDev), g(nms.Full.Min), g(nms.Full.Max),
					g(nms.Full.Skewness), g(nms.Full.Kurtosis),
					g(nms.Full.P5), g(nms.Full.P25), g(nms.Full.P50), g(nms.Full.P75), g(nms.Full.P95),
				}
				for _, win := range d.Windows {
					if v, ok := nms.WindowMeans[win.String()]; ok {
						rec = append(rec, g(v))
					} else {
						rec = append(rec, "")
					}
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV reads a dataset written by SaveCSV.
func LoadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read CSV header: %w", err)
	}
	fixed := 7 + len(csvStatCols)
	if len(header) < fixed {
		return nil, fmt.Errorf("dataset: CSV header too short (%d columns)", len(header))
	}
	var windows []telemetry.Window
	for _, col := range header[fixed:] {
		if len(col) < 5 || col[:4] != "mean" {
			return nil, fmt.Errorf("dataset: unexpected window column %q", col)
		}
		w, err := telemetry.ParseWindow(col[4:])
		if err != nil {
			return nil, err
		}
		windows = append(windows, w)
	}

	byID := make(map[int]*Execution)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		bad := func(field string, err error) error {
			return fmt.Errorf("dataset: CSV line %d field %s: %w", line, field, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, bad("exec_id", err)
		}
		numNodes, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, bad("num_nodes", err)
		}
		durS, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, bad("duration_s", err)
		}
		node, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, bad("node", err)
		}
		if node < 0 || node >= numNodes {
			return nil, fmt.Errorf("dataset: CSV line %d: node %d out of range [0,%d)",
				line, node, numNodes)
		}
		e, ok := byID[id]
		if !ok {
			e = &Execution{
				ID:       id,
				Label:    apps.Label{App: rec[1], Input: apps.Input(rec[2])},
				NumNodes: numNodes,
				Duration: time.Duration(durS * float64(time.Second)),
				Stats:    make(map[string][]NodeMetricStats),
			}
			byID[id] = e
		}
		metric := rec[5]
		per, ok := e.Stats[metric]
		if !ok {
			per = make([]NodeMetricStats, numNodes)
			e.Stats[metric] = per
		}
		var s stats.Summary
		s.Count, err = strconv.Atoi(rec[7])
		if err != nil {
			return nil, bad("count", err)
		}
		fs := make([]float64, 11)
		for i := 0; i < 11; i++ {
			fs[i], err = strconv.ParseFloat(rec[8+i], 64)
			if err != nil {
				return nil, bad(csvStatCols[i+1], err)
			}
		}
		s.Mean, s.StdDev, s.Min, s.Max = fs[0], fs[1], fs[2], fs[3]
		s.Skewness, s.Kurtosis = fs[4], fs[5]
		s.P5, s.P25, s.P50, s.P75, s.P95 = fs[6], fs[7], fs[8], fs[9], fs[10]
		nms := NodeMetricStats{Full: s, WindowMeans: make(map[string]float64, len(windows))}
		for wi, win := range windows {
			cell := rec[fixed+wi]
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, bad("mean"+win.String(), err)
			}
			nms.WindowMeans[win.String()] = v
		}
		nms.indexWindows()
		per[node] = nms
	}

	ds := &Dataset{Windows: windows}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ds.Executions = append(ds.Executions, byID[id])
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
