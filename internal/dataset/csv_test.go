package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := genSmall(t)
	var buf bytes.Buffer
	if err := ds.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("loaded %d executions, want %d", got.Len(), ds.Len())
	}
	if len(got.Windows) != len(ds.Windows) {
		t.Fatalf("windows: %v vs %v", got.Windows, ds.Windows)
	}
	for i := range ds.Executions {
		a, b := ds.Executions[i], got.Executions[i]
		if a.ID != b.ID || a.Label != b.Label || a.NumNodes != b.NumNodes {
			t.Fatalf("execution %d header differs", i)
		}
		for _, m := range a.Metrics() {
			for node := 0; node < a.NumNodes; node++ {
				va, oka := a.WindowMean(m, node, telemetry.PaperWindow)
				vb, okb := b.WindowMean(m, node, telemetry.PaperWindow)
				if oka != okb || va != vb {
					t.Fatalf("window mean differs: exec %d %s node %d: %v vs %v",
						a.ID, m, node, va, vb)
				}
				fa := a.Stats[m][node].Full
				fb := b.Stats[m][node].Full
				if fa != fb {
					t.Fatalf("full summary differs: exec %d %s node %d:\n%+v\n%+v",
						a.ID, m, node, fa, fb)
				}
			}
		}
	}
	// Fingerprint-critical: loaded dataset must validate.
	if err := got.Validate(); err != nil {
		t.Errorf("loaded dataset invalid: %v", err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b\n",
		"exec_id,app,input,num_nodes,duration_s,metric,node,count,mean,std,min,max,skew,kurtosis,p5,p25,p50,p75,p95,bogus[60:120]\n",
	}
	for i, in := range cases {
		if _, err := LoadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// A structurally valid header but a corrupt row.
	header := "exec_id,app,input,num_nodes,duration_s,metric,node,count,mean,std,min,max,skew,kurtosis,p5,p25,p50,p75,p95,mean[60:120]\n"
	rows := []string{
		"x,ft,X,2,100,m,0,5,1,1,1,1,0,0,1,1,1,1,1,6000\n",  // bad id
		"1,ft,X,2,100,m,9,5,1,1,1,1,0,0,1,1,1,1,1,6000\n",  // node out of range
		"1,ft,X,2,100,m,0,xx,1,1,1,1,0,0,1,1,1,1,1,6000\n", // bad count
		"1,ft,X,2,100,m,0,5,zz,1,1,1,0,0,1,1,1,1,1,6000\n", // bad mean
		"1,ft,X,2,100,m,0,5,1,1,1,1,0,0,1,1,1,1,1,zz\n",    // bad window mean
	}
	for i, row := range rows {
		if _, err := LoadCSV(strings.NewReader(header + row)); err == nil {
			t.Errorf("row case %d should fail: %q", i, row)
		}
	}
}

func TestCSVEmptyCellsForMissingWindows(t *testing.T) {
	// Executions shorter than a window leave the cell empty and load
	// back as an absent mean.
	header := "exec_id,app,input,num_nodes,duration_s,metric,node,count,mean,std,min,max,skew,kurtosis,p5,p25,p50,p75,p95,mean[60:120],mean[120:180]\n"
	row := "3,ft,X,1,100,m,0,5,1,1,1,1,0,0,1,1,1,1,1,6000,\n"
	ds, err := LoadCSV(strings.NewReader(header + row))
	if err != nil {
		t.Fatal(err)
	}
	e := ds.Executions[0]
	if _, ok := e.WindowMean("m", 0, telemetry.PaperWindow); !ok {
		t.Error("present window mean lost")
	}
	w2, _ := telemetry.ParseWindow("[120:180]")
	if _, ok := e.WindowMean("m", 0, w2); ok {
		t.Error("absent window mean materialized")
	}
	if e.Label.App != "ft" || e.Label.Input != apps.InputX {
		t.Errorf("label = %v", e.Label)
	}
}
