// Package dataset assembles simulated executions into the labelled
// collection the experiments run on: the application/input grid of
// Table 2, with per-(metric, node) window means for the EFD and
// full-execution summaries for the Taxonomist baseline.
//
// Telemetry is summarized at ingestion and the raw series discarded, so
// a full Table 2 grid (1100+ executions × 50 metrics × 4 nodes) stays
// within tens of megabytes.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// NodeMetricStats summarizes one metric on one node of one execution.
type NodeMetricStats struct {
	// Full is the summary over the entire execution (what Taxonomist
	// consumes).
	Full stats.Summary
	// WindowMeans maps a window key (Window.Key()) to the mean of
	// the samples in that window. Windows the series does not cover
	// are absent (what the EFD consumes). This is the canonical,
	// serialized form; the recognition hot path reads byWindow instead.
	WindowMeans map[string]float64
	// byWindow indexes WindowMeans by the Window value itself, as two
	// parallel slices: configurations carry a handful of windows, so a
	// linear scan beats both map hashing and string formatting on the
	// recognition hot path (WindowMean is probed once per fingerprint
	// key). Built by indexWindows (Summarize and the CSV loader call
	// it); when empty, WindowMean falls back to the string-keyed map.
	winKeys  []telemetry.Window
	winMeans []float64
}

// indexWindows (re)builds the Window-keyed view of WindowMeans. It is
// called at construction time; executions assembled by hand work
// without it through the string-keyed fallback.
func (nms *NodeMetricStats) indexWindows() {
	nms.winKeys, nms.winMeans = nil, nil
	if nms.WindowMeans == nil {
		return
	}
	nms.winKeys = make([]telemetry.Window, 0, len(nms.WindowMeans))
	nms.winMeans = make([]float64, 0, len(nms.WindowMeans))
	for ks, v := range nms.WindowMeans {
		if w, err := telemetry.ParseWindow(ks); err == nil {
			nms.winKeys = append(nms.winKeys, w)
			nms.winMeans = append(nms.winMeans, v)
		}
	}
}

// Execution is one labelled run: the unit of recognition.
type Execution struct {
	// ID is unique within a Dataset.
	ID int
	// Label is the ground-truth (application, input) pair.
	Label apps.Label
	// NumNodes is the number of nodes the execution used.
	NumNodes int
	// Duration is the wall time of the execution.
	Duration time.Duration
	// Stats maps metric name to per-node summaries (index = node ID).
	Stats map[string][]NodeMetricStats
}

// WindowMean returns the stored mean of metric on node over the window,
// if present. Executions built by Summarize or the CSV loader answer
// through a Window-indexed map (no string formatting, no allocation);
// hand-assembled executions fall back to the WindowMeans string keys.
func (e *Execution) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	per, ok := e.Stats[metric]
	if !ok || node < 0 || node >= len(per) {
		return 0, false
	}
	if keys := per[node].winKeys; keys != nil {
		for i, k := range keys {
			if k == w {
				return per[node].winMeans[i], true
			}
		}
		return 0, false
	}
	v, ok := per[node].WindowMeans[w.Key()]
	return v, ok
}

// IndexWindows builds the Window-indexed lookup of every node/metric
// summary, upgrading hand-assembled executions to the allocation-free
// WindowMean path. Summarize and the CSV loader call it automatically.
func (e *Execution) IndexWindows() {
	for _, per := range e.Stats {
		for i := range per {
			per[i].indexWindows()
		}
	}
}

// Metrics returns the sorted metric names present in the execution.
func (e *Execution) Metrics() []string {
	out := make([]string, 0, len(e.Stats))
	for m := range e.Stats {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Dataset is a collection of labelled executions sharing a window
// configuration.
type Dataset struct {
	// Windows are the intervals whose means were extracted.
	Windows []telemetry.Window
	// Executions holds the runs, ordered by ID.
	Executions []*Execution
}

// DefaultWindows are the intervals summarized at ingestion: the paper's
// fingerprint window plus its neighbours, used by the interval ablation.
func DefaultWindows() []telemetry.Window {
	sec := func(a, b int) telemetry.Window {
		return telemetry.Window{
			Start: time.Duration(a) * time.Second,
			End:   time.Duration(b) * time.Second,
		}
	}
	return []telemetry.Window{
		sec(0, 60), sec(60, 120), sec(120, 180), sec(30, 90), sec(0, 120),
	}
}

// Summarize converts raw telemetry into an Execution record with the
// given label and windows. It seals the telemetry first (building the
// per-series prefix sums), so extracting any number of window means
// costs one pass over each series plus O(1) per window, instead of one
// scan per (window, series) pair.
func Summarize(id int, label apps.Label, ns *telemetry.NodeSet, windows []telemetry.Window) *Execution {
	ns.Seal()
	nodes := ns.Nodes()
	e := &Execution{
		ID:       id,
		Label:    label,
		NumNodes: len(nodes),
		Duration: ns.Duration(),
		Stats:    make(map[string][]NodeMetricStats),
	}
	// Window key strings are computed once per Summarize call, not per
	// (metric, node, window) probe.
	winKeys := make([]string, len(windows))
	for i, w := range windows {
		winKeys[i] = w.Key()
	}
	for _, metric := range ns.Metrics() {
		per := make([]NodeMetricStats, len(nodes))
		for i, node := range nodes {
			s := ns.Get(node, metric)
			if s == nil {
				continue
			}
			nms := NodeMetricStats{
				Full:        stats.Describe(s.ValuesView()),
				WindowMeans: make(map[string]float64, len(windows)),
				winKeys:     make([]telemetry.Window, 0, len(windows)),
				winMeans:    make([]float64, 0, len(windows)),
			}
			for wi, w := range windows {
				if mean, err := s.WindowMean(w); err == nil {
					nms.WindowMeans[winKeys[wi]] = mean
					nms.winKeys = append(nms.winKeys, w)
					nms.winMeans = append(nms.winMeans, mean)
				}
			}
			per[i] = nms
		}
		e.Stats[metric] = per
	}
	return e
}

// Len reports the number of executions.
func (d *Dataset) Len() int { return len(d.Executions) }

// Labels returns the distinct labels present, in application/input
// order.
func (d *Dataset) Labels() []apps.Label {
	seen := make(map[apps.Label]bool)
	var out []apps.Label
	for _, e := range d.Executions {
		if !seen[e.Label] {
			seen[e.Label] = true
			out = append(out, e.Label)
		}
	}
	apps.SortLabels(out)
	return out
}

// Apps returns the distinct application names present, sorted.
func (d *Dataset) Apps() []string {
	seen := make(map[string]bool)
	for _, e := range d.Executions {
		seen[e.Label.App] = true
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Inputs returns the distinct input sizes present, in size order.
func (d *Dataset) Inputs() []apps.Input {
	seen := make(map[apps.Input]bool)
	for _, e := range d.Executions {
		seen[e.Label.Input] = true
	}
	var out []apps.Input
	for _, in := range apps.AllInputs {
		if seen[in] {
			out = append(out, in)
		}
	}
	return out
}

// Metrics returns the sorted union of metric names across executions.
func (d *Dataset) Metrics() []string {
	seen := make(map[string]bool)
	for _, e := range d.Executions {
		for m := range e.Stats {
			seen[m] = true
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Filter returns a shallow subset (executions shared) keeping only runs
// for which keep returns true.
func (d *Dataset) Filter(keep func(*Execution) bool) *Dataset {
	out := &Dataset{Windows: d.Windows}
	for _, e := range d.Executions {
		if keep(e) {
			out.Executions = append(out.Executions, e)
		}
	}
	return out
}

// WithoutInput returns the subset excluding executions with the given
// input size.
func (d *Dataset) WithoutInput(in apps.Input) *Dataset {
	return d.Filter(func(e *Execution) bool { return e.Label.Input != in })
}

// OnlyInput returns the subset with exactly the given input size.
func (d *Dataset) OnlyInput(in apps.Input) *Dataset {
	return d.Filter(func(e *Execution) bool { return e.Label.Input == in })
}

// WithoutApp returns the subset excluding executions of the given
// application.
func (d *Dataset) WithoutApp(app string) *Dataset {
	return d.Filter(func(e *Execution) bool { return e.Label.App != app })
}

// OnlyApp returns the subset with exactly the given application.
func (d *Dataset) OnlyApp(app string) *Dataset {
	return d.Filter(func(e *Execution) bool { return e.Label.App == app })
}

// Subset returns a shallow dataset holding the executions at the given
// indexes.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Windows: d.Windows, Executions: make([]*Execution, 0, len(idx))}
	for _, i := range idx {
		out.Executions = append(out.Executions, d.Executions[i])
	}
	return out
}

// Fold is one train/test split.
type Fold struct {
	Train []int
	Test  []int
}

// KFold produces k stratified folds: every label's executions are
// spread as evenly as possible across the folds, matching
// scikit-learn's StratifiedKFold with shuffling. It returns an error
// when k exceeds the size of the smallest class or is less than 2.
func (d *Dataset) KFold(k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, errors.New("dataset: k must be at least 2")
	}
	byLabel := make(map[apps.Label][]int)
	for i, e := range d.Executions {
		byLabel[e.Label] = append(byLabel[e.Label], i)
	}
	for l, idx := range byLabel {
		if len(idx) < k {
			return nil, fmt.Errorf("dataset: label %s has %d executions, fewer than k=%d",
				l, len(idx), k)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, len(d.Executions)) // execution index -> fold
	labels := make([]apps.Label, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	apps.SortLabels(labels)
	for _, l := range labels {
		idx := byLabel[l]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for pos, i := range idx {
			assign[i] = pos % k
		}
	}
	folds := make([]Fold, k)
	for i, f := range assign {
		for fold := range folds {
			if fold == f {
				folds[fold].Test = append(folds[fold].Test, i)
			} else {
				folds[fold].Train = append(folds[fold].Train, i)
			}
		}
	}
	return folds, nil
}

// Validate checks dataset invariants: unique IDs, consistent metric
// sets, and per-metric node arrays matching NumNodes.
func (d *Dataset) Validate() error {
	ids := make(map[int]bool)
	var ref []string
	for _, e := range d.Executions {
		if ids[e.ID] {
			return fmt.Errorf("dataset: duplicate execution ID %d", e.ID)
		}
		ids[e.ID] = true
		mets := e.Metrics()
		if ref == nil {
			ref = mets
		} else if len(mets) != len(ref) {
			return fmt.Errorf("dataset: execution %d has %d metrics, expected %d",
				e.ID, len(mets), len(ref))
		}
		for m, per := range e.Stats {
			if len(per) != e.NumNodes {
				return fmt.Errorf("dataset: execution %d metric %s has %d node entries, expected %d",
					e.ID, m, len(per), e.NumNodes)
			}
		}
	}
	return nil
}
