package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/noise"
	"repro/internal/telemetry"
)

// smallConfig generates a fast dataset for tests: 3 apps, 2 metrics,
// 6 repeats, 2 nodes.
func smallConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Apps = []string{"ft", "mg", "miniAMR"}
	cfg.Repeats = 6
	cfg.Cluster.Nodes = 2
	cfg.Cluster.Metrics = []string{apps.HeadlineMetric, "Committed_AS_meminfo"}
	return cfg
}

func genSmall(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateShape(t *testing.T) {
	ds := genSmall(t)
	// ft(3) + mg(3) + miniAMR(4) inputs × 6 repeats = 60 executions.
	if ds.Len() != 60 {
		t.Fatalf("Len = %d, want 60", ds.Len())
	}
	if got := len(ds.Labels()); got != 10 {
		t.Errorf("labels = %d, want 10", got)
	}
	if got := ds.Apps(); len(got) != 3 {
		t.Errorf("apps = %v", got)
	}
	if got := ds.Inputs(); len(got) != 4 {
		t.Errorf("inputs = %v", got)
	}
	if got := ds.Metrics(); len(got) != 2 {
		t.Errorf("metrics = %v", got)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	w := telemetry.PaperWindow
	for i := range a.Executions {
		ea, eb := a.Executions[i], b.Executions[i]
		if ea.Label != eb.Label || ea.Duration != eb.Duration {
			t.Fatalf("execution %d differs: %v vs %v", i, ea.Label, eb.Label)
		}
		va, oka := ea.WindowMean(apps.HeadlineMetric, 0, w)
		vb, okb := eb.WindowMean(apps.HeadlineMetric, 0, w)
		if oka != okb || va != vb {
			t.Fatalf("execution %d window mean differs: %v vs %v", i, va, vb)
		}
	}
}

func TestGenerateParallelMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallel = true
	par, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = false
	seq, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := telemetry.PaperWindow
	for i := range par.Executions {
		va, _ := par.Executions[i].WindowMean(apps.HeadlineMetric, 1, w)
		vb, _ := seq.Executions[i].WindowMean(apps.HeadlineMetric, 1, w)
		if va != vb {
			t.Fatalf("parallel and sequential generation diverge at execution %d", i)
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Repeats = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("zero repeats should fail")
	}
	cfg = smallConfig()
	cfg.Apps = []string{"nosuch"}
	if _, err := Generate(cfg); err == nil {
		t.Error("unknown app should fail")
	}
	cfg = smallConfig()
	cfg.Cluster.Metrics = []string{"nosuch_metric"}
	if _, err := Generate(cfg); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestWindowMeansPresent(t *testing.T) {
	ds := genSmall(t)
	for _, e := range ds.Executions {
		for node := 0; node < e.NumNodes; node++ {
			if _, ok := e.WindowMean(apps.HeadlineMetric, node, telemetry.PaperWindow); !ok {
				t.Fatalf("execution %d node %d lacks the paper window mean", e.ID, node)
			}
		}
		if _, ok := e.WindowMean(apps.HeadlineMetric, 99, telemetry.PaperWindow); ok {
			t.Fatal("out-of-range node should report no mean")
		}
		if _, ok := e.WindowMean("nosuch", 0, telemetry.PaperWindow); ok {
			t.Fatal("unknown metric should report no mean")
		}
	}
}

func TestFilters(t *testing.T) {
	ds := genSmall(t)
	noX := ds.WithoutInput(apps.InputX)
	for _, e := range noX.Executions {
		if e.Label.Input == apps.InputX {
			t.Fatal("WithoutInput leaked an X execution")
		}
	}
	onlyX := ds.OnlyInput(apps.InputX)
	if onlyX.Len()+noX.Len() != ds.Len() {
		t.Error("OnlyInput and WithoutInput should partition the dataset")
	}
	noFT := ds.WithoutApp("ft")
	onlyFT := ds.OnlyApp("ft")
	if onlyFT.Len() != 18 || noFT.Len() != 42 {
		t.Errorf("app partition sizes: only=%d without=%d", onlyFT.Len(), noFT.Len())
	}
	for _, e := range onlyFT.Executions {
		if e.Label.App != "ft" {
			t.Fatal("OnlyApp leaked a non-ft execution")
		}
	}
}

func TestKFoldStratified(t *testing.T) {
	ds := genSmall(t)
	folds, err := ds.KFold(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for fi, f := range folds {
		if len(f.Train)+len(f.Test) != ds.Len() {
			t.Errorf("fold %d sizes: %d + %d != %d", fi, len(f.Train), len(f.Test), ds.Len())
		}
		// Stratification: each label appears 6 times → 2 per test fold.
		perLabel := make(map[apps.Label]int)
		for _, i := range f.Test {
			perLabel[ds.Executions[i].Label]++
			seen[i]++
		}
		for l, c := range perLabel {
			if c != 2 {
				t.Errorf("fold %d: label %v has %d test executions, want 2", fi, l, c)
			}
		}
		// No overlap between train and test.
		inTest := make(map[int]bool)
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatalf("fold %d: execution %d in both train and test", fi, i)
			}
		}
	}
	// Every execution is tested exactly once across folds.
	for i := 0; i < ds.Len(); i++ {
		if seen[i] != 1 {
			t.Errorf("execution %d tested %d times", i, seen[i])
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	ds := genSmall(t)
	if _, err := ds.KFold(1, 0); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := ds.KFold(7, 0); err == nil {
		t.Error("k larger than smallest class should fail")
	}
}

func TestKFoldDeterministicPerSeed(t *testing.T) {
	ds := genSmall(t)
	f := func(seed int64) bool {
		a, err1 := ds.KFold(3, seed)
		b, err2 := ds.KFold(3, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if len(a[i].Test) != len(b[i].Test) {
				return false
			}
			for j := range a[i].Test {
				if a[i].Test[j] != b[i].Test[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSubset(t *testing.T) {
	ds := genSmall(t)
	sub := ds.Subset([]int{0, 5, 9})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if sub.Executions[1] != ds.Executions[5] {
		t.Error("Subset should share execution pointers")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := genSmall(t)
	// Duplicate ID.
	bad := &Dataset{Windows: ds.Windows, Executions: []*Execution{
		ds.Executions[0], ds.Executions[0],
	}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate IDs should fail validation")
	}
	// Truncated node stats.
	e := *ds.Executions[0]
	e.ID = 99999
	e.Stats = map[string][]NodeMetricStats{
		apps.HeadlineMetric:    ds.Executions[0].Stats[apps.HeadlineMetric][:1],
		"Committed_AS_meminfo": ds.Executions[0].Stats["Committed_AS_meminfo"],
	}
	bad2 := &Dataset{Executions: []*Execution{&e}}
	if err := bad2.Validate(); err == nil {
		t.Error("truncated node stats should fail validation")
	}
}

func TestSummarizeFromNodeSet(t *testing.T) {
	sim, err := cluster.New(cluster.Config{
		Nodes:   2,
		Noise:   noise.QuietProfile(),
		Metrics: []string{apps.HeadlineMetric},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := apps.Lookup("ft")
	rng := rand.New(rand.NewSource(3))
	ns, _, err := sim.Run(spec, apps.InputX, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := Summarize(7, apps.Label{App: "ft", Input: apps.InputX}, ns, DefaultWindows())
	if e.ID != 7 || e.NumNodes != 2 {
		t.Fatalf("Summarize header wrong: %+v", e)
	}
	mean, ok := e.WindowMean(apps.HeadlineMetric, 0, telemetry.PaperWindow)
	if !ok {
		t.Fatal("missing window mean")
	}
	// Quiet profile: the mean must sit near the modelled 6000 level.
	if mean < 5800 || mean > 6300 {
		t.Errorf("ft window mean = %v, want ≈ 6000", mean)
	}
	full := e.Stats[apps.HeadlineMetric][0].Full
	if full.Count < int(e.Duration/time.Second) {
		t.Errorf("full summary count %d too small for duration %v", full.Count, e.Duration)
	}
	// The init transient makes the early window mean exceed the steady
	// window mean.
	early, ok := e.WindowMean(apps.HeadlineMetric, 0, telemetry.Window{Start: 0, End: 60 * time.Second})
	if !ok {
		t.Fatal("missing early window mean")
	}
	if early <= mean {
		t.Errorf("init transient should raise the early mean: early=%v steady=%v", early, mean)
	}
}

func TestDefaultWindowsContainPaperWindow(t *testing.T) {
	found := false
	for _, w := range DefaultWindows() {
		if w == telemetry.PaperWindow {
			found = true
		}
		if !w.Valid() {
			t.Errorf("invalid default window %v", w)
		}
	}
	if !found {
		t.Error("DefaultWindows must include the paper window")
	}
}
