package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// GenConfig describes a synthetic dataset to generate.
type GenConfig struct {
	// Cluster configures the simulated system (nodes, noise, metric
	// selection).
	Cluster cluster.Config
	// Repeats is the number of executions per (application, input)
	// pair. Table 2's primary grid uses 30 repeats on 4 nodes.
	Repeats int
	// Seed makes generation reproducible.
	Seed int64
	// Windows are the intervals to summarize; nil uses
	// DefaultWindows().
	Windows []telemetry.Window
	// Apps restricts generation to the named applications; nil
	// generates all eleven.
	Apps []string
	// Parallel enables concurrent generation across executions.
	Parallel bool
}

// DefaultGenConfig is the paper's primary grid: all applications, 4
// nodes, 30 repeats, default noise.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Cluster:  cluster.DefaultConfig(),
		Repeats:  30,
		Seed:     1,
		Parallel: true,
	}
}

// LargeNodeGenConfig is the secondary grid of Table 2: 32 nodes with 6
// repeats per pair.
func LargeNodeGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Cluster.Nodes = 32
	cfg.Repeats = 6
	cfg.Seed = 2
	return cfg
}

// Generate builds the dataset described by cfg. Every execution draws
// its randomness from an independent seed derived from cfg.Seed, so the
// result is identical whether generation runs sequentially or in
// parallel.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Repeats <= 0 {
		return nil, fmt.Errorf("dataset: repeats must be positive, got %d", cfg.Repeats)
	}
	sim, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	windows := cfg.Windows
	if windows == nil {
		windows = DefaultWindows()
	}
	specs := apps.Catalog()
	if cfg.Apps != nil {
		var sel []apps.Spec
		for _, name := range cfg.Apps {
			s, ok := apps.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("dataset: unknown application %q", name)
			}
			sel = append(sel, s)
		}
		specs = sel
	}

	type task struct {
		id   int
		spec apps.Spec
		in   apps.Input
		seed int64
	}
	var tasks []task
	id := 0
	for _, spec := range specs {
		for _, in := range spec.Inputs {
			for r := 0; r < cfg.Repeats; r++ {
				// Derive a stable per-execution seed from the grid
				// coordinates, independent of iteration order.
				seed := cfg.Seed*1_000_003 + int64(id)*7919 + 17
				tasks = append(tasks, task{id: id, spec: spec, in: in, seed: seed})
				id++
			}
		}
	}

	execs := make([]*Execution, len(tasks))
	runOne := func(t task) error {
		rng := rand.New(rand.NewSource(t.seed))
		ns, _, err := sim.Run(t.spec, t.in, rng)
		if err != nil {
			return err
		}
		execs[t.id] = Summarize(t.id, apps.Label{App: t.spec.Name, Input: t.in}, ns, windows)
		return nil
	}

	if !cfg.Parallel {
		for _, t := range tasks {
			if err := runOne(t); err != nil {
				return nil, err
			}
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(tasks) {
			workers = len(tasks)
		}
		ch := make(chan task)
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					if err := runOne(t); err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
				}
			}()
		}
		for _, t := range tasks {
			ch <- t
		}
		close(ch)
		wg.Wait()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
	}

	return &Dataset{Windows: windows, Executions: execs}, nil
}
