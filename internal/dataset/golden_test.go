package dataset

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenGenConfig is the seeded grid the Summarize golden is captured
// from: two applications, three metrics (ramping, memory, constant),
// two repeats.
func goldenGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Apps = []string{"ft", "mg"}
	cfg.Cluster.Metrics = []string{
		"nr_mapped_vmstat",
		"Committed_AS_meminfo",
		"MemTotal_meminfo",
	}
	cfg.Repeats = 2
	cfg.Seed = 7
	return cfg
}

// TestGoldenSummarizeCSV pins the full-precision SaveCSV bytes of a
// seeded Generate → Summarize run: every window mean and every
// full-window summary moment, serialized in shortest round-trippable
// form.
//
// Provenance: the golden was first captured before the columnar
// telemetry refactor (PR 3) and regenerated once during it. The diff
// was confined to the std/skew/kurtosis columns — the intentional
// compensated-summation upgrade of stats.Variance/Skewness/Kurtosis —
// while every window-mean, mean, min/max and percentile column stayed
// byte-identical to the pre-refactor scan-based implementation.
// Regenerate (only when an intentional numerics change demands it, and
// say so in CHANGES.md) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/dataset -run TestGoldenSummarizeCSV
func TestGoldenSummarizeCSV(t *testing.T) {
	ds, err := Generate(goldenGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "golden_summarize.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Summarize CSV differs from golden:\n%s", firstCSVDiff(got, want))
	}
}

// firstCSVDiff renders the first line where two CSV outputs diverge.
func firstCSVDiff(got, want []byte) string {
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
