// Package eval implements the classification metrics the paper takes
// from scikit-learn: precision, recall, F-score (macro and weighted
// averaging), confusion matrices and classification reports.
package eval

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Pair is one (ground truth, prediction) outcome.
type Pair struct {
	Truth string
	Pred  string
}

// ClassStats holds per-class counts and derived scores.
type ClassStats struct {
	Class     string
	TP        int
	FP        int
	FN        int
	Support   int // number of true instances
	Precision float64
	Recall    float64
	F1        float64
}

// Report is a full classification report over a set of outcomes.
type Report struct {
	Classes  []ClassStats
	Accuracy float64
	// MacroF1 is the unweighted mean of per-class F1 — the paper's
	// headline score.
	MacroF1 float64
	// WeightedF1 weights per-class F1 by support.
	WeightedF1 float64
	// MacroPrecision and MacroRecall are unweighted class means.
	MacroPrecision float64
	MacroRecall    float64
	Total          int
}

// Evaluate computes a Report from outcomes. Classes are the union of
// truth and prediction labels; classes that never appear as truth have
// zero support and do not contribute to averaged scores (matching
// scikit-learn's behaviour of averaging over labels present in the
// truth when computing support-weighted scores; for macro averaging we
// follow the paper's setting and average over truth classes only).
func Evaluate(pairs []Pair) (Report, error) {
	if len(pairs) == 0 {
		return Report{}, errors.New("eval: no outcomes to evaluate")
	}
	type counts struct{ tp, fp, fn, support int }
	byClass := make(map[string]*counts)
	get := func(c string) *counts {
		if v, ok := byClass[c]; ok {
			return v
		}
		v := &counts{}
		byClass[c] = v
		return v
	}
	correct := 0
	for _, p := range pairs {
		t := get(p.Truth)
		t.support++
		if p.Truth == p.Pred {
			t.tp++
			correct++
		} else {
			t.fn++
			get(p.Pred).fp++
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	var r Report
	r.Total = len(pairs)
	r.Accuracy = float64(correct) / float64(len(pairs))
	truthClasses := 0
	var wSum float64
	for _, c := range classes {
		v := byClass[c]
		cs := ClassStats{Class: c, TP: v.tp, FP: v.fp, FN: v.fn, Support: v.support}
		if v.tp+v.fp > 0 {
			cs.Precision = float64(v.tp) / float64(v.tp+v.fp)
		}
		if v.tp+v.fn > 0 {
			cs.Recall = float64(v.tp) / float64(v.tp+v.fn)
		}
		if cs.Precision+cs.Recall > 0 {
			cs.F1 = 2 * cs.Precision * cs.Recall / (cs.Precision + cs.Recall)
		}
		r.Classes = append(r.Classes, cs)
		if cs.Support > 0 {
			truthClasses++
			r.MacroF1 += cs.F1
			r.MacroPrecision += cs.Precision
			r.MacroRecall += cs.Recall
			wSum += cs.F1 * float64(cs.Support)
		}
	}
	if truthClasses > 0 {
		r.MacroF1 /= float64(truthClasses)
		r.MacroPrecision /= float64(truthClasses)
		r.MacroRecall /= float64(truthClasses)
	}
	r.WeightedF1 = wSum / float64(len(pairs))
	return r, nil
}

// F1Macro is a convenience wrapper returning only the macro F1.
func F1Macro(pairs []Pair) float64 {
	r, err := Evaluate(pairs)
	if err != nil {
		return 0
	}
	return r.MacroF1
}

// ConfusionMatrix tabulates prediction counts per truth class.
type ConfusionMatrix struct {
	Classes []string
	// Counts[i][j] is the number of instances of truth Classes[i]
	// predicted as Classes[j].
	Counts [][]int
}

// Confusion builds the confusion matrix of the outcomes, with classes
// sorted alphabetically.
func Confusion(pairs []Pair) ConfusionMatrix {
	seen := make(map[string]bool)
	for _, p := range pairs {
		seen[p.Truth] = true
		seen[p.Pred] = true
	}
	classes := make([]string, 0, len(seen))
	for c := range seen {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	idx := make(map[string]int, len(classes))
	for i, c := range classes {
		idx[c] = i
	}
	counts := make([][]int, len(classes))
	for i := range counts {
		counts[i] = make([]int, len(classes))
	}
	for _, p := range pairs {
		counts[idx[p.Truth]][idx[p.Pred]]++
	}
	return ConfusionMatrix{Classes: classes, Counts: counts}
}

// String renders the confusion matrix as an aligned table.
func (m ConfusionMatrix) String() string {
	var b strings.Builder
	width := 8
	for _, c := range m.Classes {
		if len(c)+1 > width {
			width = len(c) + 1
		}
	}
	fmt.Fprintf(&b, "%*s", width, "")
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for i, c := range m.Classes {
		fmt.Fprintf(&b, "%*s", width, c)
		for j := range m.Classes {
			fmt.Fprintf(&b, "%*d", width, m.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the report in scikit-learn's classification_report
// layout.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %9s %9s %9s\n", "", "precision", "recall", "f1-score", "support")
	for _, c := range r.Classes {
		if c.Support == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-24s %9.3f %9.3f %9.3f %9d\n",
			c.Class, c.Precision, c.Recall, c.F1, c.Support)
	}
	fmt.Fprintf(&b, "\n%-24s %9s %9s %9.3f %9d\n", "accuracy", "", "", r.Accuracy, r.Total)
	fmt.Fprintf(&b, "%-24s %9.3f %9.3f %9.3f %9d\n",
		"macro avg", r.MacroPrecision, r.MacroRecall, r.MacroF1, r.Total)
	fmt.Fprintf(&b, "%-24s %9s %9s %9.3f %9d\n", "weighted avg", "", "", r.WeightedF1, r.Total)
	return b.String()
}
