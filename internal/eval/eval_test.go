package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEvaluatePerfect(t *testing.T) {
	pairs := []Pair{
		{"a", "a"}, {"a", "a"}, {"b", "b"}, {"c", "c"},
	}
	r, err := Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 1 || r.MacroF1 != 1 || r.WeightedF1 != 1 {
		t.Errorf("perfect predictions: %+v", r)
	}
	if r.Total != 4 {
		t.Errorf("Total = %d", r.Total)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := Evaluate(nil); err == nil {
		t.Error("empty outcomes should error")
	}
	if F1Macro(nil) != 0 {
		t.Error("F1Macro of empty should be 0")
	}
}

func TestEvaluateKnownValues(t *testing.T) {
	// Classic 2-class example:
	// truth a: 3 instances, 2 predicted a, 1 predicted b.
	// truth b: 2 instances, both predicted b.
	pairs := []Pair{
		{"a", "a"}, {"a", "a"}, {"a", "b"},
		{"b", "b"}, {"b", "b"},
	}
	r, err := Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// a: P=1, R=2/3, F=0.8 ; b: P=2/3, R=1, F=0.8
	for _, c := range r.Classes {
		if math.Abs(c.F1-0.8) > 1e-12 {
			t.Errorf("class %s F1 = %v, want 0.8", c.Class, c.F1)
		}
	}
	if math.Abs(r.MacroF1-0.8) > 1e-12 {
		t.Errorf("MacroF1 = %v, want 0.8", r.MacroF1)
	}
	if math.Abs(r.Accuracy-0.8) > 1e-12 {
		t.Errorf("Accuracy = %v", r.Accuracy)
	}
	// Weighted: (0.8*3 + 0.8*2)/5 = 0.8.
	if math.Abs(r.WeightedF1-0.8) > 1e-12 {
		t.Errorf("WeightedF1 = %v", r.WeightedF1)
	}
}

func TestPredictionOnlyClassExcludedFromMacro(t *testing.T) {
	// "unknown" appears only as a prediction: it must not dilute the
	// macro average (zero support).
	pairs := []Pair{
		{"a", "a"}, {"a", "unknown"}, {"b", "b"},
	}
	r, err := Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	// a: P=1, R=1/2, F=2/3 ; b: F=1. Macro over {a,b} = 5/6.
	if math.Abs(r.MacroF1-5.0/6.0) > 1e-12 {
		t.Errorf("MacroF1 = %v, want %v", r.MacroF1, 5.0/6.0)
	}
}

func TestUnknownAsTruthClass(t *testing.T) {
	// In the unknown-app protocols "unknown" is a genuine truth class.
	pairs := []Pair{
		{"unknown", "unknown"}, {"unknown", "a"}, {"a", "a"},
	}
	r, err := Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	var u ClassStats
	for _, c := range r.Classes {
		if c.Class == "unknown" {
			u = c
		}
	}
	if u.Support != 2 || u.TP != 1 || u.FN != 1 {
		t.Errorf("unknown class stats: %+v", u)
	}
}

func TestAllWrong(t *testing.T) {
	pairs := []Pair{{"a", "b"}, {"b", "a"}}
	r, err := Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 0 || r.MacroF1 != 0 {
		t.Errorf("all-wrong: %+v", r)
	}
}

// Property: accuracy equals the fraction of matching pairs, and all
// scores live in [0,1].
func TestEvaluateProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		classes := []string{"a", "b", "c", "unknown"}
		pairs := make([]Pair, len(raw))
		match := 0
		for i, b := range raw {
			tr := classes[int(b)%4]
			pr := classes[int(b/4)%4]
			pairs[i] = Pair{Truth: tr, Pred: pr}
			if tr == pr {
				match++
			}
		}
		r, err := Evaluate(pairs)
		if err != nil {
			return false
		}
		wantAcc := float64(match) / float64(len(raw))
		if math.Abs(r.Accuracy-wantAcc) > 1e-12 {
			return false
		}
		for _, v := range []float64{r.MacroF1, r.WeightedF1, r.MacroPrecision, r.MacroRecall} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	pairs := []Pair{
		{"a", "a"}, {"a", "b"}, {"b", "b"}, {"b", "b"},
	}
	m := Confusion(pairs)
	if len(m.Classes) != 2 {
		t.Fatalf("classes = %v", m.Classes)
	}
	// classes sorted: a=0, b=1.
	if m.Counts[0][0] != 1 || m.Counts[0][1] != 1 || m.Counts[1][1] != 2 || m.Counts[1][0] != 0 {
		t.Errorf("counts = %v", m.Counts)
	}
	s := m.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "2") {
		t.Errorf("String rendering missing content:\n%s", s)
	}
}

func TestConfusionIncludesPredictionOnlyClasses(t *testing.T) {
	m := Confusion([]Pair{{"a", "unknown"}})
	if len(m.Classes) != 2 {
		t.Fatalf("classes = %v", m.Classes)
	}
}

func TestReportString(t *testing.T) {
	r, err := Evaluate([]Pair{{"a", "a"}, {"b", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"precision", "recall", "f1-score", "support", "macro avg", "accuracy"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRowSumsEqualSupport(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		classes := []string{"x", "y", "z"}
		pairs := make([]Pair, len(raw))
		for i, b := range raw {
			pairs[i] = Pair{Truth: classes[int(b)%3], Pred: classes[int(b/3)%3]}
		}
		m := Confusion(pairs)
		r, _ := Evaluate(pairs)
		support := make(map[string]int)
		for _, c := range r.Classes {
			support[c.Class] = c.Support
		}
		for i, cl := range m.Classes {
			sum := 0
			for j := range m.Classes {
				sum += m.Counts[i][j]
			}
			if sum != support[cl] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
