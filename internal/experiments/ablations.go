package experiments

import (
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/telemetry"
)

// DepthAblation evaluates the normal-fold protocol at each fixed
// rounding depth (no inner tuning), exposing the pruning/exclusiveness
// trade-off of §5: shallow depths over-prune and collide, deep depths
// under-prune and stop repeating.
func (h *Harness) DepthAblation(depths []int) (map[int]float64, error) {
	if depths == nil {
		depths = []int{1, 2, 3, 4, 5, 6}
	}
	folds, err := h.DS.KFold(h.Folds, h.Seed)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(depths))
	for _, depth := range depths {
		cfg := core.Config{Metrics: h.Fit.Metrics, Windows: h.Fit.Windows, Depth: depth}
		var pairs []eval.Pair
		for _, f := range folds {
			d, err := core.Build(h.DS.Subset(f.Train), cfg)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, core.ClassifyWorkers(d, h.DS.Subset(f.Test), h.Fit.Workers)...)
		}
		out[depth] = eval.F1Macro(pairs)
	}
	return out, nil
}

// IntervalAblation evaluates the normal-fold protocol with the
// fingerprint window moved across the execution, justifying the paper's
// [60:120] choice: the initialization phase (first minute) is turbulent
// and makes poor fingerprints.
func (h *Harness) IntervalAblation(windows []telemetry.Window) (map[string]float64, error) {
	if windows == nil {
		windows = h.DS.Windows
	}
	folds, err := h.DS.KFold(h.Folds, h.Seed)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(windows))
	for _, w := range windows {
		fit := h.Fit
		fit.Windows = []telemetry.Window{w}
		var pairs []eval.Pair
		for _, f := range folds {
			d, _, err := core.Fit(h.DS.Subset(f.Train), fit)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, core.ClassifyWorkers(d, h.DS.Subset(f.Test), h.Fit.Workers)...)
		}
		out[w.String()] = eval.F1Macro(pairs)
	}
	return out, nil
}

// singleNodeSource restricts a WindowSource to one node: fingerprints
// exist only for that node, so recognition loses the cross-node vote.
type singleNodeSource struct {
	src  core.WindowSource
	node int
}

func (s singleNodeSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if node != s.node {
		return 0, false
	}
	return s.src.WindowMean(metric, node, w)
}

func (s singleNodeSource) NodeCount() int { return s.src.NodeCount() }

// VotingAblation contrasts recognition through all involved nodes (the
// EFD's design, §5 "it stands to reason that we recognize an
// application through all involved nodes") against recognition from a
// single node's fingerprints.
func (h *Harness) VotingAblation() (allNodes, singleNode float64, err error) {
	folds, err := h.DS.KFold(h.Folds, h.Seed)
	if err != nil {
		return 0, 0, err
	}
	var full, single []eval.Pair
	for _, f := range folds {
		d, _, err := core.Fit(h.DS.Subset(f.Train), h.Fit)
		if err != nil {
			return 0, 0, err
		}
		test := h.DS.Subset(f.Test)
		full = append(full, core.ClassifyWorkers(d, test, h.Fit.Workers)...)
		for _, e := range test.Executions {
			res := d.Recognize(singleNodeSource{src: core.Source(e), node: 0})
			single = append(single, eval.Pair{Truth: e.Label.App, Pred: res.Top()})
		}
	}
	return eval.F1Macro(full), eval.F1Macro(single), nil
}

// ComboResult reports a metric-combination ablation row.
type ComboResult struct {
	Name    string
	Metrics []string
	// Joint reports whether the metrics were fused into composite keys
	// (the paper's combinatorial fingerprints) or voted independently.
	Joint      bool
	NormalFold float64
	// HardUnknown measures robustness against unrecognized
	// applications — the axis the paper expects combinatorial
	// fingerprints to improve (§6).
	HardUnknown float64
}

// ComboAblation evaluates multi-metric fingerprint combinations (the
// paper's future-work direction). Multi-metric combos run twice: with
// independent per-metric keys voting together, and with the metrics
// fused into one composite key per (node, window). Joint keys are more
// exclusive, which is exactly what the hard-unknown protocol rewards;
// independent voting adds matching opportunities, which normal-fold
// recognition rewards.
func (h *Harness) ComboAblation(combos map[string][]string) ([]ComboResult, error) {
	if combos == nil {
		combos = map[string][]string{
			"headline (1 metric)": {apps.HeadlineMetric},
			"memory trio":         {apps.HeadlineMetric, "Committed_AS_meminfo", "Active_meminfo"},
			"memory+nic":          {apps.HeadlineMetric, "Committed_AS_meminfo", "AMO_PKTS_metric_set_nic"},
		}
	}
	var out []ComboResult
	for _, name := range sortedComboNames(combos) {
		metrics := combos[name]
		modes := []bool{false}
		if len(metrics) > 1 {
			modes = []bool{false, true}
		}
		for _, joint := range modes {
			sub := *h
			sub.Fit.Metrics = metrics
			sub.Fit.Joint = joint
			nf, err := sub.NormalFold()
			if err != nil {
				return nil, err
			}
			hu, err := sub.HardUnknown()
			if err != nil {
				return nil, err
			}
			label := name
			if len(metrics) > 1 {
				if joint {
					label += " [joint]"
				} else {
					label += " [voting]"
				}
			}
			out = append(out, ComboResult{
				Name:        label,
				Metrics:     metrics,
				Joint:       joint,
				NormalFold:  nf.EFD,
				HardUnknown: hu.EFD,
			})
		}
	}
	return out, nil
}

func sortedComboNames(m map[string][]string) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	// Order by ascending metric count, then name, so single-metric
	// baselines print first.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0; j-- {
			a, b := names[j-1], names[j]
			if len(m[a]) > len(m[b]) || (len(m[a]) == len(m[b]) && a > b) {
				names[j-1], names[j] = b, a
			} else {
				break
			}
		}
	}
	return names
}

// DictionaryGrowth measures dictionary size (keys) as a function of
// rounding depth over the full dataset — the "pruning" effect of
// Table 1's mechanism.
func (h *Harness) DictionaryGrowth(depths []int) (map[int]core.Stats, error) {
	if depths == nil {
		depths = []int{1, 2, 3, 4, 5, 6}
	}
	out := make(map[int]core.Stats, len(depths))
	for _, depth := range depths {
		d, err := core.Build(h.DS, core.Config{
			Metrics: h.Fit.Metrics, Windows: h.Fit.Windows, Depth: depth,
		})
		if err != nil {
			return nil, err
		}
		out[depth] = d.Stats()
	}
	return out, nil
}

// LatencyAblation reports how early the EFD can answer: it shifts the
// window end while keeping a 60-second width, measuring normal-fold F
// as a function of "seconds into the execution" at which the answer is
// available.
func (h *Harness) LatencyAblation() (map[string]float64, error) {
	windows := []telemetry.Window{
		{Start: 0, End: 30 * time.Second},
		{Start: 0, End: 60 * time.Second},
		{Start: 30 * time.Second, End: 90 * time.Second},
		{Start: 60 * time.Second, End: 120 * time.Second},
		{Start: 120 * time.Second, End: 180 * time.Second},
	}
	// Only windows that were summarized at ingestion can be evaluated.
	available := make(map[string]bool)
	for _, w := range h.DS.Windows {
		available[w.String()] = true
	}
	var usable []telemetry.Window
	for _, w := range windows {
		if available[w.String()] {
			usable = append(usable, w)
		}
	}
	return h.IntervalAblation(usable)
}
