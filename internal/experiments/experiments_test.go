package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/dataset"
	"repro/internal/taxonomist"
	"repro/internal/telemetry"
)

// testDS generates a small but structurally interesting dataset once:
// it includes the SP/BT near-collision and the input-dependent miniAMR.
var (
	testDSOnce sync.Once
	testDSVal  *dataset.Dataset
	testDSErr  error
)

func testDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	testDSOnce.Do(func() {
		cfg := dataset.DefaultGenConfig()
		cfg.Apps = []string{"ft", "mg", "sp", "bt", "cg", "CoMD", "miniAMR"}
		cfg.Repeats = 8
		cfg.Cluster.Metrics = []string{
			apps.HeadlineMetric, "Committed_AS_meminfo", "PI_PKTS_metric_set_nic",
			"MemTotal_meminfo",
		}
		testDSVal, testDSErr = dataset.Generate(cfg)
	})
	if testDSErr != nil {
		t.Fatal(testDSErr)
	}
	return testDSVal
}

func testHarness(t *testing.T) *Harness {
	h := NewHarness(testDS(t))
	h.Folds = 5
	return h
}

func TestNormalFold(t *testing.T) {
	h := testHarness(t)
	s, err := h.NormalFold()
	if err != nil {
		t.Fatal(err)
	}
	if s.EFD < 0.9 {
		t.Errorf("normal fold EFD = %v, want >= 0.9", s.EFD)
	}
	if s.HasTaxonomist {
		t.Error("no baseline configured, HasTaxonomist should be false")
	}
	if s.Report.Total != testDS(t).Len() {
		t.Errorf("pooled report total = %d", s.Report.Total)
	}
}

func TestProtocolOrdering(t *testing.T) {
	h := testHarness(t)
	nf, err := h.NormalFold()
	if err != nil {
		t.Fatal(err)
	}
	si, err := h.SoftInput()
	if err != nil {
		t.Fatal(err)
	}
	hi, err := h.HardInput()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 2 ordering: normal >= soft input >= hard
	// input (hard protocols are strictly harsher). Allow slack for
	// fold noise on the soft comparison.
	if si.EFD > nf.EFD+0.02 {
		t.Errorf("soft input (%v) should not beat normal fold (%v)", si.EFD, nf.EFD)
	}
	if hi.EFD >= si.EFD {
		t.Errorf("hard input (%v) should be below soft input (%v)", hi.EFD, si.EFD)
	}
	// miniAMR is strongly input-dependent: the hard-input protocol
	// must degrade.
	if hi.EFD > 0.95 {
		t.Errorf("hard input EFD = %v, expected visible degradation", hi.EFD)
	}
	if len(si.PerDimension) != 4 || len(hi.PerDimension) != 4 {
		t.Errorf("input protocols should report 4 dimensions: %v %v",
			si.PerDimension, hi.PerDimension)
	}
}

func TestUnknownProtocols(t *testing.T) {
	h := testHarness(t)
	su, err := h.SoftUnknown()
	if err != nil {
		t.Fatal(err)
	}
	hu, err := h.HardUnknown()
	if err != nil {
		t.Fatal(err)
	}
	if len(su.PerDimension) != 7 || len(hu.PerDimension) != 7 {
		t.Fatalf("unknown protocols should report one dimension per app")
	}
	// SP removed: its fingerprints collide with BT's at coarse depths,
	// so SP is the hard case the paper discusses; ft should be easy.
	if hu.PerDimension["ft"] < 0.9 {
		t.Errorf("hard unknown ft = %v, want >= 0.9", hu.PerDimension["ft"])
	}
	if hu.PerDimension["sp"] >= hu.PerDimension["ft"] {
		t.Errorf("sp (%v) should be harder than ft (%v) in hard unknown",
			hu.PerDimension["sp"], hu.PerDimension["ft"])
	}
	for k, v := range su.PerDimension {
		if v < 0 || v > 1 {
			t.Errorf("soft unknown %s = %v out of range", k, v)
		}
	}
}

func TestRunAllOrder(t *testing.T) {
	h := testHarness(t)
	scores, err := h.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"normal fold", "soft input", "soft unknown", "hard input", "hard unknown"}
	if len(scores) != len(want) {
		t.Fatalf("scores = %d", len(scores))
	}
	for i, s := range scores {
		if s.Protocol != want[i] {
			t.Errorf("protocol %d = %q, want %q", i, s.Protocol, want[i])
		}
	}
}

func TestTaxonomistIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("taxonomist integration is slow")
	}
	h := testHarness(t)
	h.Taxo = &TaxoConfig{
		Forest: taxonomist.ForestConfig{Trees: 15, Seed: 3, Parallel: true},
	}
	s, err := h.NormalFold()
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasTaxonomist {
		t.Fatal("baseline configured but not reported")
	}
	if s.Taxonomist < 0.9 {
		t.Errorf("Taxonomist normal fold = %v, want >= 0.9", s.Taxonomist)
	}
}

func TestMetricSweepOrdering(t *testing.T) {
	h := testHarness(t)
	rows, err := h.MetricSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FScore > rows[i-1].FScore {
			t.Errorf("sweep not sorted: %v", rows)
		}
	}
	// The constant metric must come last and score poorly; the
	// headline metric must be near the top.
	if rows[len(rows)-1].Metric != "MemTotal_meminfo" {
		t.Errorf("worst metric = %q, want MemTotal_meminfo", rows[len(rows)-1].Metric)
	}
	if rows[len(rows)-1].FScore > 0.5 {
		t.Errorf("constant metric scored %v", rows[len(rows)-1].FScore)
	}
	for _, r := range rows {
		if r.Metric == apps.HeadlineMetric && r.FScore < 0.9 {
			t.Errorf("headline metric scored %v", r.FScore)
		}
	}
}

func TestExampleDictionaryReproducesTable4Structure(t *testing.T) {
	d, err := ExampleDictionary(testDS(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().Depth != 2 {
		t.Fatalf("example dictionary depth = %d, want 2", d.Config().Depth)
	}
	// The SP/BT collision must be visible: at least one key holding
	// both sp and bt labels.
	collision := false
	for _, e := range d.Entries() {
		hasSP, hasBT := false, false
		for _, l := range e.Labels {
			if l.App == "sp" {
				hasSP = true
			}
			if l.App == "bt" {
				hasBT = true
			}
		}
		if hasSP && hasBT {
			collision = true
			break
		}
	}
	if !collision {
		t.Error("Table 4's SP/BT collision is missing from the example dictionary")
	}
	// miniAMR must appear with input-specific keys: find a key whose
	// labels are miniAMR-only and carry a single input.
	inputSpecific := false
	for _, e := range d.Entries() {
		onlyAMR := len(e.Labels) > 0
		inputs := make(map[apps.Input]bool)
		for _, l := range e.Labels {
			if l.App != "miniAMR" {
				onlyAMR = false
				break
			}
			inputs[l.Input] = true
		}
		if onlyAMR && len(inputs) == 1 {
			inputSpecific = true
			break
		}
	}
	if !inputSpecific {
		t.Error("Table 4's input-specific miniAMR keys are missing")
	}
}

func TestDepthAblationShape(t *testing.T) {
	h := testHarness(t)
	scores, err := h.DepthAblation(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 {
		t.Fatalf("depths = %d", len(scores))
	}
	// The trade-off curve: depth 3 beats both extremes.
	if !(scores[3] > scores[1] && scores[3] > scores[6]) {
		t.Errorf("depth trade-off shape violated: %v", scores)
	}
}

func TestIntervalAblationPrefersPaperWindow(t *testing.T) {
	h := testHarness(t)
	scores, err := h.IntervalAblation(nil)
	if err != nil {
		t.Fatal(err)
	}
	paper := scores[telemetry.PaperWindow.String()]
	early := scores["[0:60]"]
	if paper <= early {
		t.Errorf("[60:120] (%v) should beat [0:60] (%v): the init phase is noisy",
			paper, early)
	}
}

func TestVotingAblation(t *testing.T) {
	h := testHarness(t)
	all, single, err := h.VotingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if single > all+0.01 {
		t.Errorf("single-node (%v) should not beat all-node voting (%v)", single, all)
	}
}

func TestComboAblationJointImprovesHardUnknown(t *testing.T) {
	h := testHarness(t)
	combos := map[string][]string{
		"headline": {apps.HeadlineMetric},
		"combo":    {apps.HeadlineMetric, "Committed_AS_meminfo"},
	}
	rows, err := h.ComboAblation(combos)
	if err != nil {
		t.Fatal(err)
	}
	// headline (1 row) + combo in both voting and joint modes.
	if len(rows) != 3 {
		t.Fatalf("rows = %d: %+v", len(rows), rows)
	}
	if rows[0].Name != "headline" || rows[0].Joint {
		t.Errorf("single-metric combo should come first: %+v", rows[0])
	}
	var voting, joint ComboResult
	for _, r := range rows[1:] {
		if r.Joint {
			joint = r
		} else {
			voting = r
		}
	}
	// Composite keys are more exclusive than independently voting
	// keys, so they must do at least as well on the hard-unknown
	// protocol (the paper's §6 expectation).
	if joint.HardUnknown+1e-9 < voting.HardUnknown {
		t.Errorf("joint hard unknown (%v) should be >= voting (%v)",
			joint.HardUnknown, voting.HardUnknown)
	}
	// ...and joint keys must also beat the single metric on hard
	// unknown: two metrics must repeat simultaneously to fool them.
	if joint.HardUnknown+1e-9 < rows[0].HardUnknown {
		t.Errorf("joint hard unknown (%v) should be >= headline alone (%v)",
			joint.HardUnknown, rows[0].HardUnknown)
	}
	for _, r := range rows {
		if r.NormalFold < 0.85 {
			t.Errorf("%s normal fold = %v, suspiciously low", r.Name, r.NormalFold)
		}
	}
}

func TestDictionaryGrowth(t *testing.T) {
	h := testHarness(t)
	growth, err := h.DictionaryGrowth(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning monotonicity: coarser rounding (smaller depth) yields
	// fewer or equal keys.
	for d := 1; d < 6; d++ {
		if growth[d].Keys > growth[d+1].Keys {
			t.Errorf("depth %d has more keys (%d) than depth %d (%d)",
				d, growth[d].Keys, d+1, growth[d+1].Keys)
		}
	}
	if growth[1].Keys >= growth[6].Keys {
		t.Errorf("depth 1 (%d keys) should be far smaller than depth 6 (%d)",
			growth[1].Keys, growth[6].Keys)
	}
}

func TestLatencyAblation(t *testing.T) {
	h := testHarness(t)
	scores, err := h.LatencyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no latency points")
	}
	for k, v := range scores {
		if v < 0 || v > 1 {
			t.Errorf("latency %s = %v out of range", k, v)
		}
	}
}

func TestRenderers(t *testing.T) {
	var b strings.Builder
	RenderTable1(&b)
	if !strings.Contains(b.String(), "1358") || !strings.Contains(b.String(), "0.04") {
		t.Errorf("Table 1 rendering:\n%s", b.String())
	}

	b.Reset()
	RenderTable2(&b, testDS(t))
	for _, want := range []string{"miniAMR", "Total executions", "176"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table 2 missing %q:\n%s", want, b.String())
		}
	}

	b.Reset()
	scores := []Score{
		{Protocol: "normal fold", EFD: 0.99, Taxonomist: 0.98, HasTaxonomist: true},
		{Protocol: "hard input", EFD: 0.75},
	}
	RenderFigure2(&b, scores)
	out := b.String()
	if !strings.Contains(out, "normal fold") || !strings.Contains(out, "not conducted") {
		t.Errorf("Figure 2 rendering:\n%s", out)
	}

	b.Reset()
	RenderTable3(&b, []MetricScore{
		{Metric: "nr_mapped_vmstat", FScore: 1.0, Depth: 3},
		{Metric: "x", FScore: 0.5, Depth: 2},
	}, 1)
	if !strings.Contains(b.String(), "nr_mapped_vmstat") || !strings.Contains(b.String(), "...") {
		t.Errorf("Table 3 rendering:\n%s", b.String())
	}

	b.Reset()
	RenderPerDimension(&b, Score{Protocol: "p", PerDimension: map[string]float64{"X": 0.5}})
	if !strings.Contains(b.String(), "X") {
		t.Errorf("per-dimension rendering:\n%s", b.String())
	}
}
