package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// goldenConfig is the small seeded grid the byte-identity goldens are
// rendered from: two applications, three metrics, enough repeats for
// three folds. Small enough to regenerate in well under a second,
// structured enough to exercise every protocol.
func goldenConfig() dataset.GenConfig {
	cfg := dataset.DefaultGenConfig()
	cfg.Apps = []string{"ft", "mg"}
	cfg.Cluster.Metrics = []string{
		"nr_mapped_vmstat",
		"Committed_AS_meminfo",
		"MemTotal_meminfo",
	}
	cfg.Repeats = 4
	cfg.Seed = 7
	return cfg
}

// renderGoldenReport produces the full experiment report for the golden
// grid: dataset composition, all five protocols, the per-metric sweep,
// and the pooled normal-fold classification report. Everything in it is
// derived from rounded fingerprint keys and integer counts, so the
// bytes must survive any refactor of the telemetry/extraction layers.
func renderGoldenReport(t *testing.T) []byte {
	t.Helper()
	ds, err := dataset.Generate(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(ds)
	h.Folds = 3
	var buf bytes.Buffer
	RenderTable2(&buf, ds)
	scores, err := h.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	RenderFigure2(&buf, scores)
	rows, err := h.MetricSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	RenderTable3(&buf, rows, 0)
	normal, err := h.NormalFold()
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	fmt.Fprint(&buf, normal.Report.String())
	return buf.Bytes()
}

// TestGoldenReport pins the rendered experiment report byte-for-byte.
// The golden file was captured before the columnar telemetry refactor
// (PR 3), so a pass here means the refactored ingest/extraction path
// reproduces the original reports exactly. Regenerate (only when an
// intentional behaviour change demands it) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenReport
func TestGoldenReport(t *testing.T) {
	got := renderGoldenReport(t)
	path := filepath.Join("testdata", "golden_report.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report differs from golden:\n%s", firstDiff(got, want))
	}
}

// firstDiff renders the first line where two outputs diverge.
func firstDiff(got, want []byte) string {
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
