// Package experiments implements the paper's evaluation (§4): the five
// recognition protocols of Figure 2 (normal fold, soft input, soft
// unknown, hard input, hard unknown) for both the EFD and the
// Taxonomist baseline, the per-metric sweep of Table 3, the example
// dictionary of Table 4, and the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/par"
	"repro/internal/taxonomist"
)

// Harness runs the evaluation protocols over one dataset. Outer folds
// evaluate concurrently on a bounded worker pool; per-fold results are
// assembled in fold order, so every protocol score is byte-identical to
// a sequential run.
type Harness struct {
	// DS is the labelled dataset.
	DS *dataset.Dataset
	// Fit configures EFD training (metric, windows, candidate depths).
	Fit core.FitConfig
	// Folds is the outer cross-validation fold count (paper: 5).
	Folds int
	// Seed drives fold shuffling.
	Seed int64
	// Taxo configures the Taxonomist baseline; nil skips it (the
	// baseline costs far more compute than the EFD).
	Taxo *TaxoConfig
	// Workers bounds the outer-fold worker pool: 0 means GOMAXPROCS,
	// 1 runs folds sequentially. Scores do not depend on it.
	Workers int
}

// TaxoConfig bundles the baseline settings.
type TaxoConfig struct {
	// Features selects the metrics Taxonomist extracts statistics
	// from; nil uses every metric (the baseline's "rich monitoring
	// data" setting).
	Features taxonomist.FeatureConfig
	// Forest configures the classifier.
	Forest taxonomist.ForestConfig
	// Threshold is the unknown-detection confidence (default 0.5).
	Threshold float64
}

// NewHarness returns a harness with the paper's defaults: 5 folds, the
// headline EFD configuration, and no baseline.
func NewHarness(ds *dataset.Dataset) *Harness {
	return &Harness{DS: ds, Fit: core.DefaultFitConfig(), Folds: 5, Seed: 42}
}

// Score is one protocol outcome.
type Score struct {
	// Protocol names the experiment ("normal fold", "soft input", ...).
	Protocol string
	// EFD is the macro F-score of the EFD.
	EFD float64
	// Taxonomist is the baseline's macro F-score; NaN-free: valid only
	// when HasTaxonomist.
	Taxonomist    float64
	HasTaxonomist bool
	// PerDimension breaks the score down by removed input size or
	// application (empty for the normal fold).
	PerDimension map[string]float64
	// Report is the pooled EFD classification report.
	Report eval.Report
}

// String renders the score compactly.
func (s Score) String() string {
	if s.HasTaxonomist {
		return fmt.Sprintf("%-14s EFD=%.3f Taxonomist=%.3f", s.Protocol, s.EFD, s.Taxonomist)
	}
	return fmt.Sprintf("%-14s EFD=%.3f", s.Protocol, s.EFD)
}

// efdPairs fits a dictionary on train and classifies test, mapping the
// truth of executions whose application is in unknownApps to "unknown"
// (they should NOT be recognized).
func (h *Harness) efdPairs(train, test *dataset.Dataset, unknownApps map[string]bool) ([]eval.Pair, error) {
	d, _, err := core.Fit(train, h.Fit)
	if err != nil {
		return nil, err
	}
	pairs := core.ClassifyWorkers(d, test, h.Fit.Workers)
	for i, e := range test.Executions {
		if unknownApps[e.Label.App] {
			pairs[i].Truth = core.Unknown
		}
	}
	return pairs, nil
}

// taxoPairs trains the baseline on train and classifies test at node
// granularity (Taxonomist's setting), mapping unknown-app truths like
// efdPairs.
func (h *Harness) taxoPairs(train, test *dataset.Dataset, unknownApps map[string]bool) ([]eval.Pair, error) {
	trainFV, _, err := taxonomist.Extract(train, h.Taxo.Features)
	if err != nil {
		return nil, err
	}
	testFV, _, err := taxonomist.Extract(test, h.Taxo.Features)
	if err != nil {
		return nil, err
	}
	forest, err := taxonomist.TrainForest(trainFV, h.Taxo.Forest)
	if err != nil {
		return nil, err
	}
	if h.Taxo.Threshold > 0 {
		if err := forest.SetThreshold(h.Taxo.Threshold); err != nil {
			return nil, err
		}
	}
	preds := forest.PredictBatch(testFV)
	pairs := make([]eval.Pair, len(testFV))
	for i, fv := range testFV {
		truth := fv.App
		if unknownApps[truth] {
			truth = taxonomist.Unknown
		}
		pairs[i] = eval.Pair{Truth: truth, Pred: preds[i]}
	}
	return pairs, nil
}

// foldPairs carries one fold's classification outcomes.
type foldPairs struct {
	efd  []eval.Pair
	taxo []eval.Pair
}

// concat appends other's pairs, preserving order.
func (fp *foldPairs) concat(other foldPairs) {
	fp.efd = append(fp.efd, other.efd...)
	fp.taxo = append(fp.taxo, other.taxo...)
}

// foldRun calls fn once per outer fold with the fold's train and test
// subsets, running folds concurrently on the harness worker pool, and
// returns the concatenation of the per-fold results in fold order —
// exactly the sequence a sequential loop with appends would have
// produced. The first error (by fold index) wins.
func (h *Harness) foldRun(fn func(train, test *dataset.Dataset) (foldPairs, error)) (foldPairs, error) {
	folds, err := h.DS.KFold(h.Folds, h.Seed)
	if err != nil {
		return foldPairs{}, err
	}
	outs := make([]foldPairs, len(folds))
	errs := make([]error, len(folds))
	par.For(len(folds), h.Workers, func(i int) {
		outs[i], errs[i] = fn(h.DS.Subset(folds[i].Train), h.DS.Subset(folds[i].Test))
	})
	var merged foldPairs
	for i := range outs {
		if errs[i] != nil {
			return foldPairs{}, errs[i]
		}
		merged.concat(outs[i])
	}
	return merged, nil
}

// meanOf averages the values of a per-dimension score map.
func meanOf(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s / float64(len(m))
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// removableInputs lists the input sizes present in the dataset; these
// are the dimensions the input protocols iterate over.
func (h *Harness) removableInputs() []apps.Input {
	return h.DS.Inputs()
}
