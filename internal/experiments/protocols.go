package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/par"
)

// protocolFold evaluates one fold for a protocol: EFD pairs always,
// baseline pairs when configured.
func (h *Harness) protocolFold(train, test *dataset.Dataset, unknownApps map[string]bool) (foldPairs, error) {
	var fp foldPairs
	p, err := h.efdPairs(train, test, unknownApps)
	if err != nil {
		return fp, err
	}
	fp.efd = p
	if h.Taxo != nil {
		fp.taxo, err = h.taxoPairs(train, test, unknownApps)
		if err != nil {
			return fp, err
		}
	}
	return fp, nil
}

// NormalFold runs protocol 1: 5-fold cross-validation on the full
// dataset — every application and input size appears in both learning
// and testing.
func (h *Harness) NormalFold() (Score, error) {
	s := Score{Protocol: "normal fold"}
	merged, err := h.foldRun(func(train, test *dataset.Dataset) (foldPairs, error) {
		return h.protocolFold(train, test, nil)
	})
	if err != nil {
		return s, err
	}
	s.Report, err = eval.Evaluate(merged.efd)
	if err != nil {
		return s, err
	}
	s.EFD = s.Report.MacroF1
	if h.Taxo != nil {
		s.Taxonomist = eval.F1Macro(merged.taxo)
		s.HasTaxonomist = true
	}
	return s, nil
}

// SoftInput runs protocol 2: it extends the normal fold by removing one
// input size from each fold's learning set while testing sets stay the
// same. Recognition by application name still counts as correct (e.g.
// returning ft_X for an ft_Y execution), so the protocol measures
// whether fingerprints generalize across input sizes. Results are
// averaged over the removed inputs.
func (h *Harness) SoftInput() (Score, error) {
	s := Score{Protocol: "soft input", PerDimension: make(map[string]float64)}
	var allEFD, allTaxo []eval.Pair
	for _, in := range h.removableInputs() {
		merged, err := h.foldRun(func(train, test *dataset.Dataset) (foldPairs, error) {
			return h.protocolFold(train.WithoutInput(in), test, nil)
		})
		if err != nil {
			return s, err
		}
		s.PerDimension[string(in)] = eval.F1Macro(merged.efd)
		allEFD = append(allEFD, merged.efd...)
		allTaxo = append(allTaxo, merged.taxo...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(allEFD)
	if err != nil {
		return s, err
	}
	if h.Taxo != nil {
		s.Taxonomist = eval.F1Macro(allTaxo)
		s.HasTaxonomist = true
	}
	return s, nil
}

// SoftUnknown runs protocol 3: it extends the normal fold by removing
// one application from each fold's learning set while testing sets stay
// the same. The removed application's executions should find no match —
// predicting "unknown" for them is the correct outcome. Results are
// averaged over the removed applications.
func (h *Harness) SoftUnknown() (Score, error) {
	s := Score{Protocol: "soft unknown", PerDimension: make(map[string]float64)}
	var allEFD, allTaxo []eval.Pair
	for _, app := range h.DS.Apps() {
		unknown := map[string]bool{app: true}
		merged, err := h.foldRun(func(train, test *dataset.Dataset) (foldPairs, error) {
			return h.protocolFold(train.WithoutApp(app), test, unknown)
		})
		if err != nil {
			return s, err
		}
		s.PerDimension[app] = eval.F1Macro(merged.efd)
		allEFD = append(allEFD, merged.efd...)
		allTaxo = append(allTaxo, merged.taxo...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(allEFD)
	if err != nil {
		return s, err
	}
	if h.Taxo != nil {
		s.Taxonomist = eval.F1Macro(allTaxo)
		s.HasTaxonomist = true
	}
	return s, nil
}

// HardInput runs protocol 4: the learning set contains all input sizes
// but one, and the testing set contains exclusively the held-out input
// size. The Taxonomist paper did not conduct this experiment. Results
// are averaged over the held-out inputs.
func (h *Harness) HardInput() (Score, error) {
	s := Score{Protocol: "hard input", PerDimension: make(map[string]float64)}
	inputs := h.removableInputs()
	dims := make([][]eval.Pair, len(inputs))
	errs := make([]error, len(inputs))
	par.For(len(inputs), h.Workers, func(i int) {
		in := inputs[i]
		train := h.DS.WithoutInput(in)
		test := h.DS.OnlyInput(in)
		if train.Len() == 0 || test.Len() == 0 {
			errs[i] = fmt.Errorf("experiments: hard input %s yields an empty split", in)
			return
		}
		dims[i], errs[i] = h.efdPairs(train, test, nil)
	})
	var all []eval.Pair
	for i, in := range inputs {
		if errs[i] != nil {
			return s, errs[i]
		}
		s.PerDimension[string(in)] = eval.F1Macro(dims[i])
		all = append(all, dims[i]...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(all)
	return s, err
}

// HardUnknown runs protocol 5: the learning set contains all
// applications but one, and the testing set contains exclusively the
// held-out application. Finding no matching fingerprint — predicting
// "unknown" — is the correct outcome for every test execution. The
// Taxonomist paper did not conduct this experiment. Results are
// averaged over the held-out applications.
func (h *Harness) HardUnknown() (Score, error) {
	s := Score{Protocol: "hard unknown", PerDimension: make(map[string]float64)}
	appNames := h.DS.Apps()
	dims := make([][]eval.Pair, len(appNames))
	errs := make([]error, len(appNames))
	par.For(len(appNames), h.Workers, func(i int) {
		app := appNames[i]
		train := h.DS.WithoutApp(app)
		test := h.DS.OnlyApp(app)
		if train.Len() == 0 || test.Len() == 0 {
			errs[i] = fmt.Errorf("experiments: hard unknown %s yields an empty split", app)
			return
		}
		dims[i], errs[i] = h.efdPairs(train, test, map[string]bool{app: true})
	})
	var all []eval.Pair
	for i, app := range appNames {
		if errs[i] != nil {
			return s, errs[i]
		}
		s.PerDimension[app] = eval.F1Macro(dims[i])
		all = append(all, dims[i]...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(all)
	return s, err
}

// RunAll executes the five protocols in the paper's order.
func (h *Harness) RunAll() ([]Score, error) {
	type runner struct {
		name string
		fn   func() (Score, error)
	}
	runners := []runner{
		{"normal fold", h.NormalFold},
		{"soft input", h.SoftInput},
		{"soft unknown", h.SoftUnknown},
		{"hard input", h.HardInput},
		{"hard unknown", h.HardUnknown},
	}
	out := make([]Score, 0, len(runners))
	for _, r := range runners {
		s, err := r.fn()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
