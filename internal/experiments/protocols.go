package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/eval"
)

// NormalFold runs protocol 1: 5-fold cross-validation on the full
// dataset — every application and input size appears in both learning
// and testing.
func (h *Harness) NormalFold() (Score, error) {
	s := Score{Protocol: "normal fold"}
	var efd, taxo []eval.Pair
	err := h.foldRun(func(train, test *dataset.Dataset) error {
		p, err := h.efdPairs(train, test, nil)
		if err != nil {
			return err
		}
		efd = append(efd, p...)
		if h.Taxo != nil {
			tp, err := h.taxoPairs(train, test, nil)
			if err != nil {
				return err
			}
			taxo = append(taxo, tp...)
		}
		return nil
	})
	if err != nil {
		return s, err
	}
	s.Report, err = eval.Evaluate(efd)
	if err != nil {
		return s, err
	}
	s.EFD = s.Report.MacroF1
	if h.Taxo != nil {
		s.Taxonomist = eval.F1Macro(taxo)
		s.HasTaxonomist = true
	}
	return s, nil
}

// SoftInput runs protocol 2: it extends the normal fold by removing one
// input size from each fold's learning set while testing sets stay the
// same. Recognition by application name still counts as correct (e.g.
// returning ft_X for an ft_Y execution), so the protocol measures
// whether fingerprints generalize across input sizes. Results are
// averaged over the removed inputs.
func (h *Harness) SoftInput() (Score, error) {
	s := Score{Protocol: "soft input", PerDimension: make(map[string]float64)}
	var allEFD, allTaxo []eval.Pair
	for _, in := range h.removableInputs() {
		var efd, taxo []eval.Pair
		err := h.foldRun(func(train, test *dataset.Dataset) error {
			p, err := h.efdPairs(train.WithoutInput(in), test, nil)
			if err != nil {
				return err
			}
			efd = append(efd, p...)
			if h.Taxo != nil {
				tp, err := h.taxoPairs(train.WithoutInput(in), test, nil)
				if err != nil {
					return err
				}
				taxo = append(taxo, tp...)
			}
			return nil
		})
		if err != nil {
			return s, err
		}
		s.PerDimension[string(in)] = eval.F1Macro(efd)
		allEFD = append(allEFD, efd...)
		allTaxo = append(allTaxo, taxo...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(allEFD)
	if err != nil {
		return s, err
	}
	if h.Taxo != nil {
		s.Taxonomist = eval.F1Macro(allTaxo)
		s.HasTaxonomist = true
	}
	return s, nil
}

// SoftUnknown runs protocol 3: it extends the normal fold by removing
// one application from each fold's learning set while testing sets stay
// the same. The removed application's executions should find no match —
// predicting "unknown" for them is the correct outcome. Results are
// averaged over the removed applications.
func (h *Harness) SoftUnknown() (Score, error) {
	s := Score{Protocol: "soft unknown", PerDimension: make(map[string]float64)}
	var allEFD, allTaxo []eval.Pair
	for _, app := range h.DS.Apps() {
		unknown := map[string]bool{app: true}
		var efd, taxo []eval.Pair
		err := h.foldRun(func(train, test *dataset.Dataset) error {
			p, err := h.efdPairs(train.WithoutApp(app), test, unknown)
			if err != nil {
				return err
			}
			efd = append(efd, p...)
			if h.Taxo != nil {
				tp, err := h.taxoPairs(train.WithoutApp(app), test, unknown)
				if err != nil {
					return err
				}
				taxo = append(taxo, tp...)
			}
			return nil
		})
		if err != nil {
			return s, err
		}
		s.PerDimension[app] = eval.F1Macro(efd)
		allEFD = append(allEFD, efd...)
		allTaxo = append(allTaxo, taxo...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(allEFD)
	if err != nil {
		return s, err
	}
	if h.Taxo != nil {
		s.Taxonomist = eval.F1Macro(allTaxo)
		s.HasTaxonomist = true
	}
	return s, nil
}

// HardInput runs protocol 4: the learning set contains all input sizes
// but one, and the testing set contains exclusively the held-out input
// size. The Taxonomist paper did not conduct this experiment. Results
// are averaged over the held-out inputs.
func (h *Harness) HardInput() (Score, error) {
	s := Score{Protocol: "hard input", PerDimension: make(map[string]float64)}
	var all []eval.Pair
	for _, in := range h.removableInputs() {
		train := h.DS.WithoutInput(in)
		test := h.DS.OnlyInput(in)
		if train.Len() == 0 || test.Len() == 0 {
			return s, fmt.Errorf("experiments: hard input %s yields an empty split", in)
		}
		pairs, err := h.efdPairs(train, test, nil)
		if err != nil {
			return s, err
		}
		s.PerDimension[string(in)] = eval.F1Macro(pairs)
		all = append(all, pairs...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(all)
	return s, err
}

// HardUnknown runs protocol 5: the learning set contains all
// applications but one, and the testing set contains exclusively the
// held-out application. Finding no matching fingerprint — predicting
// "unknown" — is the correct outcome for every test execution. The
// Taxonomist paper did not conduct this experiment. Results are
// averaged over the held-out applications.
func (h *Harness) HardUnknown() (Score, error) {
	s := Score{Protocol: "hard unknown", PerDimension: make(map[string]float64)}
	var all []eval.Pair
	for _, app := range h.DS.Apps() {
		train := h.DS.WithoutApp(app)
		test := h.DS.OnlyApp(app)
		if train.Len() == 0 || test.Len() == 0 {
			return s, fmt.Errorf("experiments: hard unknown %s yields an empty split", app)
		}
		pairs, err := h.efdPairs(train, test, map[string]bool{app: true})
		if err != nil {
			return s, err
		}
		s.PerDimension[app] = eval.F1Macro(pairs)
		all = append(all, pairs...)
	}
	s.EFD = meanOf(s.PerDimension)
	var err error
	s.Report, err = eval.Evaluate(all)
	return s, err
}

// RunAll executes the five protocols in the paper's order.
func (h *Harness) RunAll() ([]Score, error) {
	type runner struct {
		name string
		fn   func() (Score, error)
	}
	runners := []runner{
		{"normal fold", h.NormalFold},
		{"soft input", h.SoftInput},
		{"soft unknown", h.SoftUnknown},
		{"hard input", h.HardInput},
		{"hard unknown", h.HardUnknown},
	}
	out := make([]Score, 0, len(runners))
	for _, r := range runners {
		s, err := r.fn()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.name, err)
		}
		out = append(out, s)
	}
	return out, nil
}
