package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/apps"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// RenderTable1 prints the rounding-depth mechanism on the paper's
// example values (Table 1).
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Rounding Depth for Measurements")
	fmt.Fprintf(w, "%10s |", "Original")
	for d := 5; d >= 1; d-- {
		fmt.Fprintf(w, "%10d", d)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 62))
	for _, v := range []float64{1358.0, 5.28, 0.038} {
		fmt.Fprintf(w, "%10s |", stats.FormatKey(v))
		for d := 5; d >= 1; d-- {
			if d >= stats.SignificantDigits(v) {
				if d > stats.SignificantDigits(v) {
					fmt.Fprintf(w, "%10s", "-")
					continue
				}
			}
			fmt.Fprintf(w, "%10s", stats.FormatKey(stats.RoundDepth(v, d)))
		}
		fmt.Fprintln(w)
	}
}

// RenderTable2 prints the dataset composition (Table 2).
func RenderTable2(w io.Writer, ds *dataset.Dataset) {
	fmt.Fprintln(w, "Table 2: Dataset used for Evaluation")
	names := ds.Apps()
	var inputs []string
	for _, in := range ds.Inputs() {
		inputs = append(inputs, string(in))
	}
	nodeCounts := make(map[int]int) // nodes -> executions
	for _, e := range ds.Executions {
		nodeCounts[e.NumNodes]++
	}
	fmt.Fprintf(w, "  Applications:        %s\n", strings.Join(names, ", "))
	fmt.Fprintf(w, "  Input sizes:         %s (L only for a subset)\n", strings.Join(inputs, ", "))
	for nodes, count := range nodeCounts {
		fmt.Fprintf(w, "  Node count %2d:       %d executions\n", nodes, count)
	}
	fmt.Fprintf(w, "  Label combinations:  %d\n", len(ds.Labels()))
	fmt.Fprintf(w, "  Total executions:    %d\n", ds.Len())
	fmt.Fprintf(w, "  System metrics:      %d\n", len(ds.Metrics()))
}

// RenderFigure2 prints the protocol comparison as an ASCII bar chart
// (Figure 2). Scores missing a Taxonomist value render a single bar,
// matching the paper's note that the hard experiments were not
// conducted in the Taxonomist work.
func RenderFigure2(w io.Writer, scores []Score) {
	fmt.Fprintln(w, "Figure 2: EFD vs Taxonomist (macro F-score)")
	fmt.Fprintln(w, "  EFD: 1 metric (nr_mapped_vmstat), first 2 minutes")
	fmt.Fprintln(w, "  Taxonomist: all metrics, entire execution window")
	fmt.Fprintln(w)
	const width = 50
	bar := func(v float64) string {
		n := int(v*width + 0.5)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		return strings.Repeat("#", n) + strings.Repeat(".", width-n)
	}
	for _, s := range scores {
		fmt.Fprintf(w, "%-14s EFD        |%s| %.3f\n", s.Protocol, bar(s.EFD), s.EFD)
		if s.HasTaxonomist {
			fmt.Fprintf(w, "%-14s Taxonomist |%s| %.3f\n", "", bar(s.Taxonomist), s.Taxonomist)
		} else {
			fmt.Fprintf(w, "%-14s Taxonomist |%s| (not conducted)\n", "", strings.Repeat(" ", width))
		}
		fmt.Fprintln(w)
	}
}

// RenderTable3 prints the per-metric F-score table (Table 3), top
// results first. limit <= 0 prints every row.
func RenderTable3(w io.Writer, rows []MetricScore, limit int) {
	fmt.Fprintln(w, "Table 3: Individual System Metric Results (normal fold)")
	fmt.Fprintf(w, "%-34s %8s %6s\n", "System Metric Name", "F-score", "depth")
	n := len(rows)
	if limit > 0 && limit < n {
		n = limit
	}
	for _, r := range rows[:n] {
		fmt.Fprintf(w, "%-34s %8.2f %6d\n", r.Metric, r.FScore, r.Depth)
	}
	if n < len(rows) {
		fmt.Fprintf(w, "%-34s %8s\n", "...", "...")
	}
}

// RenderPerDimension prints a protocol's per-removed-dimension
// breakdown.
func RenderPerDimension(w io.Writer, s Score) {
	if len(s.PerDimension) == 0 {
		return
	}
	fmt.Fprintf(w, "%s, by removed dimension:\n", s.Protocol)
	for _, k := range sortedKeys(s.PerDimension) {
		fmt.Fprintf(w, "  %-12s %.3f\n", k, s.PerDimension[k])
	}
}

// HeadlineMetricName re-exports the paper's single headline metric for
// presentation layers.
const HeadlineMetricName = apps.HeadlineMetric
