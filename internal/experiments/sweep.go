package experiments

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/par"
)

// MetricScore is one row of Table 3: a system metric and its
// normal-fold F-score when used as the EFD's single metric.
type MetricScore struct {
	Metric string
	FScore float64
	// Depth is the rounding depth cross-validation selected most often
	// across folds.
	Depth int
}

// MetricSweep evaluates every listed metric individually under the
// normal-fold protocol, reproducing Table 3. Metrics are evaluated
// concurrently; rows come back sorted by descending F-score, ties by
// name, the order the paper lists them in.
func (h *Harness) MetricSweep(metrics []string) ([]MetricScore, error) {
	if metrics == nil {
		metrics = h.DS.Metrics()
	}
	folds, err := h.DS.KFold(h.Folds, h.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]MetricScore, len(metrics))
	errs := make([]error, len(metrics))
	par.For(len(metrics), h.Workers, func(i int) {
		metric := metrics[i]
		fit := h.Fit
		fit.Metrics = []string{metric}
		var pairs []eval.Pair
		depthVotes := make(map[int]int)
		for _, f := range folds {
			d, rep, err := core.Fit(h.DS.Subset(f.Train), fit)
			if err != nil {
				errs[i] = err
				return
			}
			depthVotes[rep.BestDepth]++
			pairs = append(pairs, core.ClassifyWorkers(d, h.DS.Subset(f.Test), h.Fit.Workers)...)
		}
		best, bestVotes := 0, -1
		for depth, v := range depthVotes {
			if v > bestVotes || (v == bestVotes && depth < best) {
				best, bestVotes = depth, v
			}
		}
		out[i] = MetricScore{Metric: metric, FScore: eval.F1Macro(pairs), Depth: best}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].FScore != out[b].FScore {
			return out[a].FScore > out[b].FScore
		}
		return out[a].Metric < out[b].Metric
	})
	return out, nil
}

// ExampleDictionary reproduces Table 4: a dictionary built from a
// subset of applications and input sizes at a fixed rounding depth 2,
// on the headline metric.
func ExampleDictionary(ds *dataset.Dataset) (*core.Dictionary, error) {
	subset := map[string]bool{
		"ft": true, "mg": true, "sp": true, "bt": true,
		"lu": true, "miniGhost": true, "miniAMR": true,
	}
	sub := ds.Filter(func(e *dataset.Execution) bool {
		return subset[e.Label.App] && e.Label.Input != "L"
	})
	return core.Build(sub, core.DefaultConfig(2))
}
