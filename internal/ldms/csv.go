package ldms

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// WriteNodeCSV writes one node's telemetry in the per-node CSV layout
// of the Taxonomist artifact: a "#Time" column of seconds since
// execution start followed by one column per metric, one row per
// sampling tick. Metrics are ordered alphabetically; series are assumed
// to share the 1 Hz grid (the collector's output does).
func WriteNodeCSV(w io.Writer, ns *telemetry.NodeSet, node int) error {
	metrics := ns.Metrics()
	if len(metrics) == 0 {
		return fmt.Errorf("ldms: node set has no metrics")
	}
	series := make([]*telemetry.Series, len(metrics))
	rows := 0
	for i, m := range metrics {
		s := ns.Get(node, m)
		if s == nil {
			return fmt.Errorf("ldms: node %d has no series for %q", node, m)
		}
		series[i] = s
		if i == 0 {
			rows = s.Len()
		} else if s.Len() != rows {
			return fmt.Errorf("ldms: node %d series %q has %d samples, expected %d",
				node, m, s.Len(), rows)
		}
	}
	cw := csv.NewWriter(w)
	header := append([]string{"#Time"}, metrics...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for r := 0; r < rows; r++ {
		rec[0] = strconv.FormatFloat(series[0].Samples[r].Offset.Seconds(), 'f', 1, 64)
		for i, s := range series {
			rec[i+1] = strconv.FormatFloat(s.Samples[r].Value, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadNodeCSV parses a per-node CSV written by WriteNodeCSV back into
// series for the given node, returned inside a fresh NodeSet.
func ReadNodeCSV(r io.Reader, node int) (*telemetry.NodeSet, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ldms: read CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "#Time" {
		return nil, fmt.Errorf("ldms: bad CSV header %v", header)
	}
	metrics := header[1:]
	series := make([]*telemetry.Series, len(metrics))
	for i, m := range metrics {
		series[i] = telemetry.NewSeries(m, node, 0)
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ldms: read CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("ldms: CSV line %d has %d fields, want %d",
				line, len(rec), len(header))
		}
		secs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("ldms: CSV line %d time: %w", line, err)
		}
		offset := time.Duration(secs * float64(time.Second))
		for i := range metrics {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("ldms: CSV line %d field %s: %w", line, metrics[i], err)
			}
			series[i].Append(offset, v)
		}
	}
	ns := telemetry.NewNodeSet()
	for _, s := range series {
		// CSV rows are not guaranteed time-ordered; restore order here
		// so windowing never sees an unsorted series.
		if !s.Sorted() {
			s.Sort()
		}
		ns.Put(s)
	}
	return ns, nil
}

// WriteExecutionCSV writes every node of an execution through w,
// separated per node by a comment line "# node N". It is a single-file
// convenience over WriteNodeCSV for tooling.
func WriteExecutionCSV(w io.Writer, ns *telemetry.NodeSet) error {
	for _, node := range ns.Nodes() {
		if _, err := fmt.Fprintf(w, "# node %d\n", node); err != nil {
			return err
		}
		if err := WriteNodeCSV(w, ns, node); err != nil {
			return err
		}
	}
	return nil
}
