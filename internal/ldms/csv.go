package ldms

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
	"unsafe"

	"repro/internal/par"
	"repro/internal/telemetry"
)

// The CSV codec is byte-oriented: the writer renders rows into one
// reused []byte with strconv.AppendFloat (no per-cell strings, no
// encoding/csv state machine), and the reader walks a bufio.Reader
// line by line, splitting fields in place and parsing floats through a
// zero-copy string view. The format itself is unchanged — plain
// comma-separated numeric fields, no quoting — except that offsets are
// now written in full precision (see WriteNodeCSV). ReadNodeCSVStd, the
// original encoding/csv implementation, is kept as the differential
// baseline for the fuzz harness and the ingest benchmark.

// WriteNodeCSV writes one node's telemetry in the per-node CSV layout
// of the Taxonomist artifact: a "#Time" column of seconds since
// execution start followed by one column per metric, one row per
// sampling tick. Metrics are ordered alphabetically; series are assumed
// to share the 1 Hz grid (the collector's output does).
//
// Offsets are written in shortest round-trippable precision, not the
// historical one-decimal form, which silently collided sub-decisecond
// offsets and drifted non-integral ones through the parser's
// truncating float→Duration conversion.
func WriteNodeCSV(w io.Writer, ns *telemetry.NodeSet, node int) error {
	metrics := ns.Metrics()
	if len(metrics) == 0 {
		return fmt.Errorf("ldms: node set has no metrics")
	}
	series := make([]*telemetry.Series, len(metrics))
	rows := 0
	for i, m := range metrics {
		s := ns.Get(node, m)
		if s == nil {
			return fmt.Errorf("ldms: node %d has no series for %q", node, m)
		}
		series[i] = s
		if i == 0 {
			rows = s.Len()
		} else if s.Len() != rows {
			return fmt.Errorf("ldms: node %d series %q has %d samples, expected %d",
				node, m, s.Len(), rows)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 16*(len(metrics)+1))
	buf = append(buf, "#Time"...)
	for _, m := range metrics {
		buf = append(buf, ',')
		buf = append(buf, m...)
	}
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		buf = buf[:0]
		buf = strconv.AppendFloat(buf, series[0].OffsetAt(r).Seconds(), 'g', -1, 64)
		for _, s := range series {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.ValueAt(r), 'g', -1, 64)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// secondsToOffset converts a seconds value parsed from CSV into a
// Duration, rounding to the nearest nanosecond. The historical
// truncating conversion turned 0.1 s into 99999999 ns, so offsets
// drifted on every round-trip.
func secondsToOffset(secs float64) (time.Duration, error) {
	ns := secs * float64(time.Second)
	if math.IsNaN(ns) || ns > float64(math.MaxInt64) || ns < math.MinInt64 {
		return 0, fmt.Errorf("ldms: offset %g s out of range", secs)
	}
	return time.Duration(math.Round(ns)), nil
}

// bstr gives a zero-copy string view of b for parsing. The view must
// not outlive b's next mutation; strconv.ParseFloat does not retain it.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// lineReader yields one CSV line at a time from a bufio.Reader,
// trimming the trailing LF/CRLF, reusing an internal buffer for lines
// that span bufio fragments.
type lineReader struct {
	br  *bufio.Reader
	buf []byte
}

// next returns the next line (valid until the following call), or
// io.EOF when the input is exhausted. A final line without a newline
// is returned before EOF. Lines that fit in one bufio fragment — the
// overwhelmingly common case — are returned as a view into the bufio
// buffer without copying; only lines spilling across fragments go
// through the accumulation buffer.
func (lr *lineReader) next() ([]byte, error) {
	lr.buf = lr.buf[:0]
	for {
		frag, err := lr.br.ReadSlice('\n')
		switch err {
		case nil:
			if len(lr.buf) == 0 {
				return trimEOL(frag), nil
			}
			lr.buf = append(lr.buf, frag...)
			return trimEOL(lr.buf), nil
		case bufio.ErrBufferFull:
			lr.buf = append(lr.buf, frag...)
			continue
		case io.EOF:
			if len(lr.buf) == 0 {
				if len(frag) == 0 {
					return nil, io.EOF
				}
				return trimEOL(frag), nil
			}
			lr.buf = append(lr.buf, frag...)
			return trimEOL(lr.buf), nil
		default:
			return nil, err
		}
	}
}

// trimEOL strips one trailing "\n" or "\r\n".
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n := len(b); n > 0 && b[n-1] == '\r' {
			b = b[:n-1]
		}
	}
	return b
}

// ReadNodeCSV parses a per-node CSV written by WriteNodeCSV back into
// series for the given node, returned inside a fresh NodeSet. The
// parse is a single byte-oriented pass: no per-row field slices, no
// per-cell strings. Series are sorted (when rows arrived out of order)
// and sealed before return, so the telemetry is immediately queryable
// at prefix-sum cost.
func ReadNodeCSV(r io.Reader, node int) (*telemetry.NodeSet, error) {
	lr := &lineReader{br: bufio.NewReaderSize(r, 1<<16)}
	header, err := lr.next()
	for err == nil && len(header) == 0 { // leading blank lines, skipped like encoding/csv
		header, err = lr.next()
	}
	if err != nil {
		return nil, fmt.Errorf("ldms: read CSV header: %w", err)
	}
	metrics, err := parseHeader(header)
	if err != nil {
		return nil, err
	}
	nm := len(metrics)
	nf := nm + 1
	// Rows accumulate into two flat columnar scratch buffers (offsets,
	// plus row-major values) rather than growing one slice per series:
	// O(log rows) growth allocations total instead of per metric, and
	// the series are then built at their exact final size.
	var offs []time.Duration
	var flat []float64
	for line := 2; ; line++ {
		row, err := lr.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ldms: read CSV line %d: %w", line, err)
		}
		if len(row) == 0 {
			continue // blank line, skipped like encoding/csv does
		}
		field, rest, fields := splitField(row), row, 1
		secs, err := strconv.ParseFloat(bstr(field), 64)
		if err != nil {
			return nil, fmt.Errorf("ldms: CSV line %d time: %w", line, err)
		}
		offset, err := secondsToOffset(secs)
		if err != nil {
			return nil, fmt.Errorf("ldms: CSV line %d time: %w", line, err)
		}
		rest = rest[len(field):]
		for i := 0; len(rest) > 0 && rest[0] == ','; i++ {
			rest = rest[1:]
			field = splitField(rest)
			fields++
			if fields > nf {
				break
			}
			v, err := strconv.ParseFloat(bstr(field), 64)
			if err != nil {
				return nil, fmt.Errorf("ldms: CSV line %d field %s: %w", line, metrics[i], err)
			}
			flat = append(flat, v)
			rest = rest[len(field):]
		}
		if fields != nf {
			flat = flat[:len(offs)*nm]
			return nil, fmt.Errorf("ldms: CSV line %d has %d fields, want %d", line, fields, nf)
		}
		offs = append(offs, offset)
	}
	rows := len(offs)
	// Transpose the row-major scratch into one column-major backing
	// array and hand each series its column: one value allocation for
	// the whole node instead of one per series.
	cols := make([]float64, rows*nm)
	for r := 0; r < rows; r++ {
		for i := 0; i < nm; i++ {
			cols[i*rows+r] = flat[r*nm+i]
		}
	}
	ns := telemetry.NewNodeSet()
	for i, m := range metrics {
		s := telemetry.NewSeriesFromColumns(m, node, offs, cols[i*rows:(i+1)*rows:(i+1)*rows])
		// CSV rows are not guaranteed time-ordered; Seal restores order
		// if needed and builds the prefix sums in the same pass.
		s.Seal()
		ns.Put(s)
	}
	return ns, nil
}

// parseHeader validates the "#Time,metric,..." header and returns the
// metric column names.
func parseHeader(header []byte) ([]string, error) {
	if !bytes.HasPrefix(header, []byte("#Time,")) {
		return nil, fmt.Errorf("ldms: bad CSV header %q", header)
	}
	rest := header[len("#Time,"):]
	var metrics []string
	for {
		f := splitField(rest)
		metrics = append(metrics, string(f))
		if len(f) == len(rest) {
			return metrics, nil
		}
		rest = rest[len(f)+1:]
	}
}

// splitField returns the prefix of b up to (not including) the first
// comma, or all of b when it holds the final field of the row.
func splitField(b []byte) []byte {
	if i := bytes.IndexByte(b, ','); i >= 0 {
		return b[:i]
	}
	return b
}

// ReadNodeCSVStd is the original encoding/csv implementation, retained
// as the differential-fuzzing and benchmarking baseline for the
// byte-oriented reader above.
func ReadNodeCSVStd(r io.Reader, node int) (*telemetry.NodeSet, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ldms: read CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "#Time" {
		return nil, fmt.Errorf("ldms: bad CSV header %v", header)
	}
	metrics := header[1:]
	series := make([]*telemetry.Series, len(metrics))
	for i, m := range metrics {
		series[i] = telemetry.NewSeries(m, node, 0)
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ldms: read CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("ldms: CSV line %d has %d fields, want %d",
				line, len(rec), len(header))
		}
		secs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("ldms: CSV line %d time: %w", line, err)
		}
		offset, err := secondsToOffset(secs)
		if err != nil {
			return nil, fmt.Errorf("ldms: CSV line %d time: %w", line, err)
		}
		for i := range metrics {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("ldms: CSV line %d field %s: %w", line, metrics[i], err)
			}
			series[i].Append(offset, v)
		}
	}
	ns := telemetry.NewNodeSet()
	for _, s := range series {
		s.Seal()
		ns.Put(s)
	}
	return ns, nil
}

// WriteExecutionCSV writes every node of an execution through w,
// separated per node by a comment line "# node N". It is a single-file
// convenience over WriteNodeCSV for tooling; ReadExecutionCSV is its
// inverse.
func WriteExecutionCSV(w io.Writer, ns *telemetry.NodeSet) error {
	for _, node := range ns.Nodes() {
		if _, err := fmt.Fprintf(w, "# node %d\n", node); err != nil {
			return err
		}
		if err := WriteNodeCSV(w, ns, node); err != nil {
			return err
		}
	}
	return nil
}

// ReadExecutionCSV parses a multi-node file written by WriteExecutionCSV
// back into one NodeSet. The per-node sections are located in one pass
// and then parsed concurrently on the internal/par worker pool (0
// workers means GOMAXPROCS), which is where multi-node ingest spends
// nearly all of its time.
func ReadExecutionCSV(r io.Reader, workers int) (*telemetry.NodeSet, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ldms: read execution CSV: %w", err)
	}
	return parseExecutionCSV(data, workers)
}

// parseExecutionCSV is the shared body of ReadExecutionCSV and the
// memory-mapped ReadExecutionCSVFile: it only reads data, so a
// read-only mapping can be passed directly.
func parseExecutionCSV(data []byte, workers int) (*telemetry.NodeSet, error) {
	type section struct {
		node int
		body []byte
	}
	var secs []section
	for len(data) > 0 {
		line := data[:lineLen(data)]
		rest := data[lineLen(data):]
		var node int
		if _, err := fmt.Sscanf(string(trimEOL(line)), "# node %d", &node); err != nil {
			return nil, fmt.Errorf("ldms: expected \"# node N\" separator, got %q", trimEOL(line))
		}
		end := bytes.Index(rest, []byte("\n# node "))
		var body []byte
		if end < 0 {
			body, data = rest, nil
		} else {
			body, data = rest[:end+1], rest[end+1:]
		}
		secs = append(secs, section{node: node, body: body})
	}
	if len(secs) == 0 {
		return nil, fmt.Errorf("ldms: execution CSV has no node sections")
	}
	parts := make([]*telemetry.NodeSet, len(secs))
	errs := make([]error, len(secs))
	par.For(len(secs), workers, func(i int) {
		parts[i], errs[i] = ReadNodeCSV(bytes.NewReader(secs[i].body), secs[i].node)
	})
	out := telemetry.NewNodeSet()
	for i, p := range parts {
		if errs[i] != nil {
			return nil, fmt.Errorf("ldms: node %d section: %w", secs[i].node, errs[i])
		}
		for _, node := range p.Nodes() {
			for _, m := range p.Metrics() {
				if s := p.Get(node, m); s != nil {
					out.Put(s)
				}
			}
		}
	}
	return out, nil
}

// lineLen returns the length of the first line of b including its
// newline, or len(b) for a final unterminated line.
func lineLen(b []byte) int {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return i + 1
	}
	return len(b)
}

// ReadNodeCSVFiles opens and parses one per-node CSV file per path
// (index = node ID) concurrently on the internal/par pool and merges
// the results into a single NodeSet — the bulk-ingest entry point for
// directories laid out like the Taxonomist artifact.
func ReadNodeCSVFiles(open func(i int) (io.ReadCloser, error), n, workers int) (*telemetry.NodeSet, error) {
	parts := make([]*telemetry.NodeSet, n)
	errs := make([]error, n)
	par.For(n, workers, func(i int) {
		rc, err := open(i)
		if err != nil {
			errs[i] = err
			return
		}
		defer rc.Close()
		parts[i], errs[i] = ReadNodeCSV(rc, i)
	})
	out := telemetry.NewNodeSet()
	for i, p := range parts {
		if errs[i] != nil {
			return nil, fmt.Errorf("ldms: node %d: %w", i, errs[i])
		}
		for _, m := range p.Metrics() {
			if s := p.Get(i, m); s != nil {
				out.Put(s)
			}
		}
	}
	return out, nil
}
