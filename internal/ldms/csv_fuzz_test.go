package ldms

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNodeCSV differentially fuzzes the byte-oriented CSV reader
// against the retained encoding/csv baseline: on any input, the new
// reader must not panic, and on inputs inside the format both readers
// accept (no quoting, no bare carriage returns — the writer emits
// neither), they must agree on accept/reject and on every parsed
// sample.
func FuzzReadNodeCSV(f *testing.F) {
	seeds := []string{
		// Well-formed grid output.
		"#Time,aa,bb\n0,1,2\n1,3,4\n2,5,6\n",
		// CRLF line endings.
		"#Time,aa,bb\r\n0,1,2\r\n1,3,4\r\n",
		// Exponent and shortest-form floats, negatives, inf-ish text.
		"#Time,m\n0,1e300\n1,-2.5e-308\n2,0.0004913\n3,6012.7\n",
		// Fractional offsets (the round-trip drift fix).
		"#Time,m\n0.1,1\n0.2,2\n0.30000000000000004,3\n",
		// Ragged rows: too few and too many fields.
		"#Time,aa,bb\n0,1\n",
		"#Time,aa,bb\n0,1,2,3\n",
		// Empty fields and blank lines.
		"#Time,m\n0,\n",
		"#Time,m\n\n0,1\n\n1,2\n",
		// Bad header, bad time, bad value.
		"time,m\n1,2\n",
		"#Time,m\nx,2\n",
		"#Time,m\n1,notanum\n",
		// No trailing newline.
		"#Time,m\n0,1",
		// Out-of-order rows (must sort, not reject).
		"#Time,m\n2,30\n0,10\n1,20\n",
		// Offsets that overflow time.Duration.
		"#Time,m\n1e300,1\n",
		// Empty metric name column.
		"#Time,\n0,1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotErr := ReadNodeCSV(bytes.NewReader(data), 3)

		// Outside the no-quote, no-bare-CR subset the two readers
		// legitimately diverge (encoding/csv implements RFC 4180
		// quoting; the byte reader implements the writer's format).
		// The new reader still must not panic there — checked above.
		if bytes.IndexByte(data, '"') >= 0 || strings.Contains(strings.ReplaceAll(string(data), "\r\n", ""), "\r") {
			return
		}

		want, wantErr := ReadNodeCSVStd(bytes.NewReader(data), 3)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject mismatch: byte reader err=%v, stdlib err=%v, input=%q",
				gotErr, wantErr, data)
		}
		if gotErr != nil {
			return
		}
		gm, wm := got.Metrics(), want.Metrics()
		if len(gm) != len(wm) {
			t.Fatalf("metric count %d vs %d, input=%q", len(gm), len(wm), data)
		}
		for i := range gm {
			if gm[i] != wm[i] {
				t.Fatalf("metric[%d] %q vs %q, input=%q", i, gm[i], wm[i], data)
			}
			a, b := got.Get(3, gm[i]), want.Get(3, wm[i])
			if a.Len() != b.Len() {
				t.Fatalf("metric %q length %d vs %d, input=%q", gm[i], a.Len(), b.Len(), data)
			}
			for j := 0; j < a.Len(); j++ {
				sa, sb := a.At(j), b.At(j)
				// NaN values compare unequal to themselves; both sides
				// parsed the same bytes, so compare bit patterns via
				// the samples' string forms only when they disagree.
				if sa != sb && !(sa.Offset == sb.Offset && sa.Value != sa.Value && sb.Value != sb.Value) {
					t.Fatalf("metric %q sample %d: %+v vs %+v, input=%q", gm[i], j, sa, sb, data)
				}
			}
		}
	})
}
