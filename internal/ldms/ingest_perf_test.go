package ldms

import (
	"bytes"
	"testing"
	"time"
)

// ingestFixture renders a realistic per-node CSV: 50 metrics, 600
// ticks — one node of a ten-minute execution at the 1 Hz collection
// cadence.
func ingestFixture(t testing.TB) []byte {
	t.Helper()
	metrics := make([]string, 50)
	for i := range metrics {
		metrics[i] = "metric_" + string(rune('a'+i/26)) + string(rune('a'+i%26))
	}
	s, err := NewSampler("s", metrics)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector([]Sampler{s}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := c.Collect(rampSource{}, 1, 599*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNodeCSV(&buf, ns, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestAllocRatio pins the acceptance criterion that the
// byte-oriented reader allocates at least 5x less than the
// encoding/csv baseline on the same input. The baseline allocates a
// []string plus one string per cell on every row; the byte reader's
// allocations are the series storage itself plus O(metrics) setup.
func TestIngestAllocRatio(t *testing.T) {
	data := ingestFixture(t)
	newAllocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadNodeCSV(bytes.NewReader(data), 0); err != nil {
			t.Fatal(err)
		}
	})
	stdAllocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadNodeCSVStd(bytes.NewReader(data), 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("byte reader: %.0f allocs/op, encoding/csv baseline: %.0f allocs/op (%.1fx)",
		newAllocs, stdAllocs, stdAllocs/newAllocs)
	if newAllocs*5 > stdAllocs {
		t.Errorf("byte reader allocates %.0f/op vs baseline %.0f/op — want at least 5x fewer",
			newAllocs, stdAllocs)
	}
}
