// Package ldms is the monitoring substrate of the reproduction: a
// lightweight, LDMS-style collection pipeline (Agelastos et al., SC'14)
// that samples per-node metric sets once per second and assembles the
// per-execution telemetry the recognition layers consume.
//
// The package mirrors LDMS's structure in miniature: samplers own
// metric sets (vmstat, meminfo, metric_set_nic), a collector drives
// them at a fixed period across all nodes of a job, and the CSV codec
// reads and writes the per-node file layout of the Taxonomist artifact.
package ldms

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// ValueSource provides observed (already noise-perturbed) metric values
// for a running execution. The cluster simulator provides one; a replay
// of recorded telemetry can provide another.
type ValueSource interface {
	// Value returns the observed value of the metric on the node at
	// offset t from execution start.
	Value(metric string, node int, t time.Duration) float64
}

// Measurement is one sampled metric value.
type Measurement struct {
	Metric string
	Value  float64
}

// Sampler samples one metric set on demand, like an LDMS sampler
// plugin.
type Sampler interface {
	// Name identifies the sampler ("vmstat", "meminfo",
	// "metric_set_nic").
	Name() string
	// Metrics lists the metric names the sampler produces.
	Metrics() []string
	// Sample reads all metrics of the set on the node at offset t.
	Sample(src ValueSource, node int, t time.Duration) []Measurement
}

// setSampler samples a fixed list of metrics from a ValueSource.
type setSampler struct {
	name    string
	metrics []string
}

func (s *setSampler) Name() string { return s.name }

func (s *setSampler) Metrics() []string {
	out := make([]string, len(s.metrics))
	copy(out, s.metrics)
	return out
}

func (s *setSampler) Sample(src ValueSource, node int, t time.Duration) []Measurement {
	out := make([]Measurement, len(s.metrics))
	for i, m := range s.metrics {
		out[i] = Measurement{Metric: m, Value: src.Value(m, node, t)}
	}
	return out
}

// NewSampler builds a sampler over an explicit metric list.
func NewSampler(name string, metrics []string) (Sampler, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("ldms: sampler %q has no metrics", name)
	}
	return &setSampler{name: name, metrics: metrics}, nil
}

// CatalogSamplers groups the full metric catalog into its three LDMS
// metric sets, matching the sets of the Taxonomist dataset.
func CatalogSamplers() []Sampler {
	bySet := make(map[string][]string)
	for _, m := range apps.Metrics() {
		bySet[m.Set] = append(bySet[m.Set], m.Name)
	}
	sets := make([]string, 0, len(bySet))
	for s := range bySet {
		sets = append(sets, s)
	}
	sort.Strings(sets)
	out := make([]Sampler, 0, len(sets))
	for _, s := range sets {
		names := bySet[s]
		sort.Strings(names)
		out = append(out, &setSampler{name: s, metrics: names})
	}
	return out
}

// Collector drives samplers across the nodes of a job at a fixed
// period, assembling a telemetry NodeSet — the role of the LDMS
// aggregator.
type Collector struct {
	Samplers []Sampler
	// Period is the sampling interval (default 1 s).
	Period time.Duration
}

// NewCollector returns a collector over the given samplers.
func NewCollector(samplers []Sampler, period time.Duration) (*Collector, error) {
	if len(samplers) == 0 {
		return nil, fmt.Errorf("ldms: collector needs at least one sampler")
	}
	if period <= 0 {
		period = telemetry.DefaultPeriod
	}
	seen := make(map[string]string)
	for _, s := range samplers {
		for _, m := range s.Metrics() {
			if prev, dup := seen[m]; dup {
				return nil, fmt.Errorf("ldms: metric %q provided by both %q and %q",
					m, prev, s.Name())
			}
			seen[m] = s.Name()
		}
	}
	return &Collector{Samplers: samplers, Period: period}, nil
}

// Collect samples all metric sets on nodes [0, nodes) from t=0 through
// duration (inclusive of the final tick) and returns the telemetry.
func (c *Collector) Collect(src ValueSource, nodes int, duration time.Duration) (*telemetry.NodeSet, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("ldms: non-positive node count %d", nodes)
	}
	if duration < 0 {
		return nil, fmt.Errorf("ldms: negative duration %v", duration)
	}
	ns := telemetry.NewNodeSet()
	ticks := int(duration/c.Period) + 1
	for _, s := range c.Samplers {
		for node := 0; node < nodes; node++ {
			series := make(map[string]*telemetry.Series, len(s.Metrics()))
			for _, m := range s.Metrics() {
				series[m] = telemetry.NewSeries(m, node, ticks)
			}
			for i := 0; i < ticks; i++ {
				t := time.Duration(i) * c.Period
				for _, meas := range s.Sample(src, node, t) {
					series[meas.Metric].Append(t, meas.Value)
				}
			}
			for _, sr := range series {
				ns.Put(sr)
			}
		}
	}
	return ns, nil
}
