package ldms

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// rampSource is a deterministic ValueSource for tests: value encodes
// metric, node and time.
type rampSource struct{}

func (rampSource) Value(metric string, node int, t time.Duration) float64 {
	return float64(len(metric)*1000+node*100) + t.Seconds()
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler("empty", nil); err == nil {
		t.Error("empty metric list should fail")
	}
	s, err := NewSampler("s", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "s" || len(s.Metrics()) != 2 {
		t.Errorf("sampler header wrong: %s %v", s.Name(), s.Metrics())
	}
}

func TestSamplerSample(t *testing.T) {
	s, _ := NewSampler("s", []string{"aa", "bbb"})
	ms := s.Sample(rampSource{}, 2, 5*time.Second)
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Metric != "aa" || ms[0].Value != 2205 {
		t.Errorf("measurement 0 = %+v", ms[0])
	}
	if ms[1].Metric != "bbb" || ms[1].Value != 3205 {
		t.Errorf("measurement 1 = %+v", ms[1])
	}
}

func TestCatalogSamplersCoverCatalog(t *testing.T) {
	samplers := CatalogSamplers()
	if len(samplers) != 3 {
		t.Fatalf("samplers = %d, want 3 (vmstat, meminfo, metric_set_nic)", len(samplers))
	}
	covered := make(map[string]bool)
	for _, s := range samplers {
		for _, m := range s.Metrics() {
			if covered[m] {
				t.Errorf("metric %q covered twice", m)
			}
			covered[m] = true
		}
	}
	for _, m := range apps.Metrics() {
		if !covered[m.Name] {
			t.Errorf("metric %q not covered by any sampler", m.Name)
		}
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil, time.Second); err == nil {
		t.Error("no samplers should fail")
	}
	a, _ := NewSampler("a", []string{"m"})
	b, _ := NewSampler("b", []string{"m"})
	if _, err := NewCollector([]Sampler{a, b}, time.Second); err == nil {
		t.Error("duplicate metric across samplers should fail")
	}
}

func TestCollect(t *testing.T) {
	s1, _ := NewSampler("s1", []string{"aa"})
	s2, _ := NewSampler("s2", []string{"bbb", "cccc"})
	c, err := NewCollector([]Sampler{s1, s2}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := c.Collect(rampSource{}, 2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := ns.Metrics(); len(got) != 3 {
		t.Fatalf("metrics = %v", got)
	}
	if got := ns.Nodes(); len(got) != 2 {
		t.Fatalf("nodes = %v", got)
	}
	sr := ns.Get(1, "aa")
	if sr.Len() != 11 {
		t.Errorf("series length = %d, want 11", sr.Len())
	}
	if sr.ValueAt(3) != 2103+0 {
		// aa on node 1 at t=3: 2*1000+1*100+3 = 2103.
		t.Errorf("sample value = %v, want 2103", sr.ValueAt(3))
	}
	if err := ns.Validate(); err != nil {
		t.Errorf("collected telemetry invalid: %v", err)
	}
	if _, err := c.Collect(rampSource{}, 0, time.Second); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := c.Collect(rampSource{}, 1, -time.Second); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestCollectDefaultPeriod(t *testing.T) {
	s, _ := NewSampler("s", []string{"m"})
	c, err := NewCollector([]Sampler{s}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Period != telemetry.DefaultPeriod {
		t.Errorf("Period = %v", c.Period)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s, _ := NewSampler("s", []string{"m1", "m2"})
	c, _ := NewCollector([]Sampler{s}, time.Second)
	ns, err := c.Collect(rampSource{}, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNodeCSV(&buf, ns, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNodeCSV(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"m1", "m2"} {
		a, b := ns.Get(0, m), got.Get(0, m)
		if a.Len() != b.Len() {
			t.Fatalf("metric %s length %d vs %d", m, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("metric %s sample %d: %+v vs %+v", m, i, a.At(i), b.At(i))
			}
		}
	}
}

func TestCSVHeaderFormat(t *testing.T) {
	s, _ := NewSampler("s", []string{"zz", "aa"})
	c, _ := NewCollector([]Sampler{s}, time.Second)
	ns, _ := c.Collect(rampSource{}, 1, time.Second)
	var buf bytes.Buffer
	if err := WriteNodeCSV(&buf, ns, 0); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if first != "#Time,aa,zz" {
		t.Errorf("header = %q (metrics must be alphabetical)", first)
	}
}

func TestReadNodeCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time,m\n1,2\n",          // wrong header tag
		"#Time\n",                // no metrics
		"#Time,m\nx,2\n",         // bad time
		"#Time,m\n1.0,notanum\n", // bad value
		"#Time,m\n1.0,2.0,3.0\n", // too many fields (csv lib catches)
	}
	for i, in := range cases {
		if _, err := ReadNodeCSV(strings.NewReader(in), 0); err == nil {
			t.Errorf("case %d should fail: %q", i, in)
		}
	}
}

func TestWriteNodeCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNodeCSV(&buf, telemetry.NewNodeSet(), 0); err == nil {
		t.Error("empty node set should fail")
	}
	ns := telemetry.NewNodeSet()
	sr := telemetry.NewSeries("m", 1, 1)
	sr.Append(0, 1)
	ns.Put(sr)
	if err := WriteNodeCSV(&buf, ns, 0); err == nil {
		t.Error("missing node should fail")
	}
}

// TestCSVRoundTripFractionalOffsets is the regression test for the
// offset-precision drift: the writer used to format offsets with one
// decimal while the reader truncated seconds*1e9, so 0.1 s came back
// as 99999999 ns and sub-decisecond offsets collided. Full-precision
// offsets plus nanosecond rounding must make write→read→write a fixed
// point, byte for byte.
func TestCSVRoundTripFractionalOffsets(t *testing.T) {
	ns := telemetry.NewNodeSet()
	s := telemetry.NewSeries("m", 0, 0)
	offsets := []time.Duration{
		0,
		100 * time.Millisecond, // 0.1 s: the historical drift case
		250 * time.Millisecond,
		time.Second + 1, // 1.000000001 s: sub-decisecond resolution
		2 * time.Second,
	}
	for i, off := range offsets {
		s.Append(off, float64(i)+0.125)
	}
	ns.Put(s)

	var first bytes.Buffer
	if err := WriteNodeCSV(&first, ns, 0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNodeCSV(bytes.NewReader(first.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Get(0, "m")
	if got.Len() != len(offsets) {
		t.Fatalf("round-trip length = %d, want %d", got.Len(), len(offsets))
	}
	for i, off := range offsets {
		if sm := got.At(i); sm.Offset != off || sm.Value != float64(i)+0.125 {
			t.Errorf("sample %d = %+v, want offset %v value %v", i, sm, off, float64(i)+0.125)
		}
	}
	var second bytes.Buffer
	if err := WriteNodeCSV(&second, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("write→read→write is not a fixed point:\nfirst:  %q\nsecond: %q",
			first.String(), second.String())
	}
}

// TestReadNodeCSVMatchesStd pins the byte-oriented reader to the
// encoding/csv baseline on realistic collector output.
func TestReadNodeCSVMatchesStd(t *testing.T) {
	s, _ := NewSampler("s", []string{"m1", "m2", "m3"})
	c, _ := NewCollector([]Sampler{s}, time.Second)
	ns, err := c.Collect(rampSource{}, 1, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNodeCSV(&buf, ns, 0); err != nil {
		t.Fatal(err)
	}
	a, err := ReadNodeCSV(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadNodeCSVStd(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range a.Metrics() {
		sa, sb := a.Get(0, m), b.Get(0, m)
		if sa.Len() != sb.Len() {
			t.Fatalf("metric %s length %d vs %d", m, sa.Len(), sb.Len())
		}
		for i := 0; i < sa.Len(); i++ {
			if sa.At(i) != sb.At(i) {
				t.Fatalf("metric %s sample %d: %+v vs %+v", m, i, sa.At(i), sb.At(i))
			}
		}
	}
}

func TestReadExecutionCSVRoundTrip(t *testing.T) {
	s, _ := NewSampler("s", []string{"aa", "bbb"})
	c, _ := NewCollector([]Sampler{s}, time.Second)
	ns, err := c.Collect(rampSource{}, 3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExecutionCSV(&buf, ns); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := ReadExecutionCSV(bytes.NewReader(buf.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Nodes()) != 3 {
			t.Fatalf("workers=%d nodes = %v", workers, got.Nodes())
		}
		for _, node := range ns.Nodes() {
			for _, m := range ns.Metrics() {
				a, b := ns.Get(node, m), got.Get(node, m)
				if b == nil || a.Len() != b.Len() {
					t.Fatalf("workers=%d node %d metric %s missing or wrong length", workers, node, m)
				}
				for i := 0; i < a.Len(); i++ {
					if a.At(i) != b.At(i) {
						t.Fatalf("node %d metric %s sample %d: %+v vs %+v",
							node, m, i, a.At(i), b.At(i))
					}
				}
			}
		}
	}
	if _, err := ReadExecutionCSV(strings.NewReader("#Time,m\n0,1\n"), 0); err == nil {
		t.Error("execution CSV without node separators should fail")
	}
	if _, err := ReadExecutionCSV(strings.NewReader(""), 0); err == nil {
		t.Error("empty execution CSV should fail")
	}
}

func TestReadNodeCSVFiles(t *testing.T) {
	s, _ := NewSampler("s", []string{"m"})
	c, _ := NewCollector([]Sampler{s}, time.Second)
	ns, err := c.Collect(rampSource{}, 4, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]bytes.Buffer, 4)
	for node := 0; node < 4; node++ {
		if err := WriteNodeCSV(&bufs[node], ns, node); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadNodeCSVFiles(func(i int) (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(bufs[i].Bytes())), nil
	}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes()) != 4 {
		t.Fatalf("nodes = %v", got.Nodes())
	}
	for node := 0; node < 4; node++ {
		a, b := ns.Get(node, "m"), got.Get(node, "m")
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("node %d sample %d differs", node, i)
			}
		}
	}
	if _, err := ReadNodeCSVFiles(func(i int) (io.ReadCloser, error) {
		return nil, fmt.Errorf("boom")
	}, 1, 1); err == nil {
		t.Error("open failure should propagate")
	}
}

func TestWriteExecutionCSV(t *testing.T) {
	s, _ := NewSampler("s", []string{"m"})
	c, _ := NewCollector([]Sampler{s}, time.Second)
	ns, _ := c.Collect(rampSource{}, 2, 2*time.Second)
	var buf bytes.Buffer
	if err := WriteExecutionCSV(&buf, ns); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# node 0") || !strings.Contains(out, "# node 1") {
		t.Errorf("execution CSV missing node separators:\n%s", out)
	}
}
