package ldms

// Bulk CSV → segment conversion: the "memory-map large CSV ingest"
// follow-up. ReadExecutionCSVFile parses an execution CSV straight out
// of a read-only memory mapping (no io.ReadAll copy of the file), and
// StoreExecutionCSV lands the result in a tsdb segment — after which
// the telemetry is served mmap'd, checksummed, and re-recognizable,
// regardless of how large the original CSV was.

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// ReadExecutionCSVFile parses a multi-node execution CSV (the
// WriteExecutionCSV format) directly from a memory-mapped file. The
// parse itself is the same byte-oriented single pass as
// ReadExecutionCSV; mapping instead of reading skips the up-front copy
// of the whole file, so cold ingest of multi-gigabyte CSVs is bounded
// by the parse, not by buffering.
func ReadExecutionCSVFile(path string, workers int) (*telemetry.NodeSet, error) {
	m, err := tsdb.MapFile(path)
	if err != nil {
		return nil, fmt.Errorf("ldms: map execution CSV: %w", err)
	}
	defer m.Close()
	// The returned NodeSet owns freshly built columns (the parser
	// copies fields out while converting), so closing the mapping here
	// is safe.
	return parseExecutionCSV(m.Data, workers)
}

// StoreExecutionCSV bulk-converts one execution CSV into a stored
// tsdb execution: parse (parallel across node sections), then write a
// durable columnar segment under jobID with the given label (label may
// be empty for unlabelled history). The execution is durable — and
// servable over mmap — when the call returns.
func StoreExecutionCSV(st *tsdb.Store, jobID, label string, r io.Reader, workers int) error {
	ns, err := ReadExecutionCSV(r, workers)
	if err != nil {
		return err
	}
	return st.IngestExecution(jobID, label, ns)
}

// StoreExecutionCSVFile is StoreExecutionCSV over a memory-mapped
// file path.
func StoreExecutionCSVFile(st *tsdb.Store, jobID, label, path string, workers int) error {
	ns, err := ReadExecutionCSVFile(path, workers)
	if err != nil {
		return err
	}
	return st.IngestExecution(jobID, label, ns)
}
