package ldms

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// convTestNodeSet builds a small two-node, two-metric execution.
func convTestNodeSet(t *testing.T) *telemetry.NodeSet {
	t.Helper()
	ns := telemetry.NewNodeSet()
	for node := 0; node < 2; node++ {
		for _, m := range []string{"alpha", "beta"} {
			s := telemetry.NewSeries(m, node, 150)
			for i := 0; i < 150; i++ {
				s.Append(time.Duration(i)*telemetry.DefaultPeriod, float64(node*1000+i)+0.25)
			}
			ns.Put(s)
		}
	}
	return ns
}

// TestReadExecutionCSVFileMatchesReader pins the mmap'd file parse
// against the io.Reader parse byte for byte.
func TestReadExecutionCSVFileMatchesReader(t *testing.T) {
	ns := convTestNodeSet(t)
	var buf bytes.Buffer
	if err := WriteExecutionCSV(&buf, ns); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "exec.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	viaReader, err := ReadExecutionCSV(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	viaFile, err := ReadExecutionCSVFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range viaReader.Nodes() {
		for _, m := range viaReader.Metrics() {
			a, b := viaReader.Get(node, m), viaFile.Get(node, m)
			if a == nil || b == nil || a.Len() != b.Len() {
				t.Fatalf("%s[%d]: series mismatch", m, node)
			}
			for i := 0; i < a.Len(); i++ {
				if a.ValueAt(i) != b.ValueAt(i) || a.OffsetAt(i) != b.OffsetAt(i) {
					t.Fatalf("%s[%d] sample %d differs between reader and mmap parse", m, node, i)
				}
			}
		}
	}
	if _, err := ReadExecutionCSVFile(filepath.Join(t.TempDir(), "missing.csv"), 1); err == nil {
		t.Error("missing file: want error")
	}
}

// TestStoreExecutionCSVRoundTrip converts a CSV into a segment and
// verifies the stored, mmap-served telemetry matches the source
// exactly — including window means over the paper window.
func TestStoreExecutionCSVRoundTrip(t *testing.T) {
	ns := convTestNodeSet(t)
	var buf bytes.Buffer
	if err := WriteExecutionCSV(&buf, ns); err != nil {
		t.Fatal(err)
	}
	st, err := tsdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := StoreExecutionCSV(st, "csvjob", "hist_X", bytes.NewReader(buf.Bytes()), 2); err != nil {
		t.Fatal(err)
	}
	execs := st.Executions()
	if len(execs) != 1 || !execs[0].Stored || execs[0].Label != "hist_X" {
		t.Fatalf("stored executions: %+v", execs)
	}
	stored, err := st.ExecutionSeries("csvjob")
	if err != nil {
		t.Fatal(err)
	}
	w := telemetry.PaperWindow
	for _, node := range ns.Nodes() {
		for _, m := range ns.Metrics() {
			src := ns.Get(node, m)
			got := stored.Get(node, m)
			if got == nil {
				t.Fatalf("stored %s[%d] missing", m, node)
			}
			src.Seal()
			a, err1 := src.WindowMean(w)
			b, err2 := got.WindowMean(w)
			if err1 != nil || err2 != nil {
				t.Fatalf("window means: %v / %v", err1, err2)
			}
			if a != b {
				t.Errorf("%s[%d]: stored window mean %v != source %v", m, node, b, a)
			}
		}
	}

	// The file-path variant lands the same data.
	path := filepath.Join(t.TempDir(), "exec.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := StoreExecutionCSVFile(st, "csvjob2", "", path, 0); err != nil {
		t.Fatal(err)
	}
	if got := len(st.Executions()); got != 2 {
		t.Fatalf("executions after file conversion: %d, want 2", got)
	}
}
