// Package noise provides the perturbation models that make the
// synthetic telemetry "noisy" in the sense the paper cares about: a
// fingerprint must survive Gaussian measurement jitter, occasional
// spikes, slow drift, and the turbulent initialization phase that
// motivates the paper's [60s,120s) window choice.
//
// Every model is a deterministic function of a caller-supplied
// *rand.Rand, so identical seeds reproduce identical telemetry.
package noise

import (
	"math"
	"math/rand"
	"time"
)

// Model perturbs the ideal value of a metric at a given offset from
// execution start. Implementations must be pure given the rng state.
type Model interface {
	// Perturb returns the observed value derived from the ideal value
	// at the given offset.
	Perturb(rng *rand.Rand, offset time.Duration, ideal float64) float64
}

// None is the identity model, useful for calibration runs and tests.
type None struct{}

// Perturb returns ideal unchanged.
func (None) Perturb(_ *rand.Rand, _ time.Duration, ideal float64) float64 { return ideal }

// Gaussian adds zero-mean Gaussian jitter. Sigma may be absolute
// (SigmaAbs) or relative to the ideal value (SigmaRel); both contribute.
type Gaussian struct {
	SigmaAbs float64
	SigmaRel float64
}

// Perturb adds one draw of Gaussian noise.
func (g Gaussian) Perturb(rng *rand.Rand, _ time.Duration, ideal float64) float64 {
	sigma := g.SigmaAbs + math.Abs(ideal)*g.SigmaRel
	if sigma <= 0 {
		return ideal
	}
	return ideal + rng.NormFloat64()*sigma
}

// Spike injects rare, large positive excursions — the "someone else's
// job hammered the node for a second" events seen in shared-cluster
// telemetry.
type Spike struct {
	// Prob is the per-sample probability of a spike.
	Prob float64
	// Magnitude is the spike height relative to the ideal value.
	Magnitude float64
}

// Perturb occasionally adds a spike of Magnitude×ideal.
func (s Spike) Perturb(rng *rand.Rand, _ time.Duration, ideal float64) float64 {
	if s.Prob <= 0 || rng.Float64() >= s.Prob {
		return ideal
	}
	return ideal + math.Abs(ideal)*s.Magnitude
}

// Drift applies a slow linear trend over the execution, modelling memory
// leak-like growth or cache warm-up effects.
type Drift struct {
	// PerMinute is the relative change per minute of execution.
	PerMinute float64
}

// Perturb applies the accumulated drift at the given offset.
func (d Drift) Perturb(_ *rand.Rand, offset time.Duration, ideal float64) float64 {
	return ideal * (1 + d.PerMinute*offset.Minutes())
}

// InitTransient models the turbulent start-up phase: a decaying
// exponential excursion plus extra jitter that dies off after Settle.
// The paper's window choice of [60:120] exists precisely to dodge this.
type InitTransient struct {
	// Amplitude is the relative height of the excursion at offset 0.
	Amplitude float64
	// Settle is the time constant of the exponential decay.
	Settle time.Duration
	// ExtraSigmaRel is additional relative jitter applied while the
	// transient is alive.
	ExtraSigmaRel float64
}

// Perturb applies the decaying start-up excursion.
func (it InitTransient) Perturb(rng *rand.Rand, offset time.Duration, ideal float64) float64 {
	if it.Settle <= 0 {
		return ideal
	}
	decay := math.Exp(-offset.Seconds() / it.Settle.Seconds())
	v := ideal * (1 + it.Amplitude*decay)
	if it.ExtraSigmaRel > 0 {
		v += rng.NormFloat64() * math.Abs(ideal) * it.ExtraSigmaRel * decay
	}
	return v
}

// Interference models a noisy neighbour: with probability Prob per
// execution (decided on first use), the whole execution sees its values
// scaled by 1+Level. It captures the run-to-run variation that makes
// some (app,input) pairs produce more than one fingerprint (§5,
// "measurement variation and system noise").
type Interference struct {
	Prob  float64
	Level float64

	decided bool
	active  bool
}

// Perturb scales the value when the neighbour is active. The activation
// decision is drawn once per Interference instance, so one instance must
// be used per execution.
func (in *Interference) Perturb(rng *rand.Rand, _ time.Duration, ideal float64) float64 {
	if !in.decided {
		in.active = rng.Float64() < in.Prob
		in.decided = true
	}
	if !in.active {
		return ideal
	}
	return ideal * (1 + in.Level)
}

// Chain composes models left to right: the output of one is the ideal
// input of the next.
type Chain []Model

// Perturb applies each model in order.
func (c Chain) Perturb(rng *rand.Rand, offset time.Duration, ideal float64) float64 {
	v := ideal
	for _, m := range c {
		v = m.Perturb(rng, offset, v)
	}
	return v
}

// Profile describes the noise environment of one simulated cluster. The
// zero value is a quiet system.
type Profile struct {
	// Jitter is per-sample measurement noise, relative to the value.
	Jitter float64
	// SpikeProb and SpikeMagnitude configure rare excursions.
	SpikeProb      float64
	SpikeMagnitude float64
	// DriftPerMinute is slow relative growth per minute.
	DriftPerMinute float64
	// InitAmplitude and InitSettle shape the start-up transient.
	InitAmplitude float64
	InitSettle    time.Duration
	// InterferenceProb and InterferenceLevel configure whole-execution
	// neighbour interference.
	InterferenceProb  float64
	InterferenceLevel float64
}

// DefaultProfile mirrors a production cluster busy enough to be
// interesting: small relative jitter, occasional spikes, a strong
// initialization transient that has died off by the paper's 60-second
// window start, and a noisy neighbour in roughly one series out of
// fourteen. The magnitudes are calibrated so that fingerprint keys
// wobble across a handful of adjacent rounded values (the multiplicity
// visible in Table 4) without erasing cross-application separation.
func DefaultProfile() Profile {
	return Profile{
		Jitter:            0.002,
		SpikeProb:         0.002,
		SpikeMagnitude:    0.3,
		DriftPerMinute:    0.0005,
		InitAmplitude:     0.8,
		InitSettle:        12 * time.Second,
		InterferenceProb:  0.07,
		InterferenceLevel: 0.005,
	}
}

// QuietProfile returns a nearly noise-free environment for calibration.
func QuietProfile() Profile {
	return Profile{Jitter: 0.0005, InitAmplitude: 0.3, InitSettle: 10 * time.Second}
}

// NewChain instantiates a fresh model chain for one execution. A new
// chain must be created per execution because Interference carries
// per-execution state.
func (p Profile) NewChain() Chain {
	c := Chain{
		InitTransient{Amplitude: p.InitAmplitude, Settle: p.InitSettle, ExtraSigmaRel: p.Jitter * 4},
		Drift{PerMinute: p.DriftPerMinute},
		&Interference{Prob: p.InterferenceProb, Level: p.InterferenceLevel},
		Spike{Prob: p.SpikeProb, Magnitude: p.SpikeMagnitude},
		Gaussian{SigmaRel: p.Jitter},
	}
	return c
}
