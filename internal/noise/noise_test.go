package noise

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestNoneIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range []float64{0, 1, -5, 1e9} {
		if got := (None{}).Perturb(rng, time.Second, v); got != v {
			t.Errorf("None.Perturb(%v) = %v", v, got)
		}
	}
}

func TestGaussianStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Gaussian{SigmaRel: 0.01}
	const ideal = 1000.0
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Perturb(rng, 0, ideal)
		sum += v
		sumSq += (v - ideal) * (v - ideal)
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq / float64(n))
	if math.Abs(mean-ideal) > 0.5 {
		t.Errorf("mean = %v, want ≈ %v", mean, ideal)
	}
	if math.Abs(sd-10) > 0.5 {
		t.Errorf("sd = %v, want ≈ 10", sd)
	}
}

func TestGaussianZeroSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := (Gaussian{}).Perturb(rng, 0, 42); got != 42 {
		t.Errorf("zero-sigma Gaussian should be identity, got %v", got)
	}
}

func TestGaussianAbsoluteSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Gaussian{SigmaAbs: 5}
	// Even with ideal 0, absolute sigma must perturb.
	var moved bool
	for i := 0; i < 10; i++ {
		if g.Perturb(rng, 0, 0) != 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("absolute sigma should perturb a zero ideal")
	}
}

func TestSpikeProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Spike{Prob: 0.1, Magnitude: 2}
	n, hits := 50000, 0
	for i := 0; i < n; i++ {
		v := s.Perturb(rng, 0, 100)
		if v != 100 {
			if v != 300 {
				t.Fatalf("spiked value = %v, want 300", v)
			}
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("spike rate = %v, want ≈ 0.1", rate)
	}
	if (Spike{}).Perturb(rng, 0, 100) != 100 {
		t.Error("zero-prob spike should be identity")
	}
}

func TestDriftGrowsLinearly(t *testing.T) {
	d := Drift{PerMinute: 0.01}
	if got := d.Perturb(nil, 0, 100); got != 100 {
		t.Errorf("drift at t=0 should be identity, got %v", got)
	}
	got := d.Perturb(nil, 2*time.Minute, 100)
	if math.Abs(got-102) > 1e-9 {
		t.Errorf("drift at 2min = %v, want 102", got)
	}
}

func TestInitTransientDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	it := InitTransient{Amplitude: 1.0, Settle: 10 * time.Second}
	early := it.Perturb(rng, 0, 100)
	if math.Abs(early-200) > 1e-9 {
		t.Errorf("transient at t=0 = %v, want 200", early)
	}
	late := it.Perturb(rng, 2*time.Minute, 100)
	if math.Abs(late-100) > 0.01 {
		t.Errorf("transient at 2min = %v, want ≈ 100", late)
	}
	if got := (InitTransient{}).Perturb(rng, 0, 100); got != 100 {
		t.Errorf("zero-settle transient should be identity, got %v", got)
	}
}

func TestInterferenceIsPerExecution(t *testing.T) {
	// With Prob 1 every sample of the series is scaled identically.
	rng := rand.New(rand.NewSource(7))
	in := &Interference{Prob: 1, Level: 0.1}
	for i := 0; i < 5; i++ {
		if got := in.Perturb(rng, 0, 100); math.Abs(got-110) > 1e-9 {
			t.Fatalf("active interference = %v, want 110", got)
		}
	}
	// With Prob 0 the series is untouched.
	off := &Interference{Prob: 0, Level: 0.1}
	for i := 0; i < 5; i++ {
		if got := off.Perturb(rng, 0, 100); got != 100 {
			t.Fatalf("inactive interference = %v, want 100", got)
		}
	}
}

func TestInterferenceActivationRate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	active := 0
	const n = 20000
	for i := 0; i < n; i++ {
		in := &Interference{Prob: 0.25, Level: 1}
		if in.Perturb(rng, 0, 1) != 1 {
			active++
		}
	}
	rate := float64(active) / float64(n)
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("activation rate = %v, want ≈ 0.25", rate)
	}
}

func TestChainComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := Chain{Drift{PerMinute: 0.01}, Drift{PerMinute: 0.01}}
	got := c.Perturb(rng, time.Minute, 100)
	want := 100 * 1.01 * 1.01
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("chained drift = %v, want %v", got, want)
	}
	if got := (Chain{}).Perturb(rng, 0, 5); got != 5 {
		t.Error("empty chain should be identity")
	}
}

func TestProfileNewChainIndependence(t *testing.T) {
	// Two chains from the same profile must carry independent
	// interference state.
	p := Profile{InterferenceProb: 1, InterferenceLevel: 0.5}
	rng := rand.New(rand.NewSource(10))
	c1 := p.NewChain()
	c2 := p.NewChain()
	v1 := c1.Perturb(rng, time.Minute*5, 100)
	v2 := c2.Perturb(rng, time.Minute*5, 100)
	if math.Abs(v1-150) > 1 || math.Abs(v2-150) > 1 {
		t.Errorf("both chains should be interfered: %v %v", v1, v2)
	}
}

func TestDefaultProfileWindowIsQuiet(t *testing.T) {
	// By 60s the init transient of the default profile must have
	// decayed to well under the rounding step of the headline metric,
	// otherwise Table 4 levels shift.
	p := DefaultProfile()
	decay := math.Exp(-60.0 / p.InitSettle.Seconds())
	if p.InitAmplitude*decay > 0.01 {
		t.Errorf("init transient residual at 60s = %v, want < 1%%",
			p.InitAmplitude*decay)
	}
}

func TestQuietProfileIsQuieterThanDefault(t *testing.T) {
	q, d := QuietProfile(), DefaultProfile()
	if q.Jitter >= d.Jitter {
		t.Error("quiet profile should have less jitter")
	}
	if q.InterferenceProb > 0 || q.SpikeProb > 0 {
		t.Error("quiet profile should have no interference or spikes")
	}
}
