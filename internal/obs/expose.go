package obs

// Prometheus text exposition format 0.0.4: one # HELP / # TYPE pair
// per family, families in name order, series in label order — the
// output is deterministic given deterministic values, which the
// exposition golden test pins.

import (
	"bytes"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentTypeExposition is the Content-Type of the /metrics response.
const ContentTypeExposition = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in text exposition
// format 0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot under the lock: late registrations append to family
	// series slices, and exposition must not race them.
	r.mu.Lock()
	fams := make([]family, 0, len(r.fams))
	for _, fam := range r.fams {
		snap := *fam
		snap.series = append([]*series(nil), fam.series...)
		fams = append(fams, snap)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b bytes.Buffer
	for _, fam := range fams {
		b.Reset()
		if fam.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(fam.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(fam.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(fam.name)
		b.WriteByte(' ')
		b.WriteString(fam.kind.String())
		b.WriteByte('\n')
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				v := s.c.Value()
				if s.cf != nil {
					v = s.cf()
				}
				writeSample(&b, fam.name, "", s.labels, "", float64(v))
			case kindGauge:
				v := s.g.Value()
				if s.gf != nil {
					v = s.gf()
				}
				writeSample(&b, fam.name, "", s.labels, "", v)
			case kindHistogram:
				writeHistogram(&b, fam.name, s)
			}
		}
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative _bucket series, then _sum and
// _count. Bucket counts snapshot per bucket; under concurrent Observe
// the cumulative counts stay monotone within this scrape.
func writeHistogram(b *bytes.Buffer, name string, s *series) {
	h := s.h
	cum := int64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		writeSample(b, name, "_bucket", s.labels, formatFloat(ub), float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(b, name, "_bucket", s.labels, "+Inf", float64(cum))
	writeSample(b, name, "_sum", s.labels, "", h.Sum())
	writeSample(b, name, "_count", s.labels, "", float64(h.Count()))
}

// writeSample emits one line: name+suffix{labels,le="le"} value.
func writeSample(b *bytes.Buffer, name, suffix, labels, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a value the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the format spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentTypeExposition)
		var buf bytes.Buffer
		_ = r.WritePrometheus(&buf)
		_, _ = w.Write(buf.Bytes())
	})
}
