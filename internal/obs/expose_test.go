package obs

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite exposition golden files")

// goldenRegistry builds a registry with one family of every kind,
// labeled and unlabeled series, and deterministic values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("efd_http_requests_total", `route="/v1/samples",code="2xx"`, "HTTP requests by route and status class").Add(12)
	r.Counter("efd_http_requests_total", `route="/v1/jobs",code="2xx"`, "HTTP requests by route and status class").Add(3)
	r.Counter("efd_http_requests_total", `route="/v1/jobs",code="4xx"`, "HTTP requests by route and status class").Add(1)
	r.CounterFunc("efd_engine_samples_accepted_total", "", "samples accepted since start", func() int64 { return 6000 })
	r.Gauge("efd_engine_live_jobs", "", "currently tracked jobs").Set(4)
	r.GaugeFunc("efd_tsdb_recovery_seconds", "", "duration of the last store recovery", func() float64 { return 0.25 })
	h := r.Histogram("efd_http_request_seconds", `route="/v1/samples"`, "request latency", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		h.Observe(v)
	}
	return r
}

// TestExpositionGolden pins the exposition byte-for-byte: family
// order, series order, HELP/TYPE lines, histogram shape, float
// formatting. Regenerate with -update-golden after deliberate format
// changes.
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionStableOrder renders twice (with a re-registration in
// between) and requires identical bytes — map iteration order must
// never leak into the exposition.
func TestExpositionStableOrder(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	r.Counter("efd_http_requests_total", `route="/v1/jobs",code="2xx"`, "HTTP requests by route and status class")
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("exposition not stable across renders:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// parseExposition is a minimal scrape-side parser of text format
// 0.0.4: TYPE lines keyed by family, samples keyed by full series
// name (with label payload).
func parseExposition(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return types, samples
}

// TestScrapeRoundTrip scrapes the HTTP handler and checks the parsed
// families and values against the registry's own state — the
// client-side view must reconstruct what the instruments hold.
func TestScrapeRoundTrip(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeExposition {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeExposition)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, buf.String())

	wantTypes := map[string]string{
		"efd_http_requests_total":           "counter",
		"efd_engine_samples_accepted_total": "counter",
		"efd_engine_live_jobs":              "gauge",
		"efd_tsdb_recovery_seconds":         "gauge",
		"efd_http_request_seconds":          "histogram",
	}
	for fam, kind := range wantTypes {
		if types[fam] != kind {
			t.Errorf("family %s type = %q, want %q", fam, types[fam], kind)
		}
	}
	wantSamples := map[string]float64{
		`efd_http_requests_total{route="/v1/jobs",code="2xx"}`:            3,
		`efd_http_requests_total{route="/v1/samples",code="2xx"}`:         12,
		"efd_engine_samples_accepted_total":                               6000,
		"efd_engine_live_jobs":                                            4,
		"efd_tsdb_recovery_seconds":                                       0.25,
		`efd_http_request_seconds_bucket{route="/v1/samples",le="0.001"}`: 1,
		`efd_http_request_seconds_bucket{route="/v1/samples",le="0.01"}`:  3,
		`efd_http_request_seconds_bucket{route="/v1/samples",le="+Inf"}`:  5,
		`efd_http_request_seconds_count{route="/v1/samples"}`:             5,
	}
	for key, want := range wantSamples {
		got, ok := samples[key]
		if !ok {
			t.Errorf("sample %s missing from scrape", key)
			continue
		}
		if got != want {
			t.Errorf("sample %s = %v, want %v", key, got, want)
		}
	}
	// The histogram sum survives the text round trip bit-exactly
	// ('g', -1 formatting).
	if got := samples[`efd_http_request_seconds_sum{route="/v1/samples"}`]; got != 0.0005+0.002+0.002+0.05+2 {
		t.Errorf("histogram sum = %v after round trip", got)
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}
