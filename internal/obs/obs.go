// Package obs is the repo's stdlib-only observability kit: an
// alloc-free metrics registry exposed in Prometheus text format 0.0.4
// (expose.go), seeded request-trace IDs with a per-request span API
// and a slowest-requests ring (trace.go), all designed so the ingest
// hot path can be instrumented without allocating.
//
// The instrument fast paths — Counter.Add/Inc, Gauge.Set/Add,
// Histogram.Observe — are single atomic operations on pre-registered
// series and are safe on nil receivers (a nil instrument is a no-op),
// so optional instrumentation needs no call-site branches. Series are
// registered up front with a pre-rendered label string; nothing on
// the observation path formats, hashes, or allocates.
//
// CounterFunc/GaugeFunc register callback-backed series over counters
// a subsystem already maintains (the engine's atomic.Int64 totals),
// so existing hot paths gain exposition without a second increment.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; Add/Inc are single atomic adds and are no-ops on a nil
// receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//efd:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//efd:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric. Set/Add are atomic (Add is a
// CAS loop on the float bits) and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//efd:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
//
//efd:hotpath
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative
// upper bounds (Prometheus `le` semantics) chosen at registration;
// Observe is a linear bucket scan plus three atomics — zero
// allocations — and a no-op on a nil receiver.
type Histogram struct {
	upper  []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(upper)+1; the last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
//
//efd:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially spaced bucket bounds: start,
// start*factor, start*factor², … — the shape latency and size
// distributions want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric kinds, for exposition and mismatch detection.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels string // pre-rendered `k="v",…` payload, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() int64
	gf     func() float64
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration locks; the returned instruments are lock-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register resolves (name, labels) to its series, creating family and
// series as needed. Kind mismatches and duplicate registrations of
// callback-backed series are programmer errors and panic.
func (r *Registry) register(name, labels, help string, k kind) (*series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k}
		r.fams[name] = fam
	} else if fam.kind != k {
		panic(fmt.Sprintf("obs: %s registered as %s and %s", name, fam.kind, k))
	}
	for _, s := range fam.series {
		if s.labels == labels {
			return s, false
		}
	}
	s := &series{labels: labels}
	fam.series = append(fam.series, s)
	sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labels < fam.series[j].labels })
	return s, true
}

// Counter registers (or returns the existing) counter series. labels
// is a pre-rendered `k="v",…` payload ("" for an unlabeled series).
func (r *Registry) Counter(name, labels, help string) *Counter {
	s, fresh := r.register(name, labels, help, kindCounter)
	if fresh {
		s.c = new(Counter)
	} else if s.c == nil {
		panic(fmt.Sprintf("obs: %s{%s} already registered as a callback counter", name, labels))
	}
	return s.c
}

// CounterFunc registers a callback-backed counter series — exposition
// reads fn, so a subsystem's existing atomic total becomes scrapable
// without double counting.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	s, fresh := r.register(name, labels, help, kindCounter)
	if !fresh {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, labels))
	}
	s.cf = fn
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	s, fresh := r.register(name, labels, help, kindGauge)
	if fresh {
		s.g = new(Gauge)
	} else if s.g == nil {
		panic(fmt.Sprintf("obs: %s{%s} already registered as a callback gauge", name, labels))
	}
	return s.g
}

// GaugeFunc registers a callback-backed gauge series.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	s, fresh := r.register(name, labels, help, kindGauge)
	if !fresh {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, labels))
	}
	s.gf = fn
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, labels, help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s buckets not strictly ascending", name))
		}
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: %s needs at least one bucket", name))
	}
	s, fresh := r.register(name, labels, help, kindHistogram)
	if fresh {
		s.h = &Histogram{
			upper:  append([]float64(nil), buckets...),
			counts: make([]atomic.Int64, len(buckets)+1),
		}
	}
	return s.h
}
