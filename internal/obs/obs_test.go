package obs

import (
	"context"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "a counter")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("g", "", "a gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
	// Idempotent re-registration returns the same instrument.
	if r.Counter("c_total", "", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Nil instruments are silent no-ops.
	var nc *Counter
	nc.Add(1)
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	ng.Add(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 5.555 {
		t.Fatalf("sum = %v, want 5.555", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "", "")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestObserveAllocFree pins the instrument fast paths at zero
// allocations — the contract that lets the ingest hot path carry
// instrumentation.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "")
	h := r.Histogram("h_seconds", "", "", ExpBuckets(1e-6, 4, 12))
	g := r.Gauge("g", "", "")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0001) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(4.2) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
}

func TestTracerDeterministicAndUnique(t *testing.T) {
	a, b := NewTracer(42), NewTracer(42)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		ida, idb := a.NextID(), b.NextID()
		if ida != idb {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, ida, idb)
		}
		if len(ida) != 16 {
			t.Fatalf("trace ID %q not 16 hex digits", ida)
		}
		if seen[ida] {
			t.Fatalf("duplicate trace ID %s at %d", ida, i)
		}
		seen[ida] = true
	}
	if NewTracer(1).NextID() == NewTracer(2).NextID() {
		t.Fatal("different seeds produced the same first ID")
	}
}

func TestSpanContext(t *testing.T) {
	s := NewSpan("abc")
	s.RecordStage("decode", 2*time.Millisecond)
	s.RecordStage("engine", 3*time.Millisecond)
	ctx := ContextWithSpan(context.Background(), s)
	got := SpanFrom(ctx)
	if got != s {
		t.Fatal("SpanFrom did not return the attached span")
	}
	st := got.Stages()
	if len(st) != 2 || st[0].Name != "decode" || st[1].Name != "engine" {
		t.Fatalf("stages = %+v", st)
	}
	if st[0].DurationMS != 2 {
		t.Fatalf("decode stage = %v ms, want 2", st[0].DurationMS)
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("SpanFrom on a bare context should be nil")
	}
	// nil-span methods are no-ops.
	var ns *Span
	ns.RecordStage("x", time.Second)
	if ns.Stages() != nil {
		t.Fatal("nil span has stages")
	}
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(3)
	for _, ms := range []float64{5, 1, 9, 3, 7} {
		r.Record(SlowRequest{Route: "/v1/samples", DurationMS: ms})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	want := []float64{9, 7, 5}
	for i, e := range snap {
		if e.DurationMS != want[i] {
			t.Fatalf("snapshot[%d] = %v ms, want %v", i, e.DurationMS, want[i])
		}
	}
}
