package obs

// Request tracing: seeded trace-ID generation (no wall-clock-derived
// global state, so IDs are reproducible under a fixed seed), a span
// that accumulates named stage timings through the request context,
// and a ring of the slowest requests for GET /v1/debug/slow.

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the request/response header carrying the trace ID.
// A client-supplied ID is propagated; otherwise the server mints one.
const TraceHeader = "X-Efd-Trace"

// Tracer mints 16-hex-digit trace IDs from a splitmix64 sequence over
// an explicit seed — deterministic in tests, unique enough in
// production when seeded from crypto/rand.
type Tracer struct {
	state atomic.Uint64
}

// NewTracer returns a tracer whose ID sequence is a pure function of
// seed.
func NewTracer(seed uint64) *Tracer {
	t := &Tracer{}
	t.state.Store(seed)
	return t
}

// NextID returns the next trace ID: 16 lowercase hex digits.
func (t *Tracer) NextID() string {
	x := t.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// Stage is one named, timed phase of a request.
type Stage struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// Span carries one request's trace ID and stage timings. Handlers
// reach it through the request context (SpanFrom) and record the
// phases they own; methods are no-ops on a nil span, so handlers need
// no "is tracing on" branches.
type Span struct {
	TraceID string

	mu     sync.Mutex
	stages []Stage
}

// NewSpan starts a span for the given trace ID.
func NewSpan(traceID string) *Span {
	return &Span{TraceID: traceID}
}

// RecordStage appends one named stage timing.
func (s *Span) RecordStage(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, DurationMS: float64(d) / float64(time.Millisecond)})
	s.mu.Unlock()
}

// Stages snapshots the recorded stages in record order.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Stage(nil), s.stages...)
}

type spanKey struct{}

// ContextWithSpan attaches a span to a context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's span, or nil when tracing is off.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SlowRequest is one entry of the slow-request ring — the
// GET /v1/debug/slow element shape.
type SlowRequest struct {
	Trace      string  `json:"trace"`
	Method     string  `json:"method"`
	Route      string  `json:"route"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	Stages     []Stage `json:"stages,omitempty"`
}

// SlowRing keeps the N slowest requests seen so far. Record is O(N)
// under a mutex with N small (the default ring holds 32), which is
// noise next to the request it measures.
type SlowRing struct {
	mu   sync.Mutex
	max  int
	reqs []SlowRequest
}

// NewSlowRing returns a ring keeping the n slowest requests.
func NewSlowRing(n int) *SlowRing {
	if n < 1 {
		n = 1
	}
	return &SlowRing{max: n, reqs: make([]SlowRequest, 0, n)}
}

// Record offers one request to the ring; it displaces the current
// fastest entry once the ring is full.
func (r *SlowRing) Record(req SlowRequest) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.reqs) < r.max {
		r.reqs = append(r.reqs, req)
		return
	}
	minIdx := 0
	for i := 1; i < len(r.reqs); i++ {
		if r.reqs[i].DurationMS < r.reqs[minIdx].DurationMS {
			minIdx = i
		}
	}
	if req.DurationMS > r.reqs[minIdx].DurationMS {
		r.reqs[minIdx] = req
	}
}

// Snapshot returns the ring's entries, slowest first.
func (r *SlowRing) Snapshot() []SlowRequest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]SlowRequest(nil), r.reqs...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationMS > out[j].DurationMS })
	return out
}
