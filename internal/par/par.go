// Package par provides the bounded worker pools used by the training
// and evaluation paths. Work is handed out through an atomic counter,
// so the assignment of items to goroutines is unspecified — callers
// obtain deterministic results by writing into pre-sized, index-
// addressed output slices and assembling them in index order after the
// pool drains.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values above zero are
// returned unchanged, anything else becomes GOMAXPROCS.
func Workers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines
// (0 means GOMAXPROCS). fn must be safe for concurrent invocation;
// which goroutine runs which index is unspecified. With one worker (or
// n <= 1) everything runs inline on the calling goroutine.
func For(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0, n) into contiguous spans of roughly minChunk or
// more indexes (the final span may come up slightly short) and runs
// fn(lo, hi) for each span on at most workers goroutines. Per-span
// setup (scratch buffers, recognizers) amortizes over the span, which
// is why the hot evaluation loops prefer Chunks over For. A minChunk
// of 0 means 1.
func Chunks(n, workers, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers = Workers(workers)
	spans := workers
	// floor(n/minChunk) spans at most, so no span falls below minChunk
	// (except the single span covering an n smaller than minChunk).
	if max := n / minChunk; spans > max {
		spans = max
	}
	if spans <= 1 {
		fn(0, n)
		return
	}
	size := (n + spans - 1) / spans
	For(spans, workers, func(s int) {
		lo := s * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(lo, hi)
		}
	})
}
