package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 237
		hits := make([]int32, n)
		For(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	For(0, 4, func(int) { t.Fatal("fn must not run for n=0") })
}

func TestChunksPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers, minChunk int }{
		{100, 4, 1}, {100, 4, 16}, {5, 8, 16}, {1, 8, 1}, {64, 3, 10},
	} {
		hits := make([]int32, tc.n)
		Chunks(tc.n, tc.workers, tc.minChunk, func(lo, hi int) {
			if hi-lo < 1 {
				t.Fatalf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=%d minChunk=%d: index %d covered %d times",
					tc.n, tc.workers, tc.minChunk, i, h)
			}
		}
	}
	Chunks(0, 4, 1, func(int, int) { t.Fatal("fn must not run for n=0") })
}

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
}
