// Binary columnar ingest: POST /v1/samples with
// Content-Type: application/x-efd-runs.
//
// The body is a sequence of CRC-framed run records in the shared EFD
// wire encoding (internal/wire — the exact framing the tsdb WAL
// stores), one record per (job, metric, node) sample run:
//
//	[4B length][4B CRC-32C][type=2, job, metric, node, count,
//	 zigzag-varint offset deltas, raw float64 value bits]
//
// Compared with the JSON path this skips per-sample decoding
// entirely: each record lands as two columns that feed
// Engine.IngestRuns (and, in storage mode, the WAL) directly, and the
// decoder's buffers are pooled, so a warmed server allocates close to
// nothing per request beyond the two per-run header strings. Decoding
// is bit-exact — float64 values round-trip by bits, never through
// text — so the resulting stream state is bit-identical to the same
// samples sent as JSON.
package server

import (
	"errors"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/efd/monitor"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ContentTypeRuns is the media type of the binary columnar ingest
// encoding (defined with the codec in internal/wire).
const ContentTypeRuns = wire.ContentTypeRuns

// isRunsContentType matches the binary ingest media type, tolerating
// parameters (e.g. a charset some client framework insists on).
func isRunsContentType(ct string) bool {
	if ct == "" {
		return false
	}
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		return mt == ContentTypeRuns
	}
	return strings.ToLower(strings.TrimSpace(ct)) == ContentTypeRuns
}

// binDecoder is the pooled per-request decode state: the body buffer,
// one offset/value arena shared by every run of the request, and the
// run/batch assembly slices. After a request the arena is resized to
// the request's total sample count, so a steady workload decodes with
// zero arena growth.
type binDecoder struct {
	body    []byte
	offs    []time.Duration
	vals    []float64
	batches []monitor.RunBatch
}

var binPool = sync.Pool{New: func() any { return new(binDecoder) }}

// readBody reads the (already MaxBytesReader-bounded) body into the
// pooled buffer.
func (d *binDecoder) readBody(r io.Reader) error {
	d.body = d.body[:0]
	for {
		if len(d.body) == cap(d.body) {
			d.body = append(d.body, 0)[:len(d.body)]
		}
		n, err := r.Read(d.body[len(d.body):cap(d.body)])
		d.body = d.body[:len(d.body)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// decode walks the body's frames into run batches, grouping
// consecutive records of one job (the natural forwarder layout) into
// a single batch.
func (d *binDecoder) decode() error {
	d.batches = d.batches[:0]
	used := 0
	total := 0
	_, _, err := wire.WalkFrames(d.body, func(payload []byte) error {
		// Decode into the arena tail. If the arena is full, append
		// reallocates: the new columns land in a fresh array while
		// earlier runs keep referencing the old one — correct either
		// way, and the arena is grown to `total` afterwards so the
		// next request of this size fits entirely.
		rec, err := wire.DecodeRunInto(payload, d.offs[used:used], d.vals[used:used])
		if err != nil {
			return err
		}
		n := len(rec.Vals)
		total += n
		if used+n <= cap(d.offs) && used+n <= cap(d.vals) {
			used += n
		}
		run := monitor.Run{Metric: rec.Metric, Node: rec.Node, Offsets: rec.Offs, Values: rec.Vals}
		if k := len(d.batches); k > 0 && d.batches[k-1].JobID == rec.Job {
			d.batches[k-1].Runs = append(d.batches[k-1].Runs, run)
		} else {
			d.batches = append(d.batches, monitor.RunBatch{JobID: rec.Job, Runs: nil})
			d.batches[len(d.batches)-1].Runs = append(d.batches[len(d.batches)-1].Runs, run)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total > cap(d.offs) {
		d.offs = make([]time.Duration, 0, total)
		d.vals = make([]float64, 0, total)
	}
	return nil
}

// release returns the decoder to the pool, dropping the per-request
// run slices (they alias the arena) but keeping the buffers.
func (d *binDecoder) release() {
	for i := range d.batches {
		d.batches[i].Runs = nil
	}
	d.batches = d.batches[:0]
	binPool.Put(d)
}

// handleSamplesBinary is the application/x-efd-runs branch of
// POST /v1/samples. Semantics mirror the JSON multi-job form: all
// records validate before anything feeds, unknown jobs are reported
// alongside the accepted count, and one store commit acknowledges the
// request.
func (s *Server) handleSamplesBinary(w http.ResponseWriter, r *http.Request) {
	span := obs.SpanFrom(r.Context())
	var t0 time.Time
	if span != nil {
		t0 = time.Now()
	}
	d := binPool.Get().(*binDecoder)
	defer d.release()
	if err := d.readBody(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, codeBadRequest, "read body: %v", err)
		return
	}
	if len(d.body) == 0 {
		httpError(w, http.StatusBadRequest, codeBadRequest, "empty ingest request")
		return
	}
	if err := d.decode(); err != nil {
		httpError(w, http.StatusBadRequest, codeBadRequest, "bad run encoding: %v", err)
		return
	}
	if span != nil {
		span.RecordStage("decode", time.Since(t0))
		t0 = time.Now()
	}
	single := len(d.batches) == 1
	accepted, unknown, err := s.IngestRuns(d.batches)
	if span != nil {
		span.RecordStage("engine", time.Since(t0))
	}
	s.writeIngestOutcome(w, single, accepted, unknown, err)
}
