package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// jobPlan is one job's sample schedule for the concurrency test.
type jobPlan struct {
	id      string
	level   float64
	want    string
	samples []wireSample
}

func makePlan(i int) jobPlan {
	p := jobPlan{id: fmt.Sprintf("conc-job-%02d", i)}
	if i%2 == 0 {
		p.level, p.want = 6000, "ft"
	} else {
		p.level, p.want = 7000, "mg"
	}
	for sec := 0; sec <= 125; sec += 5 {
		for node := 0; node < 2; node++ {
			p.samples = append(p.samples, wireSample{
				Metric: apps.HeadlineMetric, Node: node,
				OffsetS: float64(sec), Value: p.level,
			})
		}
	}
	return p
}

// referenceState feeds the plan serially into a fresh stream against an
// identical (but unshared) dictionary and returns the expected terminal
// recognition state.
func referenceState(t *testing.T, p jobPlan) jobState {
	t.Helper()
	d := trainedDict(t)
	st := core.NewStream(d, 2)
	for _, smp := range p.samples {
		st.Feed(smp.Metric, smp.Node, time.Duration(smp.OffsetS*float64(time.Second)), smp.Value)
	}
	res := st.Recognize()
	return jobState{
		JobID: p.id, Complete: st.Complete(),
		Recognized: res.Recognized(), Top: res.Top(),
		Matched: res.Matched, Total: res.Total,
	}
}

// TestShardedServerConcurrency is the tentpole's race test: parallel
// registrants, chunked ingest, recognition polls, and a concurrent
// online Learn all run against the sharded server under -race, and
// every job's terminal state must match a serially-fed reference
// stream.
func TestShardedServerConcurrency(t *testing.T) {
	const jobs = 32
	s := New(trainedDict(t))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	plans := make([]jobPlan, jobs)
	for i := range plans {
		plans[i] = makePlan(i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, jobs*2+2)
	// One goroutine per job: register, then feed in chunks with
	// interleaved polls.
	for _, p := range plans {
		wg.Add(1)
		go func(p jobPlan) {
			defer wg.Done()
			if err := doPost(ts.URL+"/v1/jobs", registerRequest{JobID: p.id, Nodes: 2}, http.StatusCreated); err != nil {
				errs <- fmt.Errorf("register %s: %w", p.id, err)
				return
			}
			const chunk = 8
			for off := 0; off < len(p.samples); off += chunk {
				end := off + chunk
				if end > len(p.samples) {
					end = len(p.samples)
				}
				if err := doPost(ts.URL+"/v1/samples", sampleBatch{JobID: p.id, Samples: p.samples[off:end]}, http.StatusOK); err != nil {
					errs <- fmt.Errorf("feed %s: %w", p.id, err)
					return
				}
				if off%(chunk*4) == 0 {
					resp, err := http.Get(ts.URL + "/v1/jobs/" + p.id)
					if err != nil {
						errs <- fmt.Errorf("poll %s: %w", p.id, err)
						return
					}
					resp.Body.Close()
				}
			}
		}(p)
	}
	// Background pollers sweeping all jobs and the listing/metrics
	// endpoints while ingest runs.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				urls := []string{
					ts.URL + "/v1/jobs/" + plans[(g*17+i)%jobs].id,
					ts.URL + "/v1/jobs?limit=1000",
					ts.URL + "/v1/metrics",
					ts.URL + "/v1/dictionary",
				}
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	// A concurrent learner: its own job at a novel level, fed to
	// completion and labelled while everything else is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		learn := jobPlan{id: "conc-learn", level: 9000}
		for sec := 0; sec <= 125; sec++ {
			for node := 0; node < 2; node++ {
				learn.samples = append(learn.samples, wireSample{
					Metric: apps.HeadlineMetric, Node: node,
					OffsetS: float64(sec), Value: learn.level,
				})
			}
		}
		if err := doPost(ts.URL+"/v1/jobs", registerRequest{JobID: learn.id, Nodes: 2}, http.StatusCreated); err != nil {
			errs <- fmt.Errorf("register learner: %w", err)
			return
		}
		if err := doPost(ts.URL+"/v1/samples", sampleBatch{JobID: learn.id, Samples: learn.samples}, http.StatusOK); err != nil {
			errs <- fmt.Errorf("feed learner: %w", err)
			return
		}
		if err := doPost(ts.URL+"/v1/jobs/"+learn.id+"/label", labelRequest{App: "lammps", Input: "X"}, http.StatusOK); err != nil {
			errs <- fmt.Errorf("label learner: %w", err)
			return
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Terminal state of every job matches its serially-fed reference.
	for _, p := range plans {
		want := referenceState(t, p)
		_, body := get(t, ts.URL+"/v1/jobs/"+p.id)
		if body["top"] != want.Top || body["complete"].(bool) != want.Complete {
			t.Errorf("%s: top=%v complete=%v, want top=%v complete=%v",
				p.id, body["top"], body["complete"], want.Top, want.Complete)
		}
		if int(body["matched"].(float64)) != want.Matched || int(body["total"].(float64)) != want.Total {
			t.Errorf("%s: matched/total = %v/%v, want %d/%d",
				p.id, body["matched"], body["total"], want.Matched, want.Total)
		}
		if body["top"] != p.want {
			t.Errorf("%s recognized as %v, want %s", p.id, body["top"], p.want)
		}
	}
	// The concurrently learned application is recognizable and its job
	// consumed.
	var top string
	s.Dictionary().Read(func(d *core.Dictionary) {
		top = d.Recognize(fixedSource{nodes: 2, level: 9000}).Top()
	})
	if top != "lammps" {
		t.Errorf("learned app recognized as %q, want lammps", top)
	}
	if resp, _ := get(t, ts.URL+"/v1/jobs/conc-learn"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("labelled job survived: %v", resp.Status)
	}
}

// doPost posts JSON and checks the status code.
func doPost(url string, body any, wantStatus int) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return fmt.Errorf("%s: %s (%v)", url, resp.Status, m)
	}
	return nil
}
