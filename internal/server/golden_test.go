package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
)

// The golden tests pin the v1 JSON wire protocol: every success-path
// response body, byte for byte, as the pre-refactor server produced it.
// Any change to these bytes is a breaking API change and must show up
// as a conscious golden update (-update-golden), never as an incidental
// diff from refactoring the engine out from behind the handlers.
//
// Error responses are deliberately NOT pinned here: their envelope is
// allowed to evolve (and did, to {"error":{"code","message"}}).

var updateGolden = flag.Bool("update-golden", false, "rewrite golden HTTP transcripts")

// goldenRecorder replays a scripted request sequence and renders each
// response as one transcript section.
type goldenRecorder struct {
	t    *testing.T
	base string
	buf  bytes.Buffer
	step int
}

func (g *goldenRecorder) do(method, path string, body any) {
	g.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			g.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, g.base+path, rd)
	if err != nil {
		g.t.Fatal(err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		g.t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		g.t.Fatal(err)
	}
	g.step++
	fmt.Fprintf(&g.buf, "### %d %s %s\n%d\n%s", g.step, method, path, resp.StatusCode, raw)
	if !bytes.HasSuffix(raw, []byte("\n")) {
		g.buf.WriteByte('\n')
	}
}

func (g *goldenRecorder) check(name string) {
	g.t.Helper()
	path := filepath.Join("testdata", name)
	got := g.buf.String()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			g.t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			g.t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		g.t.Fatalf("missing golden %s (run with -update-golden to record): %v", path, err)
	}
	if got != string(want) {
		g.t.Errorf("HTTP transcript diverged from %s:\n%s", path, diffFirst(string(want), got))
	}
}

// diffFirst points at the first differing line, enough to debug a
// transcript without a full diff tool.
func diffFirst(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}

// goldenSamples builds the deterministic ingest body: seconds
// [0,125] × 2 nodes at a fixed level.
func goldenSamples(level float64, step int) []wireSample {
	var out []wireSample
	for sec := 0; sec <= 125; sec += step {
		for node := 0; node < 2; node++ {
			out = append(out, wireSample{Metric: apps.HeadlineMetric, Node: node, OffsetS: float64(sec), Value: level})
		}
	}
	return out
}

func TestGoldenV1InMemory(t *testing.T) {
	_, ts := newTestServer(t)
	g := &goldenRecorder{t: t, base: ts.URL}

	g.do(http.MethodGet, "/healthz", nil)
	g.do(http.MethodPost, "/v1/jobs", registerRequest{JobID: "g1", Nodes: 2})
	g.do(http.MethodPost, "/v1/samples", sampleBatch{JobID: "g1", Samples: goldenSamples(6010, 1)})
	g.do(http.MethodGet, "/v1/jobs/g1", nil)
	g.do(http.MethodPost, "/v1/jobs", registerRequest{JobID: "g2", Nodes: 2})
	g.do(http.MethodPost, "/v1/samples", map[string]any{"batches": []sampleBatch{
		{JobID: "g2", Samples: goldenSamples(7000, 5)},
		{JobID: "ghost", Samples: goldenSamples(1, 25)},
	}})
	g.do(http.MethodGet, "/v1/jobs/g2", nil)
	g.do(http.MethodGet, "/v1/jobs?limit=10", nil)
	g.do(http.MethodGet, "/v1/dictionary", nil)
	g.do(http.MethodGet, "/v1/metrics", nil)
	g.do(http.MethodPost, "/v1/jobs/g1/label", labelRequest{App: "lammps", Input: "X"})
	g.do(http.MethodDelete, "/v1/jobs/g2", nil)
	g.do(http.MethodGet, "/v1/metrics", nil)
	g.do(http.MethodGet, "/v1/health", nil)

	g.check("golden_v1_memory.txt")
}

func TestGoldenV1Storage(t *testing.T) {
	_, ts, _ := storageFixture(t, t.TempDir())
	g := &goldenRecorder{t: t, base: ts.URL}

	g.do(http.MethodPost, "/v1/jobs", registerRequest{JobID: "s1", Nodes: 2})
	g.do(http.MethodPost, "/v1/samples", sampleBatch{JobID: "s1", Samples: goldenSamples(6010, 1)})
	g.do(http.MethodGet, "/v1/jobs/s1/series", nil)
	g.do(http.MethodPost, "/v1/jobs/s1/label", labelRequest{App: "ft", Input: "X"})
	g.do(http.MethodGet, "/v1/executions", nil)
	g.do(http.MethodPost, "/v1/executions/s1/recognize", nil)
	g.do(http.MethodGet, "/v1/metrics", nil)
	g.do(http.MethodGet, "/v1/health", nil)

	g.check("golden_v1_storage.txt")
}
