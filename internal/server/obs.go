// HTTP-layer observability: per-endpoint metrics, request tracing,
// and the slow-request debug surface.
//
// All of it is opt-in (EnableObs before Handler). When off, Handler
// registers the bare handlers — byte-identical responses, no extra
// headers — so the golden wire transcripts are unaffected. When on,
// every route is wrapped in one middleware that assigns (or
// propagates) an X-Efd-Trace ID, times the request, counts it into
// pre-registered per-route series (nothing formats labels per
// request), and feeds a ring of the slowest requests served at
// GET /v1/debug/slow.
package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// slowRingSize is how many slowest requests /v1/debug/slow retains.
const slowRingSize = 32

// serverObs is the server's observability state, nil until EnableObs.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	slow   *obs.SlowRing
}

// routeMetrics are one route's pre-registered series: counters per
// status class plus latency and byte instruments. Everything on the
// request path is a pointer chase and an atomic — no label
// formatting, no map lookups.
type routeMetrics struct {
	byClass   [6]*obs.Counter
	seconds   *obs.Histogram
	reqBytes  *obs.Counter
	respBytes *obs.Counter
}

func newRouteMetrics(reg *obs.Registry, route string) *routeMetrics {
	rm := &routeMetrics{}
	label := `route="` + route + `"`
	for c := 1; c <= 5; c++ {
		rm.byClass[c] = reg.Counter("efd_http_requests_total",
			label+`,code="`+strconv.Itoa(c)+`xx"`,
			"HTTP requests by route and status class")
	}
	rm.seconds = reg.Histogram("efd_http_request_seconds", label,
		"HTTP request latency", obs.ExpBuckets(1e-4, 4, 10))
	rm.reqBytes = reg.Counter("efd_http_request_bytes_total", label,
		"request body bytes received")
	rm.respBytes = reg.Counter("efd_http_response_bytes_total", label,
		"response body bytes sent")
	return rm
}

func (rm *routeMetrics) observe(status int, seconds float64, reqBytes, respBytes int64) {
	if c := status / 100; c >= 1 && c <= 5 {
		rm.byClass[c].Add(1)
	}
	rm.seconds.Observe(seconds)
	if reqBytes > 0 {
		rm.reqBytes.Add(reqBytes)
	}
	rm.respBytes.Add(respBytes)
}

// EnableObs turns the HTTP observability plane on: Handler will serve
// instrumented routes plus GET /metrics (Prometheus text exposition
// over reg) and GET /v1/debug/slow. The tracer is seeded explicitly —
// the server keeps no wall-clock-derived global state, so tests can
// pin trace IDs. Call before Handler and before serving traffic.
func (s *Server) EnableObs(reg *obs.Registry, traceSeed uint64) {
	s.obs = &serverObs{
		reg:    reg,
		tracer: obs.NewTracer(traceSeed),
		slow:   obs.NewSlowRing(slowRingSize),
	}
}

// MetricsRegistry returns the registry EnableObs was given, or nil —
// the hook cmd/efdd uses to serve the same exposition on a separate
// ops listener.
func (s *Server) MetricsRegistry() *obs.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// statusWriter observes the status code and body bytes of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps one route's handler in the observability
// middleware; with obs disabled it returns the handler untouched.
// rm is resolved once at registration, so the request path never
// touches a map.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	so := s.obs
	if so == nil {
		return h
	}
	rm := newRouteMetrics(so.reg, route)
	return func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(obs.TraceHeader)
		if trace == "" {
			trace = so.tracer.NextID()
		}
		w.Header().Set(obs.TraceHeader, trace)
		span := obs.NewSpan(trace)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(obs.ContextWithSpan(r.Context(), span)))
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rm.observe(status, elapsed.Seconds(), r.ContentLength, sw.bytes)
		so.slow.Record(obs.SlowRequest{
			Trace:      trace,
			Method:     r.Method,
			Route:      route,
			Status:     status,
			DurationMS: float64(elapsed) / float64(time.Millisecond),
			Stages:     span.Stages(),
		})
	}
}

// slowResponse is the GET /v1/debug/slow body.
type slowResponse struct {
	Slowest []obs.SlowRequest `json:"slowest"`
}

// handleSlow serves the slow-request ring, slowest first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	if s.obs == nil {
		httpError(w, http.StatusNotImplemented, codeUnimplemented, "observability is not enabled")
		return
	}
	snap := s.obs.slow.Snapshot()
	if snap == nil {
		snap = []obs.SlowRequest{}
	}
	writeJSON(w, http.StatusOK, slowResponse{Slowest: snap})
}

// DebugSlowHandler exposes the slow-request endpoint as a standalone
// handler for the ops listener.
func (s *Server) DebugSlowHandler() http.Handler { return http.HandlerFunc(s.handleSlow) }
