package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsServer builds an instrumented in-memory server with one
// registered job.
func obsServer(t *testing.T, seed uint64) (*Server, http.Handler, *obs.Registry) {
	t.Helper()
	srv := New(trainedDict(t))
	if _, err := srv.Register("job-1", 1); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	srv.EnableObs(reg, seed)
	return srv, srv.Handler(), reg
}

func TestObsTraceHeader(t *testing.T) {
	_, h, _ := obsServer(t, 7)

	// A request without a trace header gets a generated one — the
	// seeded tracer's first ID, since the server keeps no wall-clock
	// global state.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	want := obs.NewTracer(7).NextID()
	if got := rec.Header().Get(obs.TraceHeader); got != want {
		t.Errorf("generated trace = %q, want %q", got, want)
	}

	// A caller-supplied trace ID is propagated verbatim.
	req := httptest.NewRequest(http.MethodGet, "/v1/health", nil)
	req.Header.Set(obs.TraceHeader, "cafecafecafecafe")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.TraceHeader); got != "cafecafecafecafe" {
		t.Errorf("propagated trace = %q", got)
	}
}

func TestObsDisabledHandlerUnchanged(t *testing.T) {
	srv := New(trainedDict(t))
	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if got := rec.Header().Get(obs.TraceHeader); got != "" {
		t.Errorf("uninstrumented handler set %s: %q", obs.TraceHeader, got)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /metrics without EnableObs = %d, want 404", rec.Code)
	}
}

func TestObsMetricsEndpoint(t *testing.T) {
	_, h, _ := obsServer(t, 1)

	// Drive one successful ingest and one 404 through the handler.
	body := `{"job_id":"job-1","samples":[{"metric":"flops","node":0,"offset_s":0,"value":1}]}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/samples", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/absent", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("lookup of absent job = %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentTypeExposition {
		t.Errorf("Content-Type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`efd_http_requests_total{route="/v1/samples",code="2xx"} 1`,
		`efd_http_requests_total{route="/v1/jobs/{id}",code="4xx"} 1`,
		`efd_http_request_seconds_count{route="/v1/samples"} 1`,
		"# TYPE efd_http_request_seconds histogram",
		"efd_engine_samples_accepted_total 1",
		"efd_engine_live_jobs 1",
		"efd_engine_ingest_seconds_count",
		"efd_dict_keys",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

func TestObsSlowRequests(t *testing.T) {
	_, h, _ := obsServer(t, 1)
	body := `{"job_id":"job-1","samples":[{"metric":"flops","node":0,"offset_s":0,"value":1}]}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/samples", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	trace := rec.Header().Get(obs.TraceHeader)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/debug/slow", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/debug/slow = %d", rec.Code)
	}
	var out slowResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var ingest *obs.SlowRequest
	for i := range out.Slowest {
		if out.Slowest[i].Route == "/v1/samples" {
			ingest = &out.Slowest[i]
		}
	}
	if ingest == nil {
		t.Fatalf("no /v1/samples entry in slow ring: %+v", out.Slowest)
	}
	if ingest.Trace != trace {
		t.Errorf("slow entry trace = %q, want %q", ingest.Trace, trace)
	}
	if ingest.Status != http.StatusOK || ingest.Method != http.MethodPost {
		t.Errorf("slow entry = %+v", ingest)
	}
	// The ingest pipeline's stages made it into the trace.
	names := make([]string, 0, len(ingest.Stages))
	for _, st := range ingest.Stages {
		names = append(names, st.Name)
	}
	if len(names) != 2 || names[0] != "decode" || names[1] != "engine" {
		t.Errorf("ingest stages = %v, want [decode engine]", names)
	}
}
