package server

import (
	"net/http"
	"testing"
)

// TestHealthV1 pins the expanded health endpoint: always 200, with the
// one-word status plus the ingest-gate readout.
func TestHealthV1(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/v1/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/health = %v", resp.Status)
	}
	if body["status"] != "healthy" {
		t.Errorf("status = %v, want healthy", body["status"])
	}
	if _, ok := body["ingest_inflight_bytes"]; !ok {
		t.Error("health body missing ingest_inflight_bytes")
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/health", nil)
	if err != nil {
		t.Fatal(err)
	}
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/health = %v, want 405", mresp.Status)
	}
}

// TestIngestOverload429 drives the admission gate through the HTTP
// adapter: a body larger than the engine's ingest budget is shed with
// 429, a Retry-After header, and the "overloaded" error code — before
// the server spends any decode work on it.
func TestIngestOverload429(t *testing.T) {
	s, ts := newTestServer(t)
	s.MaxIngestBytes = 16 // any real batch body exceeds this

	resp, body := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "o1", Nodes: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v %v", resp.Status, body)
	}
	resp, body = post(t, ts.URL+"/v1/samples", sampleBatch{JobID: "o1", Samples: goldenSamples(6010, 25)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded ingest = %v, want 429 (%v)", resp.Status, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	errObj, _ := body["error"].(map[string]any)
	if errObj["code"] != "overloaded" {
		t.Errorf("error code = %v, want overloaded", errObj["code"])
	}

	// The shed shows up in health and metrics; the gate has drained.
	resp, health := get(t, ts.URL+"/v1/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health after shed: %v", resp.Status)
	}
	if health["ingest_shed_total"].(float64) != 1 {
		t.Errorf("ingest_shed_total = %v, want 1", health["ingest_shed_total"])
	}
	if health["ingest_inflight_bytes"].(float64) != 0 {
		t.Errorf("inflight bytes not released: %v", health["ingest_inflight_bytes"])
	}
	if health["status"] != "healthy" {
		t.Errorf("drained status = %v, want healthy", health["status"])
	}

	// Raising the budget lets the same batch straight through.
	s.MaxIngestBytes = -1
	resp, body = post(t, ts.URL+"/v1/samples", sampleBatch{JobID: "o1", Samples: goldenSamples(6010, 25)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unlimited ingest = %v (%v)", resp.Status, body)
	}
}
