package server

// Disk-full read-only mode over HTTP: writes answer 503 with the
// read_only code and a Retry-After hint, every read keeps answering
// 200 from the still-open store, /v1/health grows the disk section,
// and the engine resumes by itself once space frees. The golden
// transcript pins the wire shapes; the contract test covers headers
// and the auto-resume (whose timing a byte-pinned transcript cannot).

import (
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"repro/internal/tsdb"
	"repro/internal/vfs"
)

// readonlyFixture starts a storage-backed server whose store runs over
// a Fault fs with a disk-low watermark, so tests can dial free space
// and inject ENOSPC deterministically.
func readonlyFixture(t *testing.T, watermark int64, probe time.Duration) (*Server, *httptest.Server, *vfs.Fault) {
	t.Helper()
	fs := vfs.NewFault(vfs.OS{}, 1)
	st, err := tsdb.OpenOptions(t.TempDir(), tsdb.Options{FS: fs, DiskLowBytes: watermark})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(trainedDict(t))
	srv.StoreProbeInterval = probe
	if _, err := srv.AttachStore(st); err != nil {
		st.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, fs
}

// fullDisk flips the fixture's disk to full: free space reads 0 and
// the next WAL write answers ENOSPC.
func fullDisk(fs *vfs.Fault) {
	fs.SetFree(0)
	fs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC})
}

// TestReadOnlyModeHTTP is the HTTP contract of disk-full read-only
// mode: 503 + Retry-After + read_only on writes, 200 on reads, health
// reporting, and auto-resume once space frees.
func TestReadOnlyModeHTTP(t *testing.T) {
	_, ts, fs := readonlyFixture(t, 0, 5*time.Millisecond)
	base := ts.URL

	if code := doJSON(t, "POST", base+"/v1/jobs", map[string]any{"job_id": "r1", "nodes": 2}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	feedFlat(t, base, "r1", 0, 20, 6000)

	fullDisk(fs)
	resp, errObj := post(t, base+"/v1/samples", map[string]any{"job_id": "r1", "samples": goldenSamples(6000, 25)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disk-full ingest = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != readonlyRetryAfterS {
		t.Errorf("Retry-After = %q, want %q", got, readonlyRetryAfterS)
	}
	if errBody, ok := errObj["error"].(map[string]any); !ok || errBody["code"] != "read_only" {
		t.Errorf("error envelope = %v, want code read_only", errObj)
	}

	// Writes shed across the board...
	resp, _ = post(t, base+"/v1/samples", map[string]any{"job_id": "r1", "samples": goldenSamples(6000, 25)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readonly ingest = %d, want 503", resp.StatusCode)
	}
	if code := doJSON(t, "POST", base+"/v1/jobs", map[string]any{"job_id": "r2", "nodes": 2}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readonly register = %d, want 503", code)
	}
	// ...while every read keeps serving.
	if code := doJSON(t, "GET", base+"/v1/jobs/r1", nil, nil); code != http.StatusOK {
		t.Fatalf("readonly job read = %d, want 200", code)
	}
	if code := doJSON(t, "GET", base+"/v1/jobs/r1/series", nil, nil); code != http.StatusOK {
		t.Fatalf("readonly series read = %d, want 200", code)
	}
	var h struct {
		Status string `json:"status"`
		Disk   *struct {
			FreeBytes int64 `json:"free_bytes"`
			ReadOnly  bool  `json:"read_only"`
		} `json:"disk"`
	}
	if code := doJSON(t, "GET", base+"/v1/health", nil, &h); code != http.StatusOK {
		t.Fatalf("readonly health = %d, want 200", code)
	}
	if h.Status != "readonly" || h.Disk == nil || !h.Disk.ReadOnly || h.Disk.FreeBytes != 0 {
		t.Fatalf("readonly health body = %+v", h)
	}

	// Space frees; the probe resumes durable mode and writes work again.
	fs.Reset()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, "GET", base+"/v1/health", nil, &h); code == http.StatusOK && h.Status == "healthy" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never resumed: health %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	feedFlat(t, base, "r1", 21, 40, 6000)
}

// TestGoldenV1ReadOnly pins the read-only wire shapes: the health disk
// section (healthy and readonly), the 503 read_only envelope on both
// ingest and registration, and reads serving across it. The readonly
// transition is triggered outside the transcript: the first failure's
// message carries the raw disk error, while every later shed write has
// the stable read-only message worth pinning. The probe interval is
// effectively infinite so attempt counters stay zero (deterministic),
// and free space is dialed via the Fault fs for the same reason.
func TestGoldenV1ReadOnly(t *testing.T) {
	_, ts, fs := readonlyFixture(t, 8<<20, time.Hour)
	fs.SetFree(64 << 20)
	g := &goldenRecorder{t: t, base: ts.URL}

	g.do(http.MethodPost, "/v1/jobs", registerRequest{JobID: "r1", Nodes: 2})
	g.do(http.MethodPost, "/v1/samples", sampleBatch{JobID: "r1", Samples: goldenSamples(6010, 1)})
	g.do(http.MethodGet, "/v1/health", nil)

	fullDisk(fs)
	if code := doJSON(t, "POST", ts.URL+"/v1/samples", sampleBatch{JobID: "r1", Samples: goldenSamples(6010, 25)}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readonly trigger = %d, want 503", code)
	}

	g.do(http.MethodPost, "/v1/samples", sampleBatch{JobID: "r1", Samples: goldenSamples(6010, 25)})
	g.do(http.MethodPost, "/v1/jobs", registerRequest{JobID: "r2", Nodes: 2})
	g.do(http.MethodGet, "/v1/jobs/r1", nil)
	g.do(http.MethodGet, "/v1/health", nil)

	g.check("golden_v1_readonly.txt")
}
