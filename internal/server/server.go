// Package server exposes a trained Execution Fingerprint Dictionary as
// a small HTTP monitoring service — the deployment shape the paper's
// MODA context implies: an LDMS aggregator forwards per-node samples of
// running jobs, operators query recognition results two minutes into
// each job, and completed jobs can be labelled back into the dictionary
// ("learning new applications is as simple as adding new keys", §6).
//
// Endpoints (all JSON):
//
//	GET  /healthz                     liveness
//	GET  /v1/dictionary               dictionary statistics
//	POST /v1/jobs                     register a job {job_id, nodes}
//	POST /v1/samples                  feed samples {job_id, samples:[{metric,node,offset_s,value}]}
//	GET  /v1/jobs/{id}                recognition state of a job
//	POST /v1/jobs/{id}/label          learn a finished job {app, input}
//	DELETE /v1/jobs/{id}              forget a job's stream
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
)

// Server is the HTTP monitoring service. It is safe for concurrent
// use.
type Server struct {
	mu   sync.Mutex
	dict *core.Dictionary
	jobs map[string]*job

	// MaxJobs bounds the number of concurrently tracked jobs
	// (default 4096); registration beyond it is rejected.
	MaxJobs int
}

type job struct {
	stream *core.Stream
	nodes  int
}

// New returns a service over the dictionary.
func New(dict *core.Dictionary) *Server {
	return &Server{dict: dict, jobs: make(map[string]*job), MaxJobs: 4096}
}

// Handler returns the HTTP handler of the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/dictionary", s.handleDictionary)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/samples", s.handleSamples)
	return mux
}

// --- wire types -------------------------------------------------------

type registerRequest struct {
	JobID string `json:"job_id"`
	Nodes int    `json:"nodes"`
}

type sampleBatch struct {
	JobID   string       `json:"job_id"`
	Samples []wireSample `json:"samples"`
}

type wireSample struct {
	Metric  string  `json:"metric"`
	Node    int     `json:"node"`
	OffsetS float64 `json:"offset_s"`
	Value   float64 `json:"value"`
}

type jobState struct {
	JobID      string         `json:"job_id"`
	Complete   bool           `json:"complete"`
	Recognized bool           `json:"recognized"`
	Top        string         `json:"top"`
	Apps       []string       `json:"apps,omitempty"`
	Votes      map[string]int `json:"votes,omitempty"`
	Confidence float64        `json:"confidence"`
	Matched    int            `json:"matched"`
	Total      int            `json:"total"`
}

type labelRequest struct {
	App   string `json:"app"`
	Input string `json:"input"`
}

type dictState struct {
	Keys       int      `json:"keys"`
	Exclusive  int      `json:"exclusive"`
	Collisions int      `json:"collisions"`
	Labels     int      `json:"labels"`
	Depth      int      `json:"depth"`
	Apps       []string `json:"apps"`
	LiveJobs   int      `json:"live_jobs"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDictionary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	st := s.dict.Stats()
	out := dictState{
		Keys: st.Keys, Exclusive: st.Exclusive, Collisions: st.Collisions,
		Labels: st.Labels, Depth: st.Depth, Apps: s.dict.Apps(),
		LiveJobs: len(s.jobs),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.JobID == "" || req.Nodes <= 0 {
		httpError(w, http.StatusBadRequest, "job_id and positive nodes required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.jobs[req.JobID]; exists {
		httpError(w, http.StatusConflict, "job %q already registered", req.JobID)
		return
	}
	if len(s.jobs) >= s.MaxJobs {
		httpError(w, http.StatusTooManyRequests, "job table full (%d)", s.MaxJobs)
		return
	}
	s.jobs[req.JobID] = &job{stream: core.NewStream(s.dict, req.Nodes), nodes: req.Nodes}
	writeJSON(w, http.StatusCreated, map[string]string{"job_id": req.JobID})
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var batch sampleBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[batch.JobID]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", batch.JobID)
		return
	}
	for _, smp := range batch.Samples {
		offset := time.Duration(smp.OffsetS * float64(time.Second))
		j.stream.Feed(smp.Metric, smp.Node, offset, smp.Value)
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": len(batch.Samples)})
}

// handleJob dispatches /v1/jobs/{id} and /v1/jobs/{id}/label.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if rest == "" {
		httpError(w, http.StatusNotFound, "missing job id")
		return
	}
	if strings.HasSuffix(rest, "/label") {
		s.handleLabel(w, r, strings.TrimSuffix(rest, "/label"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleResult(w, rest)
	case http.MethodDelete:
		s.handleDelete(w, rest)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or DELETE")
	}
}

func (s *Server) handleResult(w http.ResponseWriter, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	// The stream's recognizer scratch is reused across polls (we hold
	// s.mu, so no concurrent call can invalidate the result); only the
	// JSON wire form below allocates.
	res := j.stream.Recognize()
	writeJSON(w, http.StatusOK, jobState{
		JobID:      id,
		Complete:   j.stream.Complete(),
		Recognized: res.Recognized(),
		Top:        res.Top(),
		Apps:       res.Apps,
		Votes:      res.Votes(),
		Confidence: res.Confidence(),
		Matched:    res.Matched,
		Total:      res.Total,
	})
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req labelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	label, err := apps.ParseLabel(req.App + "_" + req.Input)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad label: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !j.stream.Complete() {
		httpError(w, http.StatusConflict, "job %q has not covered the fingerprint window yet", id)
		return
	}
	// Online learning: insert the completed stream's fingerprints.
	s.dict.Learn(j.stream, label)
	delete(s.jobs, id)
	writeJSON(w, http.StatusOK, map[string]string{"learned": label.String()})
}

func (s *Server) handleDelete(w http.ResponseWriter, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	delete(s.jobs, id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// --- helpers ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
