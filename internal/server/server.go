// Package server is the HTTP adapter over the public monitoring
// engine (efd/monitor): it exposes a trained Execution Fingerprint
// Dictionary as the v1 monitoring service — the deployment shape the
// paper's MODA context implies: an LDMS aggregator forwards per-node
// samples of running jobs, operators query recognition results two
// minutes into each job, and completed jobs can be labelled back into
// the dictionary ("learning new applications is as simple as adding
// new keys", §6).
//
// All business logic — the sharded job table, the shared-dictionary
// concurrency contract, ingest, lifecycle, durable storage — lives in
// efd/monitor. This package only decodes requests, delegates to the
// engine, maps engine errors onto status codes, and encodes
// responses. API.md documents the full wire protocol.
//
// # Endpoints
//
//	GET    /healthz              liveness
//	GET    /v1/dictionary        dictionary statistics
//	GET    /v1/metrics           service counters + shard occupancy
//	POST   /v1/jobs              register a job {job_id, nodes}
//	GET    /v1/jobs              paginated job listing (?offset=&limit=)
//	POST   /v1/samples           feed samples; JSON single-job or
//	                             multi-job form, or the binary columnar
//	                             encoding (application/x-efd-runs)
//	GET    /v1/jobs/{id}         recognition state of a job
//	POST   /v1/jobs/{id}/label   learn a finished job {app, input}
//	DELETE /v1/jobs/{id}         forget a job's stream
//
// With a durable store attached (engine.OpenStore; cmd/efdd
// -data-dir), three further routes open up (501 without a store):
//
//	GET    /v1/jobs/{id}/series          stored telemetry of a job
//	GET    /v1/executions                stored (finished) executions
//	POST   /v1/executions/{id}/recognize re-recognize a stored execution
//	                                     with the current dictionary
//
// Errors use a uniform JSON envelope:
//
//	{"error": {"code": "not_found", "message": "unknown job \"x\""}}
//
// and method rejections answer 405 with an Allow header. Request
// bodies are bounded by Server.MaxBodyBytes (413 beyond it).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/efd/monitor"
	"repro/internal/core"
	"repro/internal/obs"
)

// NumShards is the number of job-table shards (see efd/monitor).
const NumShards = monitor.NumShards

// MaxJobIDLen bounds the byte length of a registered job ID.
const MaxJobIDLen = monitor.MaxJobIDLen

// DefaultMaxBodyBytes is the default request body limit: generous for
// batch ingest (a multi-thousand-sample JSON batch is well under a
// megabyte) while keeping a single oversized body from ballooning
// server memory.
const DefaultMaxBodyBytes = 8 << 20

// Server adapts a monitoring engine onto HTTP. The embedded Engine is
// the public API surface (register, ingest, query, storage); Server
// adds only wire concerns. It is safe for concurrent use.
type Server struct {
	*monitor.Engine

	// MaxBodyBytes caps every request body (http.MaxBytesReader);
	// larger bodies answer 413. Default DefaultMaxBodyBytes; set
	// before serving requests.
	MaxBodyBytes int64

	// obs is the HTTP observability plane, nil until EnableObs. A
	// plain Handler (no EnableObs) serves byte-identical responses to
	// an uninstrumented build.
	obs *serverObs
}

// New returns a service over the dictionary. The server takes
// ownership of the dictionary's concurrency: all further access must
// go through the server (or SaveDictionary).
func New(dict *core.Dictionary) *Server { return NewEngine(monitor.New(dict)) }

// NewEngine wraps an existing engine — the path for embedders that
// built (and possibly pre-loaded) the engine themselves.
func NewEngine(e *monitor.Engine) *Server {
	return &Server{Engine: e, MaxBodyBytes: DefaultMaxBodyBytes}
}

// Handler returns the HTTP handler of the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Route labels are the registration patterns (bounded cardinality),
	// never raw request paths.
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("/v1/health", s.instrument("/v1/health", s.handleHealthV1))
	mux.HandleFunc("/v1/dictionary", s.instrument("/v1/dictionary", s.handleDictionary))
	mux.HandleFunc("/v1/metrics", s.instrument("/v1/metrics", s.handleMetrics))
	mux.HandleFunc("/v1/jobs", s.instrument("/v1/jobs", s.handleJobs))
	mux.HandleFunc("/v1/jobs/", s.instrument("/v1/jobs/{id}", s.handleJob))
	mux.HandleFunc("/v1/samples", s.instrument("/v1/samples", s.handleSamples))
	mux.HandleFunc("/v1/executions", s.instrument("/v1/executions", s.handleExecutions))
	mux.HandleFunc("/v1/executions/", s.instrument("/v1/executions/{id}", s.handleExecutions))
	if s.obs != nil {
		mux.Handle("/metrics", s.obs.reg.Handler())
		mux.HandleFunc("/v1/debug/slow", s.handleSlow)
	}
	return mux
}

// --- wire types -------------------------------------------------------

// The engine's wire types ARE the v1 JSON schema; aliases keep the
// adapter (and its tests) in the protocol's vocabulary.
type (
	wireSample   = monitor.Sample
	sampleBatch  = monitor.Batch
	jobState     = monitor.State
	metricsState = monitor.Stats
)

type registerRequest struct {
	JobID string `json:"job_id"`
	Nodes int    `json:"nodes"`
}

// ingestRequest is the JSON body of POST /v1/samples: either the
// single-job form (job_id + samples) or the multi-job form (batches),
// which groups samples by job so each shard is locked once per
// request.
type ingestRequest struct {
	JobID   string        `json:"job_id"`
	Samples []wireSample  `json:"samples"`
	Batches []sampleBatch `json:"batches"`
}

type ingestResponse struct {
	Accepted int      `json:"accepted"`
	Unknown  []string `json:"unknown,omitempty"`
}

type labelRequest struct {
	App   string `json:"app"`
	Input string `json:"input"`
}

// --- error envelope ---------------------------------------------------

// Machine-readable error codes of the v1 envelope.
const (
	codeBadRequest       = "bad_request"
	codeNotFound         = "not_found"
	codeConflict         = "conflict"
	codeTooManyJobs      = "resource_exhausted"
	codeMethodNotAllowed = "method_not_allowed"
	codePayloadTooLarge  = "payload_too_large"
	codeUnimplemented    = "unimplemented"
	codeOverloaded       = "overloaded"
	codeReadOnly         = "read_only"
	codeInternal         = "internal"
)

// overloadRetryAfterS is the Retry-After hint on 429 overload answers.
// The admission gate drains as fast as in-flight requests finish, so a
// short fixed hint beats an estimate.
const overloadRetryAfterS = "1"

// readonlyRetryAfterS is the Retry-After hint on 503 read-only
// answers. Disk space frees on operator timescales, and the engine's
// resume probe runs every StoreProbeInterval, so the hint is longer
// than the overload one.
const readonlyRetryAfterS = "5"

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// engineError maps an engine error onto (status, code) and writes the
// envelope. The "monitor: " prefix is the library's, not the wire
// protocol's, so it is trimmed from the message.
func engineError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, codeInternal
	switch {
	case errors.Is(err, monitor.ErrInvalid):
		status, code = http.StatusBadRequest, codeBadRequest
	case errors.Is(err, monitor.ErrUnknownJob):
		status, code = http.StatusNotFound, codeNotFound
	case errors.Is(err, monitor.ErrJobExists):
		status, code = http.StatusConflict, codeConflict
	case errors.Is(err, monitor.ErrNotComplete):
		status, code = http.StatusConflict, codeConflict
	case errors.Is(err, monitor.ErrTableFull):
		status, code = http.StatusTooManyRequests, codeTooManyJobs
	case errors.Is(err, monitor.ErrOverloaded):
		w.Header().Set("Retry-After", overloadRetryAfterS)
		status, code = http.StatusTooManyRequests, codeOverloaded
	case errors.Is(err, monitor.ErrReadOnly):
		// Disk-full read-only mode: the write was shed, nothing is
		// lost, and the engine resumes by itself once space frees —
		// the retryable 503 contract.
		w.Header().Set("Retry-After", readonlyRetryAfterS)
		status, code = http.StatusServiceUnavailable, codeReadOnly
	case errors.Is(err, monitor.ErrNoStore):
		status, code = http.StatusNotImplemented, codeUnimplemented
	}
	httpError(w, status, code, "%s", strings.TrimPrefix(err.Error(), "monitor: "))
}

// methodNotAllowed answers 405 with the mandatory Allow header.
func methodNotAllowed(w http.ResponseWriter, allow ...string) {
	w.Header().Set("Allow", strings.Join(allow, ", "))
	httpError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "method not allowed (use %s)", strings.Join(allow, " or "))
}

// decodeJSON decodes a bounded request body, distinguishing oversized
// bodies (413) from malformed ones (400). The caller must have
// wrapped the body with s.limitBody.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, codeBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

// limitBody caps the request body at MaxBodyBytes.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleHealthV1 serves GET /v1/health: the engine's health snapshot.
// Always 200 — a degraded engine still serves, and load balancers that
// should stop sending traffic can inspect the status field. /healthz
// stays the bare liveness probe.
func (s *Server) handleHealthV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, s.Health())
}

func (s *Server) handleDictionary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, s.DictionaryInfo())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleJobList(w, r)
	case http.MethodPost:
		s.handleRegister(w, r)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var req registerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if _, err := s.Register(req.JobID, req.Nodes); err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"job_id": req.JobID})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadRequest, "bad offset %q", q.Get("offset"))
		return
	}
	limit, err := queryInt(q.Get("limit"), 100)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadRequest, "bad limit %q (1..1000)", q.Get("limit"))
		return
	}
	listing, lerr := s.Jobs(offset, limit)
	if lerr != nil {
		engineError(w, lerr)
		return
	}
	writeJSON(w, http.StatusOK, listing)
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	// Admission control before any decoding: a flood of ingest
	// requests is refused from the Content-Length alone (429 +
	// Retry-After), so overload sheds cheaply instead of buffering
	// unbounded request bodies. Chunked bodies (no declared length)
	// are charged the worst case the body limit allows.
	est := r.ContentLength
	if est < 0 {
		est = s.MaxBodyBytes
	}
	release, aerr := s.AcquireIngest(est)
	if aerr != nil {
		engineError(w, aerr)
		return
	}
	defer release()
	s.limitBody(w, r)
	if isRunsContentType(r.Header.Get("Content-Type")) {
		s.handleSamplesBinary(w, r)
		return
	}
	// Span stages time the ingest pipeline (decode → engine, the
	// latter covering feed + WAL append + group commit); the clock is
	// only read when tracing is on.
	span := obs.SpanFrom(r.Context())
	var t0 time.Time
	if span != nil {
		t0 = time.Now()
	}
	var req ingestRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	single := len(req.Batches) == 0
	batches := req.Batches
	if req.JobID != "" || len(req.Samples) > 0 {
		batches = append(batches, sampleBatch{JobID: req.JobID, Samples: req.Samples})
	}
	if len(batches) == 0 {
		httpError(w, http.StatusBadRequest, codeBadRequest, "empty ingest request")
		return
	}
	if span != nil {
		span.RecordStage("decode", time.Since(t0))
		t0 = time.Now()
	}
	accepted, unknown, err := s.IngestBatches(batches)
	if span != nil {
		span.RecordStage("engine", time.Since(t0))
	}
	s.writeIngestOutcome(w, single, accepted, unknown, err)
}

// writeIngestOutcome maps an engine ingest result onto the v1
// response: engine errors keep their status, fully-unknown requests
// are 404 (with the single-job form's original message shape), and
// partial success reports the sorted unknown IDs alongside the count.
func (s *Server) writeIngestOutcome(w http.ResponseWriter, single bool, accepted int, unknown []string, err error) {
	if err != nil {
		engineError(w, err)
		return
	}
	if len(unknown) > 0 && accepted == 0 {
		if single {
			httpError(w, http.StatusNotFound, codeNotFound, "unknown job %q", unknown[0])
		} else {
			httpError(w, http.StatusNotFound, codeNotFound, "unknown jobs: %s", strings.Join(unknown, ", "))
		}
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted, Unknown: unknown})
}

// handleJob dispatches /v1/jobs/{id} and /v1/jobs/{id}/label. IDs
// containing '/' are rejected at registration, so any remaining slash
// in the path (other than the known suffixes) is an unknown route.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if rest == "" {
		httpError(w, http.StatusNotFound, codeNotFound, "missing job id")
		return
	}
	if id, ok := strings.CutSuffix(rest, "/label"); ok {
		if id == "" || strings.Contains(id, "/") {
			httpError(w, http.StatusNotFound, codeNotFound, "no such route")
			return
		}
		s.handleLabel(w, r, id)
		return
	}
	if id, ok := strings.CutSuffix(rest, "/series"); ok {
		if id == "" || strings.Contains(id, "/") {
			httpError(w, http.StatusNotFound, codeNotFound, "no such route")
			return
		}
		s.handleJobSeries(w, r, id)
		return
	}
	if strings.Contains(rest, "/") {
		httpError(w, http.StatusNotFound, codeNotFound, "no such route")
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleResult(w, rest)
	case http.MethodDelete:
		s.handleDelete(w, rest)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodDelete)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, id string) {
	j, ok := s.Lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "unknown job %q", id)
		return
	}
	state, err := j.Result()
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	s.limitBody(w, r)
	var req labelRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	j, ok := s.Lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "unknown job %q", id)
		return
	}
	learned, err := j.Label(req.App, req.Input)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"learned": learned})
}

func (s *Server) handleDelete(w http.ResponseWriter, id string) {
	j, ok := s.Lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, codeNotFound, "unknown job %q", id)
		return
	}
	if err := j.Close(); err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// --- helpers ----------------------------------------------------------

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
