// Package server exposes a trained Execution Fingerprint Dictionary as
// an HTTP monitoring service — the deployment shape the paper's MODA
// context implies: an LDMS aggregator forwards per-node samples of
// running jobs, operators query recognition results two minutes into
// each job, and completed jobs can be labelled back into the dictionary
// ("learning new applications is as simple as adding new keys", §6).
//
// # Architecture
//
// The service is built for concurrent ingest and recognition. Jobs live
// in a sharded table: NumShards shards selected by FNV-1a hash of the
// job ID, each shard guarded by its own RWMutex, so registration and
// lookup of one job never contend with another shard. Every job
// additionally carries its own mutex serializing its stream — ingest
// for job A proceeds in parallel with recognition of job B, and two
// sample batches for the same job are applied in order.
//
// The dictionary itself is wrapped in a core.SharedDictionary:
// recognition polls take shared (read) access and run concurrently
// across jobs, while an online Learn (POST /v1/jobs/{id}/label) takes
// exclusive access for the duration of one insertion. Sample ingest
// touches only the immutable fingerprint configuration and therefore
// takes no dictionary lock at all — the ingest path never stalls
// behind recognition or learning.
//
// # Endpoints (all JSON)
//
//	GET    /healthz              liveness
//	GET    /v1/dictionary        dictionary statistics
//	GET    /v1/metrics           service counters + shard occupancy
//	POST   /v1/jobs              register a job {job_id, nodes}
//	GET    /v1/jobs              paginated job listing (?offset=&limit=)
//	POST   /v1/samples           feed samples, single-job or multi-job:
//	                             {job_id, samples:[{metric,node,offset_s,value}]}
//	                             {batches:[{job_id, samples:[...]}, ...]}
//	GET    /v1/jobs/{id}         recognition state of a job
//	POST   /v1/jobs/{id}/label   learn a finished job {app, input}
//	DELETE /v1/jobs/{id}         forget a job's stream
//
// With a durable store attached (AttachStore; cmd/efdd -data-dir),
// ingest is write-ahead logged and jobs survive restarts, and three
// further routes open up (501 without a store):
//
//	GET    /v1/jobs/{id}/series          stored telemetry of a job
//	GET    /v1/executions                stored (finished) executions
//	POST   /v1/executions/{id}/recognize re-recognize a stored execution
//	                                     with the current dictionary
//
// Job IDs must be non-empty, at most MaxJobIDLen bytes, and must not
// contain '/' (which would collide with the path routing above); sample
// offsets and values must be finite. Both are rejected with 400 before
// any state changes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/tsdb"
)

// NumShards is the number of independent job-table shards. Job IDs are
// assigned to shards by FNV-1a hash.
const NumShards = 64

// MaxJobIDLen bounds the byte length of a registered job ID.
const MaxJobIDLen = 256

// Server is the HTTP monitoring service. It is safe for concurrent
// use; see the package comment for the locking architecture.
type Server struct {
	dict *core.SharedDictionary

	// store, when attached (AttachStore), makes ingest durable: runs
	// are WAL-appended on the ingest path, one group-commit fsync
	// acknowledges each batch, and labelled jobs become stored,
	// re-recognizable executions. nil runs the original in-memory mode.
	store *tsdb.Store

	shards   [NumShards]shard
	jobCount atomic.Int64

	// MaxJobs bounds the number of concurrently tracked jobs
	// (default 4096); registration beyond it is rejected. Set it
	// before serving requests.
	MaxJobs int

	met counters
}

type shard struct {
	mu   sync.RWMutex
	jobs map[string]*job
}

// job is one tracked stream. Its mutex serializes all access to the
// stream and the ingest bookkeeping; the shard lock only guards the
// map that holds it.
type job struct {
	mu      sync.Mutex
	stream  *core.Stream
	nodes   int
	samples int64
	lastOff time.Duration
	// done marks a job that has been labelled or deleted; a handler
	// that resolved the pointer before removal treats it as gone.
	done bool
	// colOff/colVal are the job's reused ingest scratch: feedJob
	// regroups each wire batch into columnar (metric, node) runs here
	// before handing them to Stream.FeedRun, so steady-state ingest
	// allocates nothing per batch. Guarded by mu like the stream.
	colOff []time.Duration
	colVal []float64
}

// counters are the service's monotonically increasing metrics, exposed
// by GET /v1/metrics.
type counters struct {
	registered      atomic.Int64
	deleted         atomic.Int64
	learned         atomic.Int64
	sampleBatches   atomic.Int64
	samplesAccepted atomic.Int64
	batchesRejected atomic.Int64
	recognitions    atomic.Int64
	recovered       atomic.Int64
	rerecognitions  atomic.Int64
}

// New returns a service over the dictionary. The server takes
// ownership of the dictionary's concurrency: all further access must
// go through the server (or SaveDictionary).
func New(dict *core.Dictionary) *Server {
	s := &Server{dict: core.Share(dict), MaxJobs: 4096}
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*job)
	}
	return s
}

// shardFor selects the shard of a job ID by FNV-1a hash.
func (s *Server) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &s.shards[h%NumShards]
}

// getJob resolves a job ID to its live job, or nil.
func (s *Server) getJob(id string) *job {
	sh := s.shardFor(id)
	sh.mu.RLock()
	j := sh.jobs[id]
	sh.mu.RUnlock()
	return j
}

// SaveDictionary writes the dictionary under shared access, so a save
// never observes a half-applied Learn. The efdd daemon calls this on
// graceful shutdown.
func (s *Server) SaveDictionary(w io.Writer) error {
	var err error
	s.dict.Read(func(d *core.Dictionary) { err = d.Save(w) })
	return err
}

// Handler returns the HTTP handler of the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/dictionary", s.handleDictionary)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/samples", s.handleSamples)
	mux.HandleFunc("/v1/executions", s.handleExecutions)
	mux.HandleFunc("/v1/executions/", s.handleExecutions)
	return mux
}

// --- wire types -------------------------------------------------------

type registerRequest struct {
	JobID string `json:"job_id"`
	Nodes int    `json:"nodes"`
}

type sampleBatch struct {
	JobID   string       `json:"job_id"`
	Samples []wireSample `json:"samples"`
}

// ingestRequest is the body of POST /v1/samples: either the single-job
// form (job_id + samples) or the multi-job form (batches), which groups
// samples by job so each shard is locked once per request.
type ingestRequest struct {
	JobID   string        `json:"job_id"`
	Samples []wireSample  `json:"samples"`
	Batches []sampleBatch `json:"batches"`
}

type wireSample struct {
	Metric  string  `json:"metric"`
	Node    int     `json:"node"`
	OffsetS float64 `json:"offset_s"`
	Value   float64 `json:"value"`
}

type jobState struct {
	JobID      string         `json:"job_id"`
	Complete   bool           `json:"complete"`
	Recognized bool           `json:"recognized"`
	Top        string         `json:"top"`
	Apps       []string       `json:"apps,omitempty"`
	Votes      map[string]int `json:"votes,omitempty"`
	Confidence float64        `json:"confidence"`
	Matched    int            `json:"matched"`
	Total      int            `json:"total"`
}

type jobSummary struct {
	JobID       string  `json:"job_id"`
	Nodes       int     `json:"nodes"`
	Complete    bool    `json:"complete"`
	Samples     int64   `json:"samples"`
	LastOffsetS float64 `json:"last_offset_s"`
}

type jobListing struct {
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Limit  int          `json:"limit"`
	Jobs   []jobSummary `json:"jobs"`
}

type labelRequest struct {
	App   string `json:"app"`
	Input string `json:"input"`
}

type dictState struct {
	Keys       int      `json:"keys"`
	Exclusive  int      `json:"exclusive"`
	Collisions int      `json:"collisions"`
	Labels     int      `json:"labels"`
	Depth      int      `json:"depth"`
	Apps       []string `json:"apps"`
	LiveJobs   int      `json:"live_jobs"`
}

type metricsState struct {
	LiveJobs        int64 `json:"live_jobs"`
	MaxJobs         int   `json:"max_jobs"`
	Shards          int   `json:"shards"`
	ShardOccupancy  []int `json:"shard_occupancy"`
	Registered      int64 `json:"registered_total"`
	Deleted         int64 `json:"deleted_total"`
	Learned         int64 `json:"learned_total"`
	SampleBatches   int64 `json:"sample_batches_total"`
	SamplesAccepted int64 `json:"samples_accepted_total"`
	BatchesRejected int64 `json:"batches_rejected_total"`
	Recognitions    int64 `json:"recognitions_total"`
	// Store carries the durable-store counters (WAL bytes, segments,
	// mmap'd bytes, flush/replay/quarantine totals); absent in
	// in-memory mode.
	Store *storeMetrics `json:"store,omitempty"`
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDictionary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var out dictState
	s.dict.Read(func(d *core.Dictionary) {
		st := d.Stats()
		out = dictState{
			Keys: st.Keys, Exclusive: st.Exclusive, Collisions: st.Collisions,
			Labels: st.Labels, Depth: st.Depth, Apps: d.Apps(),
		}
	})
	out.LiveJobs = int(s.jobCount.Load())
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := metricsState{
		LiveJobs:        s.jobCount.Load(),
		MaxJobs:         s.MaxJobs,
		Shards:          NumShards,
		ShardOccupancy:  make([]int, NumShards),
		Registered:      s.met.registered.Load(),
		Deleted:         s.met.deleted.Load(),
		Learned:         s.met.learned.Load(),
		SampleBatches:   s.met.sampleBatches.Load(),
		SamplesAccepted: s.met.samplesAccepted.Load(),
		BatchesRejected: s.met.batchesRejected.Load(),
		Recognitions:    s.met.recognitions.Load(),
		Store:           s.storeSection(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out.ShardOccupancy[i] = len(sh.jobs)
		sh.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, out)
}

// validateJobID enforces the registration-time job ID rules. IDs
// containing '/' would shadow or intercept the /v1/jobs/{id}[/label]
// routes, and "."/".." are unreachable after ServeMux path cleaning,
// so all are rejected up front.
func validateJobID(id string) string {
	switch {
	case id == "":
		return "job_id required"
	case len(id) > MaxJobIDLen:
		return fmt.Sprintf("job_id longer than %d bytes", MaxJobIDLen)
	case strings.Contains(id, "/"):
		return "job_id must not contain '/'"
	case id == "." || id == "..":
		return "job_id must not be '.' or '..'"
	}
	return ""
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleJobList(w, r)
	case http.MethodPost:
		s.handleRegister(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Nodes <= 0 {
		httpError(w, http.StatusBadRequest, "job_id and positive nodes required")
		return
	}
	if msg := validateJobID(req.JobID); msg != "" {
		httpError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	sh := s.shardFor(req.JobID)
	// Cheap precheck so doomed registrations (duplicates, full table)
	// answer from the shard map alone, without building a stream or
	// waiting on the dictionary lock behind a Learn. Both conditions
	// are re-checked authoritatively under the write lock below.
	sh.mu.RLock()
	_, exists := sh.jobs[req.JobID]
	sh.mu.RUnlock()
	if exists {
		httpError(w, http.StatusConflict, "job %q already registered", req.JobID)
		return
	}
	if s.jobCount.Load() >= int64(s.MaxJobs) {
		httpError(w, http.StatusTooManyRequests, "job table full (%d)", s.MaxJobs)
		return
	}
	var stream *core.Stream
	s.dict.Read(func(d *core.Dictionary) { stream = core.NewStream(d, req.Nodes) })
	sh.mu.Lock()
	if _, exists := sh.jobs[req.JobID]; exists {
		sh.mu.Unlock()
		httpError(w, http.StatusConflict, "job %q already registered", req.JobID)
		return
	}
	if s.jobCount.Add(1) > int64(s.MaxJobs) {
		s.jobCount.Add(-1)
		sh.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, "job table full (%d)", s.MaxJobs)
		return
	}
	j := &job{stream: stream, nodes: req.Nodes}
	sh.jobs[req.JobID] = j
	sh.mu.Unlock()
	if s.store != nil {
		// Durable registration. Feeders that race ahead of it fail
		// their store append (unknown job) and report 500 without
		// touching the stream, so memory never runs ahead of the WAL.
		if err := s.store.Register(req.JobID, req.Nodes); err != nil {
			s.removeJob(req.JobID, j)
			httpError(w, http.StatusInternalServerError, "store registration: %v", err)
			return
		}
	}
	s.met.registered.Add(1)
	writeJSON(w, http.StatusCreated, map[string]string{"job_id": req.JobID})
}

// handleJobList serves GET /v1/jobs: a deterministic (ID-sorted),
// paginated listing of live jobs with lightweight per-job state.
// Recognition state is deliberately per-job (GET /v1/jobs/{id}), so a
// wide listing never runs recognition for every job.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		httpError(w, http.StatusBadRequest, "bad offset %q", q.Get("offset"))
		return
	}
	limit, err := queryInt(q.Get("limit"), 100)
	if err != nil || limit <= 0 || limit > 1000 {
		httpError(w, http.StatusBadRequest, "bad limit %q (1..1000)", q.Get("limit"))
		return
	}
	type idJob struct {
		id string
		j  *job
	}
	var all []idJob
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, j := range sh.jobs {
			all = append(all, idJob{id, j})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, k int) bool { return all[i].id < all[k].id })
	out := jobListing{Total: len(all), Offset: offset, Limit: limit, Jobs: []jobSummary{}}
	if offset < len(all) {
		page := all[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
		for _, ij := range page {
			ij.j.mu.Lock()
			out.Jobs = append(out.Jobs, jobSummary{
				JobID:       ij.id,
				Nodes:       ij.j.nodes,
				Complete:    ij.j.stream.Complete(),
				Samples:     ij.j.samples,
				LastOffsetS: ij.j.lastOff.Seconds(),
			})
			ij.j.mu.Unlock()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// maxOffsetS is the largest offset (in seconds) representable as a
// time.Duration; larger offsets would overflow the conversion.
var maxOffsetS = float64(math.MaxInt64) / float64(time.Second)

// validateSamples rejects non-finite offsets/values and offsets whose
// Duration conversion would overflow, before anything is fed — a NaN
// value would otherwise permanently poison the job's Welford
// accumulators.
func validateSamples(jobID string, samples []wireSample) string {
	for i, smp := range samples {
		// >=/<=: maxOffsetS is float64(MaxInt64)/1e9 and float64
		// rounds MaxInt64 up to 2^63, so equality already overflows
		// the Duration conversion.
		if math.IsNaN(smp.OffsetS) || math.IsInf(smp.OffsetS, 0) || smp.OffsetS <= -maxOffsetS || smp.OffsetS >= maxOffsetS {
			return fmt.Sprintf("job %q sample %d: non-finite or out-of-range offset_s", jobID, i)
		}
		if math.IsNaN(smp.Value) || math.IsInf(smp.Value, 0) {
			return fmt.Sprintf("job %q sample %d: non-finite value", jobID, i)
		}
	}
	return ""
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	single := len(req.Batches) == 0
	batches := req.Batches
	if req.JobID != "" || len(req.Samples) > 0 {
		batches = append(batches, sampleBatch{JobID: req.JobID, Samples: req.Samples})
	}
	if len(batches) == 0 {
		httpError(w, http.StatusBadRequest, "empty ingest request")
		return
	}
	// Count attempts first so rejected batches stay a subset of
	// attempted ones in /v1/metrics (rejection rate can never read
	// above 100%); both wire forms report identically.
	s.met.sampleBatches.Add(int64(len(batches)))
	// Validate everything before feeding anything, so a bad batch
	// leaves no partial state. Batch IDs that could never have been
	// registered are malformed requests (400), not unknown jobs (404).
	invalid := 0
	firstMsg := ""
	for _, b := range batches {
		msg := validateJobID(b.JobID)
		if msg == "" {
			msg = validateSamples(b.JobID, b.Samples)
		}
		if msg != "" {
			invalid++
			if firstMsg == "" {
				firstMsg = msg
			}
		}
	}
	if invalid > 0 {
		s.met.batchesRejected.Add(int64(invalid))
		httpError(w, http.StatusBadRequest, "%s", firstMsg)
		return
	}

	// Resolve jobs, then feed each under its own mutex. The single-job
	// form (the per-node LDMS forwarder path) resolves directly; the
	// multi-job form groups batches by shard so each shard is
	// read-locked once per request.
	var unknown []string
	accepted := 0
	if single {
		j := s.getJob(batches[0].JobID)
		if j == nil {
			httpError(w, http.StatusNotFound, "unknown job %q", batches[0].JobID)
			return
		}
		n, ok, err := s.feedJob(batches[0].JobID, j, batches[0].Samples)
		accepted += n
		if err != nil {
			httpError(w, http.StatusInternalServerError, "store append: %v", err)
			return
		}
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job %q", batches[0].JobID)
			return
		}
	} else {
		type resolved struct {
			b sampleBatch
			j *job
		}
		byShard := make(map[*shard][]int, 1)
		for i, b := range batches {
			sh := s.shardFor(b.JobID)
			byShard[sh] = append(byShard[sh], i)
		}
		work := make([]resolved, 0, len(batches))
		for sh, idxs := range byShard {
			sh.mu.RLock()
			for _, i := range idxs {
				if j := sh.jobs[batches[i].JobID]; j != nil {
					work = append(work, resolved{b: batches[i], j: j})
				} else {
					unknown = append(unknown, batches[i].JobID)
				}
			}
			sh.mu.RUnlock()
		}
		for _, rw := range work {
			n, ok, err := s.feedJob(rw.b.JobID, rw.j, rw.b.Samples)
			accepted += n
			if err != nil {
				httpError(w, http.StatusInternalServerError, "store append: %v", err)
				return
			}
			if !ok {
				unknown = append(unknown, rw.b.JobID)
			}
		}
	}
	// One durable commit acknowledges the whole request — fsync
	// batching: many runs, many jobs, one fsync. A Commit failure 500s
	// with the streams already fed (a retry would double-feed them);
	// ingest is at-least-once under storage errors, and an fsync
	// failure means the durable state is suspect anyway — restart and
	// replay the WAL rather than limp on.
	if s.store != nil && accepted > 0 {
		if err := s.store.Commit(); err != nil {
			httpError(w, http.StatusInternalServerError, "store commit: %v", err)
			return
		}
	}
	s.met.samplesAccepted.Add(int64(accepted))
	if len(unknown) > 0 {
		// Sorted in both the 404 and partial-success forms: shard-map
		// iteration order is nondeterministic.
		sort.Strings(unknown)
		if accepted == 0 {
			httpError(w, http.StatusNotFound, "unknown jobs: %s", strings.Join(unknown, ", "))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"accepted": accepted, "unknown": unknown})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

// feedJob applies one batch of pre-validated samples to a job under
// its mutex. It reports the number of samples fed and false when the
// job has already been labelled or deleted. No dictionary lock is
// taken: Feed only reads the immutable fingerprint configuration, so
// ingest never stalls behind recognition or learning. With a store
// attached each run is WAL-appended before it reaches the stream, so
// the in-memory state never runs ahead of what a restart can replay;
// the fsync happens once per request (handleSamples commits).
func (s *Server) feedJob(id string, j *job, samples []wireSample) (int, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return 0, false, nil
	}
	// LDMS forwarders emit long runs of one metric set on one node;
	// regroup the batch into those contiguous (metric, node) runs and
	// feed each as one columnar append, so the stream resolves metric
	// configuration and window accumulators once per run instead of
	// once per sample.
	fed := 0
	for i := 0; i < len(samples); {
		metric, node := samples[i].Metric, samples[i].Node
		j.colOff, j.colVal = j.colOff[:0], j.colVal[:0]
		for ; i < len(samples) && samples[i].Metric == metric && samples[i].Node == node; i++ {
			// Round, don't truncate: a forwarder that accumulated
			// 59.999999999999996 means the 60 s tick, and truncation
			// would silently drop it from the [60:120) window.
			// validateSamples already bounded the magnitude.
			offset := time.Duration(math.Round(samples[i].OffsetS * float64(time.Second)))
			j.colOff = append(j.colOff, offset)
			j.colVal = append(j.colVal, samples[i].Value)
		}
		if s.store != nil {
			if err := s.store.Append(id, metric, node, j.colOff, j.colVal); err != nil {
				j.samples += int64(fed)
				if errors.Is(err, tsdb.ErrUnknownJob) {
					// The documented register race: the job is in the
					// shard map but its store registration has not
					// landed yet. It can only hit the first run (store
					// registration is atomic and outlives the job), so
					// nothing of this job was fed — report it like an
					// unknown job instead of failing jobs that were
					// already fed in this batch, whose WAL records
					// still need the request's Commit.
					return fed, false, nil
				}
				return fed, true, err
			}
		}
		for _, off := range j.colOff {
			if off > j.lastOff {
				j.lastOff = off
			}
		}
		j.stream.FeedRun(metric, node, j.colOff, j.colVal)
		fed += len(j.colVal)
	}
	j.samples += int64(fed)
	return fed, true, nil
}

// handleJob dispatches /v1/jobs/{id} and /v1/jobs/{id}/label. IDs
// containing '/' are rejected at registration, so any remaining slash
// in the path (other than the /label suffix) is an unknown route.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if rest == "" {
		httpError(w, http.StatusNotFound, "missing job id")
		return
	}
	if id, ok := strings.CutSuffix(rest, "/label"); ok {
		if id == "" || strings.Contains(id, "/") {
			httpError(w, http.StatusNotFound, "no such route")
			return
		}
		s.handleLabel(w, r, id)
		return
	}
	if id, ok := strings.CutSuffix(rest, "/series"); ok {
		if id == "" || strings.Contains(id, "/") {
			httpError(w, http.StatusNotFound, "no such route")
			return
		}
		s.handleJobSeries(w, r, id)
		return
	}
	if strings.Contains(rest, "/") {
		httpError(w, http.StatusNotFound, "no such route")
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleResult(w, rest)
	case http.MethodDelete:
		s.handleDelete(w, rest)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or DELETE")
	}
}

func (s *Server) handleResult(w http.ResponseWriter, id string) {
	j := s.getJob(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	var out jobState
	// The stream's recognizer scratch is reused across polls (we hold
	// the job mutex, so no concurrent poll can invalidate the Result);
	// the dictionary read section excludes a concurrent Learn while
	// the Result is consumed.
	s.dict.Read(func(*core.Dictionary) {
		res := j.stream.Recognize()
		out = jobState{
			JobID:      id,
			Complete:   j.stream.Complete(),
			Recognized: res.Recognized(),
			Top:        res.Top(),
			// res.Apps aliases the recognizer's reused scratch; it must
			// be copied before the locks drop or a concurrent poll of
			// the same job would rewrite it mid-encode.
			Apps:       append([]string(nil), res.Apps...),
			Votes:      res.Votes(),
			Confidence: res.Confidence(),
			Matched:    res.Matched,
			Total:      res.Total,
		}
	})
	j.mu.Unlock()
	s.met.recognitions.Add(1)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req labelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	label, err := apps.ParseLabel(req.App + "_" + req.Input)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad label: %v", err)
		return
	}
	j := s.getJob(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !j.stream.Complete() {
		j.mu.Unlock()
		httpError(w, http.StatusConflict, "job %q has not covered the fingerprint window yet", id)
		return
	}
	// Store first, learn second: Finish mutates nothing when its WAL
	// append fails, so a storage error leaves the job fully intact
	// (still live, still labellable) with the dictionary untouched —
	// whereas Learn cannot be rolled back. Running it under the job
	// mutex and before the unlink also pins the store incarnation:
	// feeders are blocked by j.mu, and a re-registration of the same
	// ID cannot slip in (the ID is still in the shard map, so register
	// answers 409) and have its fresh store entry finished by us.
	if s.store != nil {
		if err := s.store.Finish(id, label.String()); err != nil {
			j.mu.Unlock()
			httpError(w, http.StatusInternalServerError, "store finish: %v", err)
			return
		}
	}
	// Online learning: insert the completed stream's fingerprints
	// under exclusive dictionary access.
	s.dict.Learn(j.stream, label)
	j.done = true
	j.mu.Unlock()
	s.removeJob(id, j)
	s.met.learned.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"learned": label.String()})
}

// removeJob unlinks a specific job pointer from its shard, tolerating
// the ID having been re-registered in the meantime.
func (s *Server) removeJob(id string, j *job) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if sh.jobs[id] == j {
		delete(sh.jobs, id)
		s.jobCount.Add(-1)
	}
	sh.mu.Unlock()
}

func (s *Server) handleDelete(w http.ResponseWriter, id string) {
	// Same order as handleLabel (job mutex, then shard lock via
	// removeJob): done is set before the unlink, so a feeder that
	// resolved the pointer earlier can never feed an unlinked stream.
	j := s.getJob(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	// Drop from the store before the unlink, under the job mutex, for
	// the same incarnation-pinning reasons as handleLabel: a failed
	// Drop leaves the job fully alive (no state diverged), and a
	// concurrent re-registration cannot create a fresh store entry for
	// this ID that our Drop would then delete.
	if s.store != nil {
		if err := s.store.Drop(id); err != nil {
			j.mu.Unlock()
			httpError(w, http.StatusInternalServerError, "store drop: %v", err)
			return
		}
	}
	j.done = true
	j.mu.Unlock()
	s.removeJob(id, j)
	s.met.deleted.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// --- helpers ----------------------------------------------------------

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
