package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/efd/monitor"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// trainedDict builds a dictionary with ft at 6000 and mg at 7000 across
// two nodes.
func trainedDict(t *testing.T) *core.Dictionary {
	t.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	learn := func(app string, level float64) {
		src := fixedSource{nodes: 2, level: level}
		d.Learn(src, apps.Label{App: app, Input: apps.InputX})
	}
	learn("ft", 6000)
	learn("mg", 7000)
	return d
}

type fixedSource struct {
	nodes int
	level float64
}

func (f fixedSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f fixedSource) NodeCount() int { return f.nodes }

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(trainedDict(t))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decode(t, resp)
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decode(t, resp)
}

func decode(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return m
}

// feed streams a constant level into a registered job over the window.
func feed(t *testing.T, url, jobID string, level float64, upToS int) {
	t.Helper()
	var samples []wireSample
	for sec := 0; sec <= upToS; sec++ {
		for node := 0; node < 2; node++ {
			samples = append(samples, wireSample{
				Metric: apps.HeadlineMetric, Node: node,
				OffsetS: float64(sec), Value: level,
			})
		}
	}
	resp, body := post(t, url+"/v1/samples", sampleBatch{JobID: jobID, Samples: samples})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samples rejected: %v %v", resp.Status, body)
	}
}

func TestHealthAndDictionary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: %v %v", resp.Status, body)
	}
	resp, body = get(t, ts.URL+"/v1/dictionary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dictionary: %v", resp.Status)
	}
	if body["keys"].(float64) != 4 { // 2 apps × 2 nodes
		t.Errorf("keys = %v", body["keys"])
	}
	if body["depth"].(float64) != 2 {
		t.Errorf("depth = %v", body["depth"])
	}
}

func TestRecognitionFlow(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "j1", Nodes: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v", resp.Status)
	}
	// Early query: nothing recognized yet.
	resp, body := get(t, ts.URL+"/v1/jobs/j1")
	if resp.StatusCode != http.StatusOK || body["recognized"].(bool) {
		t.Fatalf("fresh job state: %v %v", resp.Status, body)
	}
	feed(t, ts.URL, "j1", 6010, 125)
	resp, body = get(t, ts.URL+"/v1/jobs/j1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %v", resp.Status)
	}
	if body["top"] != "ft" || !body["complete"].(bool) {
		t.Fatalf("recognition state: %v", body)
	}
	if body["confidence"].(float64) != 1 {
		t.Errorf("confidence = %v", body["confidence"])
	}
}

func TestOnlineLearning(t *testing.T) {
	s, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "new", Nodes: 2})
	feed(t, ts.URL, "new", 9000, 125) // a level no known app uses

	// Labelling before completion is rejected — make a second job to
	// check that path first.
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "early", Nodes: 2})
	resp, _ := post(t, ts.URL+"/v1/jobs/early/label", labelRequest{App: "x", Input: "X"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early label: %v", resp.Status)
	}

	resp, body := post(t, ts.URL+"/v1/jobs/new/label", labelRequest{App: "lammps", Input: "X"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label: %v %v", resp.Status, body)
	}
	// The dictionary now recognizes the new application.
	var top string
	s.Dictionary().Read(func(d *core.Dictionary) {
		top = d.Recognize(fixedSource{nodes: 2, level: 9000}).Top()
	})
	if top != "lammps" {
		t.Fatalf("online-learned app not recognized: got %q", top)
	}
	// The job was consumed.
	resp, _ = get(t, ts.URL+"/v1/jobs/new")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("labelled job should be gone: %v", resp.Status)
	}
}

func TestRegistrationErrors(t *testing.T) {
	// MaxJobs must be set before serving, so use a dedicated server.
	s := New(trainedDict(t))
	s.MaxJobs = 2
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "", Nodes: 2}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty id: %v", resp.Status)
	}
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "a", Nodes: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero nodes: %v", resp.Status)
	}
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "dup", Nodes: 1})
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "dup", Nodes: 1}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate: %v", resp.Status)
	}
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "fill", Nodes: 1})
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "over", Nodes: 1}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over capacity: %v", resp.Status)
	}
	// Deleting a job frees its slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/fill", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v", resp.Status)
	}
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "again", Nodes: 1}); resp.StatusCode != http.StatusCreated {
		t.Errorf("register after delete: %v", resp.Status)
	}
}

func TestJobIDValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []string{"a/b", "x/label", "/", strings.Repeat("x", MaxJobIDLen+1), ".", ".."}
	for _, id := range bad {
		if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: id, Nodes: 1}); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("id %q: %v, want 400", id, resp.Status)
		}
	}
	good := []string{"ok.job-1", "label", strings.Repeat("y", MaxJobIDLen)}
	for _, id := range good {
		if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: id, Nodes: 1}); resp.StatusCode != http.StatusCreated {
			t.Errorf("id %q: %v, want 201", id, resp.Status)
		}
	}
}

func TestRouteEdgeCases(t *testing.T) {
	_, ts := newTestServer(t)
	// A job literally named "label" is reachable: only the "/label"
	// suffix is special.
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "label", Nodes: 1})
	if resp, _ := get(t, ts.URL+"/v1/jobs/label"); resp.StatusCode != http.StatusOK {
		t.Errorf("job named label: %v", resp.Status)
	}
	// Slash-bearing paths are unknown routes, not job lookups. (A
	// path like /v1/jobs//label is first cleaned by ServeMux into
	// /v1/jobs/label — a plain job lookup — so it is not in this
	// list.)
	for _, p := range []string{"/v1/jobs/a/b", "/v1/jobs/a/b/label", "/v1/jobs/a/label/x"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+p, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// ServeMux may clean some of these paths with a 301 before our
		// handler runs; anything but a 2xx is acceptable.
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s: %v, want non-2xx", p, resp.Status)
		}
	}
	// POST to /v1/jobs/{id}/label with a slash-bearing id is a 404.
	if resp, _ := post(t, ts.URL+"/v1/jobs/a/b/label", labelRequest{App: "x", Input: "X"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("label with slash id: %v, want 404", resp.Status)
	}
}

func TestNonFiniteSamplesRejected(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "j", Nodes: 2})
	// Raw bodies: JSON itself cannot carry NaN/Inf literals (those die
	// in decode with a 400), so the validator's job is the values that
	// DO parse — like offsets too large for a time.Duration, or
	// non-finite values smuggled in through a future wire format. Both
	// layers must answer 400 without feeding anything.
	valid := fmt.Sprintf(`{"metric":%q,"node":0,"offset_s":60,"value":6000}`, apps.HeadlineMetric)
	cases := []string{
		// Caught by validateSamples after a clean decode.
		fmt.Sprintf(`{"metric":%q,"node":0,"offset_s":1e300,"value":1}`, apps.HeadlineMetric),
		fmt.Sprintf(`{"metric":%q,"node":0,"offset_s":-1e300,"value":1}`, apps.HeadlineMetric),
		// Rejected at the JSON layer: NaN/Infinity are not JSON.
		fmt.Sprintf(`{"metric":%q,"node":0,"offset_s":NaN,"value":1}`, apps.HeadlineMetric),
		fmt.Sprintf(`{"metric":%q,"node":0,"offset_s":60,"value":Infinity}`, apps.HeadlineMetric),
	}
	for i, smp := range cases {
		body := fmt.Sprintf(`{"job_id":"j","samples":[%s,%s]}`, valid, smp)
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: %v, want 400", i, resp.Status)
		}
	}
	// The validator itself rejects non-finite floats directly.
	for i, smp := range []wireSample{
		{Metric: apps.HeadlineMetric, OffsetS: math.NaN(), Value: 1},
		{Metric: apps.HeadlineMetric, OffsetS: math.Inf(1), Value: 1},
		{Metric: apps.HeadlineMetric, OffsetS: 60, Value: math.NaN()},
		{Metric: apps.HeadlineMetric, OffsetS: 60, Value: math.Inf(-1)},
	} {
		if err := monitor.ValidateSamples("j", []wireSample{smp}); err == nil {
			t.Errorf("validator case %d: accepted non-finite sample", i)
		}
	}
	// Nothing was fed: the whole batch is rejected before feeding.
	_, body := get(t, ts.URL+"/v1/jobs?limit=10")
	jobs := body["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("jobs listed = %d", len(jobs))
	}
	if n := jobs[0].(map[string]any)["samples"].(float64); n != 0 {
		t.Errorf("samples fed despite rejection: %v", n)
	}
}

func TestJobListingPagination(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/v1/jobs", registerRequest{JobID: fmt.Sprintf("job%d", i), Nodes: 2})
	}
	feed(t, ts.URL, "job3", 6000, 125)
	resp, body := get(t, ts.URL+"/v1/jobs?limit=2&offset=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %v", resp.Status)
	}
	if body["total"].(float64) != 5 {
		t.Errorf("total = %v", body["total"])
	}
	jobs := body["jobs"].([]any)
	if len(jobs) != 2 {
		t.Fatalf("page size = %d", len(jobs))
	}
	j2 := jobs[0].(map[string]any)
	j3 := jobs[1].(map[string]any)
	if j2["job_id"] != "job2" || j3["job_id"] != "job3" {
		t.Errorf("page = %v, %v (IDs are sorted)", j2["job_id"], j3["job_id"])
	}
	if !j3["complete"].(bool) || j3["samples"].(float64) == 0 {
		t.Errorf("fed job state: %v", j3)
	}
	if j2["complete"].(bool) {
		t.Errorf("unfed job complete: %v", j2)
	}
	// Off-the-end offset yields an empty page, not an error.
	if _, body := get(t, ts.URL+"/v1/jobs?offset=99"); len(body["jobs"].([]any)) != 0 {
		t.Errorf("off-end page: %v", body["jobs"])
	}
	// Bad parameters are 400s.
	for _, q := range []string{"?limit=0", "?limit=1001", "?limit=x", "?offset=-1", "?offset=x"} {
		if resp, _ := get(t, ts.URL+"/v1/jobs"+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %v, want 400", q, resp.Status)
		}
	}
}

func TestBatchIngest(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "a", Nodes: 2})
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "b", Nodes: 2})
	mk := func(level float64) []wireSample {
		var out []wireSample
		for sec := 0; sec <= 125; sec += 5 {
			for node := 0; node < 2; node++ {
				out = append(out, wireSample{Metric: apps.HeadlineMetric, Node: node, OffsetS: float64(sec), Value: level})
			}
		}
		return out
	}
	resp, body := post(t, ts.URL+"/v1/samples", map[string]any{"batches": []sampleBatch{
		{JobID: "a", Samples: mk(6000)},
		{JobID: "b", Samples: mk(7000)},
		{JobID: "ghost", Samples: mk(1)},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest: %v %v", resp.Status, body)
	}
	if body["accepted"].(float64) != float64(2*len(mk(0))) {
		t.Errorf("accepted = %v", body["accepted"])
	}
	unknown := body["unknown"].([]any)
	if len(unknown) != 1 || unknown[0] != "ghost" {
		t.Errorf("unknown = %v", unknown)
	}
	if _, body := get(t, ts.URL+"/v1/jobs/a"); body["top"] != "ft" {
		t.Errorf("job a: %v", body["top"])
	}
	if _, body := get(t, ts.URL+"/v1/jobs/b"); body["top"] != "mg" {
		t.Errorf("job b: %v", body["top"])
	}
	// All-unknown multi-batch is a 404; an empty request is a 400.
	if resp, _ := post(t, ts.URL+"/v1/samples", map[string]any{"batches": []sampleBatch{{JobID: "ghost", Samples: mk(1)}}}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("all-unknown batch: %v", resp.Status)
	}
	if resp, _ := post(t, ts.URL+"/v1/samples", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty ingest: %v", resp.Status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "m1", Nodes: 2})
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "m2", Nodes: 2})
	feed(t, ts.URL, "m1", 6000, 125)
	get(t, ts.URL+"/v1/jobs/m1")
	resp, body := get(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v", resp.Status)
	}
	if body["live_jobs"].(float64) != 2 || body["registered_total"].(float64) != 2 {
		t.Errorf("job counters: %v", body)
	}
	if body["shards"].(float64) != NumShards {
		t.Errorf("shards = %v", body["shards"])
	}
	occ := body["shard_occupancy"].([]any)
	total := 0.0
	for _, o := range occ {
		total += o.(float64)
	}
	if len(occ) != NumShards || total != 2 {
		t.Errorf("occupancy = %v (len %d)", total, len(occ))
	}
	if body["samples_accepted_total"].(float64) == 0 || body["recognitions_total"].(float64) != 1 {
		t.Errorf("traffic counters: %v", body)
	}
}

func TestSampleAndQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, _ := post(t, ts.URL+"/v1/samples", sampleBatch{JobID: "ghost"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("samples for unknown job: %v", resp.Status)
	}
	if resp, _ := get(t, ts.URL+"/v1/jobs/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %v", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/ghost", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown: %v", resp.Status)
	}
	// Bad JSON bodies.
	r, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %v", r.Status)
	}
}

func TestDeleteJob(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "tmp", Nodes: 1})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/tmp", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v", resp.Status)
	}
	if r, _ := get(t, ts.URL+"/v1/jobs/tmp"); r.StatusCode != http.StatusNotFound {
		t.Errorf("job survived deletion: %v", r.Status)
	}
}

func TestMethodGuards(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/dictionary"},
		{http.MethodGet, "/v1/samples"},
		{http.MethodPut, "/v1/jobs"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(nil))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %v", c.method, c.path, resp.Status)
		}
	}
}

func TestConcurrentFeeding(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 8; i++ {
		post(t, ts.URL+"/v1/jobs", registerRequest{JobID: fmt.Sprintf("job%d", i), Nodes: 2})
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			id := fmt.Sprintf("job%d", i)
			level := 6000.0
			if i%2 == 1 {
				level = 7000
			}
			var samples []wireSample
			for sec := 0; sec <= 125; sec++ {
				for node := 0; node < 2; node++ {
					samples = append(samples, wireSample{
						Metric: apps.HeadlineMetric, Node: node,
						OffsetS: float64(sec), Value: level,
					})
				}
			}
			b, _ := json.Marshal(sampleBatch{JobID: id, Samples: samples})
			resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		want := "ft"
		if i%2 == 1 {
			want = "mg"
		}
		_, body := get(t, ts.URL+fmt.Sprintf("/v1/jobs/job%d", i))
		if body["top"] != want {
			t.Errorf("job%d recognized as %v, want %s", i, body["top"], want)
		}
	}
}
