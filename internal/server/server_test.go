package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// trainedDict builds a dictionary with ft at 6000 and mg at 7000 across
// two nodes.
func trainedDict(t *testing.T) *core.Dictionary {
	t.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	learn := func(app string, level float64) {
		src := fixedSource{nodes: 2, level: level}
		d.Learn(src, apps.Label{App: app, Input: apps.InputX})
	}
	learn("ft", 6000)
	learn("mg", 7000)
	return d
}

type fixedSource struct {
	nodes int
	level float64
}

func (f fixedSource) WindowMean(metric string, node int, w telemetry.Window) (float64, bool) {
	if metric != apps.HeadlineMetric || node >= f.nodes {
		return 0, false
	}
	return f.level, true
}

func (f fixedSource) NodeCount() int { return f.nodes }

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(trainedDict(t))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decode(t, resp)
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decode(t, resp)
}

func decode(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return m
}

// feed streams a constant level into a registered job over the window.
func feed(t *testing.T, url, jobID string, level float64, upToS int) {
	t.Helper()
	var samples []wireSample
	for sec := 0; sec <= upToS; sec++ {
		for node := 0; node < 2; node++ {
			samples = append(samples, wireSample{
				Metric: apps.HeadlineMetric, Node: node,
				OffsetS: float64(sec), Value: level,
			})
		}
	}
	resp, body := post(t, url+"/v1/samples", sampleBatch{JobID: jobID, Samples: samples})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samples rejected: %v %v", resp.Status, body)
	}
}

func TestHealthAndDictionary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: %v %v", resp.Status, body)
	}
	resp, body = get(t, ts.URL+"/v1/dictionary")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dictionary: %v", resp.Status)
	}
	if body["keys"].(float64) != 4 { // 2 apps × 2 nodes
		t.Errorf("keys = %v", body["keys"])
	}
	if body["depth"].(float64) != 2 {
		t.Errorf("depth = %v", body["depth"])
	}
}

func TestRecognitionFlow(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "j1", Nodes: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v", resp.Status)
	}
	// Early query: nothing recognized yet.
	resp, body := get(t, ts.URL+"/v1/jobs/j1")
	if resp.StatusCode != http.StatusOK || body["recognized"].(bool) {
		t.Fatalf("fresh job state: %v %v", resp.Status, body)
	}
	feed(t, ts.URL, "j1", 6010, 125)
	resp, body = get(t, ts.URL+"/v1/jobs/j1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %v", resp.Status)
	}
	if body["top"] != "ft" || !body["complete"].(bool) {
		t.Fatalf("recognition state: %v", body)
	}
	if body["confidence"].(float64) != 1 {
		t.Errorf("confidence = %v", body["confidence"])
	}
}

func TestOnlineLearning(t *testing.T) {
	s, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "new", Nodes: 2})
	feed(t, ts.URL, "new", 9000, 125) // a level no known app uses

	// Labelling before completion is rejected — make a second job to
	// check that path first.
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "early", Nodes: 2})
	resp, _ := post(t, ts.URL+"/v1/jobs/early/label", labelRequest{App: "x", Input: "X"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early label: %v", resp.Status)
	}

	resp, body := post(t, ts.URL+"/v1/jobs/new/label", labelRequest{App: "lammps", Input: "X"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label: %v %v", resp.Status, body)
	}
	// The dictionary now recognizes the new application.
	res := s.dict.Recognize(fixedSource{nodes: 2, level: 9000})
	if res.Top() != "lammps" {
		t.Fatalf("online-learned app not recognized: %+v", res)
	}
	// The job was consumed.
	resp, _ = get(t, ts.URL+"/v1/jobs/new")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("labelled job should be gone: %v", resp.Status)
	}
}

func TestRegistrationErrors(t *testing.T) {
	s, ts := newTestServer(t)
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "", Nodes: 2}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty id: %v", resp.Status)
	}
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "a", Nodes: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero nodes: %v", resp.Status)
	}
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "dup", Nodes: 1})
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "dup", Nodes: 1}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate: %v", resp.Status)
	}
	s.MaxJobs = 2 // "dup" and one more
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "fill", Nodes: 1})
	if resp, _ := post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "over", Nodes: 1}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over capacity: %v", resp.Status)
	}
}

func TestSampleAndQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, _ := post(t, ts.URL+"/v1/samples", sampleBatch{JobID: "ghost"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("samples for unknown job: %v", resp.Status)
	}
	if resp, _ := get(t, ts.URL+"/v1/jobs/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %v", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/ghost", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown: %v", resp.Status)
	}
	// Bad JSON bodies.
	r, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %v", r.Status)
	}
}

func TestDeleteJob(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/jobs", registerRequest{JobID: "tmp", Nodes: 1})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/tmp", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v", resp.Status)
	}
	if r, _ := get(t, ts.URL+"/v1/jobs/tmp"); r.StatusCode != http.StatusNotFound {
		t.Errorf("job survived deletion: %v", r.Status)
	}
}

func TestMethodGuards(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/dictionary"},
		{http.MethodGet, "/v1/samples"},
		{http.MethodPut, "/v1/jobs"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(nil))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %v", c.method, c.path, resp.Status)
		}
	}
}

func TestConcurrentFeeding(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 8; i++ {
		post(t, ts.URL+"/v1/jobs", registerRequest{JobID: fmt.Sprintf("job%d", i), Nodes: 2})
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			id := fmt.Sprintf("job%d", i)
			level := 6000.0
			if i%2 == 1 {
				level = 7000
			}
			var samples []wireSample
			for sec := 0; sec <= 125; sec++ {
				for node := 0; node < 2; node++ {
					samples = append(samples, wireSample{
						Metric: apps.HeadlineMetric, Node: node,
						OffsetS: float64(sec), Value: level,
					})
				}
			}
			b, _ := json.Marshal(sampleBatch{JobID: id, Samples: samples})
			resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		want := "ft"
		if i%2 == 1 {
			want = "mg"
		}
		_, body := get(t, ts.URL+fmt.Sprintf("/v1/jobs/job%d", i))
		if body["top"] != want {
			t.Errorf("job%d recognized as %v, want %s", i, body["top"], want)
		}
	}
}
