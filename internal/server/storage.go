// Storage route handlers. The durable store itself lives behind the
// engine (efd/monitor); these handlers only route, delegate, and map
// errors — without a store every one of them answers 501.
package server

import (
	"net/http"
	"strings"

	"repro/efd/monitor"
)

type executionsResponse struct {
	Executions []monitor.ExecutionInfo `json:"executions"`
	Total      int                     `json:"total"`
}

// handleJobSeries serves GET /v1/jobs/{id}/series from the store:
// live jobs get a snapshot of their accumulated columns, finished
// ones their stored execution.
func (s *Server) handleJobSeries(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	dump, err := s.Series(id)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, dump)
}

// handleExecutions dispatches /v1/executions and
// /v1/executions/{id}/recognize.
func (s *Server) handleExecutions(w http.ResponseWriter, r *http.Request) {
	if !s.HasStore() {
		httpError(w, http.StatusNotImplemented, codeUnimplemented, "server has no telemetry store (-data-dir)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/executions")
	switch {
	case rest == "" || rest == "/":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		execs, err := s.Executions()
		if err != nil {
			engineError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, executionsResponse{Executions: execs, Total: len(execs)})
	case strings.HasSuffix(rest, "/recognize"):
		id := strings.TrimSuffix(strings.TrimPrefix(rest, "/"), "/recognize")
		if id == "" || strings.Contains(id, "/") {
			httpError(w, http.StatusNotFound, codeNotFound, "no such route")
			return
		}
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		state, err := s.RecognizeStored(id)
		if err != nil {
			engineError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, state)
	default:
		httpError(w, http.StatusNotFound, codeNotFound, "no such route")
	}
}
