// Storage-backed mode: an optional tsdb.Store behind the server makes
// ingest durable and finished executions re-recognizable.
//
// Ingest keeps its zero-dictionary-lock property — the WAL append
// happens on the same per-job columnar runs the stream consumes, and
// one group-commit fsync acknowledges the whole HTTP batch. Startup
// replays the store's live jobs into fresh recognition streams, so a
// restarted daemon answers exactly as an uninterrupted one; labelled
// jobs become stored executions, served by GET /v1/jobs/{id}/series
// and re-recognized on demand (POST /v1/executions/{id}/recognize)
// after online learning has extended the dictionary.
package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// time1HzOffset is the implicit-grid offset of sample i.
func time1HzOffset(i int) time.Duration { return time.Duration(i) * telemetry.DefaultPeriod }

// AttachStore backs the server with a durable store and replays its
// live jobs into recognition streams. Call before serving requests
// (and after setting MaxJobs — recovery honours the cap and errors
// rather than silently over-admitting); the server takes over all
// writes to the store. Returns the number of jobs recovered.
func (s *Server) AttachStore(st *tsdb.Store) (recovered int, err error) {
	live := st.Live()
	if len(live) > s.MaxJobs {
		// Fail before attaching anything, so an embedder can fall back
		// to in-memory mode without a half-attached (and possibly
		// since-closed) store pointer behind the handlers.
		return 0, fmt.Errorf("server: store holds %d live jobs, exceeding -max-jobs %d; raise the cap or prune the store", len(live), s.MaxJobs)
	}
	s.store = st
	for _, lj := range live {
		var stream *core.Stream
		nodes := lj.Nodes
		s.dict.Read(func(d *core.Dictionary) { stream = core.NewStream(d, nodes) })
		j := &job{stream: stream, nodes: nodes, samples: lj.Samples, lastOff: lj.LastOffset}
		// Feeding per-series runs reproduces the pre-crash stream state
		// exactly: the window accumulators are independent per
		// (metric, node, window) and each series' samples replay in
		// their original order.
		for _, run := range lj.Series {
			j.stream.FeedRun(run.Metric, run.Node, run.Offsets, run.Values)
		}
		sh := s.shardFor(lj.ID)
		sh.mu.Lock()
		if _, exists := sh.jobs[lj.ID]; !exists {
			sh.jobs[lj.ID] = j
			s.jobCount.Add(1)
			recovered++
		}
		sh.mu.Unlock()
	}
	s.met.recovered.Store(int64(recovered))
	return recovered, nil
}

// Store returns the attached store, or nil.
func (s *Server) Store() *tsdb.Store { return s.store }

// storeMetrics is the store section of GET /v1/metrics.
type storeMetrics struct {
	tsdb.Stats
	RecoveredJobs  int64 `json:"recovered_jobs"`
	Rerecognitions int64 `json:"rerecognitions_total"`
}

type wireSeries struct {
	Metric string `json:"metric"`
	Node   int    `json:"node"`
	Count  int    `json:"count"`
	// OffsetsS is omitted for implicit-1 Hz-grid series: offset i is
	// exactly i seconds.
	OffsetsS []float64 `json:"offsets_s,omitempty"`
	Values   []float64 `json:"values"`
}

type seriesResponse struct {
	JobID string `json:"job_id"`
	// Source is "live" (memtable snapshot of a running job) or
	// "stored" (immutable flushed execution).
	Source string       `json:"source"`
	Series []wireSeries `json:"series"`
}

// handleJobSeries serves GET /v1/jobs/{id}/series from the store:
// live jobs get a snapshot of their accumulated columns, finished ones
// their stored execution.
func (s *Server) handleJobSeries(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.store == nil {
		httpError(w, http.StatusNotImplemented, "server has no telemetry store (-data-dir)")
		return
	}
	ns, live, err := s.store.Series(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "no telemetry for job %q", id)
		return
	}
	out := seriesResponse{JobID: id, Source: "stored", Series: []wireSeries{}}
	if live {
		out.Source = "live"
	}
	for _, node := range ns.Nodes() {
		for _, metric := range ns.Metrics() {
			series := ns.Get(node, metric)
			if series == nil {
				continue
			}
			ws := wireSeries{Metric: metric, Node: node, Count: series.Len()}
			ws.Values = make([]float64, series.Len())
			grid := true
			for i := 0; i < series.Len(); i++ {
				ws.Values[i] = series.ValueAt(i)
				if series.OffsetAt(i) != time1HzOffset(i) {
					grid = false
				}
			}
			if !grid {
				ws.OffsetsS = make([]float64, series.Len())
				for i := range ws.OffsetsS {
					ws.OffsetsS[i] = series.OffsetAt(i).Seconds()
				}
			}
			out.Series = append(out.Series, ws)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExecutions dispatches /v1/executions and
// /v1/executions/{id}/recognize.
func (s *Server) handleExecutions(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotImplemented, "server has no telemetry store (-data-dir)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/executions")
	switch {
	case rest == "" || rest == "/":
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		execs := s.store.Executions() // already Seq-sorted by the store
		writeJSON(w, http.StatusOK, map[string]any{"total": len(execs), "executions": execs})
	case strings.HasSuffix(rest, "/recognize"):
		id := strings.TrimSuffix(strings.TrimPrefix(rest, "/"), "/recognize")
		if id == "" || strings.Contains(id, "/") {
			httpError(w, http.StatusNotFound, "no such route")
			return
		}
		s.handleRerecognize(w, r, id)
	default:
		httpError(w, http.StatusNotFound, "no such route")
	}
}

// handleRerecognize re-runs recognition over a stored execution with
// the dictionary as it stands now — the payoff of keeping telemetry:
// labels learned after a job finished still apply to it.
func (s *Server) handleRerecognize(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ns, err := s.store.ExecutionSeries(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "no stored execution %q", id)
		return
	}
	src := core.NewTelemetrySource(ns)
	var out jobState
	s.dict.Read(func(d *core.Dictionary) {
		res := d.Recognize(src)
		out = jobState{
			JobID:      id,
			Complete:   true,
			Recognized: res.Recognized(),
			Top:        res.Top(),
			Apps:       res.Apps,
			Votes:      res.Votes(),
			Confidence: res.Confidence(),
			Matched:    res.Matched,
			Total:      res.Total,
		}
	})
	s.met.rerecognitions.Add(1)
	writeJSON(w, http.StatusOK, out)
}

// storeSection assembles the /v1/metrics store block, or nil without a
// store.
func (s *Server) storeSection() *storeMetrics {
	if s.store == nil {
		return nil
	}
	return &storeMetrics{
		Stats:          s.store.Stats(),
		RecoveredJobs:  s.met.recovered.Load(),
		Rerecognitions: s.met.rerecognitions.Load(),
	}
}
