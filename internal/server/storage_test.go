package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/tsdb"
)

// storageFixture starts a storage-backed server over a dictionary with
// one known application at level 6000.
func storageFixture(t *testing.T, dir string) (*Server, *httptest.Server, *tsdb.Store) {
	t.Helper()
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d.Learn(fixedSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	st, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d)
	if _, err := srv.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); st.Close() })
	return srv, ts, st
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// feedFlat streams a flat headline signal for both nodes of a job
// through the HTTP API, seconds [from, to].
func feedFlat(t *testing.T, base, jobID string, from, to int, level float64) {
	t.Helper()
	var samples []map[string]any
	for sec := from; sec <= to; sec++ {
		for node := 0; node < 2; node++ {
			samples = append(samples, map[string]any{
				"metric": apps.HeadlineMetric, "node": node,
				"offset_s": float64(sec), "value": level,
			})
		}
	}
	if code := doJSON(t, "POST", base+"/v1/samples", map[string]any{"job_id": jobID, "samples": samples}, nil); code != http.StatusOK {
		t.Fatalf("samples: %d", code)
	}
}

// TestStorageBackedLifecycle walks the full storage-backed flow:
// register → ingest (durable) → label → stored execution → series
// endpoint → online learning → re-recognition of the historical job.
func TestStorageBackedLifecycle(t *testing.T) {
	srv, ts, st := storageFixture(t, t.TempDir())
	base := ts.URL

	if code := doJSON(t, "POST", base+"/v1/jobs", map[string]any{"job_id": "hist1", "nodes": 2}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	feedFlat(t, base, "hist1", 0, 125, 9000) // unknown application level
	// Live series are served from the memtable.
	var sr struct {
		JobID  string `json:"job_id"`
		Source string `json:"source"`
		Series []struct {
			Metric   string    `json:"metric"`
			Node     int       `json:"node"`
			Count    int       `json:"count"`
			OffsetsS []float64 `json:"offsets_s"`
			Values   []float64 `json:"values"`
		} `json:"series"`
	}
	if code := doJSON(t, "GET", base+"/v1/jobs/hist1/series", nil, &sr); code != http.StatusOK {
		t.Fatalf("live series: %d", code)
	}
	if sr.Source != "live" || len(sr.Series) != 2 {
		t.Fatalf("live series response: source %q, %d series", sr.Source, len(sr.Series))
	}
	if sr.Series[0].Count != 126 || len(sr.Series[0].OffsetsS) != 0 {
		t.Errorf("grid series: count %d (want 126), offsets_s %d (want omitted)", sr.Series[0].Count, len(sr.Series[0].OffsetsS))
	}

	// Recognition says unknown; the operator labels it — it becomes a
	// stored execution.
	var state jobState
	if code := doJSON(t, "GET", base+"/v1/jobs/hist1", nil, &state); code != http.StatusOK || state.Top != core.Unknown {
		t.Fatalf("pre-label state: %d %+v", code, state)
	}
	if code := doJSON(t, "POST", base+"/v1/jobs/hist1/label", map[string]string{"app": "lammps", "input": "X"}, nil); code != http.StatusOK {
		t.Fatalf("label: %d", code)
	}

	var execs struct {
		Total      int             `json:"total"`
		Executions []tsdb.ExecInfo `json:"executions"`
	}
	if code := doJSON(t, "GET", base+"/v1/executions", nil, &execs); code != http.StatusOK {
		t.Fatalf("executions: %d", code)
	}
	if execs.Total != 1 || execs.Executions[0].ID != "hist1" || execs.Executions[0].Label != "lammps_X" {
		t.Fatalf("executions listing: %+v", execs)
	}

	// The stored series endpoint now answers from the store.
	if code := doJSON(t, "GET", base+"/v1/jobs/hist1/series", nil, &sr); code != http.StatusOK || sr.Source != "stored" {
		t.Fatalf("stored series: %d source %q", code, sr.Source)
	}

	// Historical re-recognition: the dictionary learned lammps at 9000
	// *after* hist1 finished; re-running recognition over the stored
	// execution now identifies it.
	var rr jobState
	if code := doJSON(t, "POST", base+"/v1/executions/hist1/recognize", nil, &rr); code != http.StatusOK {
		t.Fatalf("re-recognize: %d", code)
	}
	if rr.Top != "lammps" {
		t.Errorf("re-recognition after learning: top %q, want lammps", rr.Top)
	}

	// A second job at the original level still recognizes normally.
	if code := doJSON(t, "POST", base+"/v1/jobs", map[string]any{"job_id": "known", "nodes": 2}, nil); code != http.StatusCreated {
		t.Fatal("register known")
	}
	feedFlat(t, base, "known", 0, 125, 6000)
	if code := doJSON(t, "GET", base+"/v1/jobs/known", nil, &state); code != http.StatusOK || state.Top != "ft" {
		t.Fatalf("known job: %d top %q", code, state.Top)
	}

	// Metrics expose the store section.
	var met metricsState
	if code := doJSON(t, "GET", base+"/v1/metrics", nil, &met); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if met.Store == nil {
		t.Fatal("metrics missing store section")
	}
	if met.Store.WALBytes == 0 && met.Store.Executions == 0 {
		t.Errorf("store metrics look empty: %+v", met.Store)
	}
	if met.Store.Commits == 0 {
		t.Errorf("no commits counted: %+v", met.Store)
	}

	// Unknown IDs 404 on both storage routes.
	if code := doJSON(t, "GET", base+"/v1/jobs/nope/series", nil, nil); code != http.StatusNotFound {
		t.Errorf("series of unknown job: %d", code)
	}
	if code := doJSON(t, "POST", base+"/v1/executions/nope/recognize", nil, nil); code != http.StatusNotFound {
		t.Errorf("re-recognize unknown: %d", code)
	}
	_ = srv
	_ = st
}

// TestStorageRestartRecovery restarts the server stack over the same
// data dir and requires recognition state identical to an
// uninterrupted in-memory server fed the same samples.
func TestStorageRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts, st := storageFixture(t, dir)
	base := ts.URL
	if code := doJSON(t, "POST", base+"/v1/jobs", map[string]any{"job_id": "j", "nodes": 2}, nil); code != http.StatusCreated {
		t.Fatal("register")
	}
	// Feed only a partial window, so recognition is provisional — the
	// harder state to recover.
	feedFlat(t, base, "j", 0, 90, 6000)
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted in-memory server fed identically.
	dRef, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	dRef.Learn(fixedSource{nodes: 2, level: 6000}, apps.Label{App: "ft", Input: apps.InputX})
	refSrv := httptest.NewServer(New(dRef).Handler())
	defer refSrv.Close()
	if code := doJSON(t, "POST", refSrv.URL+"/v1/jobs", map[string]any{"job_id": "j", "nodes": 2}, nil); code != http.StatusCreated {
		t.Fatal("register ref")
	}
	feedFlat(t, refSrv.URL, "j", 0, 90, 6000)

	// Restart over the same directory.
	_, ts2, _ := storageFixture(t, dir)

	readState := func(base string) string {
		resp, err := http.Get(base + "/v1/jobs/j")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job state: %d %s", resp.StatusCode, b)
		}
		return string(b)
	}
	got, want := readState(ts2.URL), readState(refSrv.URL)
	if got != want {
		t.Errorf("recovered state differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The recovered job keeps working: complete the window and label.
	feedFlat(t, ts2.URL, "j", 91, 125, 6000)
	var state jobState
	if code := doJSON(t, "GET", ts2.URL+"/v1/jobs/j", nil, &state); code != http.StatusOK || state.Top != "ft" {
		t.Fatalf("completed recovered job: %d %+v", code, state)
	}
	var met metricsState
	if code := doJSON(t, "GET", ts2.URL+"/v1/metrics", nil, &met); code != http.StatusOK || met.Store == nil {
		t.Fatal("metrics after restart")
	}
	if met.Store.RecoveredJobs != 1 {
		t.Errorf("recovered_jobs = %d, want 1", met.Store.RecoveredJobs)
	}
	if met.Store.ReplayedRecords == 0 {
		t.Errorf("replayed_records = 0 after restart")
	}
}

// TestStorageRoutesWithoutStore pins the 501 contract in in-memory
// mode.
func TestStorageRoutesWithoutStore(t *testing.T) {
	d, err := core.NewDictionary(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(d).Handler())
	defer ts.Close()
	for _, route := range []struct{ method, path string }{
		{"GET", "/v1/jobs/x/series"},
		{"GET", "/v1/executions"},
		{"POST", "/v1/executions/x/recognize"},
	} {
		if code := doJSON(t, route.method, ts.URL+route.path, nil, nil); code != http.StatusNotImplemented {
			t.Errorf("%s %s without store: %d, want 501", route.method, route.path, code)
		}
	}
	var met metricsState
	if code := doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &met); code != http.StatusOK {
		t.Fatal("metrics")
	}
	if met.Store != nil {
		t.Errorf("in-memory metrics grew a store section: %+v", met.Store)
	}
}

// TestStorageConcurrentIngest exercises the storage-backed ingest path
// under parallel feeders and a concurrent flush, then verifies the
// store totals match what was acknowledged.
func TestStorageConcurrentIngest(t *testing.T) {
	_, ts, st := storageFixture(t, t.TempDir())
	base := ts.URL
	const jobs = 8
	for i := 0; i < jobs; i++ {
		if code := doJSON(t, "POST", base+"/v1/jobs", map[string]any{"job_id": fmt.Sprintf("c%d", i), "nodes": 2}, nil); code != http.StatusCreated {
			t.Fatal("register")
		}
	}
	done := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		go func(i int) {
			defer func() { done <- nil }()
			for chunk := 0; chunk < 5; chunk++ {
				var samples []map[string]any
				for sec := chunk * 25; sec < (chunk+1)*25; sec++ {
					for node := 0; node < 2; node++ {
						samples = append(samples, map[string]any{
							"metric": apps.HeadlineMetric, "node": node,
							"offset_s": float64(sec), "value": 6000.0,
						})
					}
				}
				b, _ := json.Marshal(map[string]any{"job_id": fmt.Sprintf("c%d", i), "samples": samples})
				resp, err := http.Post(base+"/v1/samples", "application/json", bytes.NewReader(b))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("samples: %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}
	for i := 0; i < jobs; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.LiveJobs != jobs {
		t.Errorf("store live jobs = %d, want %d", stats.LiveJobs, jobs)
	}
	total := int64(0)
	for _, lj := range st.Live() {
		total += lj.Samples
	}
	if want := int64(jobs * 5 * 25 * 2); total != want {
		t.Errorf("store samples = %d, want %d", total, want)
	}
}
