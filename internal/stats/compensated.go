package stats

import "math"

// This file holds the error-free transformations and double-double
// (~106-bit) arithmetic behind the telemetry layer's prefix power sums
// and the compensated moment computations: TwoSum/TwoProd building
// blocks, a DD running accumulator, and MomentsFromPowerSums, which
// recovers the windowed descriptive moments from raw Σx, Σx², Σx³, Σx⁴
// without catastrophic cancellation.

// TwoSum returns s = fl(a+b) and the exact rounding error e, so that
// a + b == s + e exactly (Knuth's branch-free error-free addition).
func TwoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	e = (a - s + bv) + (b - bv)
	return s, e
}

// twoProd returns p = fl(a*b) and the exact error e via FMA, so that
// a*b == p + e exactly.
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return p, e
}

// DD is an unevaluated double-double sum Hi + Lo carrying roughly 106
// bits of significand. The zero value is an accumulator at zero.
type DD struct {
	Hi, Lo float64
}

// DDFrom returns the double-double representation of x.
func DDFrom(x float64) DD { return DD{Hi: x} }

// Sq returns the exact double-double square of x. Power sums must be
// accumulated from exact squares — a rounded x*x already discards the
// low bits that make Σx²−n·mean² recoverable for large baselines.
func Sq(x float64) DD {
	p, e := twoProd(x, x)
	return DD{Hi: p, Lo: e}
}

// Add folds a float64 into the accumulator.
func (d *DD) Add(x float64) {
	s, e := TwoSum(d.Hi, x)
	e += d.Lo
	d.Hi, d.Lo = TwoSum(s, e)
}

// AddDD folds another double-double into the accumulator.
func (d *DD) AddDD(o DD) {
	s, e := TwoSum(d.Hi, o.Hi)
	e += d.Lo + o.Lo
	d.Hi, d.Lo = TwoSum(s, e)
}

// Sub returns d - o.
func (d DD) Sub(o DD) DD {
	s, e := TwoSum(d.Hi, -o.Hi)
	e += d.Lo - o.Lo
	s, e = TwoSum(s, e)
	return DD{Hi: s, Lo: e}
}

// Mul returns the double-double product d * o.
func (d DD) Mul(o DD) DD {
	p, e := twoProd(d.Hi, o.Hi)
	e += d.Hi*o.Lo + d.Lo*o.Hi
	p, e = TwoSum(p, e)
	return DD{Hi: p, Lo: e}
}

// Scale returns d * x for a plain float64 x.
func (d DD) Scale(x float64) DD {
	p, e := twoProd(d.Hi, x)
	e += d.Lo * x
	p, e = TwoSum(p, e)
	return DD{Hi: p, Lo: e}
}

// Div returns d / x for a plain float64 x (one Newton refinement step).
func (d DD) Div(x float64) DD {
	q := d.Hi / x
	// Residual of the first quotient digit, computed exactly.
	p, e := twoProd(q, x)
	r := (d.Hi - p) - e + d.Lo
	q2 := r / x
	s, err := TwoSum(q, q2)
	return DD{Hi: s, Lo: err}
}

// Value rounds the double-double to the nearest float64.
func (d DD) Value() float64 { return d.Hi + d.Lo }

// Moments are descriptive statistics recovered from power sums: the
// moment fields use exactly the same estimator conventions as the
// slice-based Variance, StdDev, Skewness and Kurtosis functions
// (unbiased n-1 variance, adjusted Fisher–Pearson skewness, excess
// kurtosis with bias correction, and the same small-n and zero-variance
// fallbacks to 0).
type Moments struct {
	Count    int
	Mean     float64
	Variance float64
	StdDev   float64
	Skewness float64
	Kurtosis float64
}

// MomentsFromPowerSums recovers Moments from the raw power sums
// Σx, Σx², Σx³, Σx⁴ over n samples, supplied as double-doubles (the
// telemetry layer maintains them as sealed prefix sums). The power
// terms must themselves be accumulated in double-double from exact
// squares (see Sq): AddDD(Sq(x)), AddDD(Sq(x).Scale(x)),
// AddDD(Sq(x).Mul(Sq(x))). The central moments are then assembled in
// double-double arithmetic, so the classic Σx²−n·mean² cancellation
// that plagues float64 raw-moment formulas stays harmless for counters
// with large baselines (~1e9 means over unit-scale structure).
func MomentsFromPowerSums(n int, s1, s2, s3, s4 DD) Moments {
	if n <= 0 {
		return Moments{}
	}
	fn := float64(n)
	mean := s1.Div(fn)
	m := Moments{Count: n, Mean: mean.Value()}
	if n < 2 {
		return m
	}
	// Central moments from raw power sums, all in double-double:
	//   m2 = S2/n − μ²
	//   m3 = S3/n − 3μ·S2/n + 2μ³
	//   m4 = S4/n − 4μ·S3/n + 6μ²·S2/n − 3μ⁴
	mu2 := mean.Mul(mean)
	r2 := s2.Div(fn)
	r3 := s3.Div(fn)
	r4 := s4.Div(fn)
	m2 := r2.Sub(mu2)
	// Rounding can push a zero-variance window a hair negative; clamp.
	m2v := m2.Value()
	if m2v < 0 {
		m2v = 0
	}
	m.Variance = m2v * fn / (fn - 1)
	m.StdDev = math.Sqrt(m.Variance)
	if m2v == 0 {
		return m
	}
	if n >= 3 {
		m3 := r3.Sub(mean.Mul(r2).Scale(3)).AddMul(mu2.Mul(mean), 2)
		g1 := m3.Value() / math.Pow(m2v, 1.5)
		m.Skewness = math.Sqrt(fn*(fn-1)) / (fn - 2) * g1
	}
	if n >= 4 {
		m4 := r4.Sub(mean.Mul(r3).Scale(4)).AddMul(mu2.Mul(r2), 6).AddMul(mu2.Mul(mu2), -3)
		g2 := m4.Value()/(m2v*m2v) - 3
		m.Kurtosis = ((fn - 1) / ((fn - 2) * (fn - 3))) * ((fn+1)*g2 + 6)
	}
	return m
}

// AddMul returns d + o*x, keeping the computation in double-double.
func (d DD) AddMul(o DD, x float64) DD {
	r := d
	r.AddDD(o.Scale(x))
	return r
}
