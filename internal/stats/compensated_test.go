package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestTwoSumExact(t *testing.T) {
	cases := [][2]float64{
		{1e16, 1}, {1, 1e-30}, {-1e308, 1e308}, {3.14, 2.71}, {0, 0},
	}
	for _, c := range cases {
		s, e := TwoSum(c[0], c[1])
		if s != c[0]+c[1] {
			t.Errorf("TwoSum(%g,%g) s = %g, want fl(a+b) = %g", c[0], c[1], s, c[0]+c[1])
		}
		// For these magnitudes the error term is exactly recoverable:
		// a+b == s+e must hold in extended evaluation. Verify with the
		// classic 1e16+1 case where the error is exactly 1.
		_ = e
	}
	s, e := TwoSum(1e16, 1)
	if s != 1e16 || e != 1 {
		t.Errorf("TwoSum(1e16, 1) = (%g, %g), want (1e16, 1)", s, e)
	}
}

func TestDDAccumulatorRecoversLostBits(t *testing.T) {
	// Summing 1e16 and 10_000 copies of 1.0 naively loses every unit
	// increment (1 < ulp(1e16) = 2); the DD accumulator keeps them.
	var d DD
	d.Add(1e16)
	for i := 0; i < 10_000; i++ {
		d.Add(1)
	}
	d.Add(-1e16)
	if got := d.Value(); got != 10_000 {
		t.Errorf("DD sum = %v, want 10000", got)
	}
}

func TestMomentsFromPowerSumsMatchesSliceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, scale := range []float64{1e-3, 1.0, 1e6, 1e9} {
		xs := make([]float64, 240)
		for i := range xs {
			xs[i] = scale * (1 + 0.1*rng.NormFloat64())
		}
		var s1, s2, s3, s4 DD
		for _, x := range xs {
			x2 := Sq(x)
			s1.Add(x)
			s2.AddDD(x2)
			s3.AddDD(x2.Scale(x))
			s4.AddDD(x2.Mul(x2))
		}
		m := MomentsFromPowerSums(len(xs), s1, s2, s3, s4)
		checks := []struct {
			name      string
			got, want float64
			tol       float64
		}{
			{"mean", m.Mean, KahanMean(xs), 1e-14},
			{"variance", m.Variance, Variance(xs), 1e-9},
			{"stddev", m.StdDev, StdDev(xs), 1e-9},
			{"skewness", m.Skewness, Skewness(xs), 1e-6},
			{"kurtosis", m.Kurtosis, Kurtosis(xs), 1e-6},
		}
		for _, c := range checks {
			if relErr(c.got, c.want) > c.tol {
				t.Errorf("scale %g: %s = %v, slice stats say %v (rel err %g)",
					scale, c.name, c.got, c.want, relErr(c.got, c.want))
			}
		}
	}
}

func TestMomentsFromPowerSumsDegenerate(t *testing.T) {
	if m := MomentsFromPowerSums(0, DD{}, DD{}, DD{}, DD{}); m != (Moments{}) {
		t.Errorf("n=0 moments = %+v, want zero", m)
	}
	// Constant series: variance, skewness, kurtosis all zero even
	// though the raw sums are enormous.
	var s1, s2, s3, s4 DD
	n := 100
	for i := 0; i < n; i++ {
		s1.Add(1e9)
		s2.Add(1e18)
		s3.Add(1e27)
		s4.Add(1e36)
	}
	m := MomentsFromPowerSums(n, s1, s2, s3, s4)
	if m.Mean != 1e9 || m.Variance != 0 || m.Skewness != 0 || m.Kurtosis != 0 {
		t.Errorf("constant moments = %+v", m)
	}
}

// TestMomentsLargeBaseline is the satellite numerical-stability check:
// values ~1e9 apart from zero with unit-scale structure. A naive
// Σx²−n·mean² at float64 loses all ~17 digits; both the compensated
// slice statistics and the double-double power-sum path must recover
// the exact moments of the shifted data.
func TestMomentsLargeBaseline(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	shift := 1e9
	shifted := make([]float64, len(base))
	for i, x := range base {
		shifted[i] = x + shift
	}
	// Shifting by a constant leaves central moments untouched.
	wantVar := Variance(base)
	wantSkew := Skewness(base)
	wantKurt := Kurtosis(base)

	if got := Variance(shifted); relErr(got, wantVar) > 1e-9 {
		t.Errorf("Variance(x+1e9) = %v, want %v", got, wantVar)
	}
	if got := Skewness(shifted); math.Abs(got-wantSkew) > 1e-6 {
		t.Errorf("Skewness(x+1e9) = %v, want %v", got, wantSkew)
	}
	if got := Kurtosis(shifted); math.Abs(got-wantKurt) > 1e-6 {
		t.Errorf("Kurtosis(x+1e9) = %v, want %v", got, wantKurt)
	}

	// The power-sum path centers at a per-series constant K (the
	// telemetry layer uses the first sample): moments are
	// shift-invariant, so MomentsFromPowerSums over Σ(x−K)^p returns
	// them directly, with only Mean needing the K added back. Raw
	// (uncentered) sums at a 1e9 baseline would need ~167 bits for the
	// fourth moment — beyond even double-double — which is exactly why
	// the convention centers first.
	k := shifted[0]
	var s1, s2, s3, s4 DD
	for _, x := range shifted {
		y := x - k
		y2 := Sq(y)
		s1.Add(y)
		s2.AddDD(y2)
		s3.AddDD(y2.Scale(y))
		s4.AddDD(y2.Mul(y2))
	}
	m := MomentsFromPowerSums(len(shifted), s1, s2, s3, s4)
	if got, want := m.Mean+k, KahanMean(shifted); relErr(got, want) > 1e-14 {
		t.Errorf("power-sum Mean = %v, want %v", got, want)
	}
	if relErr(m.Variance, wantVar) > 1e-9 {
		t.Errorf("power-sum Variance = %v, want %v", m.Variance, wantVar)
	}
	if math.Abs(m.Skewness-wantSkew) > 1e-6 {
		t.Errorf("power-sum Skewness = %v, want %v", m.Skewness, wantSkew)
	}
	if math.Abs(m.Kurtosis-wantKurt) > 1e-6 {
		t.Errorf("power-sum Kurtosis = %v, want %v", m.Kurtosis, wantKurt)
	}
}

// TestDescribeMatchesStandaloneBitwise pins the fused Describe to the
// standalone statistics bit for bit: the fusion removes passes, not
// precision, and serialized datasets depend on the exact bytes.
func TestDescribeMatchesStandaloneBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 3, 4, 5, 60, 175, 600} {
		for _, scale := range []float64{1e-4, 1, 1e9} {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = scale * (1 + 0.2*rng.NormFloat64())
			}
			s := Describe(xs)
			ps, _ := Percentiles(xs, []float64{5, 25, 50, 75, 95})
			want := Summary{
				Count: n, Mean: KahanMean(xs), StdDev: StdDev(xs),
				Min: Min(xs), Max: Max(xs),
				Skewness: Skewness(xs), Kurtosis: Kurtosis(xs),
				P5: ps[0], P25: ps[1], P50: ps[2], P75: ps[3], P95: ps[4],
			}
			if s != want {
				t.Errorf("n=%d scale=%g: Describe = %+v, standalone = %+v", n, scale, s, want)
			}
		}
	}
	// Constant input: zero variance guards.
	s := Describe([]float64{5, 5, 5, 5})
	if s.StdDev != 0 || s.Skewness != 0 || s.Kurtosis != 0 {
		t.Errorf("constant Describe = %+v", s)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
