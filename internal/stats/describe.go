package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensated summation, which
// keeps long 1 Hz telemetry windows accurate even when large baselines
// carry small fluctuations.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// KahanMean returns the compensated-summation mean of xs, or 0 for empty
// input. This is the mean used for fingerprint construction.
func KahanMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. It returns
// 0 when fewer than two samples are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Skewness returns the adjusted Fisher–Pearson sample skewness of xs
// (the definition scipy/pandas use), or 0 when fewer than three samples
// are available or the variance is zero.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return math.Sqrt(n*(n-1)) / (n - 2) * g1
}

// Kurtosis returns the sample excess kurtosis of xs with the standard
// bias correction (Fisher definition: normal distribution → 0), or 0
// when fewer than four samples are available or the variance is zero.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	g2 := m4/(m2*m2) - 3
	return ((n - 1) / ((n - 2) * (n - 3))) * ((n+1)*g2 + 6)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks — the same method as
// numpy.percentile's default. The input is not modified. It returns an
// error for empty input or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// Percentiles returns the requested percentiles of xs in one pass over a
// single sorted copy, which is markedly cheaper than repeated Percentile
// calls when extracting Taxonomist-style feature vectors.
func Percentiles(xs []float64, ps []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of range [0,100]")
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs, or 0 for empty input.
func Median(xs []float64) float64 {
	v, err := Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return v
}

// Summary bundles the descriptive statistics of a sample window. It is
// the statistical core of both the EFD (Mean) and the Taxonomist feature
// extraction (all fields).
type Summary struct {
	Count    int
	Mean     float64
	StdDev   float64
	Min      float64
	Max      float64
	Skewness float64
	Kurtosis float64
	P5       float64
	P25      float64
	P50      float64
	P75      float64
	P95      float64
}

// Describe computes a Summary of xs. Empty input yields a zero Summary.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	ps, _ := Percentiles(xs, []float64{5, 25, 50, 75, 95})
	return Summary{
		Count:    len(xs),
		Mean:     KahanMean(xs),
		StdDev:   StdDev(xs),
		Min:      Min(xs),
		Max:      Max(xs),
		Skewness: Skewness(xs),
		Kurtosis: Kurtosis(xs),
		P5:       ps[0],
		P25:      ps[1],
		P50:      ps[2],
		P75:      ps[3],
		P95:      ps[4],
	}
}

// Vector flattens the Summary into the 11-feature layout used by the
// Taxonomist baseline: min, max, mean, std, skew, kurtosis, p5, p25,
// p50, p75, p95.
func (s Summary) Vector() []float64 {
	return []float64{
		s.Min, s.Max, s.Mean, s.StdDev, s.Skewness, s.Kurtosis,
		s.P5, s.P25, s.P50, s.P75, s.P95,
	}
}

// FeatureNames returns the names of the components of Summary.Vector, in
// order. Useful for rendering feature-importance reports.
func FeatureNames() []string {
	return []string{
		"min", "max", "mean", "std", "skew", "kurtosis",
		"p5", "p25", "p50", "p75", "p95",
	}
}
