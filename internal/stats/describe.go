package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensated summation, which
// keeps long 1 Hz telemetry windows accurate even when large baselines
// carry small fluctuations.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// KahanMean returns the compensated-summation mean of xs, or 0 for empty
// input. This is the mean used for fingerprint construction.
func KahanMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. It returns
// 0 when fewer than two samples are available. Both the center and the
// squared-deviation sum use compensated summation, matching the
// precision Describe's mean always had — on large-magnitude counters
// (~1e9 baselines) the uncompensated version loses several digits.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := KahanMean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Skewness returns the adjusted Fisher–Pearson sample skewness of xs
// (the definition scipy/pandas use), or 0 when fewer than three samples
// are available or the variance is zero.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := KahanMean(xs)
	var m2, c2, m3, c3 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		y := d2 - c2
		t := m2 + y
		c2 = (t - m2) - y
		m2 = t
		y = d2*d - c3
		t = m3 + y
		c3 = (t - m3) - y
		m3 = t
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return math.Sqrt(n*(n-1)) / (n - 2) * g1
}

// Kurtosis returns the sample excess kurtosis of xs with the standard
// bias correction (Fisher definition: normal distribution → 0), or 0
// when fewer than four samples are available or the variance is zero.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := KahanMean(xs)
	var m2, c2, m4, c4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		y := d2 - c2
		t := m2 + y
		c2 = (t - m2) - y
		m2 = t
		y = d2*d2 - c4
		t = m4 + y
		c4 = (t - m4) - y
		m4 = t
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	g2 := m4/(m2*m2) - 3
	return ((n - 1) / ((n - 2) * (n - 3))) * ((n+1)*g2 + 6)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks — the same method as
// numpy.percentile's default. The input is not modified. It returns an
// error for empty input or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// Percentiles returns the requested percentiles of xs in one pass over a
// single sorted copy, which is markedly cheaper than repeated Percentile
// calls when extracting Taxonomist-style feature vectors.
func Percentiles(xs []float64, ps []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of range [0,100]")
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs, or 0 for empty input.
func Median(xs []float64) float64 {
	v, err := Percentile(xs, 50)
	if err != nil {
		return 0
	}
	return v
}

// Summary bundles the descriptive statistics of a sample window. It is
// the statistical core of both the EFD (Mean) and the Taxonomist feature
// extraction (all fields).
type Summary struct {
	Count    int
	Mean     float64
	StdDev   float64
	Min      float64
	Max      float64
	Skewness float64
	Kurtosis float64
	P5       float64
	P25      float64
	P50      float64
	P75      float64
	P95      float64
}

// Describe computes a Summary of xs. Empty input yields a zero Summary.
//
// It is the fused form of the individual statistics: one sorted copy
// serves all five percentiles, and a single central-moment pass
// accumulates Σd², Σd³ and Σd⁴ together. Each power keeps its own
// compensated summation and the shared mean is the same KahanMean the
// standalone functions compute, so every field is bit-identical to
// calling Variance/Skewness/Kurtosis/Percentiles separately — at a
// third of the passes over the data.
func Describe(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	// The five percentiles interpolate between at most ten order
	// statistics; selectRanks establishes exactly those positions
	// instead of fully sorting the copy (same values, far fewer
	// comparisons — the sort dominated Summarize before).
	sorted := make([]float64, n)
	copy(sorted, xs)
	var rankBuf [10]int
	selectRanks(sorted, percentileRanks(rankBuf[:0], n, 5, 25, 50, 75, 95))

	mean := KahanMean(xs)
	var s2, c2, s3, c3, s4, c4 float64
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		y := d2 - c2
		t := s2 + y
		c2 = (t - s2) - y
		s2 = t
		y = d2*d - c3
		t = s3 + y
		c3 = (t - s3) - y
		s3 = t
		y = d2*d2 - c4
		t = s4 + y
		c4 = (t - s4) - y
		s4 = t
	}
	out := Summary{
		Count: n,
		Mean:  mean,
		Min:   Min(xs),
		Max:   Max(xs),
		P5:    percentileSorted(sorted, 5),
		P25:   percentileSorted(sorted, 25),
		P50:   percentileSorted(sorted, 50),
		P75:   percentileSorted(sorted, 75),
		P95:   percentileSorted(sorted, 95),
	}
	fn := float64(n)
	if n >= 2 {
		out.StdDev = math.Sqrt(s2 / (fn - 1))
	}
	m2 := s2 / fn
	if n >= 3 && m2 != 0 {
		m3 := s3 / fn
		g1 := m3 / math.Pow(m2, 1.5)
		out.Skewness = math.Sqrt(fn*(fn-1)) / (fn - 2) * g1
	}
	if n >= 4 && m2 != 0 {
		m4 := s4 / fn
		g2 := m4/(m2*m2) - 3
		out.Kurtosis = ((fn - 1) / ((fn - 2) * (fn - 3))) * ((fn+1)*g2 + 6)
	}
	return out
}

// Vector flattens the Summary into the 11-feature layout used by the
// Taxonomist baseline: min, max, mean, std, skew, kurtosis, p5, p25,
// p50, p75, p95.
func (s Summary) Vector() []float64 {
	return []float64{
		s.Min, s.Max, s.Mean, s.StdDev, s.Skewness, s.Kurtosis,
		s.P5, s.P25, s.P50, s.P75, s.P95,
	}
}

// FeatureNames returns the names of the components of Summary.Vector, in
// order. Useful for rendering feature-importance reports.
func FeatureNames() []string {
	return []string{
		"min", "max", "mean", "std", "skew", "kurtosis",
		"p5", "p25", "p50", "p75", "p95",
	}
}
